//! The paper's future-work features (§V): OpenCL-style profiling and
//! per-task cache statistics.
//!
//! Launches the Mandelbrot per-pixel function on the virtual GPU,
//! converts the work-group profiling events into a regular trace (so
//! EASYVIEW tooling applies), then replays a CPU blur trace through the
//! cache model to get the per-task miss numbers the authors planned to
//! collect with PAPI.
//!
//! Run with: `cargo run --release --example gpu_cache`

use easypap::cache::{replay_trace, AccessPattern, CacheConfig};
use easypap::core::kernel::Probe;
use easypap::core::perf::run_kernel;
use easypap::gpu::{NdRange, VirtualDevice};
use easypap::kernels::mandel;
use easypap::prelude::*;
use std::sync::Arc;

fn main() -> easypap::core::Result<()> {
    // ---- OpenCL profiling events on the virtual device -----------------
    let dim = 256;
    let device = VirtualDevice::new(8);
    println!("== virtual GPU: {} ==", device.name);
    let view = mandel::Viewport::default();
    let src: Img2D<Rgba> = Img2D::square(dim);
    let range = NdRange::square(dim, 32);
    let (out, profile) = device.launch(range, &src, |x, y, _| {
        let (cx, cy) = view.pixel_to_complex(x, y, dim);
        easypap::core::color::mandel_color(mandel::escape_iterations(cx, cy, 256), 256)
    })?;
    println!(
        "{} work-groups on {} CUs, occupancy {:.1}%",
        profile.events.len(),
        profile.compute_units,
        profile.occupancy() * 100.0
    );
    let grid = range.grid()?;
    let trace = profile.to_trace(&grid, "mandel")?;
    println!("\nGantt of the GPU launch (per-CU timelines):");
    print!("{}", GanttModel::new(&trace, 1, 1).to_ascii(90));
    std::fs::write("mandel-gpu.ppm", out.to_ppm())?;
    println!("device output -> mandel-gpu.ppm");

    // ---- per-task cache statistics (PAPI substitute) --------------------
    println!("\n== per-task cache statistics (blur, 3x3 stencil accesses) ==");
    let cfg = RunConfig::new("blur")
        .variant("omp_tiled")
        .size(256)
        .tile(32)
        .iterations(1)
        .threads(2);
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid()?));
    let reg = easypap::kernels::registry();
    run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>)?;
    let cpu_trace = Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report());
    for (name, config) in [("L1d 32KiB", CacheConfig::l1d()), ("L2 512KiB", CacheConfig::l2())] {
        let stats = replay_trace(&cpu_trace, config, AccessPattern::Stencil3x3);
        let total = easypap::cache::replay::total(&stats);
        let worst = stats
            .iter()
            .max_by(|a, b| a.stats.miss_ratio().total_cmp(&b.stats.miss_ratio()))
            .unwrap();
        println!(
            "{name:>10}: {} accesses, {:.2}% misses overall; worst task ({},{}) at {:.2}%",
            total.accesses,
            total.miss_ratio() * 100.0,
            cpu_trace.tasks[worst.task_index].x,
            cpu_trace.tasks[worst.task_index].y,
            worst.stats.miss_ratio() * 100.0
        );
    }
    println!("(bigger cache -> fewer misses: the signal the paper wanted from PAPI)");
    Ok(())
}
