//! Game of Life: lazy evaluation + MPI (paper §III-D, Fig. 13).
//!
//! Reproduces the paper's debugging session: two MPI ranks (each with
//! its own thread pool) run the lazy Game of Life on the sparse
//! "spaceships along the diagonals" dataset; the per-rank monitoring
//! windows then show that (a) each process works on its half of the
//! image and (b) "only tiles located near diagonals are computed".
//!
//! Run with: `cargo run --release --example life_mpi`

use easypap::core::{Kernel, KernelCtx};
use easypap::kernels::life::Life;
use easypap::prelude::*;

fn main() -> easypap::core::Result<()> {
    let dim = 256;
    let mut cfg = RunConfig::new("life")
        .variant("mpi_omp")
        .size(dim)
        .tile(32)
        .iterations(8)
        .threads(4);
    cfg.mpi_ranks = 2;
    cfg.kernel_arg = Some("gliders:48".to_string());
    cfg.debug_mpi = true;

    println!(
        "== life mpi_omp: {} ranks x {} threads, {dim}x{dim}, tiles 32x32 ==",
        cfg.mpi_ranks, cfg.threads
    );
    let mut kernel = Life::default();
    let mut ctx = KernelCtx::new(cfg)?;
    kernel.init(&mut ctx)?;
    let live_before = kernel.board().live_count();
    let converged = kernel.compute(&mut ctx, "mpi_omp", 8)?;
    kernel.refresh_image(&mut ctx)?;
    println!(
        "{} live cells -> {} after 8 iterations (converged: {:?})\n",
        live_before,
        kernel.board().live_count(),
        converged
    );

    // the Fig. 13 windows: one tiling map per MPI process
    let grid = TileGrid::square(dim, 32)?;
    for (rank, report) in kernel.last_mpi_reports.iter().enumerate() {
        let last_it = report.iterations.last().map(|s| s.iteration).unwrap_or(1);
        let snap = report.tiling_snapshot(last_it);
        println!("=== monitoring window of MPI process {rank} (iteration {last_it}) ===");
        print!("{}", snap.to_ascii());
        println!(
            "computed tiles: {} / {} (lazy evaluation skips steady areas)\n",
            snap.computed_tiles(),
            grid.len()
        );
    }

    // quantify the Fig. 13 claim: activity hugs the diagonals
    let mut on_diag = 0usize;
    let mut computed = 0usize;
    for report in &kernel.last_mpi_reports {
        let last_it = report.iterations.last().map(|s| s.iteration).unwrap_or(1);
        let snap = report.tiling_snapshot(last_it);
        for t in grid.iter() {
            if snap.owner(t.tx, t.ty).is_some() {
                computed += 1;
                let main = (t.tx as i64 - t.ty as i64).abs() <= 1;
                let anti = (t.tx as i64 + t.ty as i64 - grid.tiles_x() as i64 + 1).abs() <= 2;
                if main || anti {
                    on_diag += 1;
                }
            }
        }
    }
    println!("{on_diag}/{computed} computed tiles lie near a diagonal — \"only tiles located near diagonals are computed\"");
    std::fs::write("life-mpi.ppm", ctx.images.cur().to_ppm())?;
    println!("final board -> life-mpi.ppm");
    Ok(())
}
