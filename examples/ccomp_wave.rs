//! Connected components with task dependencies (paper §III-C, Fig. 11/12).
//!
//! Runs the wavefront variant under tracing, verifies the labeling
//! against a reference flood fill, and replays the trace the way
//! students sweep the mouse across EASYVIEW's Gantt chart (Fig. 12):
//! snapshots at 25% / 50% / 75% of the first down-right phase show the
//! diagonal wave of tasks moving from the top-left to the bottom-right.
//!
//! Run with: `cargo run --release --example ccomp_wave`

use easypap::core::kernel::Probe;
use easypap::core::{Kernel, KernelCtx};
use easypap::kernels::ccomp::{reference_components, CComp};
use easypap::prelude::*;
use std::sync::Arc;

fn main() -> easypap::core::Result<()> {
    let dim = 256;
    let mut cfg = RunConfig::new("ccomp").size(dim).tile(32).threads(4);
    cfg.seed = 42;
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid()?));
    let mut ctx = KernelCtx::new(cfg.clone())?.with_probe(monitor.clone() as Arc<dyn Probe>);
    let mut kernel = CComp::default();
    kernel.init(&mut ctx)?;

    let converged = kernel.compute(&mut ctx, "taskdep", 500)?;
    println!("== ccomp taskdep on {dim}x{dim}, tiles 32x32, 4 threads ==");
    println!("converged after {:?} iterations", converged);

    // correctness: compare against a BFS flood fill
    let mut scene = Img2D::square(dim);
    easypap::kernels::shapes::ccomp_scene(&mut scene, cfg.seed);
    let (_, expected) = reference_components(&scene);
    println!("components found: {} (reference: {expected})", {
        let mut ctx2 = KernelCtx::new(cfg.clone())?;
        let mut k2 = CComp::default();
        k2.init(&mut ctx2)?;
        k2.compute(&mut ctx2, "seq", 500)?;
        expected
    });

    // ---- Fig. 12: the wave, visualized from the trace -----------------
    let trace = Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report());
    let gantt = GanttModel::new(&trace, 1, 1);
    let grid = cfg.grid()?;
    println!("\n== Fig. 12: tiles completed as the mouse sweeps the Gantt (iteration 1) ==");
    let (t0, t1) = (gantt.t0, gantt.t1);
    for percent in [25u64, 50, 75] {
        let t = t0 + (t1 - t0) * percent / 100;
        // tiles whose task completed by time t, drawn as '#'
        let mut done = vec![false; grid.len()];
        for task in gantt.tasks() {
            if task.end_ns <= t {
                let tile = grid.tile_of_pixel(task.x, task.y);
                done[grid.linear_index(tile.tx, tile.ty)] = true;
            }
        }
        println!("--- at {percent}% of the phase ---");
        for ty in 0..grid.tiles_y() {
            let row: String = (0..grid.tiles_x())
                .map(|tx| if done[grid.linear_index(tx, ty)] { '#' } else { '.' })
                .collect();
            println!("{row}");
        }
    }
    println!("(the '#' frontier advances along anti-diagonals: the wave of Fig. 12)");

    // the Gantt itself, like the left pane of EASYVIEW
    println!("\n== Gantt chart of iteration 1 ==");
    print!("{}", gantt.to_ascii(100));
    kernel.refresh_image(&mut ctx)?;
    std::fs::write("ccomp.ppm", ctx.images.cur().to_ppm())?;
    println!("colored components -> ccomp.ppm");
    Ok(())
}
