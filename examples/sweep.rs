//! Experiment automation (paper §II-C, Fig. 5 + Fig. 6 pipeline).
//!
//! The Rust spelling of the paper's `expTools` script: sweep the
//! Mandelbrot kernel over grains {16, 32}, threads {1, 2, 4} and two
//! schedules with repeated runs, accumulate everything into a CSV, then
//! feed it to the easyplot pipeline (constant-parameter factoring, auto
//! legend, speedup transform) and print the chart.
//!
//! Run with: `cargo run --release --example sweep`

use easypap::exp::Sweep;
use easypap::plot::{render_ascii, Dataset};

fn main() -> easypap::core::Result<()> {
    let csv = std::env::temp_dir().join("easypap-sweep-example.csv");
    let _ = std::fs::remove_file(&csv);

    // easypap_options["--kernel "] = ["mandel"] ... (Fig. 5)
    let sweep = Sweep::new()
        .fixed("--kernel", "mandel")
        .fixed("--variant", "omp_tiled")
        .fixed("--size", 256)
        .fixed("--iterations", 2)
        .set("--grain", [16, 32])
        .set("--threads", [1, 2, 4])
        .set("--schedule", ["static", "dynamic,2"])
        .runs(3);
    println!(
        "running {} configurations x {} runs...",
        sweep.combinations(),
        3
    );
    let outcomes = sweep.execute(&easypap::kernels::registry(), &csv)?;
    println!("{} runs recorded in {}", outcomes.len(), csv.display());

    // the easyplot half: one graph per grain, like Fig. 6's two panels
    let table = Sweep::load_results(&csv)?;
    for grain in ["16", "32"] {
        let filtered = table.filter(|r| r.get("tile") == Some(grain));
        let data = Dataset::from_table(&filtered, "threads", "time_us", &["run"])?;
        // refTime: the mean 1-thread time of this panel
        let ref_time = {
            let ones = filtered.filter(|r| r.get("threads") == Some("1"));
            let times: Vec<f64> = (0..ones.len())
                .filter_map(|i| ones.row(i).get_as::<f64>("time_us"))
                .collect();
            times.iter().sum::<f64>() / times.len() as f64
        };
        println!("\n== speedup, grain = {grain} ==");
        print!("{}", render_ascii(&data.into_speedup(ref_time), 60, 14));
    }
    std::fs::remove_file(&csv)?;
    Ok(())
}
