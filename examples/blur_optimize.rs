//! The blur optimization study (paper §III-B, Fig. 9b and Fig. 10).
//!
//! Runs the branchy baseline (`omp_tiled`) and the border-specialized
//! variant (`omp_tiled_opt`) with tracing enabled, verifies the outputs
//! are identical, then performs the Fig. 10 analysis: overall speedup,
//! per-iteration comparison, which tasks got dramatically faster (the
//! inner tiles), plus the Fig. 9b heat-map observation that border
//! tiles are the expensive ones.
//!
//! Run with: `cargo run --release --example blur_optimize`

use easypap::core::kernel::Probe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::sync::Arc;

fn traced_run(variant: &str, dim: usize) -> easypap::core::Result<(Trace, Vec<Rgba>)> {
    let reg = easypap::kernels::registry();
    let cfg = RunConfig::new("blur")
        .variant(variant)
        .size(dim)
        .tile(32)
        .iterations(4)
        .schedule(Schedule::Dynamic(2));
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid()?));
    let (_outcome, ctx) = run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>)?;
    let trace = Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report());
    Ok((trace, ctx.images.cur().as_slice().to_vec()))
}

fn main() -> easypap::core::Result<()> {
    let dim = 512;
    println!("== blur {dim}x{dim}, tiles 32x32, 4 iterations ==\n");

    let (basic, img_basic) = traced_run("omp_tiled", dim)?;
    let (opt, img_opt) = traced_run("omp_tiled_opt", dim)?;
    assert_eq!(img_basic, img_opt, "optimization must not change the output");
    println!("outputs are bit-identical: OK\n");

    // ---- Fig. 9b: heat map — border tiles cost more -------------------
    let report = basic.to_report()?;
    let heat = report.heat_map(2);
    println!("== Fig. 9b: heat map of the basic variant (iteration 2) ==");
    print!("{}", heat.to_ascii());
    if let Some(ratio) = heat.border_inner_ratio() {
        println!("border/inner mean duration ratio: x{ratio:.2} (paper: border tiles slower)\n");
    }

    // ---- Fig. 10: trace comparison ------------------------------------
    let cmp = TraceComparison::new(&basic, &opt)?;
    println!("== Fig. 10: trace comparison ==");
    println!("{}", cmp.summary());
    for (it, base_ns, opt_ns) in cmp.per_iteration() {
        println!(
            "  iteration {it}: {} -> {}  (x{:.2})",
            easypap::core::time::format_duration_ns(base_ns),
            easypap::core::time::format_duration_ns(opt_ns),
            base_ns as f64 / opt_ns.max(1) as f64
        );
    }
    let fast = cmp.tasks_faster_than(3.0);
    let total = cmp.task_speedups().len();
    println!("\ntasks >=3x faster in the optimized trace: {} / {total}", fast.len());
    let inner = fast
        .iter()
        .filter(|t| {
            let grid = basic.meta.grid().unwrap();
            let tile = grid.tile_of_pixel(t.x, t.y);
            !tile.is_border(&grid)
        })
        .count();
    println!("...of which inner tiles: {inner} (paper: \"short durations do always correspond to inner tiles\")");

    // side-by-side Gantt charts, like the stacked traces of Fig. 10
    println!("\n== Gantt: basic (top) vs optimized (bottom), iteration 2 ==");
    print!("{}", GanttModel::new(&basic, 2, 2).to_ascii(100));
    print!("{}", GanttModel::new(&opt, 2, 2).to_ascii(100));
    Ok(())
}
