//! Quickstart: the paper's Fig. 1 / Fig. 2 workflow in five minutes.
//!
//! Runs the Mandelbrot kernel sequentially and tile-parallel, compares
//! the timings, and dumps the final frame — the Rust equivalent of
//!
//! ```text
//! easypap --kernel mandel --variant seq       --size 512
//! easypap --kernel mandel --variant omp_tiled --size 512 --tile-size 16
//! ```
//!
//! Run with: `cargo run --release --example quickstart`

use easypap::core::kernel::NullProbe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::sync::Arc;

fn main() -> easypap::core::Result<()> {
    let reg = easypap::kernels::registry();
    let dim = 512;
    let iterations = 3;

    println!("== mandel, {dim}x{dim}, {iterations} iterations ==\n");

    let mut reference_us = 0;
    for variant in ["seq", "omp_tiled"] {
        let cfg = RunConfig::new("mandel")
            .variant(variant)
            .size(dim)
            .tile(16)
            .iterations(iterations)
            .schedule(Schedule::Dynamic(2));
        let (outcome, ctx) = run_kernel(&reg, cfg, Arc::new(NullProbe))?;
        let us = outcome.time_us();
        if variant == "seq" {
            reference_us = us;
            println!("{variant:>10}: {}", outcome.summary());
        } else {
            println!(
                "{variant:>10}: {}  (x{:.2} vs seq)",
                outcome.summary(),
                reference_us as f64 / us.max(1) as f64
            );
        }
        // "this action brings a window on the screen" — here: a PPM file
        let path = format!("mandel-{variant}.ppm");
        std::fs::write(&path, ctx.images.cur().to_ppm())?;
        println!("{:>10}  frame -> {path}", "");
    }

    println!("\nNext steps:");
    println!("  cargo run --release --example mandel_schedules   # Fig. 4 & 6");
    println!("  cargo run --release --example blur_optimize      # Fig. 9b & 10");
    println!("  cargo run --release --example life_mpi           # Fig. 13");
    Ok(())
}
