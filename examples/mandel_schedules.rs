//! The Mandelbrot scheduling study (paper §III-A, Fig. 4 and Fig. 6).
//!
//! Students' first real assignment: find the scheduling policy / tile
//! size combination that balances the wildly non-uniform Mandelbrot
//! workload. This example reproduces both figures deterministically via
//! the virtual-time simulator (the policies and the per-tile costs are
//! exact; only time is virtual — see DESIGN.md):
//!
//! * the **tiling windows** of Fig. 4: who computed which tile under
//!   static / dynamic,2 / nonmonotonic:dynamic / guided;
//! * the **speedup curves** of Fig. 6: threads 2..12, grain 16 and 32.
//!
//! Run with: `cargo run --release --example mandel_schedules`

use easypap::kernels::mandel;
use easypap::prelude::*;
use easypap::simsched::analysis::schedule_comparison;
use easypap::view::patterns;

fn main() -> easypap::core::Result<()> {
    let dim = 512;
    let max_iter = 256;
    let view = mandel::Viewport::default();

    // ---- Fig. 4: tile ownership maps at P = 6 -------------------------
    println!("== Fig. 4: tile -> thread maps (mandel {dim}x{dim}, tiles 32x32, 6 threads) ==");
    let grid = TileGrid::square(dim, dim / 16)?; // 16x16 tiles
    let costs = CostMap::from_fn(grid, |t| mandel::tile_cost(&view, t, dim, max_iter));
    for schedule in Schedule::paper_policies() {
        let sim = simulate(&costs, SimConfig::new(6, schedule));
        let report = sim.to_report(&costs, "mandel", "omp_tiled");
        let snap = report.tiling_snapshot(1);
        println!("\n--- schedule({schedule}) ---");
        print!("{}", snap.to_ascii());
        let owners = snap.owners().to_vec();
        println!(
            "speedup {:.2} | max same-thread run {} | cyclic score (period 6) {:.2}",
            sim.speedup(),
            patterns::max_run_length(&owners),
            patterns::cyclic_score(&owners, 6),
        );
    }

    // ---- Fig. 6: speedup vs threads for grain 16 and 32 ---------------
    let threads: Vec<usize> = (2..=12).step_by(2).collect();
    for grain in [16usize, 32] {
        println!("\n== Fig. 6: speedup vs threads (grain = {grain}) ==");
        let grid = TileGrid::square(dim, grain)?;
        let costs = CostMap::from_fn(grid, |t| mandel::tile_cost(&view, t, dim, max_iter));
        let comparison =
            schedule_comparison(&costs, &Schedule::paper_policies(), &threads, 10, 200);
        print!("{:>24}", "threads:");
        for t in &threads {
            print!("{t:>7}");
        }
        println!();
        for (schedule, curve) in comparison {
            print!("{:>24}", schedule.as_omp_str());
            for p in curve {
                print!("{:>7.2}", p.speedup);
            }
            println!();
        }
    }
    println!("\n(the paper's shape: dynamic/nonmonotonic > guided > static under imbalance)");
    Ok(())
}
