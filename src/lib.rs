//! # easypap — the facade crate of easypap-rs
//!
//! A from-scratch Rust reproduction of *"EASYPAP: a Framework for
//! Learning Parallel Programming"* (Lasserre, Namyst, Wacrenier, 2020).
//! This crate re-exports every subsystem of the workspace under one
//! roof so examples and downstream users need a single dependency:
//!
//! ```
//! use easypap::prelude::*;
//!
//! let reg = easypap::kernels::registry();
//! let cfg = RunConfig::new("mandel").variant("omp_tiled")
//!     .size(128).tile(32).iterations(2).threads(2);
//! let (outcome, _ctx) = easypap::core::perf::run_kernel(
//!     &reg, cfg, std::sync::Arc::new(NullProbe)).unwrap();
//! assert_eq!(outcome.completed_iterations, 2);
//! ```
//!
//! See `README.md` for the tour and `DESIGN.md` for the architecture.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub use ezp_cache as cache;
pub use ezp_chan as chan;
pub use ezp_core as core;
pub use ezp_exp as exp;
pub use ezp_gpu as gpu;
pub use ezp_kernels as kernels;
pub use ezp_monitor as monitor;
pub use ezp_mpi as mpi;
pub use ezp_perf as perf;
pub use ezp_plot as plot;
pub use ezp_render as render;
pub use ezp_sched as sched;
pub use ezp_simsched as simsched;
pub use ezp_stream as stream;
pub use ezp_trace as trace;
pub use ezp_view as view;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use ezp_chan::{ChanReceiver, ChanSender, ChanStats};
    pub use ezp_core::kernel::{NullProbe, Probe};
    pub use ezp_core::{ChanBackendKind, ChanTuning, WaitPolicy};
    pub use ezp_core::{
        Img2D, ImagePair, Kernel, KernelCtx, Registry, Rgba, RunConfig, Schedule, Tile, TileGrid,
    };
    pub use ezp_monitor::{Monitor, MonitorReport, UnifiedReport};
    pub use ezp_perf::PerfProbe;
    pub use ezp_sched::{TaskGraph, WorkerPool};
    pub use ezp_simsched::{simulate, simulate_iterations, CostMap, SimConfig};
    pub use ezp_stream::{map_reduce, EmitMode, Farm, Pipeline, StreamStats};
    pub use ezp_trace::{Trace, TraceMeta};
    pub use ezp_view::{CoverageMap, GanttModel, TraceComparison};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_subsystem() {
        let reg = crate::kernels::registry();
        assert!(reg.contains("mandel"));
        let grid = crate::core::TileGrid::square(64, 16).unwrap();
        assert_eq!(grid.len(), 16);
        let cfg = crate::core::params::Schedule::parse("dynamic,2").unwrap();
        assert_eq!(cfg.as_omp_str(), "dynamic,2");
        let probe = crate::perf::PerfProbe::new(2);
        assert_eq!(probe.snapshot().total(crate::perf::names::TASKS_EXECUTED), 0);
    }
}
