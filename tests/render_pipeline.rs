//! The display-substitution pipeline end to end: real kernel runs feed
//! the off-screen renderers that replace EASYPAP's SDL window.

use easypap::core::kernel::Probe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use easypap::render::anim::{FrameFormat, FrameSink};
use std::sync::Arc;

#[test]
fn life_animation_frames_show_the_glider_moving() {
    let dir = std::env::temp_dir().join(format!("ezp_it_anim_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reg = easypap::kernels::registry();
    let mut cfg = RunConfig::new("life").size(32).tile(8).iterations(1);
    cfg.kernel_arg = Some("empty".into());

    // drive the kernel one iteration at a time, dumping frames, exactly
    // like `easypap --frames`
    let mut kernel = reg.create("life").unwrap();
    let mut ctx = easypap::core::KernelCtx::new(cfg).unwrap();
    kernel.init(&mut ctx).unwrap();
    // place a glider by painting the current image is not possible (the
    // kernel owns its own bit-board), so use the pattern argument instead
    let mut cfg2 = RunConfig::new("life").size(32).tile(8).iterations(1);
    cfg2.kernel_arg = Some("gliders:16".into());
    let mut ctx = easypap::core::KernelCtx::new(cfg2).unwrap();
    let mut kernel = reg.create("life").unwrap();
    kernel.init(&mut ctx).unwrap();

    let mut sink = FrameSink::new(&dir, FrameFormat::Bmp, 1).unwrap();
    let mut previous: Vec<Rgba> = Vec::new();
    for _ in 0..4 {
        kernel.refresh_image(&mut ctx).unwrap();
        sink.present(ctx.images.cur()).unwrap();
        let now = ctx.images.cur().as_slice().to_vec();
        if !previous.is_empty() {
            assert_ne!(now, previous, "the glider must move between frames");
        }
        previous = now;
        kernel.compute(&mut ctx, "seq", 1).unwrap();
    }
    assert_eq!(sink.frames().len(), 4);
    for f in sink.frames() {
        let bytes = std::fs::read(f).unwrap();
        assert!(bytes.starts_with(b"BM"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mandel_thumbnail_and_overlay_pipeline() {
    // run mandel, downscale the frame to an EASYVIEW-style thumbnail,
    // highlight the tiles of the longest tasks over it
    let reg = easypap::kernels::registry();
    let cfg = RunConfig::new("mandel")
        .variant("omp_tiled")
        .size(128)
        .tile(16)
        .iterations(1)
        .threads(2)
        .schedule(Schedule::Dynamic(1));
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid().unwrap()));
    let (_, ctx) = run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>).unwrap();

    let mut thumb = easypap::render::downscale(ctx.images.cur(), 64, 64);
    let before = thumb.clone();
    let report = monitor.report();
    let grid = cfg.grid().unwrap();
    // the 3 most expensive tiles = the Mandelbrot interior
    let mut records = report.records.clone();
    records.sort_by_key(|r| std::cmp::Reverse(r.duration_ns()));
    let tiles: Vec<Tile> = records
        .iter()
        .take(3)
        .map(|r| grid.tile_of_pixel(r.x, r.y))
        .collect();
    easypap::render::highlight_tiles(&mut thumb, 128, &tiles, Rgba::GREEN);
    assert_ne!(thumb, before, "highlights must be visible");
    // ANSI rendering of the overlay works (one row per 2 pixels)
    let ansi = easypap::render::to_ansi(&thumb);
    assert_eq!(ansi.lines().count(), 32);
    // BMP export round-trips through the header
    let bmp = easypap::render::to_bmp(&thumb);
    assert_eq!(&bmp[..2], b"BM");
}

#[test]
fn tiling_window_image_upscales_for_display() {
    // the tiling snapshot's per-tile image, blown up for viewing
    let grid = TileGrid::square(64, 16).unwrap();
    let monitor = Monitor::new(2, grid);
    monitor.iteration_start(1);
    for (i, t) in grid.iter().enumerate() {
        monitor.start_tile(i % 2);
        monitor.end_tile(t.x, t.y, t.w, t.h, i % 2);
    }
    monitor.iteration_end(1);
    let snap = monitor.report().tiling_snapshot(1);
    let small = snap.to_image(1); // 4x4 pixels
    let big = easypap::render::upscale_nearest(&small, 16);
    assert_eq!((big.width(), big.height()), (64, 64));
    // block structure preserved
    assert_eq!(big.get(0, 0), small.get(0, 0));
    assert_eq!(big.get(15, 15), small.get(0, 0));
    assert_eq!(big.get(16, 0), small.get(1, 0));
}
