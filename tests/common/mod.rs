//! Shared conformance-matrix infrastructure for the integration tests.
//!
//! One table of per-kernel parameters ([`cases`]), one list of
//! scheduling policies ([`policies`]), one list of worker counts
//! ([`WORKER_COUNTS`]) and one runner ([`final_image`]) — so
//! `conformance.rs` and `variants_consistency.rs` provably exercise the
//! same ground truth, and a new kernel only needs one new table row.

#![allow(dead_code)]

use easypap::core::kernel::NullProbe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::sync::Arc;

/// Per-kernel parameters that make every variant's output comparable to
/// the sequential reference in a test-sized run.
#[derive(Clone, Copy, Debug)]
pub struct KernelCase {
    /// Registry name.
    pub kernel: &'static str,
    /// Image dimension (square).
    pub dim: usize,
    /// Tile edge.
    pub tile: usize,
    /// Iteration count (or budget, for kernels run to convergence).
    pub iters: u32,
}

/// One case per registered kernel. `conformance.rs` asserts this table
/// stays exhaustive, so adding a kernel without a row here fails CI.
pub fn cases() -> Vec<KernelCase> {
    [
        ("mandel", 64, 16, 2),
        ("blur", 64, 16, 2),
        ("life", 64, 16, 5),
        ("ccomp", 64, 16, 20),
        // run to convergence: the async (Gauss-Seidel) variant only has
        // to match seq at the stable fixed point (abelian property)
        ("sandpile", 32, 16, 5000),
        ("heat", 48, 16, 10),
        ("rotate90", 48, 16, 2),
        ("scrollup", 48, 16, 3),
        ("transpose", 48, 16, 1),
        ("invert", 48, 16, 1),
        ("pixelize", 48, 16, 1),
        ("spin", 48, 16, 2),
    ]
    .iter()
    .map(|&(kernel, dim, tile, iters)| KernelCase {
        kernel,
        dim,
        tile,
        iters,
    })
    .collect()
}

/// The scheduling policies the conformance matrix sweeps — all five
/// dispenser families.
pub fn policies() -> [Schedule; 5] {
    [
        Schedule::Static,
        Schedule::StaticChunk(3),
        Schedule::Dynamic(1),
        Schedule::Guided(1),
        Schedule::NonmonotonicDynamic(1),
    ]
}

/// Worker counts for the full matrix (tier-2, `--features ezp-check`).
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs `kernel/variant` and returns the final image.
pub fn final_image(
    kernel: &str,
    variant: &str,
    dim: usize,
    tile: usize,
    iters: u32,
    threads: usize,
    schedule: Schedule,
) -> Vec<Rgba> {
    let reg = easypap::kernels::registry();
    let mut cfg = RunConfig::new(kernel)
        .variant(variant)
        .size(dim)
        .tile(tile)
        .iterations(iters)
        .threads(threads)
        .schedule(schedule);
    if variant == "mpi_omp" {
        cfg.mpi_ranks = 2;
    }
    let (_, ctx) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
    ctx.images.cur().as_slice().to_vec()
}

/// The sequential golden image for a case.
pub fn golden(case: &KernelCase) -> Vec<Rgba> {
    final_image(
        case.kernel,
        "seq",
        case.dim,
        case.tile,
        case.iters,
        1,
        Schedule::Static,
    )
}

/// The registered variants of a kernel.
pub fn variants_of(kernel: &str) -> Vec<&'static str> {
    easypap::kernels::registry()
        .create(kernel)
        .unwrap()
        .variants()
}

/// Per-kernel parameters of the *streaming* conformance dimension.
#[derive(Clone, Copy, Debug)]
pub struct StreamCase {
    /// Streaming-registry name.
    pub kernel: &'static str,
    /// Frame dimension (meaning is kernel-defined; `wordcount` scales
    /// words per frame off it).
    pub dim: usize,
    /// Frames pushed through the pipeline.
    pub frames: usize,
}

/// One case per streaming kernel. `conformance.rs` asserts this table
/// matches `ezp_stream::stream_registry()` exactly, mirroring the
/// classic table's exhaustiveness guard.
pub fn stream_cases() -> Vec<StreamCase> {
    [
        ("mandel_zoom", 16, 10),
        ("frame_diff", 24, 12),
        ("wordcount", 8, 10),
    ]
    .iter()
    .map(|&(kernel, dim, frames)| StreamCase { kernel, dim, frames })
    .collect()
}

/// Farm widths the streaming matrix sweeps.
pub const FARM_WIDTHS: [usize; 3] = [1, 2, 4];

/// Every channel tuning the streaming matrix re-sweeps: the full cross
/// product of emission-channel backends and wait policies. Generated
/// from the enums' own `all()` listings, so a new backend or policy is
/// swept the moment it exists — `conformance.rs` pins the expected
/// shape so the listings cannot silently shrink either.
pub fn chan_tunings() -> Vec<easypap::stream::ChanTuning> {
    use easypap::stream::{ChanBackendKind, ChanTuning, WaitPolicy};
    let mut v = Vec::new();
    for backend in ChanBackendKind::all() {
        for policy in WaitPolicy::all() {
            v.push(ChanTuning { backend, policy });
        }
    }
    v
}

/// Runs the channel-tuning slice of the streaming matrix: every
/// streamed kernel × both emit modes × every `(backend, wait policy)`
/// tuning, at the given farm width and worker counts. The frame bytes
/// must not depend on how frames travel to the sink: each cell must be
/// byte-identical to the sequential baseline (Unordered cells after
/// sorting by frame id). Returns one `(kernel, mode, tuning, workers)`
/// line per divergence.
pub fn run_stream_chan_matrix(width: usize, workers: &[usize]) -> Vec<String> {
    use easypap::stream::{stream_kernel, EmitMode};
    let mut failures = Vec::new();
    for case in stream_cases() {
        let kernel = stream_kernel(case.kernel).expect("case has no streaming kernel");
        let baseline = kernel.run_seq(case.dim, case.frames);
        for tuning in chan_tunings() {
            for &w in workers {
                let mut pool = WorkerPool::new(w);
                for mode in [EmitMode::Ordered, EmitMode::Unordered] {
                    let (mut got, stats) = kernel
                        .run_tuned(
                            case.dim,
                            case.frames,
                            mode,
                            width,
                            tuning,
                            &mut pool,
                            &NullProbe,
                        )
                        .unwrap();
                    if mode == EmitMode::Unordered {
                        got.sort_by_key(|&(f, _)| f);
                    }
                    let ok = got == baseline
                        && stats.frames == case.frames
                        && stats.chan_sends == case.frames as u64
                        && stats.chan_recvs == case.frames as u64;
                    if !ok {
                        failures.push(format!(
                            "({}, {mode}, {:?}/{:?}, {w} workers)",
                            case.kernel, tuning.backend, tuning.policy
                        ));
                    }
                }
            }
        }
    }
    failures
}

/// Runs the streaming conformance matrix: every streamed kernel ×
/// {Ordered, Unordered} × the given farm widths × the given worker
/// counts, against the sequential one-frame-at-a-time baseline.
///
/// Ordered runs must equal the baseline byte-for-byte *in order*;
/// Unordered runs must be the same multiset keyed by frame id (sorted
/// by id, then byte-equal). Returns one `(kernel, mode, width,
/// workers)` line per divergence.
pub fn run_stream_matrix(widths: &[usize], workers: &[usize]) -> Vec<String> {
    use easypap::stream::{stream_kernel, EmitMode};
    let mut failures = Vec::new();
    for case in stream_cases() {
        let kernel = stream_kernel(case.kernel).expect("case has no streaming kernel");
        let baseline = kernel.run_seq(case.dim, case.frames);
        for &width in widths {
            for &w in workers {
                let mut pool = WorkerPool::new(w);
                for mode in [EmitMode::Ordered, EmitMode::Unordered] {
                    let (mut got, stats) = kernel
                        .run(case.dim, case.frames, mode, width, &mut pool, &NullProbe)
                        .unwrap();
                    if mode == EmitMode::Unordered {
                        got.sort_by_key(|&(f, _)| f);
                    }
                    if got != baseline || stats.frames != case.frames {
                        failures.push(format!(
                            "({}, {mode}, width {width}, {w} workers)",
                            case.kernel
                        ));
                    }
                }
            }
        }
    }
    failures
}

/// Runs the conformance matrix restricted to the given policies and
/// worker counts, returning one `(kernel, variant, policy, workers)`
/// line per divergence from the sequential golden image.
pub fn run_matrix(policies: &[Schedule], workers: &[usize]) -> Vec<String> {
    let mut failures = Vec::new();
    for case in cases() {
        let reference = golden(&case);
        for variant in variants_of(case.kernel) {
            if variant == "seq" {
                continue;
            }
            for &schedule in policies {
                for &w in workers {
                    let got = final_image(
                        case.kernel,
                        variant,
                        case.dim,
                        case.tile,
                        case.iters,
                        w,
                        schedule,
                    );
                    if got != reference {
                        failures.push(format!(
                            "({}, {}, {}, {} workers)",
                            case.kernel,
                            variant,
                            schedule.as_omp_str(),
                            w
                        ));
                    }
                }
            }
        }
    }
    failures
}
