//! The cross-variant conformance suite: every registered kernel, every
//! variant, swept across scheduling policies and worker counts, checked
//! bit-exactly against the sequential golden image.
//!
//! This is the load-bearing half of ezp-check: the virtual executor and
//! shadow detector (`tests/ezp_check.rs`) find *why* a schedule breaks a
//! kernel; this suite finds *that* one does. The always-on smoke test
//! keeps tier-1 wall-clock flat; the full matrix runs under
//! `cargo test --features ezp-check` (tier-2, `ci/verify.sh`).
//!
//! A failure prints `(kernel, variant, policy, workers)` quadruples —
//! rerun a single cell by plugging those into `common::final_image`, or
//! explore its interleavings deterministically with
//! `ezp_sched::vexec` under the same policy.

mod common;

/// Every registered kernel must have a row in the conformance table —
/// adding a kernel without conformance parameters fails here, not
/// silently shrinking coverage.
#[test]
fn conformance_table_covers_every_registered_kernel() {
    let reg = easypap::kernels::registry();
    let table = common::cases();
    for name in reg.kernel_names() {
        assert!(
            table.iter().any(|c| c.kernel == name),
            "kernel `{name}` is registered but has no conformance case — \
             add a row to tests/common/mod.rs::cases()"
        );
    }
    // and the table has no stale rows for unregistered kernels
    for case in &table {
        assert!(
            reg.contains(case.kernel),
            "conformance case `{}` has no registered kernel",
            case.kernel
        );
    }
}

/// The streaming registry gets the same exhaustiveness treatment as the
/// classic one: every streaming kernel needs a row in the stream case
/// table, and the table must not hold stale rows.
#[test]
fn stream_table_covers_every_streaming_kernel() {
    let names: Vec<&str> = easypap::stream::stream_registry()
        .iter()
        .map(|k| k.name())
        .collect();
    let table = common::stream_cases();
    for name in &names {
        assert!(
            table.iter().any(|c| c.kernel == *name),
            "streaming kernel `{name}` is registered but has no conformance case — \
             add a row to tests/common/mod.rs::stream_cases()"
        );
    }
    for case in &table {
        assert!(
            names.contains(&case.kernel),
            "stream conformance case `{}` has no registered streaming kernel",
            case.kernel
        );
    }
}

/// Always-on streaming smoke: every streamed kernel × both emit modes
/// at 2 workers, farm widths 1 and 2.
#[test]
fn stream_conformance_smoke_two_workers() {
    let failures = common::run_stream_matrix(&[1, 2], &[2]);
    assert!(
        failures.is_empty(),
        "streamed kernels diverged from their sequential baseline:\n  {}",
        failures.join("\n  ")
    );
}

/// The full streaming matrix: every streamed kernel × both emit modes ×
/// farm widths {1, 2, 4} × {1, 2, 4} workers. Tier-2 only.
#[cfg(feature = "ezp-check")]
#[test]
fn stream_conformance_full_matrix() {
    let failures = common::run_stream_matrix(&common::FARM_WIDTHS, &[1, 2, 4]);
    assert!(
        failures.is_empty(),
        "{} streaming matrix cells diverged from the sequential baseline:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

/// The channel-tuning registry gets the same exhaustiveness treatment
/// as the kernel tables: the swept tuning list must be the full cross
/// product of every channel backend and every wait policy, and the
/// enums' `all()` listings must still carry the documented variants —
/// shrinking either silently shrinks the matrix, so it fails here.
#[test]
fn chan_tuning_sweep_covers_every_backend_and_policy() {
    use easypap::stream::{ChanBackendKind, WaitPolicy};
    let tunings = common::chan_tunings();
    let backends = ChanBackendKind::all();
    let policies = WaitPolicy::all();
    assert_eq!(tunings.len(), backends.len() * policies.len());
    for backend in backends {
        for policy in policies {
            assert!(
                tunings
                    .iter()
                    .any(|t| t.backend == backend && t.policy == policy),
                "tuning {backend:?}/{policy:?} missing from the sweep"
            );
        }
    }
    // the listings themselves stay exhaustive (a new enum variant that
    // is not listed in `all()` would dodge the whole matrix)
    assert!(backends.contains(&ChanBackendKind::Ring));
    assert!(backends.contains(&ChanBackendKind::Mpsc));
    assert!(WaitPolicy::all().contains(&WaitPolicy::Spin));
    assert!(WaitPolicy::all().contains(&WaitPolicy::Yield));
    assert!(WaitPolicy::all().contains(&WaitPolicy::Park));
}

/// Always-on channel smoke: every streamed kernel × both emit modes ×
/// every `(backend, wait policy)` tuning at 2 workers, farm width 2 —
/// frame bytes must not depend on how frames travel to the sink.
#[test]
fn stream_chan_conformance_smoke_two_workers() {
    let failures = common::run_stream_chan_matrix(2, &[2]);
    assert!(
        failures.is_empty(),
        "streamed kernels diverged across channel tunings:\n  {}",
        failures.join("\n  ")
    );
}

/// The full channel-tuning matrix: every streamed kernel × both emit
/// modes × every tuning × {1, 2, 4} workers. Tier-2 only.
#[cfg(feature = "ezp-check")]
#[test]
fn stream_chan_conformance_full_matrix() {
    let failures = common::run_stream_chan_matrix(2, &[1, 2, 4]);
    assert!(
        failures.is_empty(),
        "{} channel-tuning matrix cells diverged:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

/// Always-on smoke slice of the matrix: every kernel × every variant at
/// 2 workers under the two extreme policies (fully static vs stealing).
#[test]
fn conformance_smoke_two_workers() {
    use easypap::prelude::Schedule;
    let failures = common::run_matrix(
        &[Schedule::Static, Schedule::NonmonotonicDynamic(1)],
        &[2],
    );
    assert!(
        failures.is_empty(),
        "variants diverged from their seq golden image:\n  {}",
        failures.join("\n  ")
    );
}

/// The full matrix: every kernel × every variant × all five policies ×
/// {1, 2, 4, 8} workers. Tier-2 only (`--features ezp-check`).
#[cfg(feature = "ezp-check")]
#[test]
fn conformance_full_matrix() {
    let failures = common::run_matrix(&common::policies(), &common::WORKER_COUNTS);
    assert!(
        failures.is_empty(),
        "{} matrix cells diverged from their seq golden image:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}
