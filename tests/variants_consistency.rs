//! Cross-variant consistency: for every kernel of the library, every
//! parallel/distributed/GPU variant must produce the exact output of
//! the sequential reference — the invariant that lets the paper's
//! students "visually check if this new variant produces the expected
//! output" (§II-A), promoted to a bit-exact assertion.

use easypap::core::kernel::NullProbe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::sync::Arc;

/// Runs a kernel variant and returns the final image.
fn final_image(
    kernel: &str,
    variant: &str,
    dim: usize,
    tile: usize,
    iters: u32,
    schedule: Schedule,
) -> Vec<Rgba> {
    let reg = easypap::kernels::registry();
    let mut cfg = RunConfig::new(kernel)
        .variant(variant)
        .size(dim)
        .tile(tile)
        .iterations(iters)
        .threads(3)
        .schedule(schedule);
    if variant == "mpi_omp" {
        cfg.mpi_ranks = 2;
    }
    let (_, ctx) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
    ctx.images.cur().as_slice().to_vec()
}

#[test]
fn every_kernel_variant_matches_its_seq_reference() {
    let cases: &[(&str, usize, u32)] = &[
        ("mandel", 64, 2),
        ("blur", 64, 2),
        ("life", 64, 5),
        ("ccomp", 64, 20),
        // run to convergence: the async (Gauss-Seidel) variant only has
        // to match seq at the stable fixed point (abelian property)
        ("sandpile", 32, 5000),
        ("heat", 48, 10),
        ("rotate90", 48, 2),
        ("scrollup", 48, 3),
        ("transpose", 48, 1),
        ("invert", 48, 1),
        ("pixelize", 48, 1),
        ("spin", 48, 2),
    ];
    let reg = easypap::kernels::registry();
    for &(kernel, dim, iters) in cases {
        let variants = reg.create(kernel).unwrap().variants();
        let reference = final_image(kernel, "seq", dim, 16, iters, Schedule::Static);
        for variant in variants {
            if variant == "seq" {
                continue;
            }
            let got = final_image(kernel, variant, dim, 16, iters, Schedule::Dynamic(1));
            assert_eq!(
                got, reference,
                "{kernel}/{variant} diverged from {kernel}/seq"
            );
        }
    }
}

#[test]
fn schedules_never_change_results() {
    // mandel's output must be schedule-independent (only the *timing*
    // changes — that's the whole point of Fig. 4)
    let reference = final_image("mandel", "omp_tiled", 64, 16, 2, Schedule::Static);
    for schedule in [
        Schedule::StaticChunk(3),
        Schedule::Dynamic(2),
        Schedule::Guided(1),
        Schedule::NonmonotonicDynamic(1),
    ] {
        assert_eq!(
            final_image("mandel", "omp_tiled", 64, 16, 2, schedule),
            reference,
            "schedule {schedule:?} changed the image"
        );
    }
}

#[test]
fn tile_size_never_changes_results() {
    // except pixelize, where the tile *is* the effect
    for kernel in ["mandel", "blur", "life", "ccomp"] {
        let reference = final_image(kernel, variants_of(kernel)[1], 60, 16, 3, Schedule::Dynamic(1));
        for tile in [8, 12, 30, 60] {
            assert_eq!(
                final_image(kernel, variants_of(kernel)[1], 60, tile, 3, Schedule::Dynamic(1)),
                reference,
                "{kernel} changed output with tile size {tile}"
            );
        }
    }
}

fn variants_of(kernel: &str) -> Vec<&'static str> {
    easypap::kernels::registry().create(kernel).unwrap().variants()
}

#[test]
fn convergence_is_variant_independent() {
    let reg = easypap::kernels::registry();
    // a still-life board converges at iteration 1 in every variant
    for variant in ["seq", "omp_tiled", "lazy", "mpi_omp"] {
        let mut cfg = RunConfig::new("life")
            .variant(variant)
            .size(32)
            .tile(8)
            .threads(2)
            .iterations(10);
        cfg.kernel_arg = Some("block".into());
        if variant == "mpi_omp" {
            cfg.mpi_ranks = 2;
        }
        let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
        assert_eq!(outcome.converged_at, Some(1), "life/{variant}");
        assert_eq!(outcome.completed_iterations, 1);
    }
}

#[test]
fn thread_count_never_changes_results() {
    for threads in [1, 2, 5, 8] {
        let reg = easypap::kernels::registry();
        let cfg = RunConfig::new("blur")
            .variant("omp_tiled_opt")
            .size(64)
            .tile(16)
            .iterations(2)
            .threads(threads)
            .schedule(Schedule::NonmonotonicDynamic(1));
        let (_, ctx) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
        let got = ctx.images.cur().as_slice().to_vec();
        let reference = final_image("blur", "seq", 64, 16, 2, Schedule::Static);
        assert_eq!(got, reference, "blur changed output with {threads} threads");
    }
}
