//! Cross-variant consistency: for every kernel of the library, every
//! parallel/distributed/GPU variant must produce the exact output of
//! the sequential reference — the invariant that lets the paper's
//! students "visually check if this new variant produces the expected
//! output" (§II-A), promoted to a bit-exact assertion.
//!
//! The kernel parameter table and runner live in `tests/common/mod.rs`,
//! shared with the conformance suite (`tests/conformance.rs`), which
//! sweeps the same cases across the full policy × worker matrix — see
//! `conformance_suite_subsumes_this_file` below.

use common::{cases, final_image, policies, variants_of, WORKER_COUNTS};
use easypap::core::kernel::NullProbe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::sync::{Arc, Mutex};

mod common;

#[test]
fn every_kernel_variant_matches_its_seq_reference() {
    let reg = easypap::kernels::registry();
    for case in cases() {
        let variants = reg.create(case.kernel).unwrap().variants();
        let reference = final_image(
            case.kernel,
            "seq",
            case.dim,
            case.tile,
            case.iters,
            3,
            Schedule::Static,
        );
        for variant in variants {
            if variant == "seq" {
                continue;
            }
            let got = final_image(
                case.kernel,
                variant,
                case.dim,
                case.tile,
                case.iters,
                3,
                Schedule::Dynamic(1),
            );
            assert_eq!(
                got, reference,
                "{}/{variant} diverged from {}/seq",
                case.kernel, case.kernel
            );
        }
    }
}

/// The conformance suite must cover at least everything this file does:
/// the same kernel table (shared by construction through `common`), a
/// policy set containing both schedules used above, and a worker sweep
/// wider than the single thread count used here. If someone narrows the
/// conformance matrix below this file's coverage, this fails.
#[test]
fn conformance_suite_subsumes_this_file() {
    // every registered kernel variant that this file compares is also
    // swept by common::run_matrix (it iterates the same cases() table
    // and the same variants_of()) — what's left to pin is the breadth
    // of the policy and worker axes.
    let p = policies();
    for needed in [Schedule::Static, Schedule::Dynamic(1)] {
        assert!(
            p.contains(&needed),
            "conformance policies lost {needed:?}, which this file relies on"
        );
    }
    assert!(
        p.len() >= 4,
        "conformance must sweep at least 4 scheduling policies"
    );
    assert!(
        WORKER_COUNTS.len() >= 3 && WORKER_COUNTS.contains(&1),
        "conformance must sweep >= 3 worker counts including the serial case"
    );
}

#[test]
fn schedules_never_change_results() {
    // mandel's output must be schedule-independent (only the *timing*
    // changes — that's the whole point of Fig. 4)
    let reference = final_image("mandel", "omp_tiled", 64, 16, 2, 3, Schedule::Static);
    for schedule in [
        Schedule::StaticChunk(3),
        Schedule::Dynamic(2),
        Schedule::Guided(1),
        Schedule::NonmonotonicDynamic(1),
    ] {
        assert_eq!(
            final_image("mandel", "omp_tiled", 64, 16, 2, 3, schedule),
            reference,
            "schedule {schedule:?} changed the image"
        );
    }
}

#[test]
fn tile_size_never_changes_results() {
    // except pixelize, where the tile *is* the effect
    for kernel in ["mandel", "blur", "life", "ccomp"] {
        let variant = variants_of(kernel)[1];
        let reference = final_image(kernel, variant, 60, 16, 3, 3, Schedule::Dynamic(1));
        for tile in [8, 12, 30, 60] {
            assert_eq!(
                final_image(kernel, variant, 60, tile, 3, 3, Schedule::Dynamic(1)),
                reference,
                "{kernel} changed output with tile size {tile}"
            );
        }
    }
}

#[test]
fn convergence_is_variant_independent() {
    let reg = easypap::kernels::registry();
    // a still-life board converges at iteration 1 in every variant
    for variant in ["seq", "omp_tiled", "lazy", "mpi_omp"] {
        let mut cfg = RunConfig::new("life")
            .variant(variant)
            .size(32)
            .tile(8)
            .threads(2)
            .iterations(10);
        cfg.kernel_arg = Some("block".into());
        if variant == "mpi_omp" {
            cfg.mpi_ranks = 2;
        }
        let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
        assert_eq!(outcome.converged_at, Some(1), "life/{variant}");
        assert_eq!(outcome.completed_iterations, 1);
    }
}

#[test]
fn thread_count_never_changes_results() {
    for threads in [1, 2, 5, 8] {
        let got = final_image(
            "blur",
            "omp_tiled_opt",
            64,
            16,
            2,
            threads,
            Schedule::NonmonotonicDynamic(1),
        );
        let reference = final_image("blur", "seq", 64, 16, 2, 1, Schedule::Static);
        assert_eq!(got, reference, "blur changed output with {threads} threads");
    }
}

// ---------------------------------------------------------------------
// Wavefront dependency ordering: the taskgraph patterns behind ccomp's
// taskdep variant, pinned as ordering properties on the real pool (the
// virtual-schedule exploration of the same graphs lives in
// tests/ezp_check.rs).

/// Executes `graph` on a real pool and returns each task's completion
/// position.
fn parallel_positions(graph: &TaskGraph, threads: usize) -> Vec<usize> {
    let mut pool = WorkerPool::new(threads);
    let order = Mutex::new(Vec::new());
    graph
        .run(&mut pool, |t, _| order.lock().unwrap().push(t))
        .unwrap();
    let order = order.into_inner().unwrap();
    let mut pos = vec![usize::MAX; graph.len()];
    for (i, &t) in order.iter().enumerate() {
        pos[t] = i;
    }
    assert!(pos.iter().all(|&p| p != usize::MAX), "tasks missing");
    pos
}

#[test]
fn down_right_wavefront_runs_after_all_upper_left_ancestors() {
    let grid = TileGrid::square(48, 8).unwrap(); // 6x6 tiles
    let g = TaskGraph::down_right_wavefront(&grid);
    for round in 0..5 {
        let pos = parallel_positions(&g, 4);
        for t in grid.iter() {
            for a in grid.iter() {
                // transitive closure of {left, up} = the upper-left quadrant
                if (a.tx, a.ty) != (t.tx, t.ty) && a.tx <= t.tx && a.ty <= t.ty {
                    assert!(
                        pos[grid.linear_index(a.tx, a.ty)] < pos[grid.linear_index(t.tx, t.ty)],
                        "round {round}: tile ({}, {}) ran before ancestor ({}, {})",
                        t.tx,
                        t.ty,
                        a.tx,
                        a.ty
                    );
                }
            }
        }
    }
}

#[test]
fn up_left_wavefront_runs_after_all_lower_right_ancestors() {
    let grid = TileGrid::square(48, 8).unwrap();
    let g = TaskGraph::up_left_wavefront(&grid);
    for round in 0..5 {
        let pos = parallel_positions(&g, 4);
        for t in grid.iter() {
            for a in grid.iter() {
                if (a.tx, a.ty) != (t.tx, t.ty) && a.tx >= t.tx && a.ty >= t.ty {
                    assert!(
                        pos[grid.linear_index(a.tx, a.ty)] < pos[grid.linear_index(t.tx, t.ty)],
                        "round {round}: tile ({}, {}) ran before ancestor ({}, {})",
                        t.tx,
                        t.ty,
                        a.tx,
                        a.ty
                    );
                }
            }
        }
    }
}

#[test]
fn both_wavefronts_agree_with_seq_execution_coverage() {
    // run_seq is the documented deterministic reference: both wavefront
    // graphs must execute every tile exactly once in it, in an order the
    // parallel runs are permutations of
    let grid = TileGrid::square(40, 10).unwrap();
    for g in [
        TaskGraph::down_right_wavefront(&grid),
        TaskGraph::up_left_wavefront(&grid),
    ] {
        let mut seen = vec![0u32; g.len()];
        g.run_seq(|t, rank| {
            assert_eq!(rank, 0);
            seen[t] += 1;
        })
        .unwrap();
        assert!(seen.iter().all(|&c| c == 1), "run_seq coverage hole");
    }
}
