//! End-to-end pipeline: kernel → monitor → trace file → EASYVIEW.
//!
//! This is the paper's §II-D workflow as one integration test: run an
//! instrumented kernel, record the trace, write it to disk, read it
//! back, and drive every exploration feature on it.

use easypap::core::kernel::Probe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::sync::Arc;

fn traced_run(kernel: &str, variant: &str, dim: usize, tile: usize, iters: u32) -> Trace {
    let reg = easypap::kernels::registry();
    let cfg = RunConfig::new(kernel)
        .variant(variant)
        .size(dim)
        .tile(tile)
        .iterations(iters)
        .threads(2)
        .schedule(Schedule::Dynamic(1));
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid().unwrap()));
    run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>).unwrap();
    Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report())
}

#[test]
fn mandel_trace_survives_disk_and_feeds_easyview() {
    let trace = traced_run("mandel", "omp_tiled", 64, 16, 3);
    assert_eq!(trace.iteration_count(), 3);
    assert_eq!(trace.tasks.len(), 3 * 16, "16 tiles per iteration");
    trace.validate().unwrap();

    // disk round trip
    let path = std::env::temp_dir().join(format!("ezp_it_pipeline_{}.ezv", std::process::id()));
    easypap::trace::io::save(&trace, &path).unwrap();
    let loaded = easypap::trace::io::load(&path).unwrap();
    assert_eq!(loaded, trace);
    std::fs::remove_file(&path).unwrap();

    // Gantt: every task is reachable through the vertical mouse mode
    let gantt = GanttModel::new(&loaded, 1, 3);
    assert_eq!(gantt.tasks().len(), 48);
    for task in gantt.tasks() {
        let mid = task.start_ns + task.duration_ns() / 2;
        assert!(
            gantt.tasks_at_time(mid).iter().any(|t| t.x == task.x && t.y == task.y),
            "task at ({},{}) not found under the mouse",
            task.x,
            task.y
        );
        assert!(GanttModel::bubble(task).contains("tile"));
    }

    // horizontal mouse mode: coverage maps of both CPUs partition tiles
    let cov0 = CoverageMap::new(&loaded, 0, 1, 1).unwrap();
    let cov1 = CoverageMap::new(&loaded, 1, 1, 1).unwrap();
    assert_eq!(cov0.covered_tiles() + cov1.covered_tiles(), 16);

    // monitor analyses re-derived post mortem
    let report = loaded.to_report().unwrap();
    let stats = report.iteration_stats(2).unwrap();
    assert_eq!(stats.tiles.iter().sum::<usize>(), 16);
    assert!(stats.load(0) > 0.0 || stats.load(1) > 0.0);
    let snap = report.tiling_snapshot(2);
    assert_eq!(snap.computed_tiles(), 16);
    let heat = report.heat_map(2);
    assert!(heat.max_duration() > 0);
}

#[test]
fn blur_comparison_pipeline_aligns_tasks_and_shows_border_cost() {
    // NOTE: wall-clock *ratios across runs* are too noisy to assert in a
    // shared 1-vCPU debug-build test environment; the timing-shape
    // claims of Fig. 10 are asserted in the release-mode benches
    // (`fig10_blur_compare`). Here we check the structural pipeline plus
    // the noise-robust intra-trace signal of Fig. 9b: in the *optimized*
    // trace, border tiles (still running checked code) cost more than
    // the branch-free inner tiles.
    let basic = traced_run("blur", "omp_tiled", 96, 16, 2);
    let opt = traced_run("blur", "omp_tiled_opt", 96, 16, 2);
    let cmp = TraceComparison::new(&basic, &opt).unwrap();
    let speedups = cmp.task_speedups();
    assert_eq!(speedups.len(), 2 * 36, "every task pair must be matched");
    assert!(speedups.iter().all(|s| s.base_ns > 0));
    assert!(cmp.per_iteration().len() == 2);

    let heat = opt.to_report().unwrap().heat_map(2);
    let ratio = heat
        .border_inner_ratio()
        .expect("6x6 grid has inner tiles");
    assert!(
        ratio > 1.0,
        "optimized border tiles should out-cost inner tiles (got x{ratio:.2})"
    );
}

#[test]
fn gpu_profile_feeds_the_same_pipeline() {
    use easypap::gpu::{NdRange, VirtualDevice};
    let device = VirtualDevice::new(3);
    let src: Img2D<Rgba> = Img2D::square(64);
    let range = NdRange::square(64, 16);
    let (_, profile) = device
        .launch(range, &src, |x, y, _| Rgba((x * y) as u32))
        .unwrap();
    let grid = range.grid().unwrap();
    let trace = profile.to_trace(&grid, "custom").unwrap();
    let gantt = GanttModel::new(&trace, 1, 1);
    assert_eq!(gantt.tasks().len(), 16);
    // per-CU coverage maps cover the whole NDRange
    let total: usize = (0..3)
        .map(|cu| CoverageMap::new(&trace, cu, 1, 1).unwrap().covered_tiles())
        .sum();
    assert_eq!(total, 16);
}
