//! End-to-end ezp-check: seeded schedule exploration drives the shadow
//! race detector over tile loops and task graphs.
//!
//! The acceptance contract tested here: a deliberately injected race is
//! *caught* (not sometimes, but under a pinned seed), the catch *replays
//! byte-for-byte* from that seed, correct kernels stay silent under
//! every adversarial strategy, and races surface through the ordinary
//! perf-probe counter like any other runtime event.

#![cfg(feature = "ezp-check")]

use easypap::core::kernel::{NullProbe, RaceKind};
use easypap::core::shadow::{ShadowGrid, ShadowSession};
use easypap::prelude::*;
use easypap::sched::skeleton::{PipeShape, PipeStage};
use easypap::sched::vexec::{
    check_chan_oracle, virtual_chan, virtual_deque_taskgraph, virtual_farm, virtual_for_tiles,
    virtual_pipeline, virtual_region_protocol, virtual_taskgraph, Reachability,
};
use ezp_testkit::schedule::{RandomWalk, RoundRobin, StarveOne, StrategyKind};

const DIM: usize = 64;
const TILE: usize = 16;

/// The seeded injected race: every tile writes its own pixels plus one
/// pixel past its right edge — a classic off-by-one tile overlap. The
/// shadow detector must flag it, on tile-boundary columns only, and the
/// whole run (races *and* schedule trace) must replay from the seed.
#[test]
fn injected_tile_overlap_is_caught_and_replays_from_its_seed() {
    let seed = 0xEA5E_2024;
    let run = |seed: u64| {
        let grid = TileGrid::square(DIM, TILE).unwrap();
        let shadow = ShadowGrid::new(DIM, DIM);
        let session = ShadowSession::for_chunks(&shadow, &NullProbe);
        let mut strategy = RandomWalk::seeded(seed);
        let trace = virtual_for_tiles(
            &grid,
            Schedule::Dynamic(1),
            4,
            &mut strategy,
            |tile, chunk, rank| {
                let w = session.writer(chunk, rank);
                for y in tile.y..tile.y + tile.h {
                    for x in tile.x..tile.x + tile.w {
                        w.write(x, y);
                    }
                }
                // the injected bug: one pixel beyond the tile's right edge
                if tile.x + tile.w < DIM {
                    w.write(tile.x + tile.w, tile.y);
                }
            },
        );
        (session.races(), trace)
    };

    let (races, trace) = run(seed);
    assert!(!races.is_empty(), "injected tile overlap was not caught");
    for r in &races {
        assert_eq!(r.kind, RaceKind::OverlappingWrite);
        assert_eq!(
            r.x % TILE,
            0,
            "race at ({}, {}) is not on a tile boundary column",
            r.x,
            r.y
        );
        assert_ne!(r.prev_writer, r.writer);
    }

    // byte-for-byte replay from the same seed
    let (races2, trace2) = run(seed);
    assert_eq!(races, races2, "race report did not replay from its seed");
    assert_eq!(trace, trace2, "schedule trace did not replay from its seed");
}

/// The correct version of the same loop stays silent under every
/// strategy family and a sweep of seeds — no false positives.
#[test]
fn disjoint_tiles_are_race_free_under_every_strategy() {
    let grid = TileGrid::square(DIM, TILE).unwrap();
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            let shadow = ShadowGrid::new(DIM, DIM);
            let session = ShadowSession::for_chunks(&shadow, &NullProbe);
            let mut strategy = kind.build(seed, 4);
            virtual_for_tiles(
                &grid,
                Schedule::NonmonotonicDynamic(1),
                4,
                &mut *strategy,
                |tile, chunk, rank| {
                    let w = session.writer(chunk, rank);
                    for y in tile.y..tile.y + tile.h {
                        for x in tile.x..tile.x + tile.w {
                            w.write(x, y);
                        }
                    }
                },
            );
            assert!(
                session.races().is_empty(),
                "{kind:?} seed {seed}: false positive {:?}",
                session.races()
            );
        }
    }
}

/// A task graph missing a dependency edge is a lost update: the reader
/// consumes a value whose writer it is not ordered after. Adding the
/// edge makes the identical access pattern legal.
#[test]
fn missing_dependency_edge_is_a_lost_update() {
    let run = |graph: &TaskGraph| {
        let reach = Reachability::of(graph);
        let shadow = ShadowGrid::new(8, 8);
        let session = ShadowSession::new(&shadow, &NullProbe, |a, b| reach.precedes(a, b));
        // RoundRobin + FIFO pick runs task 0 (the writer) first, so the
        // racy read is actually observed
        let mut strategy = RoundRobin::new();
        virtual_taskgraph(graph, 2, &mut strategy, |task, rank| {
            let w = session.writer(task, rank);
            if task == 0 {
                w.write(3, 3);
            } else {
                w.read(3, 3);
            }
        })
        .unwrap();
        session.races()
    };

    // two unordered tasks: the read races
    let buggy = TaskGraph::new(2);
    let races = run(&buggy);
    assert_eq!(races.len(), 1, "missing edge not flagged: {races:?}");
    assert_eq!(races[0].kind, RaceKind::LostUpdate);
    assert_eq!((races[0].prev_writer, races[0].writer), (0, 1));

    // the fixed graph: same accesses, ordered, silent
    let mut fixed = TaskGraph::new(2);
    fixed.add_dep(0, 1);
    assert!(run(&fixed).is_empty(), "dependency edge did not suppress race");
}

/// The ccomp-style wavefront: every task writes its tile and reads the
/// bordering pixels of its left/up neighbours. With the wavefront's
/// dependency edges as the happens-before oracle, this must be silent
/// under every strategy and seed — the taskgraph equivalent of the
/// conformance matrix passing.
#[test]
fn wavefront_neighbour_reads_are_ordered_under_every_strategy() {
    let grid = TileGrid::square(32, 8).unwrap(); // 4x4 tiles
    let g = TaskGraph::down_right_wavefront(&grid);
    let reach = Reachability::of(&g);
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            let shadow = ShadowGrid::new(32, 32);
            let session = ShadowSession::new(&shadow, &NullProbe, |a, b| reach.precedes(a, b));
            let mut strategy = kind.build(seed, 3);
            virtual_taskgraph(&g, 3, &mut *strategy, |task, rank| {
                let w = session.writer(task, rank);
                let t = grid.tile_at(task);
                if t.x > 0 {
                    for y in t.y..t.y + t.h {
                        w.read(t.x - 1, y);
                    }
                }
                if t.y > 0 {
                    for x in t.x..t.x + t.w {
                        w.read(x, t.y - 1);
                    }
                }
                for y in t.y..t.y + t.h {
                    for x in t.x..t.x + t.w {
                        w.write(x, y);
                    }
                }
            })
            .unwrap();
            assert!(
                session.races().is_empty(),
                "{kind:?} seed {seed}: {:?}",
                session.races()
            );
        }
    }
}

/// Shadow races ride the existing observability stack: they land in the
/// perf probe's `shadow_races` counter like steals or idle time do.
#[test]
fn races_land_in_the_perf_probe_counter() {
    let probe = PerfProbe::new(2);
    let shadow = ShadowGrid::new(4, 4);
    let session = ShadowSession::for_chunks(&shadow, &probe);
    session.writer(0, 0).write(1, 1);
    session.writer(1, 1).write(1, 1); // overlap, reported on rank 1
    session.writer(1, 1).write(2, 1); // disjoint, silent
    let snap = probe.snapshot();
    assert_eq!(snap.total(easypap::perf::names::SHADOW_RACES), 1);
    assert_eq!(
        snap.get(easypap::perf::names::SHADOW_RACES)
            .unwrap()
            .per_worker,
        vec![0, 1]
    );
}

/// The deque steal path under every adversarial interleaving family:
/// per-worker deques (owner LIFO, thief FIFO) must hand out every task
/// exactly once and in dependency order, no matter how the strategy
/// interleaves owner pops and thief steals — and each trace must replay
/// byte-for-byte from its seed (per docs/testing.md).
#[test]
fn deque_steal_path_conforms_under_every_strategy() {
    let grid = TileGrid::square(32, 8).unwrap(); // 4x4 wavefront
    let g = TaskGraph::down_right_wavefront(&grid);
    let reach = Reachability::of(&g);
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            for workers in [1usize, 2, 4] {
                let mut strategy = kind.build(seed, workers);
                let mut hits = vec![0u32; g.len()];
                let (order, _steals) =
                    virtual_deque_taskgraph(&g, workers, &mut *strategy, |t, _| hits[t] += 1)
                        .unwrap();
                for (t, &h) in hits.iter().enumerate() {
                    assert_eq!(
                        h, 1,
                        "{kind:?} seed {seed} workers {workers}: task {t} ran {h} times"
                    );
                }
                let mut pos = vec![usize::MAX; g.len()];
                for (i, &(t, _)) in order.iter().enumerate() {
                    pos[t] = i;
                }
                for a in 0..g.len() {
                    for b in 0..g.len() {
                        if reach.precedes(a, b) {
                            assert!(
                                pos[a] < pos[b],
                                "{kind:?} seed {seed} workers {workers}: {a} must precede {b}"
                            );
                        }
                    }
                }
                // Replay contract: the same seed reproduces the trace.
                let mut replay = kind.build(seed, workers);
                let (order2, _) =
                    virtual_deque_taskgraph(&g, workers, &mut *replay, |_, _| {}).unwrap();
                assert_eq!(
                    order, order2,
                    "{kind:?} seed {seed} workers {workers}: trace did not replay"
                );
            }
        }
    }
}

/// The pool's atomic region protocol under every interleaving family:
/// the model in `virtual_region_protocol` asserts no early unblock,
/// exact per-region panic attribution (the S1 regression class), and
/// shutdown reaching parked workers. Here we sweep strategies, seeds
/// and panic plans; the per-region counts the master observes must
/// match the plan under every schedule.
#[test]
fn region_protocol_conforms_under_every_strategy() {
    // (name, plan): which ranks panic in which 1-based region.
    let plans: [(&str, fn(u64, usize) -> bool); 3] = [
        ("clean", |_, _| false),
        ("one-per-odd-region", |seq, rank| seq % 2 == 1 && rank == 0),
        ("burst-then-silent", |seq, rank| seq == 1 && rank != 1),
    ];
    for (name, plan) in plans {
        for kind in StrategyKind::all() {
            for seed in 0..8u64 {
                for workers in [1usize, 3, 4] {
                    // Actors = workers + the master slot.
                    let mut strategy = kind.build(seed, workers + 1);
                    let observed = virtual_region_protocol(4, workers, plan, &mut *strategy);
                    let expected: Vec<usize> = (1..=4u64)
                        .map(|seq| (0..workers).filter(|&w| plan(seq, w)).count())
                        .collect();
                    assert_eq!(
                        observed, expected,
                        "plan {name}, {kind:?} seed {seed} workers {workers}"
                    );
                }
            }
        }
    }
}

/// The streaming pipeline model under every interleaving family: for a
/// shape mixing farm and serial stages, ordered emission must be
/// exactly `0..frames` (frame `n + 1` never leaves the reorder buffer
/// before `n`), unordered emission must be a permutation of it, and
/// every run must replay byte-for-byte from its `(strategy, seed)`.
#[test]
fn virtual_pipeline_conforms_under_every_strategy() {
    let shape = PipeShape::new(vec![
        PipeStage::farm(3),
        PipeStage::serial(),
        PipeStage::farm(2),
    ]);
    let frames = 24;
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            for workers in [1usize, 2, 4] {
                for ordered in [true, false] {
                    let mut strategy = kind.build(seed, workers);
                    let v =
                        virtual_pipeline(&shape, frames, workers, ordered, &mut *strategy)
                            .unwrap();
                    let mut sorted = v.emitted.clone();
                    sorted.sort_unstable();
                    assert_eq!(
                        sorted,
                        (0..frames).collect::<Vec<_>>(),
                        "{kind:?} seed {seed} workers {workers}: frames lost or duplicated"
                    );
                    if ordered {
                        assert_eq!(
                            v.emitted, sorted,
                            "{kind:?} seed {seed} workers {workers}: \
                             ordered emission left frame order"
                        );
                    }
                    // Replay contract.
                    let mut replay = kind.build(seed, workers);
                    let v2 = virtual_pipeline(&shape, frames, workers, ordered, &mut *replay)
                        .unwrap();
                    assert_eq!(
                        v, v2,
                        "{kind:?} seed {seed} workers {workers}: run did not replay"
                    );
                }
            }
        }
    }
}

/// Bounded stages must be deadlock-free even when the strategy starves
/// one worker: capacity edges throttle admission but never wedge the
/// graph, because every capacity edge points backward in frame-major
/// order. A deadlock would surface as the model's cycle error or a
/// short emission list.
#[test]
fn virtual_pipeline_bounded_stages_survive_starvation() {
    let shape = PipeShape::new(vec![
        PipeStage::farm(2).capacity(1),
        PipeStage::serial().capacity(1),
        PipeStage::serial().capacity(1),
    ]);
    let frames = 16;
    for seed in 0..16u64 {
        for workers in [2usize, 3, 4] {
            let mut strategy = StarveOne::seeded(seed, workers);
            let v = virtual_pipeline(&shape, frames, workers, true, &mut strategy)
                .expect("bounded pipeline deadlocked (cycle reported)");
            assert_eq!(
                v.emitted,
                (0..frames).collect::<Vec<_>>(),
                "seed {seed} workers {workers}: starved run lost frames"
            );
        }
    }
}

/// The streamed payload slots are race-free by construction: every
/// stage of frame `f` writes the same cell, and the pipeline's data
/// edges order those writes. With the compiled graph's reachability as
/// the happens-before oracle, the shadow detector must stay silent
/// under every strategy — and flag a lost update the moment a stage
/// reads a *neighbouring* frame's slot it is not ordered after.
#[test]
fn virtual_pipeline_payload_slots_are_race_free() {
    let shape = PipeShape::new(vec![PipeStage::farm(3), PipeStage::serial()]);
    let frames = 12;
    let graph = shape.graph(frames);
    let reach = Reachability::of(&graph);
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            let shadow = ShadowGrid::new(frames, 1);
            let session = ShadowSession::new(&shadow, &NullProbe, |a, b| reach.precedes(a, b));
            let mut strategy = kind.build(seed, 3);
            virtual_pipeline(&shape, frames, 3, true, &mut *strategy).unwrap();
            // Re-run the schedule substrate with shadow instrumentation:
            // every node touches its own frame's payload slot.
            let mut strategy = kind.build(seed, 3);
            virtual_deque_taskgraph(&graph, 3, &mut *strategy, |t, rank| {
                let w = session.writer(t, rank);
                let f = shape.frame_of(t);
                if shape.stage_of(t) > 0 {
                    w.read(f, 0); // take the payload the previous stage left
                }
                w.write(f, 0);
            })
            .unwrap();
            assert!(
                session.races().is_empty(),
                "{kind:?} seed {seed}: payload slots raced: {:?}",
                session.races()
            );
        }
    }

    // The injected bug: the serial stage also reads the *next* frame's
    // slot, which nothing orders it after — a lost update, caught.
    let shadow = ShadowGrid::new(frames, 1);
    let session = ShadowSession::new(&shadow, &NullProbe, |a, b| reach.precedes(a, b));
    let mut strategy = RoundRobin::new();
    virtual_deque_taskgraph(&graph, 3, &mut strategy, |t, rank| {
        let w = session.writer(t, rank);
        let f = shape.frame_of(t);
        w.write(f, 0);
        if shape.stage_of(t) == 1 && f + 1 < frames {
            w.read(f + 1, 0);
        }
    })
    .unwrap();
    assert!(
        !session.races().is_empty(),
        "cross-frame read without an edge was not flagged"
    );
}

/// The farm model under every interleaving family: a fresh stealing
/// dispenser generation per run, exact frame cover, ordered emission in
/// frame order, and byte-for-byte replay.
#[test]
fn virtual_farm_conforms_under_every_strategy() {
    let frames = 29;
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            for width in [1usize, 2, 4] {
                for ordered in [true, false] {
                    let mut strategy = kind.build(seed, width);
                    let v = virtual_farm(frames, width, ordered, &mut *strategy);
                    let mut sorted = v.emitted.clone();
                    sorted.sort_unstable();
                    assert_eq!(
                        sorted,
                        (0..frames).collect::<Vec<_>>(),
                        "{kind:?} seed {seed} width {width}: frames lost or duplicated"
                    );
                    if ordered {
                        assert_eq!(
                            v.emitted, sorted,
                            "{kind:?} seed {seed} width {width}: ordered emission broke"
                        );
                    }
                    let mut replay = kind.build(seed, width);
                    assert_eq!(
                        virtual_farm(frames, width, ordered, &mut *replay),
                        v,
                        "{kind:?} seed {seed} width {width}: run did not replay"
                    );
                }
            }
        }
    }
}

/// The channel model under every interleaving family: for SPSC and
/// MPMC shapes covering {1, 2, 4, 8} workers per side, every strategy
/// and seed must satisfy the happens-before oracle — no lost,
/// duplicated, torn or per-producer-reordered items — keep occupancy
/// within the ring capacity, and replay byte-for-byte from its
/// `(strategy, seed)`.
#[test]
fn virtual_chan_conforms_under_every_strategy() {
    // (producers, consumers): SPSC, balanced fan at 2/4/8 workers a
    // side, and the skewed fan-in / fan-out shapes the framework runs
    // (stream emission is many-to-one, the monitor is one-to-one).
    let shapes = [(1usize, 1usize), (2, 2), (4, 4), (8, 8), (4, 1), (1, 4)];
    let items = 12u64;
    for kind in StrategyKind::all() {
        for seed in 0..8u64 {
            for (producers, consumers) in shapes {
                for cap in [1usize, 2, 8] {
                    let actors = producers + consumers;
                    let mut strategy = kind.build(seed, actors);
                    let v = virtual_chan(producers, consumers, cap, items, false, &mut *strategy);
                    let tag = format!(
                        "{kind:?} seed {seed} {producers}p/{consumers}c cap {cap}"
                    );
                    check_chan_oracle(&v, producers, items)
                        .unwrap_or_else(|e| panic!("{tag}: {e}"));
                    assert!(
                        v.max_occupancy <= cap,
                        "{tag}: occupancy {} exceeded lane capacity",
                        v.max_occupancy
                    );
                    // Replay contract.
                    let mut replay = kind.build(seed, actors);
                    let v2 = virtual_chan(producers, consumers, cap, items, false, &mut *replay);
                    assert_eq!(v, v2, "{tag}: run did not replay");
                }
            }
        }
    }
}

/// The injected-bug half of the channel battery: `broken = true` swaps
/// the producer's slot write and tail publish — the exact bug the real
/// ring's Release store on `tail` rules out. The oracle must catch it
/// (a consumer scheduled into the two-step window reads an unwritten
/// slot), the catch must replay from its seed, and the *unbroken* model
/// must stay silent under the very same schedules — so a firing oracle
/// means a broken ring, never a broken oracle.
#[test]
fn injected_broken_ordering_is_caught() {
    let mut caught = 0usize;
    for seed in 0..32u64 {
        let mut strategy = RandomWalk::seeded(seed);
        let v = virtual_chan(2, 2, 2, 16, true, &mut strategy);
        if let Err(_e) = check_chan_oracle(&v, 2, 16) {
            // Depending on where the consumer lands in the torn-publish
            // window, the corruption surfaces as an unwritten-slot read
            // or (when a late write resurrects a drained slot) as a
            // duplicate/reorder — the oracle must fire either way.
            caught += 1;
            // the catch replays byte-for-byte
            let mut replay = RandomWalk::seeded(seed);
            let v2 = virtual_chan(2, 2, 2, 16, true, &mut replay);
            assert_eq!(v, v2, "seed {seed}: broken run did not replay");
        }
        // control: the correct ordering is silent under the same seed
        let mut control = RandomWalk::seeded(seed);
        let good = virtual_chan(2, 2, 2, 16, false, &mut control);
        check_chan_oracle(&good, 2, 16)
            .unwrap_or_else(|e| panic!("seed {seed}: false positive: {e}"));
    }
    assert!(
        caught > 0,
        "no random walk out of 32 seeds drove a consumer into the torn-publish window"
    );
}

/// The shutdown-during-park schedule on real threads: let workers burn
/// through their spin budget and park between regions, then drop the
/// pool while they sleep. Drop must wake and join every worker — a lost
/// shutdown notify hangs this test. Repeated rounds vary the timing.
#[test]
fn shutdown_reaches_parked_workers() {
    for round in 0..10 {
        let mut pool = WorkerPool::new(3);
        pool.run(|_| {});
        // Long enough on any machine to exhaust the spin budget, so the
        // workers are parked (or parking) when the pool drops.
        std::thread::sleep(std::time::Duration::from_millis(2 + (round % 3)));
        if round % 2 == 0 {
            // Half the rounds publish a second region first, proving a
            // parked worker wakes for work as well as for shutdown.
            pool.run(|_| {});
            assert_eq!(pool.regions_run(), 2);
        }
        drop(pool); // hangs here if shutdown misses a parked worker
    }
}
