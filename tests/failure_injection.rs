//! Failure injection: the framework must fail loudly and recover
//! cleanly, never hang or corrupt state — the property that makes it
//! usable as a teaching tool where student kernels crash all the time.

use easypap::core::error::Result as EzpResult;
use easypap::core::kernel::NullProbe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// A kernel whose tiles panic on demand.
struct Crashy {
    /// Panic when computing the tile containing this pixel.
    poison: Option<(usize, usize)>,
}

impl Kernel for Crashy {
    fn name(&self) -> &'static str {
        "crashy"
    }
    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }
    fn init(&mut self, _ctx: &mut KernelCtx) -> EzpResult<()> {
        Ok(())
    }
    fn compute(&mut self, ctx: &mut KernelCtx, _v: &str, nb_iter: u32) -> EzpResult<Option<u32>> {
        let grid = ctx.grid;
        let poison = self.poison;
        let mut pool = easypap::sched::WorkerPool::new(ctx.threads());
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            easypap::sched::parallel_for_tiles(
                &mut pool,
                &grid,
                ctx.cfg.schedule,
                &*ctx.probe,
                |tile, _| {
                    if let Some((px, py)) = poison {
                        if tile.contains(px, py) {
                            panic!("student bug in tile ({}, {})", tile.x, tile.y);
                        }
                    }
                },
            );
            ctx.probe.iteration_end(it);
        }
        Ok(None)
    }
}

fn crashy_registry() -> Registry {
    let mut r = Registry::new();
    r.register("crashy", || Box::new(Crashy { poison: Some((0, 0)) }));
    r.register("healthy", || Box::new(Crashy { poison: None }));
    r
}

#[test]
fn panicking_tile_function_is_reported_not_hung() {
    let reg = crashy_registry();
    let cfg = RunConfig::new("crashy")
        .variant("omp_tiled")
        .size(64)
        .tile(16)
        .threads(3)
        .iterations(2);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_kernel(&reg, cfg, Arc::new(NullProbe))
    }));
    assert!(result.is_err(), "the worker panic must propagate");
    // and the process is still healthy: a fresh run works
    let ok = run_kernel(
        &reg,
        RunConfig::new("healthy").variant("omp_tiled").size(64).tile(16).threads(3),
        Arc::new(NullProbe),
    );
    assert!(ok.is_ok());
}

#[test]
fn corrupt_trace_files_never_panic() {
    // every byte-level mutilation of a real trace must yield Err
    let trace = {
        let reg = easypap::kernels::registry();
        let cfg = RunConfig::new("invert").variant("omp").size(32).tile(8).threads(2);
        let monitor = Arc::new(Monitor::new(2, cfg.grid().unwrap()));
        run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn easypap::core::kernel::Probe>)
            .unwrap();
        Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report())
    };
    let bytes = easypap::trace::io::to_bytes(&trace).unwrap();
    // truncations
    for cut in (0..bytes.len()).step_by(7) {
        let r = std::panic::catch_unwind(|| easypap::trace::io::from_bytes(&bytes[..cut]));
        assert!(matches!(r, Ok(Err(_))), "truncation at {cut} did not error cleanly");
    }
    // single-byte corruptions (sampled)
    for pos in (0..bytes.len()).step_by(11) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xff;
        let r = std::panic::catch_unwind(move || {
            let _ = easypap::trace::io::from_bytes(&bad);
        });
        assert!(r.is_ok(), "corruption at {pos} panicked");
    }
}

#[test]
fn invalid_configurations_error_before_any_work() {
    let reg = easypap::kernels::registry();
    for cfg in [
        RunConfig::new("mandel").size(0),
        RunConfig::new("mandel").tile(0),
        RunConfig::new("mandel").size(8).tile(64),
        RunConfig::new("mandel").threads(0),
        RunConfig::new("nonexistent-kernel"),
        RunConfig::new("mandel").variant("nonexistent-variant"),
    ] {
        assert!(
            run_kernel(&reg, cfg.clone(), Arc::new(NullProbe)).is_err(),
            "config {cfg:?} should have been rejected"
        );
    }
}

#[test]
fn zero_iterations_complete_instantly_everywhere() {
    let reg = easypap::kernels::registry();
    for kernel in ["mandel", "blur", "life", "sandpile", "heat"] {
        let cfg = RunConfig::new(kernel).size(32).tile(8).threads(2).iterations(0);
        let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
        assert_eq!(outcome.completed_iterations, 0, "{kernel}");
    }
}

#[test]
fn mpi_rank_crash_surfaces_as_error() {
    let result = easypap::mpi::run(2, |comm| -> easypap::core::Result<()> {
        if comm.rank() == 1 {
            panic!("rank 1 dies");
        }
        // rank 0 may or may not get to communicate; either way the world
        // must shut down with an error, not a hang
        let _ = comm.send(1, 0, &1u32);
        Ok(())
    });
    assert!(result.is_err());
}

#[test]
fn cyclic_task_graph_from_user_code_is_reported() {
    let mut g = TaskGraph::new(4);
    g.add_dep(0, 1);
    g.add_dep(1, 2);
    g.add_dep(2, 1); // cycle 1 <-> 2
    let mut pool = WorkerPool::new(2);
    let err = g.run(&mut pool, |_, _| {}).unwrap_err();
    assert!(err.to_string().contains("cycle"));
    // pool remains usable
    let ok = TaskGraph::new(3).run(&mut pool, |_, _| {});
    assert!(ok.is_ok());
}
