//! Integration of the virtual-time simulator with the rest of the
//! framework, and the sweep→CSV→plot pipeline of §II-C.

use easypap::kernels::mandel;
use easypap::plot::Dataset;
use easypap::prelude::*;
use easypap::view::patterns;

/// The simulator and the real scheduler share the dispensers, so the
/// *static* policy must produce the identical tile→worker assignment in
/// both worlds (dynamic policies are timing-dependent by design).
#[test]
fn sim_static_assignment_matches_real_scheduler() {
    use easypap::core::kernel::Probe;
    use easypap::monitor::Monitor;
    use easypap::sched::{parallel_for_tiles, WorkerPool};
    use std::sync::Arc;

    let grid = TileGrid::square(64, 16).unwrap();
    let threads = 4;

    // real execution under the monitor
    let monitor = Arc::new(Monitor::new(threads, grid));
    monitor.iteration_start(1);
    let mut pool = WorkerPool::new(threads);
    parallel_for_tiles(&mut pool, &grid, Schedule::Static, &*monitor, |_, _| {});
    monitor.iteration_end(1);
    let real = monitor.report().tiling_snapshot(1);

    // simulated execution over a uniform cost map
    let costs = CostMap::uniform(grid, 10);
    let sim = simulate(&costs, SimConfig::new(threads, Schedule::Static));
    let sim_owners = sim.owners(1, grid.len());

    for (i, owner) in sim_owners.iter().enumerate() {
        let t = grid.tile_at(i);
        assert_eq!(
            real.owner(t.tx, t.ty),
            *owner,
            "static assignment differs at tile {i}"
        );
    }
}

/// Fig. 8 reproduced end to end: a mandel cost map under `dynamic,1`
/// with small tiles produces same-color stripes in the cheap region and
/// a near-cyclic distribution in the uniformly-expensive region.
#[test]
fn fig8_patterns_emerge_from_simulated_dynamic_schedule() {
    let dim = 256;
    let view = mandel::Viewport::default();
    let grid = TileGrid::square(dim, 8).unwrap(); // small tiles, 32x32 grid
    // a high iteration cap makes interior tiles vastly heavier than
    // exterior ones — the imbalance regime where Fig. 8's stripes appear
    let costs = CostMap::from_fn(grid, |t| mandel::tile_cost(&view, t, dim, 1024).max(1));
    let threads = 6;
    let sim = simulate(&costs, SimConfig::new(threads, Schedule::Dynamic(1)).overhead(0));
    let report = sim.to_report(&costs, "mandel", "omp_tiled");
    let snap = report.tiling_snapshot(1);

    // pattern 1: some rows of the cheap region are handled by <= 2
    // threads, and long same-thread runs cross the grid
    let stripes = patterns::striped_rows(&snap, 2);
    assert!(stripes > 0, "expected same-color stripes, found none");
    let owners_all = snap.owners().to_vec();
    assert!(
        patterns::max_run_length(&owners_all) >= grid.tiles_x() / 2,
        "expected a same-thread run at least half a row long"
    );

    // pattern 2: inside the most expensive (uniform) region, the
    // distribution is near-cyclic with period = thread count
    let heavy = (costs.max() as f64 * 0.9) as u64;
    let heavy_rows: Vec<usize> = (0..grid.tiles_y())
        .filter(|&ty| (0..grid.tiles_x()).all(|tx| costs.cost_at(tx, ty) >= heavy))
        .collect();
    if heavy_rows.len() >= 2 {
        let owners: Vec<Option<usize>> = heavy_rows
            .iter()
            .flat_map(|&ty| (0..grid.tiles_x()).map(move |tx| (tx, ty)))
            .map(|(tx, ty)| snap.owner(tx, ty))
            .collect();
        let score = patterns::cyclic_score(&owners, threads);
        assert!(
            score > 0.5,
            "uniform-cost region should be near-cyclic, score {score:.2}"
        );
    }
}

/// §II-C end to end: sweep → CSV → dataset with auto legend → speedup.
#[test]
fn sweep_csv_plot_pipeline() {
    use easypap::exp::Sweep;
    let csv = std::env::temp_dir().join(format!("ezp_it_sweep_{}.csv", std::process::id()));
    let _ = std::fs::remove_file(&csv);
    Sweep::new()
        .fixed("--kernel", "invert")
        .fixed("--variant", "omp")
        .fixed("--size", 64)
        .fixed("--tile-size", 16)
        .set("--threads", [1, 2])
        .set("--schedule", ["static", "dynamic,2"])
        .runs(2)
        .execute(&easypap::kernels::registry(), &csv)
        .unwrap();

    let table = Sweep::load_results(&csv).unwrap();
    assert_eq!(table.len(), 2 * 2 * 2);
    let data = Dataset::from_table(&table, "threads", "time_us", &["run"]).unwrap();
    // constants factored: kernel, variant, dim, tile...
    assert!(data.constants.iter().any(|(k, v)| k == "kernel" && v == "invert"));
    // legend: exactly the two schedules
    assert_eq!(data.series.len(), 2);
    assert!(data.series.iter().all(|s| s.label.starts_with("schedule=")));
    // speedup transform keeps the point count
    let speedup = data.into_speedup(1000.0);
    assert!(speedup.series.iter().all(|s| s.points.len() == 2));
    let ascii = easypap::plot::render_ascii(&speedup, 40, 10);
    assert!(ascii.contains("legend:"));
    std::fs::remove_file(&csv).unwrap();
}

/// The simulated makespan honours the classic scheduling bounds for the
/// real mandel workload at every paper thread count.
#[test]
fn fig6_simulation_respects_scheduling_theory() {
    let dim = 128;
    let view = mandel::Viewport::default();
    let grid = TileGrid::square(dim, 16).unwrap();
    let costs = CostMap::from_fn(grid, |t| mandel::tile_cost(&view, t, dim, 128));
    let total = costs.total();
    let cmax = costs.max();
    for threads in [2, 4, 6, 8, 10, 12] {
        for schedule in Schedule::paper_policies() {
            let sim = simulate(&costs, SimConfig::new(threads, schedule).overhead(0));
            assert!(sim.makespan_ns >= total.div_ceil(threads as u64), "{schedule:?}");
            assert!(sim.makespan_ns >= cmax, "{schedule:?}");
            assert!(sim.makespan_ns <= total, "{schedule:?}");
            // dynamic with unit chunks is within 2x of the greedy bound
            if schedule == Schedule::Dynamic(2) {
                let greedy_bound = total / threads as u64 + cmax;
                assert!(
                    sim.makespan_ns <= greedy_bound,
                    "dynamic exceeded the Graham bound at P={threads}"
                );
            }
        }
    }
}
