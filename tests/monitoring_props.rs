//! Property tests spanning kernels × scheduler × monitor: whatever the
//! configuration, the monitoring data obeys the framework invariants.

use easypap::core::kernel::Probe;
use easypap::core::perf::run_kernel;
use easypap::prelude::*;
use ezp_testkit::ezp_proptest;
use ezp_testkit::prop::{any_u64, select, Strategy, StrategyExt};
use std::sync::Arc;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (0usize..5, 1usize..5).prop_map(|(which, k)| match which {
        0 => Schedule::Static,
        1 => Schedule::StaticChunk(k),
        2 => Schedule::Dynamic(k),
        3 => Schedule::Guided(k),
        _ => Schedule::NonmonotonicDynamic(k),
    })
}

ezp_proptest! {
    #![cases(12)]

    /// For any geometry/schedule/threads, a monitored mandel run records
    /// exactly one task per tile per iteration, with sane timestamps and
    /// worker ranks, and the tiling snapshot is complete.
    fn monitored_runs_are_complete_and_sane(
        dim_tiles in 2usize..6,
        tile in select(vec![8usize, 12, 16]),
        threads in 1usize..5,
        iters in 1u32..4,
        schedule in schedule_strategy(),
    ) {
        let dim = dim_tiles * tile;
        let reg = easypap::kernels::registry();
        let cfg = RunConfig::new("mandel")
            .variant("omp_tiled")
            .size(dim)
            .tile(tile)
            .iterations(iters)
            .threads(threads)
            .schedule(schedule);
        let grid = cfg.grid().unwrap();
        let monitor = Arc::new(Monitor::new(threads, grid));
        run_kernel(&reg, cfg, monitor.clone() as Arc<dyn Probe>).unwrap();
        let report = monitor.report();

        assert_eq!(report.iterations.len(), iters as usize);
        assert_eq!(report.records.len(), grid.len() * iters as usize);
        for r in &report.records {
            assert!(r.worker < threads);
            assert!(r.end_ns >= r.start_ns);
            assert!((1..=iters).contains(&r.iteration));
        }
        for it in 1..=iters {
            let snap = report.tiling_snapshot(it);
            assert_eq!(snap.computed_tiles(), grid.len());
            let stats = report.iteration_stats(it).unwrap();
            assert_eq!(stats.tiles.iter().sum::<usize>(), grid.len());
            // per-worker busy time never exceeds the iteration span by
            // more than scheduling jitter (tasks are within the span)
            for w in 0..threads {
                assert!(stats.load(w) <= 1.0);
            }
        }
        // trace conversion + validation always succeeds
        let trace = Trace::from_report(
            TraceMeta {
                kernel: "mandel".into(),
                variant: "omp_tiled".into(),
                dim,
                tile_size: tile,
                threads,
                schedule: schedule.as_omp_str(),
                label: "prop".into(),
            },
            &report,
        );
        assert!(trace.validate().is_ok());
        // binary round trip
        let bytes = easypap::trace::io::to_bytes(&trace).unwrap();
        assert_eq!(easypap::trace::io::from_bytes(&bytes).unwrap(), trace);
    }

    /// Life variants agree with seq on random boards under any schedule.
    fn life_variants_agree_under_any_schedule(
        seed in any_u64(),
        schedule in schedule_strategy(),
        threads in 1usize..4,
    ) {
        let reg = easypap::kernels::registry();
        let run = |variant: &str, schedule: Schedule, threads: usize| {
            let mut cfg = RunConfig::new("life")
                .variant(variant)
                .size(48)
                .tile(16)
                .iterations(4)
                .threads(threads)
                .schedule(schedule);
            cfg.seed = seed;
            cfg.kernel_arg = Some("random:0.3".into());
            if variant == "mpi_omp" {
                cfg.mpi_ranks = 2;
            }
            let (_, ctx) = run_kernel(&reg, cfg, Arc::new(easypap::core::kernel::NullProbe)).unwrap();
            ctx.images.cur().as_slice().to_vec()
        };
        let reference = run("seq", Schedule::Static, 1);
        assert_eq!(run("omp_tiled", schedule, threads), reference.clone());
        assert_eq!(run("lazy", schedule, threads), reference.clone());
        assert_eq!(run("mpi_omp", schedule, threads), reference);
    }

    /// Simulated executions of arbitrary cost maps convert into valid,
    /// analyzable traces whatever the policy.
    fn simulated_traces_are_always_valid(
        seed in any_u64(),
        threads in 1usize..8,
        iters in 1u32..4,
        schedule in schedule_strategy(),
    ) {
        let grid = TileGrid::square(64, 16).unwrap();
        let mut state = seed;
        let costs = CostMap::from_fn(grid, |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            1 + (state >> 33) % 1000
        });
        let sim = simulate_iterations(&costs, SimConfig::new(threads, schedule), iters);
        let trace = sim.to_trace(&costs, "synthetic", "sim");
        assert!(trace.validate().is_ok());
        assert_eq!(trace.tasks.len(), grid.len() * iters as usize);
        let report = trace.to_report().unwrap();
        for it in 1..=iters {
            assert_eq!(report.tiling_snapshot(it).computed_tiles(), grid.len());
        }
        // speedup is bounded by thread count
        assert!(sim.speedup() <= threads as f64 + 1e-9);
    }
}
