//! Adversarial real-thread battery for `ezp-chan` (satellite of the
//! channel tentpole): shutdown races against parked endpoints, the
//! full-ring producer park/wake path, and index-wraparound (ABA)
//! pinning at capacity 1 and near-`u32::MAX` cursor values.

use ezp_chan::{mpmc, spsc, spsc_from_index, RecvError};
use ezp_core::WaitPolicy;

/// 2 producers / 2 consumers hammering a small parked channel, with the
/// producers shutting down while consumers may be parked on "empty":
/// every item must be delivered exactly once and both consumers must
/// observe Closed (no lost wakeup, no hang).
#[test]
fn hammer_2p2c_with_shutdown_during_park() {
    const PER_PRODUCER: usize = 2_000;
    for round in 0..4 {
        let (txs, rx) = mpmc::<(usize, usize)>(2, 4, WaitPolicy::Park);
        let rx2 = rx.clone();
        let consume = |rx: ezp_chan::MpmcReceiver<(usize, usize)>| {
            move || {
                let mut got = Vec::new();
                while let Ok(item) = rx.recv() {
                    got.push(item);
                }
                got
            }
        };
        let (a, b) = std::thread::scope(|s| {
            let c1 = s.spawn(consume(rx));
            let c2 = s.spawn(consume(rx2));
            for (p, tx) in txs.into_iter().enumerate() {
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send((p, i)).unwrap();
                    }
                    // tx dropped here: the shutdown edge races the
                    // consumers' park on "empty"
                });
            }
            (c1.join().unwrap(), c2.join().unwrap())
        });
        let mut next = [0usize; 2];
        let mut merged: Vec<&(usize, usize)> = a.iter().chain(b.iter()).collect();
        assert_eq!(
            merged.len(),
            2 * PER_PRODUCER,
            "round {round}: every item delivered exactly once"
        );
        // per-producer FIFO holds within each consumer's stream
        for stream in [&a, &b] {
            let mut last = [None::<usize>; 2];
            for &(p, i) in stream.iter() {
                if let Some(prev) = last[p] {
                    assert!(prev < i, "round {round}: per-producer order in one stream");
                }
                last[p] = Some(i);
            }
        }
        merged.sort_unstable();
        for &&(p, i) in &merged {
            assert_eq!(i, next[p], "round {round}: no loss or duplication");
            next[p] += 1;
        }
    }
}

/// Producers parked on a full ring must be woken by the consumer's
/// head-advance (the `wake_not_full` edge). A tiny ring and a slow
/// consumer force the park path on nearly every send.
#[test]
fn full_ring_producer_parks_and_wakes() {
    const ITEMS: usize = 5_000;
    let (mut tx, mut rx) = spsc::<usize>(1, WaitPolicy::Park);
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..ITEMS {
                tx.send(i).unwrap();
            }
        });
        for i in 0..ITEMS {
            if i % 64 == 0 {
                // let the producer hit the full ring and actually park
                std::thread::yield_now();
            }
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.recv(), Err(RecvError));
    });
}

/// Receivers parked on an empty ring must be woken when the *sender*
/// drops (shutdown during park) — the SPSC variant of the hammer above.
#[test]
fn spsc_receiver_parked_on_empty_wakes_on_sender_drop() {
    for _ in 0..50 {
        let (tx, mut rx) = spsc::<usize>(4, WaitPolicy::Park);
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv());
            // drop the sender while the receiver is spinning or parked
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        });
    }
}

/// Senders parked on a full channel must be woken when the *receiver*
/// drops: send returns the undeliverable item instead of hanging.
#[test]
fn sender_parked_on_full_wakes_on_receiver_drop() {
    for _ in 0..50 {
        let (mut tx, rx) = spsc::<usize>(1, WaitPolicy::Park);
        tx.send(0).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || tx.send(1));
            drop(rx);
            let err = h.join().unwrap().unwrap_err();
            assert_eq!(err.0, 1, "undeliverable item handed back");
        });
    }
}

/// Capacity-1 wraparound: the cursor parity/index mapping must hold
/// across thousands of wraps of a single-slot ring, under every wait
/// policy.
#[test]
fn wraparound_at_capacity_one() {
    for policy in WaitPolicy::all() {
        let (mut tx, mut rx) = spsc::<usize>(1, policy);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10_000 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..10_000 {
                assert_eq!(rx.recv().unwrap(), i, "{policy}: item {i}");
            }
        });
    }
}

/// Index wraparound near `u32::MAX`: on 32-bit-cursor designs this is
/// where ABA strikes. Our cursors are `usize` and the slot count a
/// power of two, so the `cursor & mask` mapping must stay consistent
/// straight through the boundary; the test-hook constructor starts the
/// cursors just below it.
#[test]
fn wraparound_near_u32_max_indices() {
    for cap in [1usize, 3, 8] {
        let start = (u32::MAX as usize) - 1;
        let (mut tx, mut rx) = spsc_from_index::<usize>(cap, WaitPolicy::Yield, start);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..4_096 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..4_096 {
                assert_eq!(rx.recv().unwrap(), i, "cap {cap}: item {i} across wrap");
            }
        });
    }
}

/// The same boundary for the usize cursor itself: start so close to
/// `usize::MAX` that the monotone counters overflow mid-stream;
/// `wrapping_sub` occupancy math must not glitch.
#[test]
fn wraparound_across_usize_overflow() {
    let start = usize::MAX - 7;
    let (mut tx, mut rx) = spsc_from_index::<usize>(4, WaitPolicy::Spin, start);
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..1_024 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1_024 {
            assert_eq!(rx.recv().unwrap(), i, "item {i} across usize overflow");
        }
    });
}

/// Stall accounting under Park: a forced full-ring episode and a forced
/// empty-ring episode both land in the stats.
#[test]
fn park_stalls_are_counted() {
    let (mut tx, mut rx) = spsc::<usize>(1, WaitPolicy::Park);
    std::thread::scope(|s| {
        s.spawn(move || {
            tx.send(0).unwrap();
            tx.send(1).unwrap(); // blocks until the consumer pops 0
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        let st = rx.stats();
        assert_eq!(st.sends, 2);
        assert_eq!(st.recvs, 2);
        assert!(st.full_stalls >= 1, "producer stalled on the full ring");
    });
}
