//! Property tests for `ezp-chan` (satellite of the channel tentpole):
//! FIFO and capacity invariants under arbitrary generated op
//! interleavings, plus exactly-once item release on mid-stream drop.
//! Seed-replayable: set `EZP_TEST_SEED=<u64>` to reproduce a failure.

use ezp_chan::{mpmc, spsc, ChanStats, TryRecvError, TrySendError};
use ezp_core::WaitPolicy;
use ezp_testkit::ezp_proptest;
use ezp_testkit::prop::{any_u64, vec_of};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A drop-counting payload for the exactly-once release property.
struct Tracked(Arc<AtomicUsize>, usize);
impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

ezp_proptest! {
    #![cases(32)]

    /// SPSC delivers in FIFO order under an arbitrary interleaving of
    /// push and pop attempts, checked against a model deque.
    fn prop_spsc_fifo_under_arbitrary_interleavings(
        cap in 1usize..9,
        ops in vec_of(0u8..2, 1..200),
        seed in any_u64(),
    ) {
        let (mut tx, mut rx) = spsc::<usize>(cap, WaitPolicy::Spin);
        let mut model: VecDeque<usize> = VecDeque::new();
        let mut next_item = seed as usize & 0xFFFF;
        for op in ops {
            if op == 0 {
                match tx.try_send(next_item) {
                    Ok(()) => {
                        model.push_back(next_item);
                        next_item += 1;
                    }
                    Err(TrySendError::Full(_)) => {
                        assert_eq!(model.len(), cap, "Full only at capacity");
                    }
                    Err(TrySendError::Closed(_)) => unreachable!(),
                }
            } else {
                match rx.try_recv() {
                    Ok(v) => assert_eq!(Some(v), model.pop_front(), "FIFO order"),
                    Err(TryRecvError::Empty) => assert!(model.is_empty()),
                    Err(TryRecvError::Closed) => unreachable!(),
                }
            }
        }
        // drain what is left; order must still match the model
        while let Ok(v) = rx.try_recv() {
            assert_eq!(Some(v), model.pop_front());
        }
        assert!(model.is_empty());
    }

    /// MPMC preserves per-producer order under arbitrary interleavings
    /// of sends (rotating producers) and receives.
    fn prop_mpmc_per_producer_order_preserved(
        producers in 1usize..4,
        ops in vec_of(0u8..3, 1..200),
        seed in any_u64(),
    ) {
        let (txs, rx) = mpmc::<(usize, usize)>(producers, 2, WaitPolicy::Spin);
        let mut sent = vec![0usize; producers];
        let mut seen = vec![0usize; producers];
        let mut lane = seed as usize;
        for op in ops {
            if op < 2 {
                lane = (lane + 1) % producers;
                if txs[lane].try_send((lane, sent[lane])).is_ok() {
                    sent[lane] += 1;
                }
            } else if let Ok((p, seq)) = rx.try_recv() {
                assert_eq!(seq, seen[p], "per-producer FIFO for producer {p}");
                seen[p] += 1;
            }
        }
        drop(txs);
        while let Ok((p, seq)) = rx.try_recv() {
            assert_eq!(seq, seen[p], "per-producer FIFO during drain");
            seen[p] += 1;
        }
        assert_eq!(seen, sent, "every sent item received exactly once");
    }

    /// The number of in-flight items never exceeds the configured
    /// capacity, and `try_send` reports `Full` exactly at the bound.
    fn prop_capacity_never_exceeded(
        cap in 1usize..17,
        ops in vec_of(0u8..3, 1..300),
    ) {
        let (mut tx, mut rx) = spsc::<u32>(cap, WaitPolicy::Spin);
        let mut in_flight = 0usize;
        for op in ops {
            if op < 2 {
                match tx.try_send(0) {
                    Ok(()) => in_flight += 1,
                    Err(TrySendError::Full(_)) => {
                        assert_eq!(in_flight, cap, "Full implies at capacity");
                    }
                    Err(TrySendError::Closed(_)) => unreachable!(),
                }
            } else if rx.try_recv().is_ok() {
                in_flight -= 1;
            }
            assert!(in_flight <= cap, "capacity bound violated");
            let st: ChanStats = tx.stats();
            assert_eq!(st.sends - st.recvs, in_flight as u64);
        }
    }

    /// Dropping a channel mid-stream releases every item exactly once:
    /// items popped out are dropped by the caller, items still in
    /// flight (ring slots and mailbox overflow) by the channel's Drop.
    fn prop_drop_mid_stream_releases_all_items_exactly_once(
        pushes in 0usize..40,
        pops in 0usize..40,
        unbounded in 0u8..2,
    ) {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut delivered = 0usize;
        {
            if unbounded == 0 {
                let (mut tx, mut rx) = spsc::<Tracked>(8, WaitPolicy::Spin);
                let mut accepted = 0usize;
                for i in 0..pushes {
                    if tx.try_send(Tracked(Arc::clone(&drops), i)).is_ok() {
                        accepted += 1;
                    }
                }
                for _ in 0..pops.min(accepted) {
                    let got = rx.try_recv().expect("accepted items are there");
                    delivered += 1;
                    assert_eq!(got.1, delivered - 1, "FIFO of tracked items");
                }
            } else {
                let (txs, rx) = ezp_chan::mpmc_unbounded::<Tracked>(1, WaitPolicy::Spin);
                for i in 0..pushes {
                    txs[0].send(Tracked(Arc::clone(&drops), i)).unwrap();
                }
                for _ in 0..pops.min(pushes) {
                    rx.recv().expect("sent items are there");
                    delivered += 1;
                }
            }
            // endpoints (and any in-flight items) dropped here
        }
        // rejected (bounded try_send Full) + delivered + still-in-flight
        // must account for every constructed item, each dropped once
        assert_eq!(
            drops.load(Ordering::SeqCst),
            pushes,
            "every constructed item dropped exactly once (delivered {delivered})"
        );
    }
}
