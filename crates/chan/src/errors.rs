//! Channel error types, mirroring `std::sync::mpsc`'s shapes so call
//! sites migrate mechanically. Manual `Debug`/`Display` impls avoid a
//! `T: Debug` bound (the payload is returned, not printed).

use std::fmt;

/// `try_send` failed; the item is handed back.
pub enum TrySendError<T> {
    /// The channel is at capacity right now.
    Full(T),
    /// Every receiver is gone; the item can never be delivered.
    Closed(T),
}

/// `send` failed because every receiver is gone; the item is handed
/// back.
pub struct SendError<T>(pub T);

/// `try_recv` found nothing to return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is empty right now but senders remain.
    Empty,
    /// The channel is empty and every sender is gone.
    Closed,
}

/// `recv` failed: the channel is empty and every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Closed(_) => f.write_str("Closed(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("channel full"),
            TrySendError::Closed(_) => f.write_str("channel closed"),
        }
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel closed")
    }
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Closed => f.write_str("channel closed"),
        }
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel closed")
    }
}
