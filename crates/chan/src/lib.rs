//! # ezp-chan — lock-free SPSC/MPMC channels with configurable wait policies
//!
//! EASYPAP's runtime moves work between threads in three places: the
//! streaming frame driver hands finished frames to the presenter, MPI
//! ranks exchange messages through mailboxes, and the monitor harvests
//! trace events from workers. This crate gives all three one audited
//! channel substrate instead of three ad-hoc hand-offs:
//!
//! * [`ring`] — the FastFlow-style bounded lock-free SPSC ring: two
//!   cache-padded monotone cursors over a power-of-two slot array, one
//!   release/acquire pair per direction. This is the crate's single
//!   sanctioned `unsafe` island (the workspace's third, next to
//!   `ezp-sched`'s `pool` and `img_cell`); every `unsafe` block carries
//!   a `SAFETY:` argument and every non-SeqCst atomic an `ORDERING:`
//!   justification, both enforced by `ezp-lint`.
//! * [`spsc`] — the raw endpoints over one ring: fastest path, role
//!   uniqueness enforced by `&mut self` on non-`Clone` endpoints.
//! * [`mpmc`] — MPMC composed from one SPSC lane per producer with
//!   claim-flag role migration: per-producer FIFO, clonable receivers,
//!   and an unbounded "mailbox" mode whose sends never block.
//! * [`backend`] — the [`ChanSender`]/[`ChanReceiver`] trait objects the
//!   framework programs against, switchable between the ring and a
//!   `std::sync::mpsc` baseline via `--chan-backend` ([`ChanBackendKind`]).
//!
//! How endpoints wait is a run-time knob ([`WaitPolicy`], `--wait-policy`):
//! spin, yield, or spin-then-park on `ezp_core::park::ParkLot`. Every
//! channel counts sends/recvs/full-stalls/empty-stalls ([`ChanStats`]),
//! which consumers forward as `RuntimeEvent::ChanOps` plus
//! backpressure idle attribution into the unified report.
//!
//! The ring protocol itself is modeled step-by-step in
//! `ezp_sched::vexec::virtual_chan` and swept by every `ezp-check`
//! schedule-strategy family; the real-thread adversarial battery lives
//! in this crate's `tests/`.

#![warn(missing_docs)]
// `unsafe_code` is deliberately NOT denied: the SPSC ring slots are a
// sanctioned unsafe island (see the crate docs above). `ring.rs` holds
// the cell accesses; `spsc.rs`/`mpmc.rs` hold the role-contract call
// sites. Each carries a `SAFETY:` argument, enforced by `ezp-lint`'s
// `unsafe-needs-safety` rule.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
mod errors;
pub mod mpmc;
pub(crate) mod ring;
pub mod spsc;
mod stats;
mod wait;

pub use backend::{bounded, unbounded, ChanReceiver, ChanSender};
pub use errors::{RecvError, SendError, TryRecvError, TrySendError};
pub use ezp_core::{ChanBackendKind, ChanTuning, WaitPolicy};
pub use mpmc::{mpmc, mpmc_unbounded, MpmcReceiver, MpmcSender};
pub use spsc::{spsc, spsc_from_index, SpscReceiver, SpscSender};
pub use stats::ChanStats;
