//! SPSC channel endpoints: the thinnest possible wrapper over
//! [`RingCore`](crate::ring), adding lifecycle (close-on-drop), wait
//! policies and stats.
//!
//! The single-producer / single-consumer role contract is enforced by
//! the type system: neither endpoint is `Clone`, and every operation
//! takes `&mut self`, so at most one thread can be inside `push` (resp.
//! `pop`) at a time. This is the fastest path `ezp-chan` offers — the
//! MPMC layer builds on the same core but pays a claim flag per
//! operation to make shared (`&self`) trait objects sound.

use crate::errors::{RecvError, SendError, TryRecvError, TrySendError};
use crate::ring::RingCore;
use crate::stats::{ChanCounters, ChanStats};
use crate::wait::WaitHub;
use ezp_core::WaitPolicy;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub(crate) struct SpscShared<T> {
    pub(crate) ring: RingCore<T>,
    /// False once the sender endpoint is dropped. Stored/loaded SeqCst:
    /// both flags participate in Park-policy wait conditions, which the
    /// `ParkLot` contract requires to be SC-visible.
    pub(crate) tx_alive: AtomicBool,
    /// False once the receiver endpoint is dropped (SeqCst, as above).
    pub(crate) rx_alive: AtomicBool,
    pub(crate) hub: WaitHub,
    pub(crate) stats: ChanCounters,
}

impl<T> SpscShared<T> {
    fn new(cap: usize, policy: WaitPolicy, start_index: usize) -> Arc<Self> {
        Arc::new(SpscShared {
            ring: RingCore::with_start_index(cap, start_index),
            tx_alive: AtomicBool::new(true),
            rx_alive: AtomicBool::new(true),
            hub: WaitHub::new(policy),
            stats: ChanCounters::default(),
        })
    }
}

/// The producing half of a bounded SPSC channel. Not `Clone`; all
/// operations take `&mut self`, which is what makes the lock-free core
/// sound (sole-producer contract).
pub struct SpscSender<T> {
    shared: Arc<SpscShared<T>>,
}

/// The consuming half of a bounded SPSC channel (sole-consumer contract
/// via `&mut self`, like [`SpscSender`]).
pub struct SpscReceiver<T> {
    shared: Arc<SpscShared<T>>,
}

/// A bounded SPSC channel holding at most `cap` in-flight items.
pub fn spsc<T: Send>(cap: usize, policy: WaitPolicy) -> (SpscSender<T>, SpscReceiver<T>) {
    spsc_from_index(cap, policy, 0)
}

/// Test hook: an SPSC channel whose monotone cursors start at `start`
/// instead of 0, for pinning index-wraparound behaviour (see
/// `RingCore::with_start_index`).
pub fn spsc_from_index<T: Send>(
    cap: usize,
    policy: WaitPolicy,
    start: usize,
) -> (SpscSender<T>, SpscReceiver<T>) {
    let shared = SpscShared::new(cap, policy, start);
    (
        SpscSender {
            shared: Arc::clone(&shared),
        },
        SpscReceiver { shared },
    )
}

impl<T: Send> SpscSender<T> {
    /// Push one item without waiting.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        if !self.shared.rx_alive.load(Ordering::SeqCst) {
            return Err(TrySendError::Closed(value));
        }
        // SAFETY: `&mut self` on a non-Clone endpoint makes this thread
        // the unique producer, as `RingCore::push` requires.
        match unsafe { self.shared.ring.push(value) } {
            Ok(()) => {
                ChanCounters::bump(&self.shared.stats.sends);
                self.shared.hub.wake_not_empty();
                Ok(())
            }
            Err(value) => Err(TrySendError::Full(value)),
        }
    }

    /// Push one item, waiting per the channel's [`WaitPolicy`] while
    /// the ring is full. Fails only if the receiver is gone.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    ChanCounters::bump(&self.shared.stats.full_stalls);
                    let shared = &*self.shared;
                    let ns = shared.hub.stall_until_not_full(|| {
                        !shared.rx_alive.load(Ordering::SeqCst) || shared.ring.has_room_sc()
                    });
                    shared.stats.add_stall_ns(ns);
                }
            }
        }
    }

    /// Snapshot of the channel's activity counters.
    pub fn stats(&self) -> ChanStats {
        self.shared.stats.snapshot()
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Pop one item without waiting.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        // SAFETY: `&mut self` on a non-Clone endpoint makes this thread
        // the unique consumer, as `RingCore::pop` requires.
        if let Some(v) = unsafe { self.shared.ring.pop() } {
            ChanCounters::bump(&self.shared.stats.recvs);
            self.shared.hub.wake_not_full();
            return Ok(v);
        }
        if !self.shared.tx_alive.load(Ordering::SeqCst) {
            // The sender may have pushed then dropped between our pop
            // and the flag load; the SeqCst load makes that final push
            // visible, so one re-poll closes the race.
            // SAFETY: unique consumer, as above.
            if let Some(v) = unsafe { self.shared.ring.pop() } {
                ChanCounters::bump(&self.shared.stats.recvs);
                return Ok(v);
            }
            return Err(TryRecvError::Closed);
        }
        Err(TryRecvError::Empty)
    }

    /// Pop one item, waiting per the channel's [`WaitPolicy`] while the
    /// ring is empty. Fails only when the channel is empty *and* the
    /// sender is gone.
    pub fn recv(&mut self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Closed) => return Err(RecvError),
                Err(TryRecvError::Empty) => {
                    ChanCounters::bump(&self.shared.stats.empty_stalls);
                    let shared = &*self.shared;
                    let ns = shared.hub.stall_until_not_empty(|| {
                        !shared.tx_alive.load(Ordering::SeqCst) || shared.ring.has_item_sc()
                    });
                    shared.stats.add_stall_ns(ns);
                }
            }
        }
    }

    /// Snapshot of the channel's activity counters.
    pub fn stats(&self) -> ChanStats {
        self.shared.stats.snapshot()
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.shared.tx_alive.store(false, Ordering::SeqCst);
        // Park-policy receivers waiting on "not empty" must observe the
        // close; their ready condition reads `tx_alive` SeqCst.
        self.shared.hub.wake_not_empty();
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.shared.rx_alive.store(false, Ordering::SeqCst);
        self.shared.hub.wake_not_full();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_threads() {
        let (mut tx, mut rx) = spsc::<usize>(8, WaitPolicy::Yield);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.recv(), Err(RecvError));
        });
    }

    #[test]
    fn try_send_reports_full_and_closed() {
        let (mut tx, rx) = spsc::<u8>(1, WaitPolicy::Spin);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Closed(3))));
    }

    #[test]
    fn stats_count_sends_recvs_and_stall_episodes() {
        let (mut tx, mut rx) = spsc::<u8>(1, WaitPolicy::Yield);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(_))));
        assert_eq!(rx.recv().unwrap(), 1);
        let st = rx.stats();
        assert_eq!((st.sends, st.recvs), (1, 1));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }
}
