//! Channel activity counters, shared by both endpoints of a channel.
//!
//! Every channel — ring-backed or the `std::sync::mpsc` baseline —
//! carries one [`ChanCounters`] block; [`ChanStats`] is the plain
//! snapshot handed to callers, who typically forward it as a
//! `RuntimeEvent::ChanOps` delta into the perf layer. Stall counts
//! tally *episodes* (one per time an endpoint found the channel
//! full/empty and had to wait), not retries inside a wait.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one channel. All updates are `Relaxed` and every
/// field is counter-only: these are statistics — no other memory is
/// published through them.
#[derive(Debug, Default)]
pub(crate) struct ChanCounters {
    pub(crate) sends: AtomicU64,
    pub(crate) recvs: AtomicU64,
    pub(crate) full_stalls: AtomicU64,
    pub(crate) empty_stalls: AtomicU64,
    pub(crate) stall_ns: AtomicU64,
}

impl ChanCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        // ORDERING: Relaxed — pure statistic, never synchronizes data.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_stall_ns(&self, ns: u64) {
        // ORDERING: Relaxed — pure statistic, never synchronizes data.
        self.stall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ChanStats {
        ChanStats {
            sends: self.sends.load(Ordering::Relaxed),
            recvs: self.recvs.load(Ordering::Relaxed),
            full_stalls: self.full_stalls.load(Ordering::Relaxed),
            empty_stalls: self.empty_stalls.load(Ordering::Relaxed),
            stall_ns: self.stall_ns.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a channel's activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChanStats {
    /// Items successfully sent.
    pub sends: u64,
    /// Items successfully received.
    pub recvs: u64,
    /// Times a sender found the channel full and had to wait (episodes,
    /// not retries).
    pub full_stalls: u64,
    /// Times a receiver found the channel empty and had to wait
    /// (episodes, not retries).
    pub empty_stalls: u64,
    /// Wall time spent inside stall episodes, in nanoseconds.
    pub stall_ns: u64,
}

impl ChanStats {
    /// `self - earlier`, saturating: the delta between two snapshots of
    /// the same channel.
    pub fn delta_since(&self, earlier: &ChanStats) -> ChanStats {
        ChanStats {
            sends: self.sends.saturating_sub(earlier.sends),
            recvs: self.recvs.saturating_sub(earlier.recvs),
            full_stalls: self.full_stalls.saturating_sub(earlier.full_stalls),
            empty_stalls: self.empty_stalls.saturating_sub(earlier.empty_stalls),
            stall_ns: self.stall_ns.saturating_sub(earlier.stall_ns),
        }
    }

    /// Component-wise sum, for merging stats across several channels.
    pub fn merge(&self, other: &ChanStats) -> ChanStats {
        ChanStats {
            sends: self.sends + other.sends,
            recvs: self.recvs + other.recvs,
            full_stalls: self.full_stalls + other.full_stalls,
            empty_stalls: self.empty_stalls + other.empty_stalls,
            stall_ns: self.stall_ns + other.stall_ns,
        }
    }
}
