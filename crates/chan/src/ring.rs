//! The bounded lock-free SPSC ring at the heart of `ezp-chan`.
//!
//! This is the FastFlow-style single-producer/single-consumer queue: two
//! monotonically increasing counters (`head` for the consumer, `tail` for
//! the producer), each on its own cache line, indexing into a
//! power-of-two slot array. The producer is the *only* writer of `tail`
//! and the *only* thread that writes slots; the consumer is the only
//! writer of `head` and the only thread that reads slots out. That
//! single-writer discipline is what makes the queue lock-free with just
//! one release/acquire pair per direction.
//!
//! ## Memory-ordering argument
//!
//! * The producer writes the slot, then stores `tail` with `Release`.
//!   The consumer loads `tail` with `Acquire`; if it observes the new
//!   value, the slot write happens-before the slot read.
//! * The consumer reads the slot out, then stores `head` with `Release`.
//!   The producer loads `head` with `Acquire` before reusing a slot; if
//!   it observes the new value, the slot read happens-before the
//!   overwrite.
//! * Each side loads its *own* counter `Relaxed` — it is the only writer
//!   of that counter, so it always sees its latest value.
//!
//! Counters never wrap *logically*: they count items forever and are
//! reduced to a slot index with `& (slots - 1)`. Because the slot count
//! is a power of two, the mapping stays consistent across `usize`
//! overflow (2^k divides 2^64), which the near-wrap constructor
//! [`RingCore::with_start_index`] pins in tests.

// The one sanctioned unsafe island of this crate (see `lib.rs`): slot
// storage is `UnsafeCell<MaybeUninit<T>>`, accessed under the
// single-writer protocol argued above.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads (and aligns) a value to its own 128-byte cache-line pair, so the
/// producer-owned `tail` and consumer-owned `head` never false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

/// One slot of the ring: possibly-uninitialized storage for a `T`.
///
/// A slot is *full* (holds a live `T`) exactly when its index `i`
/// satisfies `head <= i < tail` in the monotone counter space.
struct Slot<T>(UnsafeCell<MaybeUninit<T>>);

/// The shared core of a bounded SPSC ring.
///
/// `RingCore` itself has no blocking, no wait policy and no endpoint
/// types — it is the raw protocol, wrapped by the `spsc` and `mpmc`
/// channel layers. The `push`/`pop` methods are `unsafe` because their
/// soundness depends on a *role contract* the type system cannot see:
/// at most one thread may call `push` concurrently, and at most one may
/// call `pop` concurrently. The endpoint types uphold it by ownership
/// (`&mut self` on a non-`Clone` endpoint) or by a claim flag (MPMC).
pub(crate) struct RingCore<T> {
    /// Consumer cursor: number of items ever popped. Written only by
    /// the consumer role.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: number of items ever pushed. Written only by
    /// the producer role.
    tail: CachePadded<AtomicUsize>,
    /// User-visible capacity bound: `tail - head` never exceeds this.
    cap: usize,
    /// `slots.len() - 1`, with `slots.len()` a power of two `>= cap`.
    mask: usize,
    slots: Box<[Slot<T>]>,
}

// SAFETY: `RingCore` hands `T` values across threads (push on one, pop
// on another), which is exactly the `T: Send` bound. The slot cells are
// only touched under the single-writer protocol documented on
// `push`/`pop`, so `&RingCore` may be shared between the two roles.
unsafe impl<T: Send> Send for RingCore<T> {}
// SAFETY: see the `Send` argument above; `Sync` is what lets the two
// endpoint halves share one `Arc<RingCore>`.
unsafe impl<T: Send> Sync for RingCore<T> {}

impl<T> RingCore<T> {
    /// A ring holding at most `cap` items (`cap >= 1`; 0 is clamped).
    pub(crate) fn new(cap: usize) -> Self {
        Self::with_start_index(cap, 0)
    }

    /// Test hook: a ring whose counters start at `start` instead of 0.
    ///
    /// Starting both cursors just below an index-wrap boundary (e.g.
    /// `u32::MAX as usize - 2`) lets tests pin that the monotone
    /// counter → slot-index mapping survives wraparound without an ABA
    /// slip. Production channels always start at 0.
    pub(crate) fn with_start_index(cap: usize, start: usize) -> Self {
        let cap = cap.max(1);
        let slots = cap.next_power_of_two();
        Self {
            head: CachePadded(AtomicUsize::new(start)),
            tail: CachePadded(AtomicUsize::new(start)),
            cap,
            mask: slots - 1,
            slots: (0..slots)
                .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
                .collect(),
        }
    }

    /// Push one item, or hand it back if the ring is at capacity.
    ///
    /// # Safety
    ///
    /// The caller must be the unique producer: no other thread may be
    /// inside `push` on this ring at the same time.
    // SAFETY: contract above — callers uphold role uniqueness by
    // `&mut self` ownership (spsc) or a claim flag (mpmc).
    pub(crate) unsafe fn push(&self, value: T) -> Result<(), T> {
        // ORDERING: Relaxed — the producer is the only writer of
        // `tail`, so it always reads its own latest value.
        let tail = self.tail.0.load(Ordering::Relaxed);
        // ORDERING: Acquire — pairs with the consumer's Release store
        // of `head` after it reads a slot out; observing the new head
        // means that slot read happens-before our overwrite below.
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.cap {
            return Err(value);
        }
        let slot = &self.slots[tail & self.mask];
        // SAFETY: single-producer contract means no concurrent `push`
        // touches this slot; `tail - head < cap <= slots` means the
        // consumer has already released it (the Acquire above makes
        // that release visible), so nobody reads it while we write.
        unsafe { (*slot.0.get()).write(value) };
        // ORDERING: Release — publishes the slot write above; pairs
        // with the consumer's Acquire load of `tail`.
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pop one item, or `None` if the ring is empty.
    ///
    /// # Safety
    ///
    /// The caller must be the unique consumer: no other thread may be
    /// inside `pop` on this ring at the same time.
    // SAFETY: contract above — callers uphold role uniqueness by
    // `&mut self` ownership (spsc) or a claim flag (mpmc).
    pub(crate) unsafe fn pop(&self) -> Option<T> {
        // ORDERING: Relaxed — the consumer is the only writer of
        // `head`, so it always reads its own latest value.
        let head = self.head.0.load(Ordering::Relaxed);
        // ORDERING: Acquire — pairs with the producer's Release store
        // of `tail`; observing the new tail makes the slot write
        // visible before we read it below.
        let tail = self.tail.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == 0 {
            return None;
        }
        let slot = &self.slots[head & self.mask];
        // SAFETY: single-consumer contract means no concurrent `pop`
        // touches this slot; `head < tail` plus the Acquire above means
        // the producer initialized it, and it will not overwrite until
        // our Release store of `head` below, so the value is read out
        // exactly once.
        let value = unsafe { (*slot.0.get()).assume_init_read() };
        // ORDERING: Release — publishes the slot read (it is free for
        // reuse); pairs with the producer's Acquire load of `head`.
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Whether a `push` would currently succeed, read with `SeqCst`.
    ///
    /// Park-policy wait conditions must read the state they wait on
    /// with `SeqCst` (the `ezp_core::park::ParkLot` contract); the
    /// waking side pairs this with a `SeqCst` fence after its Release
    /// publish.
    pub(crate) fn has_room_sc(&self) -> bool {
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        tail.wrapping_sub(head) < self.cap
    }

    /// Whether a `pop` would currently find an item, read with `SeqCst`
    /// (see [`RingCore::has_room_sc`] for why).
    pub(crate) fn has_item_sc(&self) -> bool {
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        tail.wrapping_sub(head) != 0
    }

    /// Approximate number of buffered items (racy snapshot).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        tail.wrapping_sub(head)
    }
}

impl<T> Drop for RingCore<T> {
    fn drop(&mut self) {
        // `&mut self`: both roles are gone, so plain reads of the
        // counters are exact and no slot is concurrently touched.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut i = head;
        while i != tail {
            // SAFETY: slots in `head..tail` hold live values that were
            // pushed but never popped; exclusive access (`&mut self`)
            // means each is dropped exactly once, here.
            unsafe { (*self.slots[i & self.mask].0.get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let ring = RingCore::new(4);
        // SAFETY: (test) this thread is both the sole producer and sole
        // consumer.
        unsafe {
            for i in 0..4 {
                ring.push(i).unwrap();
            }
            assert_eq!(ring.push(99), Err(99), "capacity bound enforced");
            for i in 0..4 {
                assert_eq!(ring.pop(), Some(i));
            }
            assert_eq!(ring.pop(), None);
        }
    }

    #[test]
    fn capacity_is_user_cap_not_power_of_two() {
        // cap 3 rounds up to 4 slots internally but must still refuse
        // a 4th in-flight item.
        let ring = RingCore::new(3);
        // SAFETY: (test) single-threaded, sole producer and consumer.
        unsafe {
            for i in 0..3 {
                ring.push(i).unwrap();
            }
            assert_eq!(ring.push(3), Err(3));
            assert_eq!(ring.pop(), Some(0));
            ring.push(3).unwrap();
            assert_eq!(ring.len(), 3);
        }
    }

    #[test]
    fn wraparound_near_index_overflow() {
        // Start the monotone counters just below a 32-bit boundary and
        // stream enough items to cross it: the counter→index mapping
        // must stay consistent (no ABA, no skipped or doubled slot).
        let start = (u32::MAX as usize) - 2;
        let ring = RingCore::with_start_index(3, start);
        // SAFETY: (test) single-threaded, sole producer and consumer.
        unsafe {
            for i in 0..64usize {
                ring.push(i).unwrap();
                assert_eq!(ring.pop(), Some(i), "item {i} crossing the wrap");
            }
        }
    }

    #[test]
    fn drop_releases_in_flight_items_exactly_once() {
        struct Tracked(Arc<Counter>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(Counter::new(0));
        {
            let ring = RingCore::new(8);
            // SAFETY: (test) single-threaded, sole producer/consumer.
            unsafe {
                for _ in 0..5 {
                    assert!(ring.push(Tracked(Arc::clone(&drops))).is_ok());
                }
                drop(ring.pop()); // one popped and dropped by us
            }
            // ring dropped here with 4 items still in flight
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5, "every item dropped once");
    }
}
