//! Wait-policy plumbing: how an endpoint waits for "not full" / "not
//! empty", parameterized by [`WaitPolicy`].
//!
//! * `Spin` — busy-poll with `spin_loop` hints and a periodic
//!   `yield_now` escape valve, so a single-core or oversubscribed host
//!   still makes progress (the peer needs CPU time to change the
//!   state).
//! * `Yield` — `yield_now` every iteration: cheap on oversubscribed
//!   hosts, latency-paying on idle ones.
//! * `Park` — spin briefly, then block on an [`ParkLot`]
//!   (`ezp_core::park`), the workspace's one audited
//!   lost-wakeup-free condvar recipe.
//!
//! ## Why the Park handshake is lost-wakeup-free here
//!
//! `ParkLot`'s contract: wait conditions read their state `SeqCst`;
//! wakers make their state change SeqCst-visible *before* calling
//! `notify`. The ring's hot-path publishes with `Release` (see
//! `ring.rs`), so [`WaitHub::wake_not_empty`]/[`WaitHub::wake_not_full`]
//! issue a `fence(SeqCst)` after that publish and before `notify`. In
//! the C++11 model an SC fence sequenced after a store forces any later
//! SC load (the waiter's re-check of `has_item_sc`/`has_room_sc`, or
//! its `sleepers` registration inside the lot's mutex) to observe that
//! store, which is exactly the visibility `ParkLot` requires. The
//! fences run only under `WaitPolicy::Park` and only on the wake edge —
//! spin/yield waiters re-poll, where plain eventual visibility
//! suffices.

use ezp_core::time::now_ns;
use ezp_core::WaitPolicy;
use ezp_core::park::ParkLot;
use std::sync::atomic::{fence, Ordering};

/// Spin iterations between `yield_now` calls under `WaitPolicy::Spin`.
/// Pure spinning livelocks a 1-CPU host (the peer never runs); the
/// valve keeps `Spin` an aggressive-but-safe default for benches.
const SPIN_YIELD_VALVE: u32 = 4096;

/// The two parking lots of one channel plus the policy that decides
/// whether they are ever used.
#[derive(Debug)]
pub(crate) struct WaitHub {
    policy: WaitPolicy,
    /// Senders park here when the channel is full.
    not_full: ParkLot,
    /// Receivers park here when the channel is empty.
    not_empty: ParkLot,
}

impl WaitHub {
    pub(crate) fn new(policy: WaitPolicy) -> Self {
        WaitHub {
            policy,
            not_full: ParkLot::new(),
            not_empty: ParkLot::new(),
        }
    }

    /// Wake receivers after making the channel non-empty.
    pub(crate) fn wake_not_empty(&self) {
        if matches!(self.policy, WaitPolicy::Park) {
            // ORDERING: SeqCst fence — upgrades the ring's Release
            // publish to SC visibility for the parked waiter's SeqCst
            // re-check (see module docs); required by the ParkLot
            // contract.
            fence(Ordering::SeqCst);
            self.not_empty.notify();
        }
    }

    /// Wake senders after making the channel non-full (or closed).
    pub(crate) fn wake_not_full(&self) {
        if matches!(self.policy, WaitPolicy::Park) {
            // ORDERING: SeqCst fence — same argument as
            // `wake_not_empty`, for the head-advance / close edge.
            fence(Ordering::SeqCst);
            self.not_full.notify();
        }
    }

    /// One stall episode of a sender: wait until `ready()` (which must
    /// read its state `SeqCst`). Returns the episode's wall time in ns.
    pub(crate) fn stall_until_not_full(&self, ready: impl Fn() -> bool) -> u64 {
        self.stall(&self.not_full, ready)
    }

    /// One stall episode of a receiver (see `stall_until_not_full`).
    pub(crate) fn stall_until_not_empty(&self, ready: impl Fn() -> bool) -> u64 {
        self.stall(&self.not_empty, ready)
    }

    fn stall(&self, lot: &ParkLot, ready: impl Fn() -> bool) -> u64 {
        let t0 = now_ns();
        match self.policy {
            WaitPolicy::Spin => {
                let mut i = 0u32;
                while !ready() {
                    i = i.wrapping_add(1);
                    if i % SPIN_YIELD_VALVE == 0 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            WaitPolicy::Yield => {
                while !ready() {
                    std::thread::yield_now();
                }
            }
            WaitPolicy::Park => {
                lot.wait_until(ready);
            }
        }
        now_ns().saturating_sub(t0)
    }
}
