//! MPMC channel composed from SPSC rings: one lane per producer, with
//! receivers claiming a lane at a time via an atomic flag.
//!
//! The composition keeps the strongest ordering guarantee an MPMC
//! channel can usefully make — **per-producer FIFO**: items from one
//! sender are received in the order they were sent. Items from
//! different senders interleave arbitrarily (receivers rotate over
//! lanes for fairness).
//!
//! ## Role migration and the claim flags
//!
//! [`RingCore`](crate::ring) requires a unique producer and unique
//! consumer *at any instant*, not a unique thread forever. Each lane
//! carries a `push_claim` and a `pop_claim` `AtomicBool`; an endpoint
//! claims with a CAS (`Acquire`) and releases with a store
//! (`Release`). That release/acquire edge makes everything the previous
//! role-holder did (including its `Relaxed` own-cursor update) visible
//! to the next holder — which is exactly why the ring's "single-writer
//! reads its own counter `Relaxed`" argument survives the role hopping.
//! Claims also make the endpoints usable as `&self`/`Sync` trait
//! objects ([`crate::backend`]).
//!
//! ## Unbounded ("mailbox") mode
//!
//! `mpmc_unbounded` channels never block the sender: each lane pairs
//! its ring with a mutex-protected overflow `VecDeque` and a `spilled`
//! flag. Sends go to the ring while there is room; on overflow the
//! (single) producer of the lane re-tries once under the overflow lock
//! and then spills. Receivers drain the ring first, then the overflow,
//! clearing `spilled` under the lock — per-producer FIFO holds because
//! ring items are always older than spilled items, and the producer
//! only returns to the ring after the consumer has cleared the flag.
//! This is the shape the MPI rank mailboxes and the monitor's event
//! channel need (send from a worker must never block on a slow
//! harvester).

use crate::errors::{RecvError, SendError, TryRecvError, TrySendError};
use crate::ring::RingCore;
use crate::stats::{ChanCounters, ChanStats};
use crate::wait::WaitHub;
use ezp_core::WaitPolicy;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Ring capacity per lane in unbounded (mailbox) mode: big enough that
/// the overflow path is rare, small enough to stay cache-friendly.
const MAILBOX_LANE_CAP: usize = 256;

struct Overflow<T> {
    /// True while `q` may hold items; read/stored `SeqCst` because it
    /// participates in Park-policy wait conditions and in the
    /// FIFO-preserving spill protocol (see module docs).
    spilled: AtomicBool,
    q: Mutex<VecDeque<T>>,
}

struct Lane<T> {
    ring: RingCore<T>,
    /// False once this lane's sender endpoint is dropped (SeqCst: wait
    /// conditions read it).
    tx_alive: AtomicBool,
    push_claim: AtomicBool,
    pop_claim: AtomicBool,
    /// `Some` in unbounded (mailbox) mode only.
    overflow: Option<Overflow<T>>,
}

impl<T> Lane<T> {
    fn new(cap: usize, unbounded: bool) -> Self {
        Lane {
            ring: RingCore::new(cap),
            tx_alive: AtomicBool::new(true),
            push_claim: AtomicBool::new(false),
            pop_claim: AtomicBool::new(false),
            overflow: unbounded.then(|| Overflow {
                spilled: AtomicBool::new(false),
                q: Mutex::new(VecDeque::new()),
            }),
        }
    }

    fn try_claim(flag: &AtomicBool) -> bool {
        // ORDERING: Acquire on success — pairs with the Release in
        // `release_claim`, so everything the previous role-holder did
        // (including its Relaxed own-cursor store inside the ring) is
        // visible to us. Failure needs no ordering: we just move on.
        flag.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn release_claim(flag: &AtomicBool) {
        // ORDERING: Release — publishes this role-holder's ring work to
        // whoever claims next (pairs with the Acquire in `try_claim`).
        flag.store(false, Ordering::Release);
    }

    /// True if this lane could satisfy a `pop` right now (SeqCst reads,
    /// fit for Park-policy wait conditions).
    fn has_item_sc(&self) -> bool {
        self.ring.has_item_sc()
            || self
                .overflow
                .as_ref()
                .is_some_and(|of| of.spilled.load(Ordering::SeqCst))
    }
}

struct MpmcShared<T> {
    lanes: Box<[Lane<T>]>,
    /// Live receiver endpoints; 0 means the channel is closed for
    /// senders (SeqCst: senders' wait conditions read it).
    rx_count: AtomicUsize,
    /// Rotating start lane for receivers, for fairness across lanes.
    /// counter-only: the value is the entire payload — a stale read
    /// just shifts which lane a receiver polls first.
    next_lane: AtomicUsize,
    hub: WaitHub,
    stats: ChanCounters,
}

/// The sending half of one lane of an MPMC channel. Not `Clone`: one
/// lane, one producer. Methods take `&self` (claim-guarded), so the
/// endpoint can sit behind a shared trait object.
pub struct MpmcSender<T> {
    shared: Arc<MpmcShared<T>>,
    lane: usize,
}

/// The receiving half of an MPMC channel. `Clone` to add consumers; all
/// consumers drain the same lanes (claim-guarded).
pub struct MpmcReceiver<T> {
    shared: Arc<MpmcShared<T>>,
}

/// A bounded MPMC channel with `producers` lanes of `cap` items each.
/// `send` blocks per `policy` while the sender's lane is full.
pub fn mpmc<T: Send>(
    producers: usize,
    cap: usize,
    policy: WaitPolicy,
) -> (Vec<MpmcSender<T>>, MpmcReceiver<T>) {
    build(producers, cap, policy, false)
}

/// An unbounded (mailbox) MPMC channel: `send` never blocks, spilling
/// to a per-lane overflow queue when the ring is full.
pub fn mpmc_unbounded<T: Send>(
    producers: usize,
    policy: WaitPolicy,
) -> (Vec<MpmcSender<T>>, MpmcReceiver<T>) {
    build(producers, MAILBOX_LANE_CAP, policy, true)
}

fn build<T: Send>(
    producers: usize,
    cap: usize,
    policy: WaitPolicy,
    unbounded: bool,
) -> (Vec<MpmcSender<T>>, MpmcReceiver<T>) {
    let producers = producers.max(1);
    let shared = Arc::new(MpmcShared {
        lanes: (0..producers).map(|_| Lane::new(cap, unbounded)).collect(),
        rx_count: AtomicUsize::new(1),
        next_lane: AtomicUsize::new(0),
        hub: WaitHub::new(policy),
        stats: ChanCounters::default(),
    });
    let senders = (0..producers)
        .map(|lane| MpmcSender {
            shared: Arc::clone(&shared),
            lane,
        })
        .collect();
    (senders, MpmcReceiver { shared })
}

impl<T: Send> MpmcSender<T> {
    fn lane(&self) -> &Lane<T> {
        &self.shared.lanes[self.lane]
    }

    fn closed(&self) -> bool {
        self.shared.rx_count.load(Ordering::SeqCst) == 0
    }

    /// Claim-guarded push into this sender's lane ring.
    fn ring_push(&self, value: T) -> Result<(), T> {
        let lane = self.lane();
        while !Lane::<T>::try_claim(&lane.push_claim) {
            // Contention here is rare (one producer per lane; the CAS
            // only races against another thread sharing this same
            // endpoint by reference) and the critical section is a few
            // instructions.
            std::hint::spin_loop();
        }
        // SAFETY: holding `push_claim` makes this thread the unique
        // producer of the lane's ring for the duration of the call; the
        // claim's Acquire/Release edges order successive holders (see
        // module docs), upholding `RingCore::push`'s contract.
        let res = unsafe { lane.ring.push(value) };
        Lane::<T>::release_claim(&lane.push_claim);
        res
    }

    /// Push one item without waiting. In unbounded (mailbox) mode this
    /// spills instead of reporting `Full`, so it only ever fails with
    /// `Closed`.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        if self.closed() {
            return Err(TrySendError::Closed(value));
        }
        if self.lane().overflow.is_some() {
            return match self.send_spill(value) {
                Ok(()) => Ok(()),
                Err(SendError(v)) => Err(TrySendError::Closed(v)),
            };
        }
        match self.ring_push(value) {
            Ok(()) => {
                ChanCounters::bump(&self.shared.stats.sends);
                self.shared.hub.wake_not_empty();
                Ok(())
            }
            Err(v) => Err(TrySendError::Full(v)),
        }
    }

    /// Push one item. Bounded mode waits per the channel's
    /// [`WaitPolicy`] while the lane is full; unbounded mode never
    /// waits. Fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    ChanCounters::bump(&self.shared.stats.full_stalls);
                    let shared = &*self.shared;
                    let lane = self.lane();
                    let ns = shared.hub.stall_until_not_full(|| {
                        shared.rx_count.load(Ordering::SeqCst) == 0 || lane.ring.has_room_sc()
                    });
                    shared.stats.add_stall_ns(ns);
                }
            }
        }
    }

    /// Unbounded-mode send: ring fast path, overflow spill on full.
    fn send_spill(&self, value: T) -> Result<(), SendError<T>> {
        let lane = self.lane();
        let of = lane
            .overflow
            .as_ref()
            .expect("send_spill on a bounded lane");
        let mut value = value;
        if !of.spilled.load(Ordering::SeqCst) {
            // Not spilling: ring preserves FIFO on its own.
            match self.ring_push(value) {
                Ok(()) => {
                    ChanCounters::bump(&self.shared.stats.sends);
                    self.shared.hub.wake_not_empty();
                    return Ok(());
                }
                Err(v) => value = v,
            }
        }
        // Slow path, under the overflow lock. The receiver clears
        // `spilled` under this same lock, so the re-check + ring retry
        // below cannot interleave with a drain in a FIFO-breaking way.
        let mut q = of.q.lock().expect("chan overflow lock poisoned");
        if !of.spilled.load(Ordering::SeqCst) {
            match self.ring_push(value) {
                Ok(()) => {
                    drop(q);
                    ChanCounters::bump(&self.shared.stats.sends);
                    self.shared.hub.wake_not_empty();
                    return Ok(());
                }
                Err(v) => value = v,
            }
            of.spilled.store(true, Ordering::SeqCst);
            ChanCounters::bump(&self.shared.stats.full_stalls);
        }
        q.push_back(value);
        drop(q);
        ChanCounters::bump(&self.shared.stats.sends);
        self.shared.hub.wake_not_empty();
        Ok(())
    }

    /// Snapshot of the channel's activity counters (shared across all
    /// lanes and endpoints).
    pub fn stats(&self) -> ChanStats {
        self.shared.stats.snapshot()
    }
}

impl<T: Send> MpmcReceiver<T> {
    /// Claim-guarded pop from one lane: ring first (older items), then
    /// the overflow queue.
    fn lane_pop(lane: &Lane<T>) -> Option<T> {
        // SAFETY: the caller holds `pop_claim`, making this thread the
        // unique consumer of the lane's ring; the claim's
        // Acquire/Release edges order successive holders (module docs),
        // upholding `RingCore::pop`'s contract.
        if let Some(v) = unsafe { lane.ring.pop() } {
            return Some(v);
        }
        let of = lane.overflow.as_ref()?;
        if !of.spilled.load(Ordering::SeqCst) {
            return None;
        }
        let mut q = of.q.lock().expect("chan overflow lock poisoned");
        match q.pop_front() {
            Some(v) => {
                if q.is_empty() {
                    // Producer returns to the ring from its next send;
                    // cleared under the lock so its re-check cannot
                    // miss in-flight spills.
                    of.spilled.store(false, Ordering::SeqCst);
                }
                Some(v)
            }
            None => {
                of.spilled.store(false, Ordering::SeqCst);
                None
            }
        }
    }

    /// Pop one item without waiting, rotating over lanes for fairness.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let n = shared.lanes.len();
        // ORDERING: Relaxed — the rotation counter is a fairness hint
        // only; no memory is published through it.
        let start = shared.next_lane.fetch_add(1, Ordering::Relaxed) % n;
        for i in 0..n {
            let lane = &shared.lanes[(start + i) % n];
            if !Lane::<T>::try_claim(&lane.pop_claim) {
                continue;
            }
            let got = Self::lane_pop(lane);
            Lane::<T>::release_claim(&lane.pop_claim);
            if let Some(v) = got {
                ChanCounters::bump(&shared.stats.recvs);
                self.shared.hub.wake_not_full();
                return Ok(v);
            }
        }
        // Nothing found. Only report Closed after observing every
        // sender gone *and then* draining every lane once more: a
        // producer may push and drop between our scan and the flag
        // loads, and the SeqCst load of its `tx_alive` makes that final
        // push visible to the re-drain below.
        if shared
            .lanes
            .iter()
            .all(|l| !l.tx_alive.load(Ordering::SeqCst))
        {
            for lane in shared.lanes.iter() {
                if !Lane::<T>::try_claim(&lane.pop_claim) {
                    // Another receiver is mid-pop on this lane; the
                    // channel is not provably drained yet.
                    return Err(TryRecvError::Empty);
                }
                let got = Self::lane_pop(lane);
                Lane::<T>::release_claim(&lane.pop_claim);
                if let Some(v) = got {
                    ChanCounters::bump(&shared.stats.recvs);
                    return Ok(v);
                }
            }
            return Err(TryRecvError::Closed);
        }
        Err(TryRecvError::Empty)
    }

    /// Pop one item, waiting per the channel's [`WaitPolicy`] while all
    /// lanes are empty. Fails only when the channel is drained *and*
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Closed) => return Err(RecvError),
                Err(TryRecvError::Empty) => {
                    ChanCounters::bump(&self.shared.stats.empty_stalls);
                    let shared = &*self.shared;
                    let ns = shared.hub.stall_until_not_empty(|| {
                        shared.lanes.iter().any(Lane::has_item_sc)
                            || shared
                                .lanes
                                .iter()
                                .all(|l| !l.tx_alive.load(Ordering::SeqCst))
                    });
                    shared.stats.add_stall_ns(ns);
                }
            }
        }
    }

    /// Snapshot of the channel's activity counters.
    pub fn stats(&self) -> ChanStats {
        self.shared.stats.snapshot()
    }
}

impl<T> Clone for MpmcReceiver<T> {
    fn clone(&self) -> Self {
        self.shared.rx_count.fetch_add(1, Ordering::SeqCst);
        MpmcReceiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for MpmcSender<T> {
    fn drop(&mut self) {
        self.shared.lanes[self.lane]
            .tx_alive
            .store(false, Ordering::SeqCst);
        // Park-policy receivers must observe the close (their wait
        // condition reads `tx_alive` SeqCst).
        self.shared.hub.wake_not_empty();
    }
}

impl<T> Drop for MpmcReceiver<T> {
    fn drop(&mut self) {
        if self.shared.rx_count.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: blocked senders must observe Closed.
            self.shared.hub.wake_not_full();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_producer_fifo_two_producers() {
        let (mut txs, rx) = mpmc::<(usize, usize)>(2, 4, WaitPolicy::Yield);
        let tx1 = txs.pop().unwrap();
        let tx0 = txs.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..500 {
                    tx0.send((0, i)).unwrap();
                }
            });
            s.spawn(move || {
                for i in 0..500 {
                    tx1.send((1, i)).unwrap();
                }
            });
            let mut next = [0usize; 2];
            for _ in 0..1000 {
                let (p, seq) = rx.recv().unwrap();
                assert_eq!(seq, next[p], "per-producer order for producer {p}");
                next[p] += 1;
            }
        });
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn capacity_bound_per_lane() {
        let (txs, _rx) = mpmc::<u8>(1, 2, WaitPolicy::Spin);
        let tx = &txs[0];
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
    }

    #[test]
    fn unbounded_send_never_reports_full() {
        let (txs, rx) = mpmc_unbounded::<usize>(1, WaitPolicy::Yield);
        let tx = &txs[0];
        // far beyond the internal lane ring capacity
        for i in 0..(MAILBOX_LANE_CAP * 4) {
            tx.send(i).unwrap();
        }
        for i in 0..(MAILBOX_LANE_CAP * 4) {
            assert_eq!(rx.recv().unwrap(), i, "mailbox FIFO across the spill");
        }
        drop(txs);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn closed_only_after_drain() {
        let (txs, rx) = mpmc::<u8>(2, 4, WaitPolicy::Spin);
        txs[0].send(7).unwrap();
        drop(txs);
        assert_eq!(rx.recv(), Ok(7), "item sent before close is delivered");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn send_fails_once_all_receivers_drop() {
        let (txs, rx) = mpmc::<u8>(1, 4, WaitPolicy::Park);
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert!(txs[0].send(1).is_err());
    }

    #[test]
    fn two_consumers_split_the_stream_without_loss() {
        let (txs, rx) = mpmc::<usize>(2, 8, WaitPolicy::Yield);
        let rx2 = rx.clone();
        let total = 2000usize;
        let (mut got1, mut got2) = (Vec::new(), Vec::new());
        std::thread::scope(|s| {
            for tx in txs {
                s.spawn(move || {
                    for i in 0..total / 2 {
                        tx.send(i).unwrap();
                    }
                });
            }
            let h1 = s.spawn(|| {
                let mut v = Vec::new();
                while let Ok(x) = rx.recv() {
                    v.push(x);
                }
                v
            });
            let h2 = s.spawn(|| {
                let mut v = Vec::new();
                while let Ok(x) = rx2.recv() {
                    v.push(x);
                }
                v
            });
            got1 = h1.join().unwrap();
            got2 = h2.join().unwrap();
        });
        let mut all: Vec<usize> = got1.into_iter().chain(got2).collect();
        all.sort_unstable();
        let mut want: Vec<usize> = (0..total / 2).chain(0..total / 2).collect();
        want.sort_unstable();
        assert_eq!(all, want, "every item delivered exactly once");
    }
}
