//! The [`ChanBackend`](self) trait layer: channel endpoints as shared
//! (`&self`) trait objects, selectable between the lock-free ring and a
//! `std::sync::mpsc` baseline at run time.
//!
//! This is what the framework's three channel consumers (the streaming
//! frame driver, the MPI rank mailboxes, the monitor event channel)
//! program against, and what `--chan-backend {ring,mpsc}` switches: the
//! conformance suite re-runs streaming kernels over both backends and
//! asserts byte-identical output, and `ci/BENCH_chan.json` compares
//! their throughput.
//!
//! Capacity semantics: for `bounded(…, producers, cap)` both backends
//! guarantee *at least* `producers × cap` buffered items in aggregate —
//! the ring gives each producer its own `cap`-deep lane, the mpsc
//! baseline one shared buffer of `producers × cap`. The wait policy
//! only steers the ring backend; `std::sync::mpsc` blocks natively.

use crate::errors::{RecvError, SendError, TryRecvError, TrySendError};
use crate::mpmc::{mpmc, mpmc_unbounded, MpmcReceiver, MpmcSender};
use crate::stats::{ChanCounters, ChanStats};
use ezp_core::time::now_ns;
use ezp_core::{ChanBackendKind, ChanTuning};
use std::sync::{mpsc, Arc, Mutex};

/// The sending side of a backend-agnostic channel. `&self` methods so
/// endpoints work as shared trait objects across scoped threads.
pub trait ChanSender<T: Send>: Send + Sync {
    /// Send one item, waiting (bounded channels) while full. Fails only
    /// when every receiver is gone; the item is handed back.
    fn send(&self, value: T) -> Result<(), SendError<T>>;
    /// Send one item without waiting.
    fn try_send(&self, value: T) -> Result<(), TrySendError<T>>;
    /// Snapshot of the channel's activity counters.
    fn stats(&self) -> ChanStats;
}

/// The receiving side of a backend-agnostic channel.
pub trait ChanReceiver<T: Send>: Send + Sync {
    /// Receive one item, waiting while empty. Fails only when the
    /// channel is drained and every sender is gone.
    fn recv(&self) -> Result<T, RecvError>;
    /// Receive one item without waiting.
    fn try_recv(&self) -> Result<T, TryRecvError>;
    /// Snapshot of the channel's activity counters.
    fn stats(&self) -> ChanStats;
}

/// A bounded channel with `producers` sending endpoints and aggregate
/// capacity of at least `producers × cap` (see module docs). The
/// endpoints borrow nothing, but the payload type may (`T: Send + 'a`),
/// so e.g. the streaming engine can move borrowed frame payloads
/// through a channel scoped to one run.
pub fn bounded<'a, T: Send + 'a>(
    tuning: ChanTuning,
    producers: usize,
    cap: usize,
) -> (Vec<Box<dyn ChanSender<T> + 'a>>, Box<dyn ChanReceiver<T> + 'a>) {
    let producers = producers.max(1);
    let cap = cap.max(1);
    match tuning.backend {
        ChanBackendKind::Ring => {
            let (txs, rx) = mpmc(producers, cap, tuning.policy);
            (boxed_senders(txs), Box::new(rx))
        }
        ChanBackendKind::Mpsc => {
            let (tx, rx) = mpsc::sync_channel(producers * cap);
            let stats = Arc::new(ChanCounters::default());
            let senders = (0..producers)
                .map(|_| {
                    Box::new(MpscTx {
                        tx: Mutex::new(MpscTxKind::Bounded(tx.clone())),
                        stats: Arc::clone(&stats),
                    }) as Box<dyn ChanSender<T> + 'a>
                })
                .collect();
            drop(tx);
            (senders, Box::new(MpscRx { rx: Mutex::new(rx), stats }))
        }
    }
}

/// An unbounded (mailbox) channel: `send` never waits. Used where a
/// producer must never block on a slow consumer (MPI rank mailboxes,
/// the monitor's event channel).
pub fn unbounded<'a, T: Send + 'a>(
    tuning: ChanTuning,
    producers: usize,
) -> (Vec<Box<dyn ChanSender<T> + 'a>>, Box<dyn ChanReceiver<T> + 'a>) {
    let producers = producers.max(1);
    match tuning.backend {
        ChanBackendKind::Ring => {
            let (txs, rx) = mpmc_unbounded(producers, tuning.policy);
            (boxed_senders(txs), Box::new(rx))
        }
        ChanBackendKind::Mpsc => {
            let (tx, rx) = mpsc::channel();
            let stats = Arc::new(ChanCounters::default());
            let senders = (0..producers)
                .map(|_| {
                    Box::new(MpscTx {
                        tx: Mutex::new(MpscTxKind::Unbounded(tx.clone())),
                        stats: Arc::clone(&stats),
                    }) as Box<dyn ChanSender<T> + 'a>
                })
                .collect();
            drop(tx);
            (senders, Box::new(MpscRx { rx: Mutex::new(rx), stats }))
        }
    }
}

fn boxed_senders<'a, T: Send + 'a>(txs: Vec<MpmcSender<T>>) -> Vec<Box<dyn ChanSender<T> + 'a>> {
    txs.into_iter()
        .map(|t| Box::new(t) as Box<dyn ChanSender<T> + 'a>)
        .collect()
}

impl<T: Send> ChanSender<T> for MpmcSender<T> {
    fn send(&self, value: T) -> Result<(), SendError<T>> {
        MpmcSender::send(self, value)
    }
    fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        MpmcSender::try_send(self, value)
    }
    fn stats(&self) -> ChanStats {
        MpmcSender::stats(self)
    }
}

impl<T: Send> ChanReceiver<T> for MpmcReceiver<T> {
    fn recv(&self) -> Result<T, RecvError> {
        MpmcReceiver::recv(self)
    }
    fn try_recv(&self) -> Result<T, TryRecvError> {
        MpmcReceiver::try_recv(self)
    }
    fn stats(&self) -> ChanStats {
        MpmcReceiver::stats(self)
    }
}

/// The `std::sync::mpsc` baseline sender. The handle lives behind a
/// mutex rather than relying on toolchain-dependent `Sync` impls for
/// `Sender` — each trait endpoint owns its own handle (one per
/// producer), so the lock is uncontended unless one endpoint is shared
/// across threads.
enum MpscTxKind<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

struct MpscTx<T> {
    tx: Mutex<MpscTxKind<T>>,
    stats: Arc<ChanCounters>,
}

struct MpscRx<T> {
    rx: Mutex<mpsc::Receiver<T>>,
    stats: Arc<ChanCounters>,
}

impl<T: Send> ChanSender<T> for MpscTx<T> {
    fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &*self.tx.lock().expect("mpsc sender lock poisoned") {
            MpscTxKind::Bounded(tx) => match tx.try_send(value) {
                Ok(()) => {
                    ChanCounters::bump(&self.stats.sends);
                    Ok(())
                }
                Err(mpsc::TrySendError::Disconnected(v)) => Err(SendError(v)),
                Err(mpsc::TrySendError::Full(v)) => {
                    ChanCounters::bump(&self.stats.full_stalls);
                    let t0 = now_ns();
                    let res = tx.send(v).map_err(|e| SendError(e.0));
                    self.stats.add_stall_ns(now_ns().saturating_sub(t0));
                    if res.is_ok() {
                        ChanCounters::bump(&self.stats.sends);
                    }
                    res
                }
            },
            MpscTxKind::Unbounded(tx) => {
                let res = tx.send(value).map_err(|e| SendError(e.0));
                if res.is_ok() {
                    ChanCounters::bump(&self.stats.sends);
                }
                res
            }
        }
    }

    fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &*self.tx.lock().expect("mpsc sender lock poisoned") {
            MpscTxKind::Bounded(tx) => match tx.try_send(value) {
                Ok(()) => {
                    ChanCounters::bump(&self.stats.sends);
                    Ok(())
                }
                Err(mpsc::TrySendError::Full(v)) => Err(TrySendError::Full(v)),
                Err(mpsc::TrySendError::Disconnected(v)) => Err(TrySendError::Closed(v)),
            },
            MpscTxKind::Unbounded(tx) => match tx.send(value) {
                Ok(()) => {
                    ChanCounters::bump(&self.stats.sends);
                    Ok(())
                }
                Err(e) => Err(TrySendError::Closed(e.0)),
            },
        }
    }

    fn stats(&self) -> ChanStats {
        self.stats.snapshot()
    }
}

impl<T: Send> ChanReceiver<T> for MpscRx<T> {
    fn recv(&self) -> Result<T, RecvError> {
        let rx = self.rx.lock().expect("mpsc receiver lock poisoned");
        match rx.try_recv() {
            Ok(v) => {
                ChanCounters::bump(&self.stats.recvs);
                Ok(v)
            }
            Err(mpsc::TryRecvError::Disconnected) => Err(RecvError),
            Err(mpsc::TryRecvError::Empty) => {
                ChanCounters::bump(&self.stats.empty_stalls);
                let t0 = now_ns();
                let res = rx.recv().map_err(|_| RecvError);
                self.stats.add_stall_ns(now_ns().saturating_sub(t0));
                if res.is_ok() {
                    ChanCounters::bump(&self.stats.recvs);
                }
                res
            }
        }
    }

    fn try_recv(&self) -> Result<T, TryRecvError> {
        let rx = self.rx.lock().expect("mpsc receiver lock poisoned");
        match rx.try_recv() {
            Ok(v) => {
                ChanCounters::bump(&self.stats.recvs);
                Ok(v)
            }
            Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
            Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Closed),
        }
    }

    fn stats(&self) -> ChanStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::WaitPolicy;

    fn tunings() -> Vec<ChanTuning> {
        let mut v = Vec::new();
        for backend in ChanBackendKind::all() {
            for policy in WaitPolicy::all() {
                v.push(ChanTuning { backend, policy });
            }
        }
        v
    }

    #[test]
    fn both_backends_deliver_everything_in_per_producer_order() {
        for tuning in tunings() {
            let (txs, rx) = bounded::<(usize, usize)>(tuning, 2, 4);
            std::thread::scope(|s| {
                for (p, tx) in txs.into_iter().enumerate() {
                    s.spawn(move || {
                        for i in 0..200 {
                            tx.send((p, i)).unwrap();
                        }
                    });
                }
                let mut next = [0usize; 2];
                for _ in 0..400 {
                    let (p, seq) = rx.recv().unwrap();
                    assert_eq!(seq, next[p], "{tuning:?}: producer {p} order");
                    next[p] += 1;
                }
                assert!(rx.recv().is_err(), "{tuning:?}: closed after drain");
            });
        }
    }

    #[test]
    fn unbounded_send_never_blocks_on_either_backend() {
        for tuning in tunings() {
            let (txs, rx) = unbounded::<usize>(tuning, 1);
            for i in 0..2000 {
                txs[0].send(i).unwrap();
            }
            for i in 0..2000 {
                assert_eq!(rx.recv().unwrap(), i, "{tuning:?}");
            }
        }
    }

    #[test]
    fn stats_flow_through_the_trait_objects() {
        for tuning in tunings() {
            let (txs, rx) = bounded::<u8>(tuning, 1, 2);
            txs[0].send(1).unwrap();
            txs[0].send(2).unwrap();
            rx.recv().unwrap();
            let st = rx.stats();
            assert_eq!((st.sends, st.recvs), (2, 1), "{tuning:?}");
        }
    }
}
