//! # ezp-simsched — deterministic virtual-time multicore simulation
//!
//! The paper's speedup study (Fig. 6) ran on a 6-core lab machine; the
//! tiling-window figures (Fig. 4, Fig. 8) show where each of up to 12
//! threads worked. Reproducing those *shapes* does not require the
//! original hardware: they are properties of (a) the scheduling policy
//! and (b) the per-tile work distribution. This crate replays both in
//! virtual time:
//!
//! * a [`CostMap`] gives every tile a deterministic virtual cost (e.g.
//!   the exact Mandelbrot iteration count of its pixels);
//! * the [`sim`] engine executes the *same* chunk dispensers as the real
//!   thread pool (`ezp_sched::dispenser`), but drives them with a
//!   discrete-event loop over virtual worker clocks — whichever virtual
//!   CPU is idle first grabs the next chunk;
//! * the result is an exact task timeline ([`SimResult`]) convertible to
//!   an `ezp-trace` [`ezp_trace::Trace`], so every monitoring/EASYVIEW
//!   analysis in the workspace also works on simulated executions.
//!
//! Because the event loop is deterministic (ties broken by rank), the
//! whole pipeline — policy comparison, speedup curves, tiling patterns —
//! is reproducible bit-for-bit on any host, including the 1-vCPU
//! container this reproduction was developed in (see DESIGN.md,
//! substitution table).

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod analysis;
pub mod cost;
pub mod sim;
pub mod taskgraph;

pub use analysis::{speedup_curve, SpeedupPoint};
pub use cost::CostMap;
pub use sim::{simulate, simulate_iterations, SimConfig, SimResult, SimTask};
pub use taskgraph::{simulate_taskgraph, TaskGraphSim};
