//! Per-tile virtual cost maps.
//!
//! A [`CostMap`] assigns every tile of a grid a deterministic cost in
//! virtual nanoseconds. Kernels expose *cost models* (e.g. `mandel`'s
//! exact per-pixel iteration counts, `blur`'s border/inner distinction)
//! that the figure-regeneration benches turn into cost maps.

use ezp_core::{Tile, TileGrid};

/// Virtual execution cost of every tile of a grid, in `collapse(2)`
/// linear order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostMap {
    grid: TileGrid,
    costs: Vec<u64>,
}

impl CostMap {
    /// Every tile costs `cost` — the homogeneous-work regime where
    /// "dynamic distribution turns into a regular, cyclic one" (Fig. 8,
    /// pattern 2).
    pub fn uniform(grid: TileGrid, cost: u64) -> Self {
        CostMap {
            grid,
            costs: vec![cost; grid.len()],
        }
    }

    /// Cost of each tile computed by `f` — the general case.
    pub fn from_fn(grid: TileGrid, mut f: impl FnMut(Tile) -> u64) -> Self {
        let costs = grid.iter().map(&mut f).collect();
        CostMap { grid, costs }
    }

    /// Builds from a raw cost vector (must match `grid.len()`).
    pub fn from_vec(grid: TileGrid, costs: Vec<u64>) -> Self {
        assert_eq!(costs.len(), grid.len(), "cost vector length mismatch");
        CostMap { grid, costs }
    }

    /// Builds a cost map from the *measured* task durations of iteration
    /// `iteration` of a recorded trace — the what-if bridge: trace a run
    /// on whatever machine you have (even a 1-CPU laptop), then simulate
    /// "what would 12 cores and a different schedule do with exactly
    /// this workload?". Tiles without a recorded task (lazy kernels)
    /// get cost 0; tiles computed several times accumulate.
    pub fn from_trace(trace: &ezp_trace::Trace, iteration: u32) -> ezp_core::Result<Self> {
        let grid = trace.meta.grid()?;
        let mut costs = vec![0u64; grid.len()];
        for t in trace.tasks_of_iteration(iteration) {
            if t.x < grid.width() && t.y < grid.height() {
                let tile = grid.tile_of_pixel(t.x, t.y);
                costs[grid.linear_index(tile.tx, tile.ty)] += t.duration_ns();
            }
        }
        Ok(CostMap { grid, costs })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Cost of the tile with linear index `i`.
    #[inline]
    pub fn cost(&self, i: usize) -> u64 {
        self.costs[i]
    }

    /// Cost of tile `(tx, ty)`.
    pub fn cost_at(&self, tx: usize, ty: usize) -> u64 {
        self.costs[self.grid.linear_index(tx, ty)]
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when the map has no tiles.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Total sequential cost — the virtual `refTime` a speedup is
    /// computed against.
    pub fn total(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Largest single tile cost — a lower bound on any makespan.
    pub fn max(&self) -> u64 {
        self.costs.iter().copied().max().unwrap_or(0)
    }

    /// Coefficient of variation of tile costs (0 = perfectly uniform),
    /// a scalar measure of the load imbalance the Mandelbrot set causes.
    pub fn imbalance_cv(&self) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        let n = self.costs.len() as f64;
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .costs
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TileGrid {
        TileGrid::square(64, 16).unwrap() // 4x4
    }

    #[test]
    fn uniform_map() {
        let m = CostMap::uniform(grid(), 10);
        assert_eq!(m.len(), 16);
        assert_eq!(m.total(), 160);
        assert_eq!(m.max(), 10);
        assert_eq!(m.cost(7), 10);
        assert_eq!(m.imbalance_cv(), 0.0);
    }

    #[test]
    fn from_fn_sees_tiles_in_linear_order() {
        let m = CostMap::from_fn(grid(), |t| (t.tx + 4 * t.ty) as u64);
        for i in 0..16 {
            assert_eq!(m.cost(i), i as u64);
        }
        assert_eq!(m.cost_at(2, 1), 6);
        assert_eq!(m.total(), 120);
        assert_eq!(m.max(), 15);
    }

    #[test]
    fn skewed_map_has_positive_cv() {
        let m = CostMap::from_fn(grid(), |t| if t.tx == 0 { 100 } else { 1 });
        assert!(m.imbalance_cv() > 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_length() {
        let _ = CostMap::from_vec(grid(), vec![1; 3]);
    }

    #[test]
    fn from_trace_accumulates_measured_durations() {
        use ezp_monitor::report::IterationSpan;
        use ezp_monitor::TileRecord;
        use ezp_trace::{Trace, TraceMeta};
        let mk = |it, x, y, s, e| TileRecord {
            iteration: it,
            x,
            y,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: e,
            worker: 0,
        };
        let trace = Trace {
            meta: TraceMeta {
                kernel: "mandel".into(),
                variant: "omp_tiled".into(),
                dim: 64,
                tile_size: 16,
                threads: 1,
                schedule: "static".into(),
                label: "measured".into(),
            },
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 1000,
            }],
            tasks: vec![
                mk(1, 0, 0, 0, 100),
                mk(1, 0, 0, 100, 150), // same tile again: accumulates
                mk(1, 48, 48, 200, 900),
            ],
            edges: Vec::new(),
            counters: None,
        };
        let costs = CostMap::from_trace(&trace, 1).unwrap();
        assert_eq!(costs.cost_at(0, 0), 150);
        assert_eq!(costs.cost_at(3, 3), 700);
        assert_eq!(costs.cost_at(1, 1), 0); // never computed (lazy hole)
        assert_eq!(costs.total(), 850);
        // and the what-if: simulating this measured map at 2 CPUs
        let sim = crate::simulate(&costs, crate::SimConfig::new(2, ezp_core::Schedule::Dynamic(1)).overhead(0));
        assert_eq!(sim.makespan_ns, 700); // bounded by the heavy tile
    }

    #[test]
    fn zero_cost_map() {
        let m = CostMap::uniform(grid(), 0);
        assert_eq!(m.total(), 0);
        assert_eq!(m.imbalance_cv(), 0.0);
    }
}
