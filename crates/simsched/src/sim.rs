//! The discrete-event scheduling simulator.
//!
//! Virtual CPUs pull chunks from the *real* scheduling dispensers of
//! `ezp-sched` in virtual-time order: the worker whose clock is lowest
//! asks next (ties broken by rank, so the whole simulation is
//! deterministic). Executing a chunk advances the worker's clock by the
//! summed tile costs plus a configurable per-chunk dispatch overhead.

use crate::cost::CostMap;
use ezp_core::{Schedule, WorkerId};
use ezp_monitor::report::IterationSpan;
use ezp_monitor::{MonitorReport, TileRecord};
use ezp_sched::dispenser::dispenser_for;
use ezp_trace::{Trace, TraceMeta};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of virtual CPUs.
    pub threads: usize,
    /// Loop scheduling policy.
    pub schedule: Schedule,
    /// Virtual cost of acquiring one chunk from the dispenser (models
    /// the OpenMP runtime's dispatch overhead; makes tiny chunks of
    /// `dynamic,1` measurably more expensive than `guided`'s big ones).
    pub dispatch_overhead_ns: u64,
}

impl SimConfig {
    /// Config with the given thread count and schedule, default overhead
    /// (100 virtual ns per chunk).
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        SimConfig {
            threads,
            schedule,
            dispatch_overhead_ns: 100,
        }
    }

    /// Builder: override the dispatch overhead.
    pub fn overhead(mut self, ns: u64) -> Self {
        self.dispatch_overhead_ns = ns;
        self
    }
}

/// One simulated task: a tile executed by a virtual CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimTask {
    /// Linear tile index in the grid.
    pub tile_index: usize,
    /// Virtual CPU that executed it.
    pub worker: WorkerId,
    /// Virtual start time (ns).
    pub start_ns: u64,
    /// Virtual end time (ns).
    pub end_ns: u64,
    /// Iteration (1-based).
    pub iteration: u32,
}

/// Outcome of a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// The simulated configuration.
    pub config: SimConfig,
    /// Every executed task, in completion order per worker.
    pub tasks: Vec<SimTask>,
    /// Virtual makespan: when the last worker finished.
    pub makespan_ns: u64,
    /// Busy virtual time per worker (excludes dispatch overhead).
    pub busy_ns: Vec<u64>,
    /// Iteration spans (one per simulated iteration).
    pub iterations: Vec<IterationSpan>,
}

impl SimResult {
    /// Virtual speedup against the sequential execution of the same cost
    /// map(s): `sum(costs) / makespan`.
    pub fn speedup(&self) -> f64 {
        let total: u64 = self.busy_ns.iter().sum();
        if self.makespan_ns == 0 {
            return 1.0;
        }
        total as f64 / self.makespan_ns as f64
    }

    /// Parallel efficiency in `[0, 1]`: speedup / threads.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.config.threads as f64
    }

    /// Which worker executed each tile of iteration `it`, in linear tile
    /// order (`None` = not executed).
    pub fn owners(&self, it: u32, tiles: usize) -> Vec<Option<WorkerId>> {
        let mut owners = vec![None; tiles];
        for t in self.tasks.iter().filter(|t| t.iteration == it) {
            owners[t.tile_index] = Some(t.worker);
        }
        owners
    }

    /// Converts the simulation into a regular trace over `cost_map`'s
    /// grid, so EASYVIEW and the monitor analyses apply unchanged.
    pub fn to_trace(&self, cost_map: &CostMap, kernel: &str, variant: &str) -> Trace {
        let grid = cost_map.grid();
        let mut tasks: Vec<TileRecord> = self
            .tasks
            .iter()
            .map(|t| {
                let tile = grid.tile_at(t.tile_index);
                TileRecord {
                    iteration: t.iteration,
                    x: tile.x,
                    y: tile.y,
                    w: tile.w,
                    h: tile.h,
                    start_ns: t.start_ns,
                    end_ns: t.end_ns,
                    worker: t.worker,
                }
            })
            .collect();
        tasks.sort_by_key(|t| (t.iteration, t.start_ns));
        Trace {
            meta: TraceMeta {
                kernel: kernel.to_string(),
                variant: variant.to_string(),
                dim: grid.width(),
                tile_size: grid.tile_w(),
                threads: self.config.threads,
                schedule: self.config.schedule.as_omp_str(),
                label: format!("sim {kernel}/{variant} P={}", self.config.threads),
            },
            iterations: self.iterations.clone(),
            tasks,
            edges: Vec::new(),
            counters: None,
        }
    }

    /// Re-materializes a [`MonitorReport`] for tiling/activity analyses.
    pub fn to_report(&self, cost_map: &CostMap, kernel: &str, variant: &str) -> MonitorReport {
        self.to_trace(cost_map, kernel, variant)
            .to_report()
            .expect("simulated trace is always well-formed")
    }
}

/// Simulates one iteration (one scheduled loop over all tiles).
pub fn simulate(cost_map: &CostMap, config: SimConfig) -> SimResult {
    simulate_iterations(cost_map, config, 1)
}

/// Simulates `iterations` successive scheduled loops over the same cost
/// map (a fresh dispenser per iteration, workers re-synchronized at the
/// implicit barrier between loops, like `#pragma omp for` in Fig. 2).
pub fn simulate_iterations(cost_map: &CostMap, config: SimConfig, iterations: u32) -> SimResult {
    assert!(config.threads > 0, "simulation needs at least one CPU");
    let n = cost_map.len();
    let mut tasks = Vec::with_capacity(n * iterations as usize);
    let mut busy_ns = vec![0u64; config.threads];
    let mut spans = Vec::with_capacity(iterations as usize);
    let mut now = 0u64; // barrier time at the start of each iteration

    for it in 1..=iterations {
        let disp = dispenser_for(config.schedule, n, config.threads);
        // min-heap of (available_time, rank): lowest clock asks first
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..config.threads).map(|r| Reverse((now, r))).collect();
        let mut iter_end = now;
        while let Some(Reverse((t, rank))) = heap.pop() {
            match disp.next(rank) {
                Some((start, len)) => {
                    let mut clock = t + config.dispatch_overhead_ns;
                    for i in start..start + len {
                        let cost = cost_map.cost(i);
                        tasks.push(SimTask {
                            tile_index: i,
                            worker: rank,
                            start_ns: clock,
                            end_ns: clock + cost,
                            iteration: it,
                        });
                        busy_ns[rank] += cost;
                        clock += cost;
                    }
                    iter_end = iter_end.max(clock);
                    heap.push(Reverse((clock, rank)));
                }
                None => {
                    // worker done for this iteration; barrier at loop end
                    iter_end = iter_end.max(t);
                }
            }
        }
        spans.push(IterationSpan {
            iteration: it,
            start_ns: now,
            end_ns: iter_end,
        });
        now = iter_end;
    }

    SimResult {
        config,
        tasks,
        makespan_ns: now,
        busy_ns,
        iterations: spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::any_u64;

    fn grid4() -> TileGrid {
        TileGrid::square(64, 16).unwrap() // 4x4 = 16 tiles
    }

    fn no_overhead(threads: usize, s: Schedule) -> SimConfig {
        SimConfig::new(threads, s).overhead(0)
    }

    #[test]
    fn single_cpu_makespan_is_total_cost() {
        let m = CostMap::uniform(grid4(), 10);
        let r = simulate(&m, no_overhead(1, Schedule::Static));
        assert_eq!(r.makespan_ns, 160);
        assert_eq!(r.busy_ns, vec![160]);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
        assert_eq!(r.tasks.len(), 16);
    }

    #[test]
    fn uniform_work_scales_almost_linearly() {
        let m = CostMap::uniform(grid4(), 100);
        for sched in [
            Schedule::Static,
            Schedule::Dynamic(1),
            Schedule::Guided(1),
            Schedule::NonmonotonicDynamic(1),
        ] {
            let r = simulate(&m, no_overhead(4, sched));
            assert_eq!(r.makespan_ns, 400, "{sched:?}");
            assert!((r.speedup() - 4.0).abs() < 1e-9, "{sched:?}");
            assert!((r.efficiency() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn every_tile_executed_exactly_once_per_iteration() {
        let m = CostMap::from_fn(grid4(), |t| 1 + (t.tx * 7 + t.ty * 13) as u64);
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(2),
            Schedule::Guided(2),
            Schedule::NonmonotonicDynamic(1),
        ] {
            let r = simulate_iterations(&m, no_overhead(3, sched), 4);
            assert_eq!(r.tasks.len(), 16 * 4);
            for it in 1..=4 {
                let mut count = [0usize; 16];
                for t in r.tasks.iter().filter(|t| t.iteration == it) {
                    count[t.tile_index] += 1;
                }
                assert!(count.iter().all(|&c| c == 1), "{sched:?} iteration {it}");
            }
        }
    }

    #[test]
    fn makespan_bounds_hold() {
        let m = CostMap::from_fn(grid4(), |t| if t.tx == 0 && t.ty == 0 { 1000 } else { 10 });
        for threads in [1, 2, 4, 8] {
            let r = simulate(&m, no_overhead(threads, Schedule::Dynamic(1)));
            let total = m.total();
            assert!(r.makespan_ns >= total / threads as u64, "work bound");
            assert!(r.makespan_ns >= m.max(), "critical-path bound");
            assert!(r.makespan_ns <= total, "never slower than sequential");
        }
    }

    #[test]
    fn dynamic_beats_static_under_imbalance() {
        // the Fig. 3 situation: one heavy region, static suffers
        let grid = TileGrid::square(256, 16).unwrap(); // 16x16 tiles
        let m = CostMap::from_fn(grid, |t| if t.ty >= 12 { 1000 } else { 10 });
        let stat = simulate(&m, no_overhead(4, Schedule::Static));
        let dyn1 = simulate(&m, no_overhead(4, Schedule::Dynamic(1)));
        let steal = simulate(&m, no_overhead(4, Schedule::NonmonotonicDynamic(1)));
        let guided = simulate(&m, no_overhead(4, Schedule::Guided(1)));
        assert!(
            dyn1.speedup() > stat.speedup() * 1.3,
            "dynamic {:.2} should beat static {:.2} clearly",
            dyn1.speedup(),
            stat.speedup()
        );
        assert!(steal.speedup() > stat.speedup() * 1.3);
        assert!(guided.speedup() > stat.speedup());
    }

    #[test]
    fn static_assignment_is_contiguous_blocks() {
        let m = CostMap::uniform(grid4(), 5);
        let r = simulate(&m, no_overhead(4, Schedule::Static));
        let owners = r.owners(1, 16);
        // 16 tiles / 4 threads: tiles 0..4 -> worker 0, 4..8 -> 1, ...
        for (i, o) in owners.iter().enumerate() {
            assert_eq!(*o, Some(i / 4));
        }
    }

    #[test]
    fn overhead_penalizes_small_chunks() {
        let m = CostMap::uniform(grid4(), 100);
        let cfg_small = SimConfig::new(4, Schedule::Dynamic(1)).overhead(50);
        let cfg_big = SimConfig::new(4, Schedule::Dynamic(4)).overhead(50);
        let small = simulate(&m, cfg_small);
        let big = simulate(&m, cfg_big);
        assert!(
            small.makespan_ns > big.makespan_ns,
            "per-chunk overhead should hurt dynamic,1 ({} vs {})",
            small.makespan_ns,
            big.makespan_ns
        );
    }

    #[test]
    fn iterations_are_barrier_separated() {
        let m = CostMap::uniform(grid4(), 10);
        let r = simulate_iterations(&m, no_overhead(2, Schedule::Static), 3);
        assert_eq!(r.iterations.len(), 3);
        for w in r.iterations.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "barrier between iterations");
        }
        // no task of iteration k+1 starts before iteration k ended
        for t in &r.tasks {
            let span = r.iterations[(t.iteration - 1) as usize];
            assert!(t.start_ns >= span.start_ns && t.end_ns <= span.end_ns);
        }
    }

    #[test]
    fn trace_conversion_is_valid_and_analyzable() {
        let m = CostMap::from_fn(grid4(), |t| 10 + t.tx as u64);
        let r = simulate_iterations(&m, no_overhead(2, Schedule::Dynamic(2)), 2);
        let trace = r.to_trace(&m, "mandel", "omp_tiled");
        assert!(trace.validate().is_ok());
        assert_eq!(trace.meta.threads, 2);
        assert_eq!(trace.tasks.len(), 32);
        let report = r.to_report(&m, "mandel", "omp_tiled");
        let snap = report.tiling_snapshot(1);
        assert_eq!(snap.computed_tiles(), 16);
    }

    #[test]
    fn determinism() {
        let m = CostMap::from_fn(grid4(), |t| 1 + (t.tx ^ t.ty) as u64 * 17);
        for sched in [Schedule::Dynamic(1), Schedule::Guided(1), Schedule::NonmonotonicDynamic(2)] {
            let a = simulate_iterations(&m, no_overhead(3, sched), 2);
            let b = simulate_iterations(&m, no_overhead(3, sched), 2);
            assert_eq!(a, b, "{sched:?} must be deterministic");
        }
    }

    #[test]
    fn more_threads_never_slow_down_uniform_work() {
        let m = CostMap::uniform(TileGrid::square(128, 16).unwrap(), 50);
        let mut prev = u64::MAX;
        for threads in [1, 2, 4, 8] {
            let r = simulate(&m, no_overhead(threads, Schedule::Dynamic(1)));
            assert!(r.makespan_ns <= prev);
            prev = r.makespan_ns;
        }
    }

    ezp_proptest! {
        #![cases(48)]

        fn prop_sim_invariants(
            dim_tiles in 1usize..8,
            threads in 1usize..7,
            which in 0usize..5,
            k in 1usize..4,
            seed in any_u64(),
        ) {
            let grid = TileGrid::square(dim_tiles * 8, 8).unwrap();
            let mut state = seed;
            let m = CostMap::from_fn(grid, |_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                1 + (state >> 33) % 100
            });
            let sched = match which {
                0 => Schedule::Static,
                1 => Schedule::StaticChunk(k),
                2 => Schedule::Dynamic(k),
                3 => Schedule::Guided(k),
                _ => Schedule::NonmonotonicDynamic(k),
            };
            let r = simulate(&m, no_overhead(threads, sched));
            // exact coverage
            assert_eq!(r.tasks.len(), m.len());
            // work and critical-path lower bounds, sequential upper bound
            let total = m.total();
            assert!(r.makespan_ns >= total.div_ceil(threads as u64));
            assert!(r.makespan_ns >= m.max());
            assert!(r.makespan_ns <= total);
            // per-worker tasks never overlap in time
            let mut per_worker: Vec<Vec<&SimTask>> = vec![Vec::new(); threads];
            for t in &r.tasks {
                per_worker[t.worker].push(t);
            }
            for tasks in &mut per_worker {
                tasks.sort_by_key(|t| t.start_ns);
                for w in tasks.windows(2) {
                    assert!(w[0].end_ns <= w[1].start_ns);
                }
            }
            // busy accounting matches task durations
            for (w, &busy) in r.busy_ns.iter().enumerate() {
                let sum: u64 = r.tasks.iter().filter(|t| t.worker == w)
                    .map(|t| t.end_ns - t.start_ns).sum();
                assert_eq!(busy, sum);
            }
        }
    }
}
