//! Speedup curves and policy sweeps over simulated executions — the
//! machinery behind the Fig. 6 reproduction.

use crate::cost::CostMap;
use crate::sim::{simulate_iterations, SimConfig};
use ezp_core::Schedule;

/// One point of a speedup curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedupPoint {
    /// Thread count.
    pub threads: usize,
    /// Virtual makespan at that thread count (ns).
    pub makespan_ns: u64,
    /// Speedup against the 1-thread virtual reference time.
    pub speedup: f64,
}

/// Simulates `schedule` over `cost_map` for every thread count in
/// `thread_counts`, `iterations` loops each, and returns the speedup
/// curve relative to the sequential virtual time (like `easyplot
/// --speedup`, which divides `refTime` by each completion time).
pub fn speedup_curve(
    cost_map: &CostMap,
    schedule: Schedule,
    thread_counts: &[usize],
    iterations: u32,
    dispatch_overhead_ns: u64,
) -> Vec<SpeedupPoint> {
    let ref_time = simulate_iterations(
        cost_map,
        SimConfig::new(1, Schedule::Static).overhead(dispatch_overhead_ns),
        iterations,
    )
    .makespan_ns;
    thread_counts
        .iter()
        .map(|&threads| {
            let r = simulate_iterations(
                cost_map,
                SimConfig::new(threads, schedule).overhead(dispatch_overhead_ns),
                iterations,
            );
            SpeedupPoint {
                threads,
                makespan_ns: r.makespan_ns,
                speedup: ref_time as f64 / r.makespan_ns.max(1) as f64,
            }
        })
        .collect()
}

/// Sweeps several schedules at once; returns `(schedule, curve)` pairs —
/// one plotline per schedule, like the legend of Fig. 6.
pub fn schedule_comparison(
    cost_map: &CostMap,
    schedules: &[Schedule],
    thread_counts: &[usize],
    iterations: u32,
    dispatch_overhead_ns: u64,
) -> Vec<(Schedule, Vec<SpeedupPoint>)> {
    schedules
        .iter()
        .map(|&s| {
            (
                s,
                speedup_curve(cost_map, s, thread_counts, iterations, dispatch_overhead_ns),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;

    fn mandel_like_costs() -> CostMap {
        // heavy band at the bottom, like the Mandelbrot black area
        let grid = TileGrid::square(256, 16).unwrap();
        CostMap::from_fn(grid, |t| if t.ty >= 12 { 2000 } else { 50 })
    }

    #[test]
    fn speedup_at_one_thread_is_one() {
        let m = mandel_like_costs();
        let curve = speedup_curve(&m, Schedule::Static, &[1], 2, 0);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_curve_dominates_static_under_imbalance() {
        let m = mandel_like_costs();
        let threads = [2, 4, 6, 8, 10, 12];
        let stat = speedup_curve(&m, Schedule::Static, &threads, 1, 0);
        let dynamic = speedup_curve(&m, Schedule::Dynamic(2), &threads, 1, 0);
        for (s, d) in stat.iter().zip(&dynamic) {
            assert!(
                d.speedup >= s.speedup,
                "dynamic {:.2} below static {:.2} at {} threads",
                d.speedup,
                s.speedup,
                s.threads
            );
        }
        // and clearly so at high thread counts
        assert!(dynamic[5].speedup > stat[5].speedup * 1.2);
    }

    #[test]
    fn speedup_is_monotonic_for_dynamic_without_overhead() {
        let m = mandel_like_costs();
        let curve = speedup_curve(&m, Schedule::Dynamic(1), &[1, 2, 4, 8], 1, 0);
        for w in curve.windows(2) {
            assert!(w[1].speedup >= w[0].speedup - 1e-9);
        }
    }

    #[test]
    fn comparison_has_one_curve_per_schedule() {
        let m = mandel_like_costs();
        let schedules = Schedule::paper_policies();
        let cmp = schedule_comparison(&m, &schedules, &[2, 4], 1, 100);
        assert_eq!(cmp.len(), 4);
        for (s, curve) in &cmp {
            assert!(schedules.contains(s));
            assert_eq!(curve.len(), 2);
            for p in curve {
                assert!(p.speedup > 0.0);
            }
        }
    }
}
