//! Virtual-time execution of dependency task graphs (Fig. 11/12).
//!
//! List scheduling in a discrete-event loop: a task becomes *ready* when
//! its last predecessor completes; whenever a virtual CPU is free, it
//! takes the oldest ready task. This is the same greedy policy the real
//! [`ezp_sched::TaskGraph::run`] implements with worker threads, so the
//! virtual timeline has the exact dependency structure of a real run —
//! minus the single-host-CPU serialization that would otherwise mask
//! the diagonal parallelism of the ccomp wavefront.

use crate::sim::SimTask;
use ezp_sched::TaskGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Result of a simulated task-graph execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskGraphSim {
    /// One entry per task (same `tile_index` = task id convention as
    /// loop simulations; `iteration` is always 1).
    pub tasks: Vec<SimTask>,
    /// Virtual completion time.
    pub makespan_ns: u64,
    /// Busy time per virtual CPU.
    pub busy_ns: Vec<u64>,
    /// The critical-path length (longest cost-weighted dependency
    /// chain) — the theoretical lower bound on any schedule.
    pub critical_path_ns: u64,
}

impl TaskGraphSim {
    /// Parallel speedup over sequential execution of all tasks.
    pub fn speedup(&self) -> f64 {
        let total: u64 = self.busy_ns.iter().sum();
        if self.makespan_ns == 0 {
            1.0
        } else {
            total as f64 / self.makespan_ns as f64
        }
    }

    /// Maximum number of tasks executing simultaneously in virtual time.
    pub fn max_parallelism(&self) -> usize {
        let mut events: Vec<(u64, i32)> = Vec::with_capacity(self.tasks.len() * 2);
        for t in &self.tasks {
            events.push((t.start_ns, 1));
            events.push((t.end_ns, -1));
        }
        events.sort_by_key(|&(t, d)| (t, d)); // ends (-1) before starts at ties
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, d) in events {
            cur += d;
            max = max.max(cur);
        }
        max.max(0) as usize
    }
}

/// Simulates `graph` on `threads` virtual CPUs, task `i` costing
/// `costs[i]` virtual ns.
///
/// # Panics
///
/// Panics when `costs.len() != graph.len()` or when the graph has a
/// cycle (use [`TaskGraph::run_seq`] first to validate untrusted graphs).
pub fn simulate_taskgraph(graph: &TaskGraph, costs: &[u64], threads: usize) -> TaskGraphSim {
    assert_eq!(costs.len(), graph.len(), "one cost per task");
    assert!(threads > 0, "need at least one CPU");
    let n = graph.len();
    let mut indegree: Vec<usize> = (0..n).map(|t| graph.indegree(t)).collect();
    // ready tasks, FIFO within equal release times
    let mut ready: VecDeque<usize> = (0..n).filter(|&t| indegree[t] == 0).collect();
    // free CPUs as (free_at, cpu) min-heap
    let mut cpus: BinaryHeap<Reverse<(u64, usize)>> =
        (0..threads).map(|c| Reverse((0u64, c))).collect();
    // tasks completing, as (end, task) min-heap
    let mut running: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut tasks: Vec<SimTask> = Vec::with_capacity(n);
    let mut busy_ns = vec![0u64; threads];
    let mut done = 0usize;
    let mut makespan = 0u64;

    while done < n {
        if let Some(&Reverse((cpu_free, _))) = cpus.peek() {
            if let Some(task) = ready.pop_front() {
                let Reverse((_, cpu)) = cpus.pop().unwrap();
                // a CPU may be free before the task was released; start
                // no earlier than the release (dependency) time, which is
                // encoded by when the task entered `ready` — we track it
                // through the completion events below, so `cpu_free` is
                // already >= release when the task is popped here.
                let start = cpu_free;
                let end = start + costs[task];
                tasks.push(SimTask {
                    tile_index: task,
                    worker: cpu,
                    start_ns: start,
                    end_ns: end,
                    iteration: 1,
                });
                busy_ns[cpu] += costs[task];
                makespan = makespan.max(end);
                running.push(Reverse((end, task)));
                cpus.push(Reverse((end, cpu)));
                continue;
            }
        }
        // no ready task (or no CPU): advance time to the next completion
        let Reverse((end, finished)) = running.pop().expect("cycle: nothing running, nothing ready");
        // fast-forward idle CPUs to the completion time so their next
        // task cannot start before its dependencies resolved
        let mut parked = Vec::new();
        while let Some(&Reverse((free, cpu))) = cpus.peek() {
            if free < end {
                cpus.pop();
                parked.push(cpu);
            } else {
                break;
            }
        }
        for cpu in parked {
            cpus.push(Reverse((end, cpu)));
        }
        for &d in graph.dependents(finished) {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push_back(d);
            }
        }
        done += 1;
    }

    // critical path by longest-path DP over a topological order
    let mut dist = vec![0u64; n];
    let mut order = Vec::with_capacity(n);
    graph.run_seq(|t, _| order.push(t)).expect("acyclic");
    let mut critical = 0u64;
    for &t in &order {
        dist[t] += costs[t];
        critical = critical.max(dist[t]);
        for &d in graph.dependents(t) {
            dist[d] = dist[d].max(dist[t]);
        }
    }

    TaskGraphSim {
        tasks,
        makespan_ns: makespan,
        busy_ns,
        critical_path_ns: critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;

    #[test]
    fn independent_tasks_fill_all_cpus() {
        let graph = TaskGraph::new(8);
        let sim = simulate_taskgraph(&graph, &[10; 8], 4);
        assert_eq!(sim.makespan_ns, 20);
        assert_eq!(sim.max_parallelism(), 4);
        assert!((sim.speedup() - 4.0).abs() < 1e-9);
        assert_eq!(sim.critical_path_ns, 10);
    }

    #[test]
    fn chain_is_fully_sequential() {
        let mut graph = TaskGraph::new(5);
        for i in 0..4 {
            graph.add_dep(i, i + 1);
        }
        let sim = simulate_taskgraph(&graph, &[7; 5], 4);
        assert_eq!(sim.makespan_ns, 35);
        assert_eq!(sim.max_parallelism(), 1);
        assert_eq!(sim.critical_path_ns, 35);
    }

    #[test]
    fn dependencies_are_never_violated() {
        let grid = TileGrid::square(80, 10).unwrap(); // 8x8 wavefront
        let graph = TaskGraph::down_right_wavefront(&grid);
        let costs: Vec<u64> = (0..64).map(|i| 5 + (i % 7) as u64).collect();
        let sim = simulate_taskgraph(&graph, &costs, 4);
        let end_of: std::collections::HashMap<usize, u64> =
            sim.tasks.iter().map(|t| (t.tile_index, t.end_ns)).collect();
        for t in &sim.tasks {
            for pred in 0..64 {
                if graph.dependents(pred).contains(&t.tile_index) {
                    assert!(
                        end_of[&pred] <= t.start_ns,
                        "task {} started before predecessor {} finished",
                        t.tile_index,
                        pred
                    );
                }
            }
        }
        // makespan bounds
        let total: u64 = costs.iter().sum();
        assert!(sim.makespan_ns >= sim.critical_path_ns);
        assert!(sim.makespan_ns >= total / 4);
        assert!(sim.makespan_ns <= total);
    }

    #[test]
    fn wavefront_exposes_diagonal_parallelism() {
        // the Fig. 12 property: an 8x8 wavefront on 4 CPUs overlaps
        // tasks (up to min(diagonal, CPUs))
        let grid = TileGrid::square(64, 8).unwrap();
        let graph = TaskGraph::down_right_wavefront(&grid);
        let sim = simulate_taskgraph(&graph, &[10; 64], 4);
        assert!(sim.max_parallelism() >= 3, "got {}", sim.max_parallelism());
        assert!(sim.speedup() > 2.0);
        // and with one CPU it degenerates to sequential
        let seq = simulate_taskgraph(&graph, &[10; 64], 1);
        assert_eq!(seq.max_parallelism(), 1);
        assert_eq!(seq.makespan_ns, 640);
    }

    #[test]
    fn heterogeneous_costs_respect_critical_path() {
        // diamond with one heavy branch
        let mut graph = TaskGraph::new(4);
        graph.add_dep(0, 1);
        graph.add_dep(0, 2);
        graph.add_dep(1, 3);
        graph.add_dep(2, 3);
        let sim = simulate_taskgraph(&graph, &[5, 100, 10, 5], 2);
        assert_eq!(sim.critical_path_ns, 110);
        assert_eq!(sim.makespan_ns, 110); // 2 CPUs hide the cheap branch
    }
}
