//! # ezp-gpu — a virtual OpenCL-style device (paper §V, future work)
//!
//! EASYPAP lets students run kernels written in OpenCL but, at the time
//! of the paper, "monitoring and trace exploration are not yet
//! implemented. These features will soon be developed by leveraging
//! OpenCL profiling events." This crate supplies both halves as a
//! simulation (no GPU in this environment, see DESIGN.md): an SPMD
//! execution model — a per-work-item function applied over an NDRange
//! decomposed into work-groups — and per-work-group profiling events
//! scheduled onto a configurable number of virtual compute units.
//!
//! The work-group decomposition reuses [`ezp_core::TileGrid`], so GPU
//! profiling events convert into ordinary tile traces and the whole
//! EASYVIEW tooling applies to "GPU" runs too — the integration the
//! paper announces as future work.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod device;
pub mod profile;

pub use device::{NdRange, VirtualDevice};
pub use profile::{LaunchProfile, ProfilingEvent};
