//! The virtual SPMD device: NDRange launches over work-groups.
//!
//! A launch executes a per-work-item function `f(x, y, src) -> pixel`
//! over every pixel of the range, work-group by work-group (the host
//! actually computes the pixels, so results are exact); each
//! work-group's measured cost is then scheduled onto the device's
//! virtual compute units with a greedy earliest-CU-first policy — the
//! same discrete-event idea as `ezp-simsched`, matching how real GPUs
//! dispatch work-groups to CUs.

use crate::profile::{LaunchProfile, ProfilingEvent};
use ezp_core::error::Result;
use ezp_core::{Img2D, Rgba, TileGrid};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An OpenCL-style NDRange: global size + work-group (local) size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NdRange {
    /// Global width and height in work-items (pixels).
    pub global: (usize, usize),
    /// Work-group width and height.
    pub local: (usize, usize),
}

impl NdRange {
    /// Square range with square groups — the EASYPAP default.
    pub fn square(dim: usize, group: usize) -> Self {
        NdRange {
            global: (dim, dim),
            local: (group, group),
        }
    }

    /// The work-group decomposition as a tile grid (edge groups clipped,
    /// slightly more permissive than strict OpenCL divisibility).
    pub fn grid(&self) -> Result<TileGrid> {
        TileGrid::new(self.global.0, self.global.1, self.local.0, self.local.1)
    }
}

/// A simulated accelerator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualDevice {
    /// Device name reported in traces (like `clGetDeviceInfo`).
    pub name: String,
    /// Number of virtual compute units work-groups are scheduled on.
    pub compute_units: usize,
}

impl VirtualDevice {
    /// A device with `compute_units` CUs.
    pub fn new(compute_units: usize) -> Self {
        assert!(compute_units > 0, "device needs at least one CU");
        VirtualDevice {
            name: format!("ezp-virtual-gpu ({compute_units} CUs)"),
            compute_units,
        }
    }

    /// Launches `f` over `range`, reading `src`, returning the output
    /// image and the profiling events.
    ///
    /// Work-group costs are *measured* host times (ns), so heavy areas
    /// (e.g. the Mandelbrot set interior) produce genuinely longer
    /// events, exactly what the paper wants students to observe.
    pub fn launch(
        &self,
        range: NdRange,
        src: &Img2D<Rgba>,
        f: impl Fn(usize, usize, &Img2D<Rgba>) -> Rgba,
    ) -> Result<(Img2D<Rgba>, LaunchProfile)> {
        let grid = range.grid()?;
        let mut dst = Img2D::new(range.global.0, range.global.1);
        // 1) execute every work-group on the host, measuring durations
        let mut durations = Vec::with_capacity(grid.len());
        for t in grid.iter() {
            let start = std::time::Instant::now();
            for y in t.y..t.y + t.h {
                for x in t.x..t.x + t.w {
                    dst.set(x, y, f(x, y, src));
                }
            }
            // clamp to >= 1ns so every event is visible in a Gantt chart
            durations.push((t, (start.elapsed().as_nanos() as u64).max(1)));
        }
        // 2) schedule the measured costs onto the virtual CUs
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..self.compute_units).map(|cu| Reverse((0u64, cu))).collect();
        let mut events = Vec::with_capacity(grid.len());
        let mut makespan = 0u64;
        for (t, cost) in durations {
            let Reverse((free_at, cu)) = heap.pop().expect("at least one CU");
            let end = free_at + cost;
            events.push(ProfilingEvent {
                group: (t.tx, t.ty),
                cu,
                start_ns: free_at,
                end_ns: end,
            });
            makespan = makespan.max(end);
            heap.push(Reverse((end, cu)));
        }
        Ok((
            dst,
            LaunchProfile {
                compute_units: self.compute_units,
                events,
                makespan_ns: makespan,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_computes_every_pixel() {
        let dev = VirtualDevice::new(4);
        let src: Img2D<Rgba> = Img2D::square(32);
        let (out, profile) = dev
            .launch(NdRange::square(32, 8), &src, |x, y, _| {
                Rgba((x + 100 * y) as u32)
            })
            .unwrap();
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(out.get(x, y), Rgba((x + 100 * y) as u32));
            }
        }
        assert_eq!(profile.events.len(), 16);
    }

    #[test]
    fn kernel_reads_source_image() {
        let dev = VirtualDevice::new(2);
        let mut src: Img2D<Rgba> = Img2D::square(8);
        src.set(3, 4, Rgba::RED);
        // identity copy kernel
        let (out, _) = dev
            .launch(NdRange::square(8, 4), &src, |x, y, s| s.get(x, y))
            .unwrap();
        assert_eq!(out.get(3, 4), Rgba::RED);
        assert_eq!(out.get(0, 0), Rgba::TRANSPARENT);
    }

    #[test]
    fn events_cover_all_groups_once() {
        let dev = VirtualDevice::new(3);
        let src: Img2D<Rgba> = Img2D::square(40);
        let (_, profile) = dev
            .launch(NdRange::square(40, 16), &src, |_, _, _| Rgba::WHITE)
            .unwrap();
        // 40/16 -> 3x3 groups (clipped edges)
        assert_eq!(profile.events.len(), 9);
        let mut seen = std::collections::HashSet::new();
        for e in &profile.events {
            assert!(seen.insert(e.group), "group dispatched twice");
            assert!(e.cu < 3);
            assert!(e.end_ns > e.start_ns);
        }
    }

    #[test]
    fn per_cu_events_never_overlap() {
        let dev = VirtualDevice::new(2);
        let src: Img2D<Rgba> = Img2D::square(64);
        let (_, profile) = dev
            .launch(NdRange::square(64, 8), &src, |x, y, _| {
                // make cost vary by position
                let mut acc = 0u32;
                for i in 0..(x + y) {
                    acc = acc.wrapping_add(i as u32);
                }
                Rgba(acc)
            })
            .unwrap();
        for cu in 0..2 {
            let mut evs: Vec<_> = profile.events.iter().filter(|e| e.cu == cu).collect();
            evs.sort_by_key(|e| e.start_ns);
            for w in evs.windows(2) {
                assert!(w[0].end_ns <= w[1].start_ns);
            }
        }
        assert!(profile.occupancy() > 0.0);
    }

    #[test]
    fn trace_round_trip_through_view_model() {
        let dev = VirtualDevice::new(2);
        let src: Img2D<Rgba> = Img2D::square(32);
        let (_, profile) = dev
            .launch(NdRange::square(32, 16), &src, |_, _, _| Rgba::BLACK)
            .unwrap();
        let grid = NdRange::square(32, 16).grid().unwrap();
        let trace = profile.to_trace(&grid, "invert").unwrap();
        assert_eq!(trace.tasks.len(), 4);
        assert_eq!(trace.meta.threads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn zero_cu_rejected() {
        let _ = VirtualDevice::new(0);
    }
}
