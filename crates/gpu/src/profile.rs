//! OpenCL-style profiling events for work-group execution.

use ezp_core::error::Result;
use ezp_core::TileGrid;
use ezp_monitor::report::IterationSpan;
use ezp_monitor::TileRecord;
use ezp_trace::{Trace, TraceMeta};

/// One executed work-group, with `CL_PROFILING_COMMAND_{START,END}`-like
/// virtual timestamps and the compute unit that ran it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfilingEvent {
    /// Work-group coordinates in the NDRange grid.
    pub group: (usize, usize),
    /// Virtual compute unit that executed the group.
    pub cu: usize,
    /// Virtual start time (ns).
    pub start_ns: u64,
    /// Virtual end time (ns).
    pub end_ns: u64,
}

impl ProfilingEvent {
    /// Execution duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// The profile of one kernel launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaunchProfile {
    /// Number of virtual compute units of the device.
    pub compute_units: usize,
    /// One event per work-group.
    pub events: Vec<ProfilingEvent>,
    /// Virtual completion time of the launch.
    pub makespan_ns: u64,
}

impl LaunchProfile {
    /// Busy virtual time per compute unit.
    pub fn busy_per_cu(&self) -> Vec<u64> {
        let mut busy = vec![0u64; self.compute_units];
        for e in &self.events {
            busy[e.cu] += e.duration_ns();
        }
        busy
    }

    /// Device occupancy in `[0, 1]`: mean CU busy time over makespan.
    pub fn occupancy(&self) -> f64 {
        if self.makespan_ns == 0 || self.compute_units == 0 {
            return 0.0;
        }
        let total: u64 = self.busy_per_cu().iter().sum();
        total as f64 / (self.makespan_ns as f64 * self.compute_units as f64)
    }

    /// Converts the profile to a standard trace over `grid` (work-groups
    /// become tiles, compute units become workers), unlocking EASYVIEW.
    pub fn to_trace(&self, grid: &TileGrid, kernel: &str) -> Result<Trace> {
        let mut tasks: Vec<TileRecord> = self
            .events
            .iter()
            .map(|e| {
                let t = grid.tile(e.group.0, e.group.1);
                TileRecord {
                    iteration: 1,
                    x: t.x,
                    y: t.y,
                    w: t.w,
                    h: t.h,
                    start_ns: e.start_ns,
                    end_ns: e.end_ns,
                    worker: e.cu,
                }
            })
            .collect();
        tasks.sort_by_key(|t| (t.iteration, t.start_ns));
        let trace = Trace {
            meta: TraceMeta {
                kernel: kernel.to_string(),
                variant: "gpu".to_string(),
                dim: grid.width(),
                tile_size: grid.tile_w(),
                threads: self.compute_units,
                schedule: "gpu-workgroups".to_string(),
                label: format!("gpu {kernel} ({} CUs)", self.compute_units),
            },
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: self.makespan_ns,
            }],
            tasks,
            edges: Vec::new(),
            counters: None,
        };
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LaunchProfile {
        LaunchProfile {
            compute_units: 2,
            events: vec![
                ProfilingEvent {
                    group: (0, 0),
                    cu: 0,
                    start_ns: 0,
                    end_ns: 100,
                },
                ProfilingEvent {
                    group: (1, 0),
                    cu: 1,
                    start_ns: 0,
                    end_ns: 60,
                },
                ProfilingEvent {
                    group: (0, 1),
                    cu: 1,
                    start_ns: 60,
                    end_ns: 120,
                },
                ProfilingEvent {
                    group: (1, 1),
                    cu: 0,
                    start_ns: 100,
                    end_ns: 150,
                },
            ],
            makespan_ns: 150,
        }
    }

    #[test]
    fn busy_accounting() {
        let p = profile();
        assert_eq!(p.busy_per_cu(), vec![150, 120]);
        assert!((p.occupancy() - 270.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn trace_conversion() {
        let grid = TileGrid::square(32, 16).unwrap();
        let t = profile().to_trace(&grid, "mandel").unwrap();
        assert_eq!(t.meta.variant, "gpu");
        assert_eq!(t.tasks.len(), 4);
        assert_eq!(t.iterations.len(), 1);
        let report = t.to_report().unwrap();
        assert_eq!(report.tiling_snapshot(1).computed_tiles(), 4);
    }

    #[test]
    fn empty_profile_occupancy_is_zero() {
        let p = LaunchProfile {
            compute_units: 4,
            events: vec![],
            makespan_ns: 0,
        };
        assert_eq!(p.occupancy(), 0.0);
        assert_eq!(p.busy_per_cu(), vec![0; 4]);
    }
}
