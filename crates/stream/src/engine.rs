//! The parallel streaming engine: frames through a [`Pipeline`] on the
//! worker pool's task-graph executor.
//!
//! The engine never schedules anything itself. It processes the stream
//! in windows of up to [`WINDOW`] frames; each window's
//! `(frame, stage)` units become a task graph via the pipeline's
//! [`PipeShape`](ezp_sched::PipeShape) — data, width and capacity edges
//! encode frame flow, stage replication and bounded buffers — and
//! [`TaskGraph::run_probed`](ezp_sched::TaskGraph::run_probed) executes
//! it on the Chase-Lev deques with the ordinary steal path. The region
//! barrier between windows is what lets a serial stage's cross-window
//! ordering hold with no extra machinery.
//!
//! Frame payloads travel *in place*: one slot per in-window frame,
//! handed from stage to stage. Every hand-off is ordered by a graph
//! edge (happens-before), so the slot locks are uncontended by
//! construction — they exist to keep the crate `#![deny(unsafe_code)]`,
//! not to synchronize.
//!
//! Observability: the engine classifies *why* a unit became runnable.
//! It keeps its own copy of the graph's indegrees; when the release
//! that makes a node ready arrives over a **non-data** edge (width or
//! capacity), the frame was data-ready but waiting on buffer space —
//! one backpressure stall. Gauges (`frames_in_flight`,
//! `reorder_buffer_depth`, `stage_occupancy`) are high-water marks,
//! reported through [`RuntimeEvent`]s and folded with `max` by the perf
//! probe (worker slot 0, so the reported total *is* the peak).

use crate::pipeline::Pipeline;
use ezp_chan::ChanStats;
use ezp_core::error::Result;
use ezp_core::kernel::{IdleCause, Probe, RuntimeEvent};
use ezp_core::time::now_ns;
use ezp_core::{ChanTuning, EmitMode};
use ezp_sched::WorkerPool;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum frames per scheduling window (and so an upper bound on
/// frames in flight, on top of the per-stage width/capacity bounds).
pub const WINDOW: usize = 64;

/// What a streaming run observed about itself — the same quantities the
/// perf probe accumulates, returned directly so callers (benches, the
/// CLI summary line, tests) don't need a probe to see them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames pushed through the pipeline.
    pub frames: usize,
    /// Times a frame was data-ready but waited on a width/capacity
    /// bound (its readying release arrived over a non-data edge).
    pub backpressure_stalls: u64,
    /// High-water mark of frames simultaneously in flight (sourced but
    /// not yet handed to the sink).
    pub max_frames_in_flight: usize,
    /// High-water mark of completed-but-unemitted frames in the ordered
    /// reorder buffer (always 0 for unordered runs).
    pub max_reorder_depth: usize,
    /// High-water mark of any single stage's concurrent occupancy.
    pub max_stage_occupancy: usize,
    /// Items sent into the emission channel (one per frame).
    pub chan_sends: u64,
    /// Items drained from the emission channel (equals `chan_sends`).
    pub chan_recvs: u64,
    /// Times a worker found the emission channel full. Structurally 0:
    /// each window's channel holds the whole window (see
    /// `run_pipeline_tuned`), which is what makes the bounded emission
    /// path deadlock-free.
    pub chan_full_stalls: u64,
    /// Times the drain found the emission channel empty and waited.
    pub chan_empty_stalls: u64,
}

/// Reorder/emission bookkeeping shared by final-stage units, behind one
/// lock. Payloads travel through the emission channel; this tracker
/// only decides *when* a frame counts as emitted (gauges and events
/// fire at the same logical points as the pre-channel engine: unordered
/// on completion, ordered when the frontier passes the frame).
struct EmitTracker {
    /// Next frame id (window-local) the ordered mode may emit.
    frontier: usize,
    /// Final-stage completions so far in this window.
    completed: usize,
    /// Which frames have completed (ordered mode's reorder markers).
    done: Vec<bool>,
    /// Peak of `completed - frontier` after each emission round.
    max_reorder_depth: usize,
}

/// Pushes `frames` frames through `pipe` on `pool`, emitting through
/// `sink` in `mode` order. `source` builds the payload of a frame when
/// the pipeline admits it (pull-based admission: backpressure reaches
/// all the way to frame creation). The sink receives *global* frame
/// ids; in [`EmitMode::Unordered`] its call order is
/// schedule-dependent, in [`EmitMode::Ordered`] it is frame order.
pub fn run_pipeline<T: Send>(
    pipe: &Pipeline<T>,
    frames: usize,
    mode: EmitMode,
    pool: &mut WorkerPool,
    probe: &dyn Probe,
    source: impl Fn(usize) -> T + Sync,
    sink: impl FnMut(usize, T) + Send,
) -> Result<StreamStats> {
    run_pipeline_tuned(pipe, frames, mode, ChanTuning::default(), pool, probe, source, sink)
}

/// [`run_pipeline`] with the emission channel's backend and wait policy
/// chosen by `tuning` (`--chan-backend`, `--wait-policy`).
///
/// Completed frames leave the workers through an `ezp_chan` bounded
/// channel — one sender lane per worker, drained after the window's
/// region barrier. Each window's channel holds `wlen` items per lane,
/// and a window sends exactly `wlen` items total, so a send can never
/// find the channel full: emission backpressure is explicitly bounded
/// by the window and cannot deadlock, even at pipeline `capacity(1)`
/// (pinned by `emission_channel_is_deadlock_free_at_capacity_one`).
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_tuned<T: Send>(
    pipe: &Pipeline<T>,
    frames: usize,
    mode: EmitMode,
    tuning: ChanTuning,
    pool: &mut WorkerPool,
    probe: &dyn Probe,
    source: impl Fn(usize) -> T + Sync,
    mut sink: impl FnMut(usize, T) + Send,
) -> Result<StreamStats> {
    assert!(pipe.stages() > 0, "a pipeline needs at least one stage");
    let shape = pipe.shape();
    let stages = shape.stages();
    let want_events = probe.wants_runtime_events();

    let stalls = AtomicU64::new(0);
    let in_flight = AtomicUsize::new(0);
    let max_in_flight = AtomicUsize::new(0);
    let occupancy: Vec<AtomicUsize> = (0..stages).map(|_| AtomicUsize::new(0)).collect();
    let max_occupancy = AtomicUsize::new(0);
    let mut max_reorder_depth = 0usize;
    let mut chan_stats = ChanStats::default();
    let lanes = pool.width().max(1);

    let mut base = 0usize;
    while base < frames {
        let wlen = WINDOW.min(frames - base);
        let graph = shape.graph(wlen);
        // Engine-side copy of the indegrees, to classify the release
        // that makes each node runnable (data vs backpressure edge).
        let remaining: Vec<AtomicUsize> =
            (0..graph.len()).map(|t| AtomicUsize::new(graph.indegree(t))).collect();
        // When each node's *input* became ready, so a backpressure
        // stall can be measured as a duration (data-ready → runnable).
        // Stage-0 nodes have no data edge: their input is ready at
        // window start. Only maintained when the probe wants events —
        // the clock reads are the cost.
        let window_t0 = if want_events { now_ns() } else { 0 };
        let data_ready: Vec<AtomicU64> =
            (0..graph.len()).map(|_| AtomicU64::new(window_t0)).collect();
        // One payload slot per in-window frame; hand-offs are ordered
        // by graph edges, so these locks are uncontended.
        let slots: Vec<Mutex<Option<T>>> = (0..wlen).map(|_| Mutex::new(None)).collect();
        // The window's emission channel: one lane per worker, each deep
        // enough for the whole window, so no send can block (see the
        // function docs for the deadlock-freedom argument).
        let (txs, rx) = ezp_chan::bounded::<(usize, T)>(tuning, lanes, wlen);
        let tracker = Mutex::new(EmitTracker {
            frontier: 0,
            completed: 0,
            done: vec![false; wlen],
            max_reorder_depth: 0,
        });

        graph.run_probed(pool, probe, |t, worker| {
            let f = shape.frame_of(t);
            let s = shape.stage_of(t);

            // acquire the payload (admit the frame on its first stage)
            let mut payload = if s == 0 {
                let now = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                max_in_flight.fetch_max(now, Ordering::Relaxed);
                if want_events {
                    probe.runtime_event(worker, RuntimeEvent::StreamInFlight { frames: now });
                }
                source(base + f)
            } else {
                slots[f].lock().unwrap().take().expect("payload lost between stages")
            };

            let occ = occupancy[s].fetch_add(1, Ordering::Relaxed) + 1;
            max_occupancy.fetch_max(occ, Ordering::Relaxed);
            if want_events {
                probe.runtime_event(worker, RuntimeEvent::StreamStageOccupancy { depth: occ });
            }
            pipe.apply(s, base + f, &mut payload);
            occupancy[s].fetch_sub(1, Ordering::Relaxed);

            if s + 1 == stages {
                // final stage: the payload leaves through the channel;
                // the tracker fires the emission events at the same
                // logical points the in-place sink used to.
                txs[worker.min(lanes - 1)]
                    .send((base + f, payload))
                    .unwrap_or_else(|_| panic!("emission channel closed mid-window"));
                let mut st = tracker.lock().unwrap();
                st.completed += 1;
                match mode {
                    EmitMode::Unordered => {
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                        if want_events {
                            probe.runtime_event(worker, RuntimeEvent::StreamFrameEmitted);
                        }
                    }
                    EmitMode::Ordered => {
                        st.done[f] = true;
                        while st.frontier < wlen && st.done[st.frontier] {
                            in_flight.fetch_sub(1, Ordering::Relaxed);
                            st.frontier += 1;
                            if want_events {
                                probe.runtime_event(worker, RuntimeEvent::StreamFrameEmitted);
                            }
                        }
                        let depth = st.completed - st.frontier;
                        st.max_reorder_depth = st.max_reorder_depth.max(depth);
                        if want_events {
                            probe.runtime_event(
                                worker,
                                RuntimeEvent::StreamReorderDepth { depth },
                            );
                        }
                    }
                }
            } else {
                *slots[f].lock().unwrap() = Some(payload);
            }

            // classify the releases this completion performs: a node
            // made runnable by a non-data edge was stalled on
            // backpressure (width or capacity), not on its input
            for &d in graph.dependents(t) {
                let is_data = shape.is_data_edge(t, d);
                if want_events && is_data {
                    // ORDERING: Relaxed store, published by this
                    // worker's AcqRel decrement below — the final
                    // releaser's Acquire makes it visible.
                    data_ready[d].store(now_ns(), Ordering::Relaxed);
                }
                if remaining[d].fetch_sub(1, Ordering::AcqRel) == 1 && !is_data {
                    stalls.fetch_add(1, Ordering::Relaxed);
                    if want_events {
                        probe.runtime_event(worker, RuntimeEvent::StreamStall);
                        let waited =
                            now_ns().saturating_sub(data_ready[d].load(Ordering::Relaxed));
                        if waited > 0 {
                            probe.runtime_event(
                                worker,
                                RuntimeEvent::IdleNs {
                                    ns: waited,
                                    cause: IdleCause::Backpressure,
                                },
                            );
                        }
                    }
                }
            }
        })?;

        // Drain the window: the region barrier above guarantees all
        // `wlen` sends happened, so exactly `wlen` receives succeed.
        // Unordered mode preserves arrival order (per-lane FIFO merged
        // by the drain's rotation); ordered mode sorts by frame id —
        // the sink sees frames in exactly the order the tracker
        // reported them emitted.
        let mut emitted: Vec<(usize, T)> = Vec::with_capacity(wlen);
        for _ in 0..wlen {
            emitted.push(rx.recv().expect("emission channel closed before the window drained"));
        }
        if mode == EmitMode::Ordered {
            emitted.sort_unstable_by_key(|e| e.0);
        }
        for (id, payload) in emitted {
            sink(id, payload);
        }
        chan_stats = chan_stats.merge(&rx.stats());
        drop(txs);

        let st = tracker.into_inner().unwrap();
        debug_assert_eq!(st.frontier_or_completed(mode), wlen);
        max_reorder_depth = max_reorder_depth.max(st.max_reorder_depth);
        base += wlen;
    }

    if want_events && frames > 0 {
        probe.runtime_event(
            0,
            RuntimeEvent::ChanOps {
                sends: chan_stats.sends,
                recvs: chan_stats.recvs,
                full_stalls: chan_stats.full_stalls,
                empty_stalls: chan_stats.empty_stalls,
            },
        );
        if chan_stats.stall_ns > 0 {
            probe.runtime_event(
                0,
                RuntimeEvent::IdleNs {
                    ns: chan_stats.stall_ns,
                    cause: IdleCause::Backpressure,
                },
            );
        }
    }

    Ok(StreamStats {
        frames,
        backpressure_stalls: stalls.into_inner(),
        max_frames_in_flight: max_in_flight.into_inner(),
        max_reorder_depth,
        max_stage_occupancy: max_occupancy.into_inner(),
        chan_sends: chan_stats.sends,
        chan_recvs: chan_stats.recvs,
        chan_full_stalls: chan_stats.full_stalls,
        chan_empty_stalls: chan_stats.empty_stalls,
    })
}

impl EmitTracker {
    /// Window-completion figure checked by the engine's debug assert:
    /// ordered mode must have advanced the frontier through the whole
    /// window; unordered must have completed every frame.
    fn frontier_or_completed(&self, mode: EmitMode) -> usize {
        match mode {
            EmitMode::Ordered => self.frontier,
            EmitMode::Unordered => self.completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::kernel::NullProbe;
    use ezp_perf::{names, PerfProbe};
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::vec_of;

    fn square_pipe(width: usize) -> Pipeline<u64> {
        Pipeline::new()
            .farm_stage("square", width, |_, x: &mut u64| *x = *x * *x)
            .stage("offset", |_, x| *x += 3)
    }

    #[test]
    fn ordered_run_matches_seq_in_order() {
        let pipe = square_pipe(4);
        let mut expect = Vec::new();
        pipe.run_seq(100, |f| f as u64, |f, x| expect.push((f, x)));
        let mut pool = WorkerPool::new(4);
        let mut got = Vec::new();
        let stats = run_pipeline(
            &pipe,
            100,
            EmitMode::Ordered,
            &mut pool,
            &NullProbe,
            |f| f as u64,
            |f, x| got.push((f, x)),
        )
        .unwrap();
        assert_eq!(got, expect);
        assert_eq!(stats.frames, 100);
        assert!(stats.max_frames_in_flight >= 1);
    }

    #[test]
    fn unordered_run_is_a_permutation_of_seq() {
        let pipe = square_pipe(4);
        let mut expect = Vec::new();
        pipe.run_seq(100, |f| f as u64, |f, x| expect.push((f, x)));
        let mut pool = WorkerPool::new(4);
        let mut got = Vec::new();
        run_pipeline(
            &pipe,
            100,
            EmitMode::Unordered,
            &mut pool,
            &NullProbe,
            |f| f as u64,
            |f, x| got.push((f, x)),
        )
        .unwrap();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn serial_stateful_stage_sees_frames_in_order_in_parallel() {
        // the frame-differencing pattern: a width-1 stage holding the
        // previous frame. Graph edges order its invocations, so the
        // parallel run must match seq exactly.
        let build = || {
            let prev = Mutex::new(0i64);
            Pipeline::new()
                .farm_stage("gen", 4, |f, x: &mut i64| *x = (f * f) as i64)
                .stage("diff", move |_, x| {
                    let mut p = prev.lock().unwrap();
                    let cur = *x;
                    *x -= *p;
                    *p = cur;
                })
        };
        let mut expect = Vec::new();
        build().run_seq(200, |_| 0, |f, x| expect.push((f, x)));
        let mut pool = WorkerPool::new(4);
        let mut got = Vec::new();
        run_pipeline(
            &build(),
            200,
            EmitMode::Ordered,
            &mut pool,
            &NullProbe,
            |_| 0,
            |f, x| got.push((f, x)),
        )
        .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn multi_window_streams_work() {
        // more frames than WINDOW: exercises the window barrier and the
        // per-window reorder state reset
        let pipe = square_pipe(2);
        let frames = WINDOW * 2 + 17;
        let mut expect = Vec::new();
        pipe.run_seq(frames, |f| f as u64, |f, x| expect.push((f, x)));
        let mut pool = WorkerPool::new(2);
        let mut got = Vec::new();
        let stats = run_pipeline(
            &pipe,
            frames,
            EmitMode::Ordered,
            &mut pool,
            &NullProbe,
            |f| f as u64,
            |f, x| got.push((f, x)),
        )
        .unwrap();
        assert_eq!(got, expect);
        assert_eq!(stats.frames, frames);
    }

    #[test]
    fn single_stage_pipeline_streams() {
        let pipe = Pipeline::new().farm_stage("id", 2, |_, _: &mut u32| {});
        let mut pool = WorkerPool::new(2);
        let mut got = Vec::new();
        run_pipeline(
            &pipe,
            10,
            EmitMode::Ordered,
            &mut pool,
            &NullProbe,
            |f| f as u32,
            |f, x| got.push((f, x)),
        )
        .unwrap();
        assert_eq!(got, (0..10).map(|f| (f, f as u32)).collect::<Vec<_>>());
    }

    #[test]
    fn zero_frames_is_a_no_op() {
        let pipe = square_pipe(2);
        let mut pool = WorkerPool::new(2);
        let stats = run_pipeline(
            &pipe,
            0,
            EmitMode::Ordered,
            &mut pool,
            &NullProbe,
            |f| f as u64,
            |_, _| panic!("sink called for empty stream"),
        )
        .unwrap();
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn counters_land_in_the_perf_probe() {
        // a deliberately tight pipeline: capacity 1 and a serial tail
        // stage force backpressure with several workers
        let pipe = Pipeline::new()
            .farm_stage("work", 4, |_, x: &mut u64| {
                *x = (0..200).fold(*x, |a, i| a.wrapping_mul(31).wrapping_add(i))
            })
            .stage("tail", |_, _| {})
            .capacity(1);
        let probe = PerfProbe::new(4);
        let mut pool = WorkerPool::new(4);
        let stats = run_pipeline(
            &pipe,
            64,
            EmitMode::Ordered,
            &mut pool,
            &probe,
            |f| f as u64,
            |_, _| {},
        )
        .unwrap();
        let snap = probe.snapshot();
        assert_eq!(snap.total(names::FRAMES_EMITTED), 64);
        assert_eq!(
            snap.total(names::FRAMES_IN_FLIGHT) as usize,
            stats.max_frames_in_flight
        );
        assert_eq!(
            snap.total(names::REORDER_BUFFER_DEPTH) as usize,
            stats.max_reorder_depth
        );
        assert_eq!(
            snap.total(names::STAGE_OCCUPANCY) as usize,
            stats.max_stage_occupancy
        );
        assert_eq!(snap.total(names::BACKPRESSURE_STALLS), stats.backpressure_stalls);
        assert!(stats.max_stage_occupancy >= 1);
        // the emission channel's activity lands in the chan_* counters:
        // one send and one receive per frame, and the bounded-window
        // design means a send never finds the channel full
        assert_eq!(snap.total(names::CHAN_SENDS), 64);
        assert_eq!(snap.total(names::CHAN_RECVS), 64);
        assert_eq!(snap.total(names::CHAN_FULL_STALLS), 0);
        assert_eq!(stats.chan_sends, 64);
        assert_eq!(stats.chan_recvs, 64);
        assert_eq!(stats.chan_full_stalls, 0);
    }

    fn tunings() -> Vec<ChanTuning> {
        let mut v = Vec::new();
        for backend in ezp_core::ChanBackendKind::all() {
            for policy in ezp_core::WaitPolicy::all() {
                v.push(ChanTuning { backend, policy });
            }
        }
        v
    }

    #[test]
    fn every_backend_and_policy_matches_seq_byte_for_byte() {
        let pipe = square_pipe(4);
        let mut expect = Vec::new();
        pipe.run_seq(100, |f| f as u64, |f, x| expect.push((f, x)));
        let mut pool = WorkerPool::new(4);
        for tuning in tunings() {
            let mut got = Vec::new();
            let stats = run_pipeline_tuned(
                &pipe,
                100,
                EmitMode::Ordered,
                tuning,
                &mut pool,
                &NullProbe,
                |f| f as u64,
                |f, x| got.push((f, x)),
            )
            .unwrap();
            assert_eq!(got, expect, "{tuning:?} diverged from seq");
            assert_eq!(stats.chan_sends, 100, "{tuning:?}");
            assert_eq!(stats.chan_recvs, 100, "{tuning:?}");
        }
    }

    #[test]
    fn emission_channel_is_deadlock_free_at_capacity_one() {
        // The reorder buffer's explicit bound: even with the tightest
        // pipeline buffer (capacity 1, serial tail) and every wait
        // policy, the window-sized emission channel can never fill, so
        // no send blocks and the run terminates. Before the channel
        // migration this bound was implicit in the in-place sink; this
        // regression pins it now that emission really buffers.
        for tuning in tunings() {
            let pipe = Pipeline::new()
                .farm_stage("head", 4, |_, x: &mut u64| *x = x.wrapping_mul(31))
                .stage("tail", |_, _| {})
                .capacity(1);
            let mut pool = WorkerPool::new(4);
            let frames = WINDOW + 7; // cross a window boundary too
            let mut got = Vec::new();
            let stats = run_pipeline_tuned(
                &pipe,
                frames,
                EmitMode::Ordered,
                tuning,
                &mut pool,
                &NullProbe,
                |f| f as u64,
                |f, _| got.push(f),
            )
            .unwrap();
            assert_eq!(got, (0..frames).collect::<Vec<_>>(), "{tuning:?}");
            assert_eq!(stats.chan_full_stalls, 0, "{tuning:?}: emission filled up");
        }
    }

    ezp_proptest! {
        #![cases(8)]

        // Same permutation property at the pipeline level, with
        // arbitrary *per-stage* latencies: a farm head and a farm tail
        // whose spin budgets vary per frame.
        fn prop_pipeline_unordered_is_a_permutation_of_ordered(
            latencies in vec_of((0usize..200, 0usize..200), 1..24),
            width in 1usize..4,
        ) {
            let frames = latencies.len();
            let spin = |budget: usize, x: &mut u64| {
                for i in 0..budget {
                    *x = std::hint::black_box(x.wrapping_mul(31).wrapping_add(i as u64));
                }
            };
            let build = |lat: Vec<(usize, usize)>| {
                let tail = lat.clone();
                Pipeline::new()
                    .farm_stage("head", width, move |f, x: &mut u64| {
                        *x = f as u64;
                        spin(lat[f].0, x);
                    })
                    .farm_stage("tail", width, move |f, x: &mut u64| spin(tail[f].1, x))
            };
            let mut pool = WorkerPool::new(3);
            let mut ordered = Vec::new();
            run_pipeline(
                &build(latencies.clone()),
                frames,
                EmitMode::Ordered,
                &mut pool,
                &NullProbe,
                |_| 0,
                |f, x| ordered.push((f, x)),
            )
            .unwrap();
            let mut unordered = Vec::new();
            run_pipeline(
                &build(latencies.clone()),
                frames,
                EmitMode::Unordered,
                &mut pool,
                &NullProbe,
                |_| 0,
                |f, x| unordered.push((f, x)),
            )
            .unwrap();
            unordered.sort_unstable();
            assert_eq!(unordered, ordered, "width {width}: not a permutation");
        }
    }

    #[test]
    fn backpressure_stalls_appear_under_a_tight_buffer() {
        // width 1 + capacity 1 on the tail of a wide head: upstream
        // frames are data-ready long before the buffer drains, so some
        // stalls must be observed with real parallelism
        let pipe = Pipeline::new()
            .farm_stage("head", 4, |_, x: &mut u64| {
                *x = (0..500).fold(*x, |a, i| a.wrapping_mul(31).wrapping_add(i))
            })
            .stage("tail", |_, _| {})
            .capacity(1);
        let mut pool = WorkerPool::new(4);
        let stats = run_pipeline(
            &pipe,
            WINDOW,
            EmitMode::Ordered,
            &mut pool,
            &NullProbe,
            |f| f as u64,
            |_, _| {},
        )
        .unwrap();
        assert!(
            stats.backpressure_stalls > 0,
            "tight buffer produced no stalls: {stats:?}"
        );
    }

    #[test]
    fn backpressure_stalls_carry_idle_durations() {
        // every StreamStall must come with a cause-tagged IdleNs so the
        // explain layer can say *how long* frames waited on buffer space
        struct StallWatch {
            stall_events: AtomicU64,
            idle_events: AtomicU64,
            backpressure_ns: AtomicU64,
        }
        impl Probe for StallWatch {
            fn runtime_event(&self, _w: ezp_core::WorkerId, ev: RuntimeEvent) {
                match ev {
                    RuntimeEvent::StreamStall => {
                        self.stall_events.fetch_add(1, Ordering::Relaxed);
                    }
                    RuntimeEvent::IdleNs {
                        ns,
                        cause: IdleCause::Backpressure,
                    } => {
                        self.idle_events.fetch_add(1, Ordering::Relaxed);
                        self.backpressure_ns.fetch_add(ns, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            fn wants_runtime_events(&self) -> bool {
                true
            }
        }
        let probe = StallWatch {
            stall_events: AtomicU64::new(0),
            idle_events: AtomicU64::new(0),
            backpressure_ns: AtomicU64::new(0),
        };
        let pipe = Pipeline::new()
            .farm_stage("head", 4, |_, x: &mut u64| {
                *x = (0..500).fold(*x, |a, i| a.wrapping_mul(31).wrapping_add(i))
            })
            .stage("tail", |_, _| {})
            .capacity(1);
        let mut pool = WorkerPool::new(4);
        let stats = run_pipeline(
            &pipe,
            WINDOW,
            EmitMode::Ordered,
            &mut pool,
            &probe,
            |f| f as u64,
            |_, _| {},
        )
        .unwrap();
        assert_eq!(
            probe.stall_events.load(Ordering::Relaxed),
            stats.backpressure_stalls
        );
        if stats.backpressure_stalls > 0 {
            assert!(probe.backpressure_ns.load(Ordering::Relaxed) > 0);
        }
    }
}
