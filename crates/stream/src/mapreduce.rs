//! The [`map_reduce`] skeleton: schedule-independent parallel folds.
//!
//! The determinism problem with parallel reduction is that the combine
//! order follows the schedule: whichever worker finishes first merges
//! first, so a non-associative (or floating-point) combine gives a
//! different answer every run. This skeleton fixes the *shape* of the
//! computation instead of the schedule:
//!
//! 1. the index space is cut into fixed-size **leaf blocks**; any
//!    scheduling policy distributes the leaves over workers, and each
//!    leaf is folded left-to-right in index order into its own slot;
//! 2. the leaf results are merged by a **fixed pairwise tree** —
//!    neighbours at distance 1, then 2, then 4... — whose structure
//!    depends only on the leaf count.
//!
//! Both the leaf folds and the tree are fully determined by `(n, leaf)`,
//! so the result is byte-identical for every schedule, worker count and
//! interleaving — the property `ezp_proptest!` pins with a
//! deliberately non-associative combine.

use ezp_core::Schedule;
use ezp_sched::dispenser::dispenser_for;
use ezp_sched::WorkerPool;
use std::sync::Mutex;

/// Folds `map(0..n)` with `combine`, leaves of `leaf` indices, on
/// `pool` under `schedule`. Returns `None` for an empty index space.
///
/// The combine tree is applied to leaf results in leaf order with a
/// fixed pairwise structure, so for a given `(n, leaf)` the result does
/// not depend on the schedule, the worker count, or the interleaving —
/// only associativity up to that fixed tree is assumed (i.e. none).
/// The single-leaf case (`leaf >= n`) *is* the sequential left fold.
pub fn map_reduce<A: Send>(
    pool: &mut WorkerPool,
    n: usize,
    leaf: usize,
    schedule: Schedule,
    map: impl Fn(usize) -> A + Sync,
    combine: impl Fn(A, A) -> A + Sync,
) -> Option<A> {
    if n == 0 {
        return None;
    }
    let leaf = leaf.max(1);
    let leaves = n.div_ceil(leaf);
    let slots: Vec<Mutex<Option<A>>> = (0..leaves).map(|_| Mutex::new(None)).collect();
    let disp = dispenser_for(schedule, leaves, pool.width());

    {
        let disp = &*disp;
        let slots = &slots;
        let map = &map;
        let combine = &combine;
        pool.run(|rank| {
            while let Some((start, len)) = disp.next(rank) {
                for li in start..start + len {
                    // leaf fold, strictly in index order
                    let lo = li * leaf;
                    let hi = n.min(lo + leaf);
                    let mut acc = map(lo);
                    for i in lo + 1..hi {
                        acc = combine(acc, map(i));
                    }
                    *slots[li].lock().unwrap() = Some(acc);
                }
            }
        });
    }

    // fixed pairwise tree over the leaf results: distance 1, 2, 4, ...
    let mut partials: Vec<Option<A>> = slots
        .into_iter()
        .map(|s| Some(s.into_inner().unwrap().expect("leaf not folded")))
        .collect();
    let mut stride = 1;
    while stride < leaves {
        let mut i = 0;
        while i + stride < leaves {
            let right = partials[i + stride].take().expect("tree node consumed twice");
            let left = partials[i].take().expect("tree node consumed twice");
            partials[i] = Some(combine(left, right));
            i += 2 * stride;
        }
        stride *= 2;
    }
    partials[0].take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::any_u64;

    /// A deliberately non-associative, non-commutative combine: the
    /// result encodes the exact merge tree, so any schedule-dependent
    /// reordering changes the value.
    fn chain(a: u64, b: u64) -> u64 {
        a.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13) ^ b
    }

    /// The reference: fold the same fixed tree sequentially.
    fn tree_reference(n: usize, leaf: usize) -> Option<u64> {
        let mut pool = WorkerPool::new(1);
        map_reduce(&mut pool, n, leaf, Schedule::Static, |i| i as u64, chain)
    }

    #[test]
    fn empty_space_returns_none() {
        let mut pool = WorkerPool::new(2);
        assert_eq!(
            map_reduce(&mut pool, 0, 4, Schedule::Static, |i| i as u64, chain),
            None
        );
    }

    #[test]
    fn sum_matches_sequential() {
        let mut pool = WorkerPool::new(4);
        let got = map_reduce(
            &mut pool,
            1000,
            16,
            Schedule::Dynamic(1),
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(got, Some((0..1000u64).sum()));
    }

    #[test]
    fn single_leaf_is_the_sequential_left_fold() {
        let mut pool = WorkerPool::new(4);
        let got = map_reduce(&mut pool, 37, 64, Schedule::Guided(1), |i| i as u64, chain);
        let mut acc = 0u64;
        for i in 1..37 {
            acc = chain(acc, i as u64);
        }
        assert_eq!(got, Some(acc));
    }

    ezp_proptest! {
        #![cases(24)]

        // The determinism contract as a property: for any space, leaf
        // size, worker count, schedule and seed-derived salt, the fold
        // (with a combine that encodes its merge tree bit-for-bit) is
        // byte-identical to the 1-worker static reference. Same
        // `EZP_TEST_SEED` → same cases → same fold results.
        fn prop_mapreduce_is_schedule_independent(
            n in 1usize..400,
            leaf in 1usize..33,
            workers in 1usize..5,
            which in 0usize..5,
            salt in any_u64(),
        ) {
            let sched = match which {
                0 => Schedule::Static,
                1 => Schedule::StaticChunk(3),
                2 => Schedule::Dynamic(1),
                3 => Schedule::Guided(1),
                _ => Schedule::NonmonotonicDynamic(1),
            };
            let map = |i: usize| (i as u64) ^ salt;
            let mut reference = WorkerPool::new(1);
            let expect = map_reduce(&mut reference, n, leaf, Schedule::Static, map, chain);
            let mut pool = WorkerPool::new(workers);
            let got = map_reduce(&mut pool, n, leaf, sched, map, chain);
            assert_eq!(
                got, expect,
                "n={n} leaf={leaf} workers={workers} {sched:?} diverged"
            );
        }
    }

    #[test]
    fn result_is_schedule_and_worker_independent() {
        // the determinism contract with a combine that encodes its tree
        for (n, leaf) in [(1usize, 4usize), (7, 2), (100, 7), (257, 16)] {
            let expect = tree_reference(n, leaf);
            for workers in [1usize, 2, 4] {
                let mut pool = WorkerPool::new(workers);
                for sched in [
                    Schedule::Static,
                    Schedule::StaticChunk(2),
                    Schedule::Dynamic(1),
                    Schedule::Guided(1),
                    Schedule::NonmonotonicDynamic(1),
                ] {
                    let got =
                        map_reduce(&mut pool, n, leaf, sched, |i| i as u64, chain);
                    assert_eq!(
                        got, expect,
                        "n={n} leaf={leaf} workers={workers} {sched:?} diverged"
                    );
                }
            }
        }
    }
}
