//! The [`Pipeline`] skeleton: heterogeneous stages over a frame stream.
//!
//! A pipeline is a list of stages applied to every frame in order. Each
//! stage transforms the frame payload `T` in place; a stage is either
//! *serial* (`width 1` — invocations ordered by frame id, so it may
//! keep state behind interior mutability) or a *farm* (`width k` — up
//! to `k` frames inside the stage concurrently, so its closure must be
//! a pure function of `(frame, payload)`).
//!
//! The builder only describes the shape; execution happens in
//! [`run_seq`](Pipeline::run_seq) (the one-frame-at-a-time baseline
//! every parallel run is conformance-tested against) or
//! [`run_pipeline`](crate::engine::run_pipeline) (the parallel engine).

use ezp_sched::skeleton::{PipeShape, PipeStage, DEFAULT_CAPACITY};

/// One stage of a pipeline.
pub(crate) struct Stage<T> {
    pub(crate) name: String,
    pub(crate) width: usize,
    pub(crate) work: Box<dyn Fn(usize, &mut T) + Send + Sync>,
}

/// A composable pipeline over frame payloads of type `T`.
///
/// ```
/// use ezp_stream::Pipeline;
///
/// let pipe = Pipeline::new()
///     .farm_stage("square", 4, |f, x: &mut u64| *x = (f as u64) * (f as u64))
///     .stage("offset", |_, x| *x += 1);
/// let mut out = Vec::new();
/// pipe.run_seq(4, |f| f as u64, |f, x| out.push((f, x)));
/// assert_eq!(out, vec![(0, 1), (1, 2), (2, 5), (3, 10)]);
/// ```
pub struct Pipeline<T> {
    stages: Vec<Stage<T>>,
    capacity: usize,
}

impl<T> Default for Pipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Pipeline<T> {
    /// An empty pipeline with the default inter-stage buffer capacity.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Appends a *serial* stage (width 1). Invocations are ordered by
    /// frame id — a dependency edge, i.e. happens-before — so the
    /// closure may keep state across frames behind a `Mutex`.
    pub fn stage(
        mut self,
        name: &str,
        work: impl Fn(usize, &mut T) + Send + Sync + 'static,
    ) -> Self {
        self.stages.push(Stage {
            name: name.to_string(),
            width: 1,
            work: Box::new(work),
        });
        self
    }

    /// Appends a *farm* stage replicated `width` times: up to `width`
    /// frames inside the stage concurrently, in no particular order.
    /// The closure must therefore be a pure function of its inputs.
    pub fn farm_stage(
        mut self,
        name: &str,
        width: usize,
        work: impl Fn(usize, &mut T) + Send + Sync + 'static,
    ) -> Self {
        self.stages.push(Stage {
            name: name.to_string(),
            width: width.max(1),
            work: Box::new(work),
        });
        self
    }

    /// Sets the bounded inter-stage buffer capacity (clamped to ≥ 1):
    /// at most `cap` frames may sit between two adjacent stages,
    /// including frames in service — the structural backpressure bound.
    pub fn capacity(mut self, cap: usize) -> Self {
        self.capacity = cap.max(1);
        self
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// The stage names, in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name.as_str()).collect()
    }

    /// The per-stage widths, in order.
    pub fn stage_widths(&self) -> Vec<usize> {
        self.stages.iter().map(|s| s.width).collect()
    }

    /// The scheduling shape of this pipeline — what the parallel engine
    /// compiles to a task graph.
    pub fn shape(&self) -> PipeShape {
        PipeShape::new(self.stages.iter().map(|s| PipeStage {
            width: s.width,
            capacity: self.capacity,
        }))
    }

    /// Applies stage `s` to `(frame, payload)`.
    pub(crate) fn apply(&self, s: usize, frame: usize, payload: &mut T) {
        (self.stages[s].work)(frame, payload);
    }

    /// The sequential baseline: one frame at a time through every
    /// stage, sink in frame order. This is the golden reference the
    /// streaming conformance matrix compares every parallel run
    /// against.
    pub fn run_seq(
        &self,
        frames: usize,
        mut source: impl FnMut(usize) -> T,
        mut sink: impl FnMut(usize, T),
    ) {
        assert!(self.stages() > 0, "a pipeline needs at least one stage");
        for f in 0..frames {
            let mut payload = source(f);
            for s in 0..self.stages() {
                self.apply(s, f, &mut payload);
            }
            sink(f, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn run_seq_applies_stages_in_order() {
        let pipe = Pipeline::new()
            .farm_stage("double", 2, |_, x: &mut u32| *x *= 2)
            .stage("inc", |_, x| *x += 1);
        let mut out = Vec::new();
        pipe.run_seq(5, |f| f as u32, |f, x| out.push((f, x)));
        assert_eq!(out, vec![(0, 1), (1, 3), (2, 5), (3, 7), (4, 9)]);
    }

    #[test]
    fn serial_stage_sees_frames_in_order() {
        // a stateful serial stage: running difference vs previous frame
        let prev = Mutex::new(0i64);
        let pipe = Pipeline::new().stage("diff", move |_, x: &mut i64| {
            let mut p = prev.lock().unwrap();
            let cur = *x;
            *x -= *p;
            *p = cur;
        });
        let mut out = Vec::new();
        pipe.run_seq(4, |f| (f * f) as i64, |_, x| out.push(x));
        assert_eq!(out, vec![0, 1, 3, 5]); // f² − (f−1)²
    }

    #[test]
    fn shape_reflects_widths_and_capacity() {
        let pipe = Pipeline::new()
            .farm_stage("a", 4, |_, _: &mut ()| {})
            .stage("b", |_, _| {})
            .capacity(2);
        let shape = pipe.shape();
        assert_eq!(shape.stages(), 2);
        assert_eq!(shape.stage(0).width, 4);
        assert_eq!(shape.stage(1).width, 1);
        assert_eq!(shape.stage(0).capacity, 2);
        assert_eq!(pipe.stage_names(), vec!["a", "b"]);
        assert_eq!(pipe.stage_widths(), vec![4, 1]);
    }

    #[test]
    fn zero_width_farm_stage_is_clamped() {
        let pipe = Pipeline::new().farm_stage("z", 0, |_, _: &mut ()| {});
        assert_eq!(pipe.stage_widths(), vec![1]);
    }
}
