//! Streaming demo kernels and their registry.
//!
//! Three workloads, each exercising a different skeleton property:
//!
//! * **`mandel_zoom`** — Mandelbrot frame-zoom: every frame renders the
//!   paper's viewport zoomed `f` steps toward a deep-zoom target. Frame
//!   costs vary wildly with depth (the imbalance the farm exists for);
//!   the render stage is a farm, the encode stage a serial tail.
//! * **`frame_diff`** — frame differencing: a farm generates synthetic
//!   frames, a *stateful* serial stage subtracts the previous frame.
//!   The serial stage is only correct because width-1 stages are
//!   frame-ordered by graph edges — this demo pins that guarantee.
//! * **`wordcount`** — text analytics: a farm turns deterministic
//!   pseudo-text into sorted word counts, a serial stage serializes
//!   them. The payload is non-image data, proving the skeletons are
//!   not wedded to pixels.
//!
//! Every demo offers the same two entry points: `run_seq` (the
//! one-frame-at-a-time golden baseline) and `run` (the parallel engine
//! with an [`EmitMode`] and a farm width). The streaming conformance
//! matrix in `tests/conformance.rs` holds them to byte equality.

use crate::engine::{run_pipeline_tuned, StreamStats};
use crate::pipeline::Pipeline;
use ezp_core::error::Result;
use ezp_core::kernel::Probe;
use ezp_core::{color, ChanTuning, EmitMode};
use ezp_kernels::mandel::{escape_iterations, Viewport, DEFAULT_MAX_ITER};
use ezp_sched::WorkerPool;
use ezp_testkit::Rng;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A streamed frame output: the frame id and its serialized bytes.
pub type FrameOut = (usize, Vec<u8>);

/// A streaming demo kernel: a named pipeline over synthetic frames.
pub trait StreamKernel: Send + Sync {
    /// Registry name (`--kernel <name> --stream=N`).
    fn name(&self) -> &'static str;

    /// One-line description for `--list`.
    fn describe(&self) -> &'static str;

    /// The sequential one-frame-at-a-time baseline, in frame order.
    fn run_seq(&self, dim: usize, frames: usize) -> Vec<FrameOut>;

    /// The parallel run: `farm_width` replicas on farm stages, frames
    /// emitted in `mode` order. Returns the outputs in emission order
    /// plus the engine's stats.
    fn run(
        &self,
        dim: usize,
        frames: usize,
        mode: EmitMode,
        farm_width: usize,
        pool: &mut WorkerPool,
        probe: &dyn Probe,
    ) -> Result<(Vec<FrameOut>, StreamStats)> {
        self.run_tuned(dim, frames, mode, farm_width, ChanTuning::default(), pool, probe)
    }

    /// [`StreamKernel::run`] with the emission channel's backend and
    /// wait policy chosen by `tuning` — what `--chan-backend` and
    /// `--wait-policy` reach, and what the conformance matrix sweeps.
    #[allow(clippy::too_many_arguments)]
    fn run_tuned(
        &self,
        dim: usize,
        frames: usize,
        mode: EmitMode,
        farm_width: usize,
        tuning: ChanTuning,
        pool: &mut WorkerPool,
        probe: &dyn Probe,
    ) -> Result<(Vec<FrameOut>, StreamStats)>;
}

/// Every streaming kernel, one instance each — the registry the CLI and
/// the conformance matrix share. Like the classic kernel registry, a
/// kernel missing from here cannot be run *or* tested, so the
/// exhaustiveness guard in `tests/conformance.rs` keys on this list.
pub fn stream_registry() -> Vec<Box<dyn StreamKernel>> {
    vec![
        Box::new(MandelZoom),
        Box::new(FrameDiff),
        Box::new(WordCount),
    ]
}

/// Looks up a streaming kernel by name.
pub fn stream_kernel(name: &str) -> Option<Box<dyn StreamKernel>> {
    stream_registry().into_iter().find(|k| k.name() == name)
}

/// Shared driver: build the demo's pipeline fresh (resetting any serial
/// stage state), run it over the synthetic source, collect the sink.
fn drive(
    pipe: &Pipeline<Vec<u8>>,
    frames: usize,
    mode: EmitMode,
    tuning: ChanTuning,
    pool: &mut WorkerPool,
    probe: &dyn Probe,
) -> Result<(Vec<FrameOut>, StreamStats)> {
    let mut out = Vec::with_capacity(frames);
    let stats = run_pipeline_tuned(
        pipe,
        frames,
        mode,
        tuning,
        pool,
        probe,
        |_| Vec::new(),
        |f, bytes| out.push((f, bytes)),
    )?;
    Ok((out, stats))
}

fn collect_seq(pipe: &Pipeline<Vec<u8>>, frames: usize) -> Vec<FrameOut> {
    let mut out = Vec::with_capacity(frames);
    pipe.run_seq(frames, |_| Vec::new(), |f, bytes| out.push((f, bytes)));
    out
}

// ---------------------------------------------------------------- mandel

/// Mandelbrot frame-zoom (see module docs).
struct MandelZoom;

/// Iteration budget for streamed zoom frames — smaller than the classic
/// kernel's [`DEFAULT_MAX_ITER`] so conformance-sized streams stay fast.
const ZOOM_MAX_ITER: u32 = DEFAULT_MAX_ITER / 4;

fn mandel_zoom_pipeline(dim: usize, width: usize) -> Pipeline<Vec<u8>> {
    Pipeline::new()
        .farm_stage("render", width, move |frame, buf: &mut Vec<u8>| {
            let mut view = Viewport::default();
            for _ in 0..frame {
                view.zoom();
            }
            buf.clear();
            buf.reserve(dim * dim * 4);
            for y in 0..dim {
                for x in 0..dim {
                    let (cx, cy) = view.pixel_to_complex(x, y, dim);
                    let it = escape_iterations(cx, cy, ZOOM_MAX_ITER);
                    buf.extend_from_slice(&it.to_le_bytes());
                }
            }
        })
        .stage("encode", move |_, buf: &mut Vec<u8>| {
            // iteration counts → RGBA bytes (the "encoder" tail)
            let mut px = Vec::with_capacity(buf.len());
            for it in buf.chunks_exact(4) {
                let it = u32::from_le_bytes([it[0], it[1], it[2], it[3]]);
                px.extend_from_slice(&color::mandel_color(it, ZOOM_MAX_ITER).0.to_le_bytes());
            }
            *buf = px;
        })
}

impl StreamKernel for MandelZoom {
    fn name(&self) -> &'static str {
        "mandel_zoom"
    }

    fn describe(&self) -> &'static str {
        "Mandelbrot deep-zoom frames (farm render, serial encode)"
    }

    fn run_seq(&self, dim: usize, frames: usize) -> Vec<FrameOut> {
        collect_seq(&mandel_zoom_pipeline(dim, 1), frames)
    }

    fn run_tuned(
        &self,
        dim: usize,
        frames: usize,
        mode: EmitMode,
        farm_width: usize,
        tuning: ChanTuning,
        pool: &mut WorkerPool,
        probe: &dyn Probe,
    ) -> Result<(Vec<FrameOut>, StreamStats)> {
        drive(&mandel_zoom_pipeline(dim, farm_width), frames, mode, tuning, pool, probe)
    }
}

// ------------------------------------------------------------ frame_diff

/// Frame differencing over synthetic frames (see module docs).
struct FrameDiff;

/// The synthetic grayscale source frame: a drifting interference
/// pattern, a pure function of `(x, y, frame)`.
fn diff_source_pixel(x: usize, y: usize, frame: usize) -> u8 {
    let v = x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ frame.wrapping_mul(73);
    (v % 251) as u8
}

fn frame_diff_pipeline(dim: usize, width: usize) -> Pipeline<Vec<u8>> {
    // the serial stage's cross-frame state: the previous frame, owned
    // by the closure; a fresh pipeline starts from a black frame
    let prev: Mutex<Vec<u8>> = Mutex::new(vec![0; dim * dim]);
    Pipeline::new()
        .farm_stage("generate", width, move |frame, buf: &mut Vec<u8>| {
            buf.clear();
            buf.reserve(dim * dim);
            for y in 0..dim {
                for x in 0..dim {
                    buf.push(diff_source_pixel(x, y, frame));
                }
            }
        })
        .stage("diff", move |_, buf: &mut Vec<u8>| {
            let mut p = prev.lock().unwrap();
            for (b, pv) in buf.iter_mut().zip(p.iter_mut()) {
                let cur = *b;
                *b = cur.abs_diff(*pv);
                *pv = cur;
            }
        })
}

impl StreamKernel for FrameDiff {
    fn name(&self) -> &'static str {
        "frame_diff"
    }

    fn describe(&self) -> &'static str {
        "frame differencing (farm generate, stateful serial diff)"
    }

    fn run_seq(&self, dim: usize, frames: usize) -> Vec<FrameOut> {
        collect_seq(&frame_diff_pipeline(dim, 1), frames)
    }

    fn run_tuned(
        &self,
        dim: usize,
        frames: usize,
        mode: EmitMode,
        farm_width: usize,
        tuning: ChanTuning,
        pool: &mut WorkerPool,
        probe: &dyn Probe,
    ) -> Result<(Vec<FrameOut>, StreamStats)> {
        drive(&frame_diff_pipeline(dim, farm_width), frames, mode, tuning, pool, probe)
    }
}

// ------------------------------------------------------------- wordcount

/// Streaming word count over deterministic pseudo-text (see module
/// docs). `dim` scales the words per frame (`dim * 8`).
struct WordCount;

/// Deterministic pseudo-text for a frame: words drawn from a small
/// vocabulary by a frame-seeded RNG, so `run_seq` and every parallel
/// run see identical input.
fn frame_text(frame: usize, words: usize) -> String {
    const VOCAB: [&str; 12] = [
        "easypap", "tile", "frame", "steal", "worker", "stage", "farm", "pipe", "zoom", "sched",
        "deque", "probe",
    ];
    let mut rng = Rng::seed(0xC0FFEE ^ frame as u64);
    let mut text = String::new();
    for i in 0..words {
        if i > 0 {
            text.push(' ');
        }
        text.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
    }
    text
}

fn wordcount_pipeline(dim: usize, width: usize) -> Pipeline<Vec<u8>> {
    let words = dim * 8;
    Pipeline::new()
        .farm_stage("count", width, move |frame, buf: &mut Vec<u8>| {
            let text = frame_text(frame, words);
            let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
            for w in text.split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
            buf.clear();
            for (w, c) in counts {
                buf.extend_from_slice(w.as_bytes());
                buf.push(b':');
                buf.extend_from_slice(c.to_string().as_bytes());
                buf.push(b'\n');
            }
        })
        .stage("serialize", move |frame, buf: &mut Vec<u8>| {
            // serial tail: prefix each report with its frame header
            let mut out = format!("frame {frame}\n").into_bytes();
            out.append(buf);
            *buf = out;
        })
}

impl StreamKernel for WordCount {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    fn describe(&self) -> &'static str {
        "streaming word count (farm count, serial serialize)"
    }

    fn run_seq(&self, dim: usize, frames: usize) -> Vec<FrameOut> {
        collect_seq(&wordcount_pipeline(dim, 1), frames)
    }

    fn run_tuned(
        &self,
        dim: usize,
        frames: usize,
        mode: EmitMode,
        farm_width: usize,
        tuning: ChanTuning,
        pool: &mut WorkerPool,
        probe: &dyn Probe,
    ) -> Result<(Vec<FrameOut>, StreamStats)> {
        drive(&wordcount_pipeline(dim, farm_width), frames, mode, tuning, pool, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::kernel::NullProbe;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let reg = stream_registry();
        assert!(!reg.is_empty());
        let mut names: Vec<_> = reg.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate streaming kernel names");
        assert!(stream_kernel("mandel_zoom").is_some());
        assert!(stream_kernel("nope").is_none());
    }

    #[test]
    fn every_demo_matches_its_baseline_ordered() {
        let mut pool = WorkerPool::new(4);
        for k in stream_registry() {
            let expect = k.run_seq(16, 8);
            let (got, stats) = k
                .run(16, 8, EmitMode::Ordered, 4, &mut pool, &NullProbe)
                .unwrap();
            assert_eq!(got, expect, "{} ordered diverged from seq", k.name());
            assert_eq!(stats.frames, 8);
        }
    }

    #[test]
    fn frame_text_is_deterministic() {
        assert_eq!(frame_text(3, 40), frame_text(3, 40));
        assert_ne!(frame_text(3, 40), frame_text(4, 40));
    }
}
