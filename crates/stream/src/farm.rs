//! The [`Farm`] skeleton: one replicated stage over a frame batch.
//!
//! A farm is the degenerate pipeline — a single stage replicated
//! `width` times — but unlike [`run_pipeline`](crate::run_pipeline) it
//! runs straight on a [`StealingDispenser`]: frames are distributed
//! statically across the farm's workers, and idle workers steal from
//! loaded ones (`nonmonotonic:dynamic`, the policy the paper singles
//! out for imbalance correction — exactly the case of frames with
//! wildly different costs).
//!
//! One farm owns one dispenser for its whole life and **re-arms** it
//! per [`process`](Farm::process) call — the production consumer of the
//! dispenser-generations contract ([`StealingDispenser::rearm`]): every
//! batch is a new generation, and stale private remainders from an
//! abandoned batch must never leak grants into the next.

use ezp_core::EmitMode;
use ezp_sched::dispenser::{Dispenser, StealStats, StealingDispenser};
use ezp_sched::WorkerPool;
use std::sync::Mutex;

/// A replicated stage fanned out over the stealing dispenser.
pub struct Farm {
    width: usize,
    disp: StealingDispenser,
}

impl Farm {
    /// A farm of `width` replicas (clamped to ≥ 1).
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        Farm {
            width,
            // armed per process() call; starts empty
            disp: StealingDispenser::new(0, width, 1),
        }
    }

    /// The replication width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Cumulative steal counters over every batch processed so far.
    pub fn steal_stats(&self) -> Vec<StealStats> {
        self.disp.steal_stats().unwrap_or_default()
    }

    /// Processes a batch of `frames` frames: `work` maps a frame id to
    /// its output (pure — replicas run concurrently), `sink` receives
    /// `(frame, output)` in frame order ([`EmitMode::Ordered`]) or
    /// completion order ([`EmitMode::Unordered`]).
    ///
    /// At most `min(width, pool.threads())` workers execute replicas;
    /// when the pool is smaller than the farm, the stealing dispenser
    /// drains the excess ranks' static shares through the steal path.
    pub fn process<T: Send>(
        &mut self,
        pool: &mut WorkerPool,
        frames: usize,
        mode: EmitMode,
        work: impl Fn(usize) -> T + Sync,
        mut sink: impl FnMut(usize, T) + Send,
    ) {
        // a new consumer generation for this batch (clears any stale
        // private remainders — see the Dispenser generations contract)
        self.disp.rearm(frames);
        match mode {
            EmitMode::Unordered => {
                let sink = Mutex::new(&mut sink);
                let disp = &self.disp;
                let work = &work;
                pool.run_limited(self.width, |rank| {
                    while let Some((start, len)) = disp.next(rank) {
                        for f in start..start + len {
                            let out = work(f);
                            (sink.lock().unwrap())(f, out);
                        }
                    }
                });
            }
            EmitMode::Ordered => {
                // reorder buffer: park completions, advance a frontier
                struct Reorder<'a, T> {
                    sink: &'a mut (dyn FnMut(usize, T) + Send),
                    parked: Vec<Option<T>>,
                    frontier: usize,
                }
                let state = Mutex::new(Reorder {
                    sink: &mut sink,
                    parked: (0..frames).map(|_| None).collect(),
                    frontier: 0,
                });
                let disp = &self.disp;
                let work = &work;
                pool.run_limited(self.width, |rank| {
                    while let Some((start, len)) = disp.next(rank) {
                        for f in start..start + len {
                            let out = work(f);
                            let mut st = state.lock().unwrap();
                            st.parked[f] = Some(out);
                            while st.frontier < frames {
                                let at = st.frontier;
                                match st.parked[at].take() {
                                    Some(p) => {
                                        let id = st.frontier;
                                        (st.sink)(id, p);
                                        st.frontier += 1;
                                    }
                                    None => break,
                                }
                            }
                        }
                    }
                });
                debug_assert_eq!(state.into_inner().unwrap().frontier, frames);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::vec_of;

    #[test]
    fn ordered_farm_emits_in_frame_order() {
        let mut pool = WorkerPool::new(4);
        let mut farm = Farm::new(4);
        let mut got = Vec::new();
        farm.process(
            &mut pool,
            100,
            EmitMode::Ordered,
            |f| f * f,
            |f, x| got.push((f, x)),
        );
        assert_eq!(got, (0..100).map(|f| (f, f * f)).collect::<Vec<_>>());
    }

    #[test]
    fn unordered_farm_is_a_permutation() {
        let mut pool = WorkerPool::new(4);
        let mut farm = Farm::new(4);
        let mut got = Vec::new();
        farm.process(
            &mut pool,
            100,
            EmitMode::Unordered,
            |f| f * 3,
            |f, x| got.push((f, x)),
        );
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|f| (f, f * 3)).collect::<Vec<_>>());
    }

    #[test]
    fn farm_wider_than_the_pool_still_covers_every_frame() {
        // pool of 2, farm of 8: ranks 2..8 never run, so their static
        // shares are only reachable through the steal path
        let mut pool = WorkerPool::new(2);
        let mut farm = Farm::new(8);
        let mut got = Vec::new();
        farm.process(
            &mut pool,
            64,
            EmitMode::Ordered,
            |f| f,
            |_, x| got.push(x),
        );
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        let stats = farm.steal_stats();
        assert!(
            stats.iter().map(|s| s.succeeded).sum::<u64>() > 0,
            "undersized pool must reach idle ranks' shares by stealing"
        );
    }

    #[test]
    fn farm_streams_batch_after_batch() {
        // the streaming pattern: one farm, many batches, each a fresh
        // dispenser generation
        let mut pool = WorkerPool::new(3);
        let mut farm = Farm::new(3);
        for batch in 0..10usize {
            let n = 20 + batch;
            let mut got = Vec::new();
            farm.process(
                &mut pool,
                n,
                EmitMode::Ordered,
                |f| f + batch,
                |_, x| got.push(x),
            );
            assert_eq!(got, (batch..n + batch).collect::<Vec<_>>());
        }
    }

    ezp_proptest! {
        #![cases(12)]

        // Unordered output is a permutation of Ordered output whatever
        // the per-frame latencies: arbitrary spin budgets skew which
        // replica finishes first, but the multiset of (frame, value)
        // pairs must be identical.
        fn prop_unordered_is_a_permutation_of_ordered(
            latencies in vec_of(0usize..400, 1..40),
            width in 1usize..5,
        ) {
            let frames = latencies.len();
            let work = |f: usize| {
                let mut x = f as u64;
                for i in 0..latencies[f] {
                    x = std::hint::black_box(x.wrapping_mul(31).wrapping_add(i as u64));
                }
                (f as u64) << 16 | (x & 0xFFFF)
            };
            let mut pool = WorkerPool::new(3);
            let mut ordered = Vec::new();
            Farm::new(width).process(&mut pool, frames, EmitMode::Ordered, work, |f, x| {
                ordered.push((f, x));
            });
            let mut unordered = Vec::new();
            Farm::new(width).process(&mut pool, frames, EmitMode::Unordered, work, |f, x| {
                unordered.push((f, x));
            });
            unordered.sort_unstable();
            assert_eq!(unordered, ordered, "width {width}: not a permutation");
        }
    }

    #[test]
    fn zero_frames_batch_is_a_no_op() {
        let mut pool = WorkerPool::new(2);
        let mut farm = Farm::new(2);
        farm.process(
            &mut pool,
            0,
            EmitMode::Ordered,
            |f| f,
            |_, _: usize| panic!("sink called for empty batch"),
        );
    }
}
