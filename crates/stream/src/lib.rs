//! # ezp-stream — parallel skeletons and the streaming frame driver
//!
//! EASYPAP's classic mode iterates one 2D kernel over one image. This
//! crate adds the missing *scheduling shape*: streaming — a sequence of
//! frames (video-style load) flowing through composable skeletons:
//!
//! * [`Pipeline`] — heterogeneous stages with bounded inter-stage
//!   buffers, each stage serial (`width 1`, frame-ordered, may hold
//!   state) or replicated (`width k`, a farm);
//! * [`Farm`] — a single replicated stage fanned out over the existing
//!   [`StealingDispenser`](ezp_sched::dispenser::StealingDispenser),
//!   re-armed per frame batch (the dispenser-generations contract);
//! * [`map_reduce`] — per-leaf partial folds under any scheduling
//!   policy, merged by a fixed-shape pairwise tree so the result is
//!   byte-identical regardless of schedule or worker count.
//!
//! Skeletons do not bring their own scheduler: a pipeline over a window
//! of frames compiles to a [`TaskGraph`](ezp_sched::TaskGraph) via
//! [`PipeShape`](ezp_sched::PipeShape) (see
//! `ezp_sched::skeleton`), and the Chase-Lev deques plus steal path do
//! the work placement. Output is [`EmitMode::Ordered`] (reorder buffer,
//! frame-id order) or [`EmitMode::Unordered`] (completion order) — the
//! latency-vs-throughput tension the counters in `ezp-perf`
//! (`backpressure_stalls`, `frames_in_flight`, `reorder_buffer_depth`,
//! `stage_occupancy`, `frames_emitted`) make visible.
//!
//! Semantics, ordering guarantees and counter definitions are spelled
//! out in `docs/streaming.md`; conformance against the sequential
//! one-frame-at-a-time baseline lives in `tests/conformance.rs`.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod demos;
pub mod engine;
pub mod farm;
pub mod mapreduce;
pub mod pipeline;

pub use demos::{stream_kernel, stream_registry, StreamKernel};
pub use engine::{run_pipeline, run_pipeline_tuned, StreamStats};
pub use ezp_core::{ChanBackendKind, ChanTuning, EmitMode, WaitPolicy};
pub use farm::Farm;
pub use mapreduce::map_reduce;
pub use pipeline::Pipeline;
