//! Collective operations built on point-to-point messages.
//!
//! Implemented the simple, star-topology way (root-centric): the worlds
//! simulated here are small (`mpirun -np 2` in the paper), so asymptotic
//! tree optimizations would be noise. Each collective uses a reserved
//! high tag so user traffic on other tags is unaffected.

use crate::comm::{Comm, Tag};
use ezp_core::error::Result;
use ezp_core::json::{FromJson, ToJson};

/// Tags reserved by the collectives (top of the tag space).
const TAG_BCAST: Tag = u32::MAX - 1;
const TAG_GATHER: Tag = u32::MAX - 2;
const TAG_REDUCE: Tag = u32::MAX - 3;
const TAG_ALLTOALL: Tag = u32::MAX - 4;
const TAG_SCATTER: Tag = u32::MAX - 5;

/// Broadcasts `value` from `root` to every rank; each rank returns the
/// broadcast value (`MPI_Bcast`).
pub fn broadcast<T: ToJson + FromJson + Clone>(
    comm: &Comm,
    root: usize,
    value: Option<T>,
) -> Result<T> {
    comm.note(|s| s.broadcasts += 1);
    if comm.rank() == root {
        let v = value.expect("root must provide the broadcast value");
        for dst in 0..comm.size() {
            if dst != root {
                comm.send(dst, TAG_BCAST, &v)?;
            }
        }
        Ok(v)
    } else {
        comm.recv(root, TAG_BCAST)
    }
}

/// Gathers one value per rank at `root` (`MPI_Gather`); returns
/// `Some(values)` (indexed by rank) at root, `None` elsewhere.
pub fn gather<T: ToJson + FromJson>(
    comm: &Comm,
    root: usize,
    value: &T,
) -> Result<Option<Vec<T>>> {
    comm.note(|s| s.gathers += 1);
    if comm.rank() == root {
        // receive from each rank *by source*: taking "any" message here
        // could steal a later collective's payload from a fast rank
        let mut out: Vec<Option<T>> = (0..comm.size()).map(|_| None).collect();
        out[root] = Some(T::from_json(&value.to_json()).expect("self round-trip cannot fail"));
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = Some(comm.recv(src, TAG_GATHER)?);
            }
        }
        Ok(Some(out.into_iter().map(|v| v.unwrap()).collect()))
    } else {
        comm.send(root, TAG_GATHER, value)?;
        Ok(None)
    }
}

/// Scatters one value per rank from `root` (`MPI_Scatter`): rank `i`
/// receives `values[i]`. Only the root provides `values`.
pub fn scatter<T: ToJson + FromJson>(
    comm: &Comm,
    root: usize,
    values: Option<Vec<T>>,
) -> Result<T> {
    comm.note(|s| s.scatters += 1);
    if comm.rank() == root {
        let values = values.expect("root must provide the scatter values");
        assert_eq!(values.len(), comm.size(), "one value per rank");
        let mut own = None;
        for (dst, v) in values.into_iter().enumerate() {
            if dst == root {
                own = Some(v);
            } else {
                comm.send(dst, TAG_SCATTER, &v)?;
            }
        }
        Ok(own.expect("root receives its own slice"))
    } else {
        comm.recv(root, TAG_SCATTER)
    }
}

/// Root-only reduce (`MPI_Reduce`): returns `Some(reduction)` at `root`,
/// `None` elsewhere.
pub fn reduce<T, F>(comm: &Comm, root: usize, value: T, combine: F) -> Result<Option<T>>
where
    T: ToJson + FromJson,
    F: Fn(T, T) -> T,
{
    comm.note(|s| s.reduces += 1);
    if comm.rank() == root {
        // per-source receives keep successive reduce calls in lockstep
        // (non-root ranks do not block after sending)
        let mut acc = value;
        for src in 0..comm.size() {
            if src != root {
                let v: T = comm.recv(src, TAG_REDUCE)?;
                acc = combine(acc, v);
            }
        }
        Ok(Some(acc))
    } else {
        comm.send(root, TAG_REDUCE, &value)?;
        Ok(None)
    }
}

/// All-reduce with a user-supplied associative+commutative combiner
/// (`MPI_Allreduce`): every rank returns the reduction of all
/// contributions. Root-gather + broadcast.
pub fn allreduce<T, F>(comm: &Comm, value: T, combine: F) -> Result<T>
where
    T: ToJson + FromJson + Clone,
    F: Fn(T, T) -> T,
{
    comm.note(|s| s.reduces += 1);
    const ROOT: usize = 0;
    if comm.rank() == ROOT {
        let mut acc = value;
        for src in 1..comm.size() {
            let v: T = comm.recv(src, TAG_REDUCE)?;
            acc = combine(acc, v);
        }
        broadcast(comm, ROOT, Some(acc))
    } else {
        comm.send(ROOT, TAG_REDUCE, &value)?;
        broadcast(comm, ROOT, None)
    }
}

/// Logical-AND all-reduce over booleans — the "is the whole simulation
/// in a steady state?" question of the lazy Game of Life.
pub fn allreduce_and(comm: &Comm, value: bool) -> Result<bool> {
    allreduce(comm, value, |a, b| a && b)
}

/// Sum all-reduce over `u64` counters (e.g. total live cells).
pub fn allreduce_sum(comm: &Comm, value: u64) -> Result<u64> {
    allreduce(comm, value, |a, b| a + b)
}

/// Personalized all-to-all (`MPI_Alltoall`): rank `i` sends
/// `values[j]` to rank `j` and returns what every rank sent to `i`.
pub fn alltoall<T: ToJson + FromJson>(comm: &Comm, values: Vec<T>) -> Result<Vec<T>> {
    comm.note(|s| s.alltoalls += 1);
    assert_eq!(values.len(), comm.size(), "one value per destination");
    let mut out: Vec<Option<T>> = (0..comm.size()).map(|_| None).collect();
    for (dst, v) in values.iter().enumerate() {
        if dst == comm.rank() {
            out[dst] = Some(T::from_json(&v.to_json()).unwrap());
        } else {
            comm.send(dst, TAG_ALLTOALL, v)?;
        }
    }
    for (src, slot) in out.iter_mut().enumerate() {
        if src != comm.rank() {
            *slot = Some(comm.recv(src, TAG_ALLTOALL)?);
        }
    }
    Ok(out.into_iter().map(|v| v.unwrap()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[test]
    fn broadcast_reaches_everyone() {
        let got = run(4, |comm| {
            let v = if comm.rank() == 2 {
                broadcast(comm, 2, Some("hello".to_string()))?
            } else {
                broadcast::<String>(comm, 2, None)?
            };
            Ok(v)
        })
        .unwrap();
        assert!(got.iter().all(|v| v == "hello"));
    }

    #[test]
    fn gather_collects_by_rank() {
        let got = run(3, |comm| gather(comm, 0, &(comm.rank() * 10))).unwrap();
        assert_eq!(got[0], Some(vec![0, 10, 20]));
        assert_eq!(got[1], None);
        assert_eq!(got[2], None);
    }

    #[test]
    fn scatter_delivers_per_rank_values() {
        let got = run(3, |comm| {
            let v = if comm.rank() == 1 {
                scatter(comm, 1, Some(vec![10, 20, 30]))?
            } else {
                scatter::<i32>(comm, 1, None)?
            };
            Ok(v)
        })
        .unwrap();
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn reduce_collects_at_root_only() {
        let got = run(4, |comm| reduce(comm, 2, comm.rank() as u64, |a, b| a + b)).unwrap();
        assert_eq!(got[2], Some(6));
        assert_eq!(got[0], None);
        assert_eq!(got[1], None);
        assert_eq!(got[3], None);
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let got = run(3, |comm| {
            let mine: usize = if comm.rank() == 0 {
                scatter(comm, 0, Some(vec![100, 200, 300]))?
            } else {
                scatter(comm, 0, None)?
            };
            gather(comm, 0, &(mine + 1))
        })
        .unwrap();
        assert_eq!(got[0], Some(vec![101, 201, 301]));
    }

    #[test]
    fn allreduce_sum_and_and() {
        let got = run(4, |comm| {
            let sum = allreduce_sum(comm, comm.rank() as u64 + 1)?;
            let all_even = allreduce_and(comm, comm.rank() % 2 == 0)?;
            let none_huge = allreduce_and(comm, comm.rank() < 10)?;
            Ok((sum, all_even, none_huge))
        })
        .unwrap();
        for &(sum, all_even, none_huge) in &got {
            assert_eq!(sum, 10);
            assert!(!all_even);
            assert!(none_huge);
        }
    }

    #[test]
    fn allreduce_max() {
        let got = run(3, |comm| {
            allreduce(comm, comm.rank() as u64 * 7, |a, b| a.max(b))
        })
        .unwrap();
        assert!(got.iter().all(|&v| v == 14));
    }

    #[test]
    fn alltoall_transposes() {
        let got = run(3, |comm| {
            let my = comm.rank();
            // rank i sends i*10 + j to rank j
            let values: Vec<usize> = (0..3).map(|j| my * 10 + j).collect();
            alltoall(comm, values)
        })
        .unwrap();
        // rank j must receive [0*10+j, 1*10+j, 2*10+j]
        for (j, received) in got.iter().enumerate() {
            assert_eq!(received, &vec![j, 10 + j, 20 + j]);
        }
    }

    #[test]
    fn collectives_compose_with_user_traffic() {
        // user messages on tag 0 interleaved with collectives must not mix
        let got = run(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 0, &comm.rank())?;
            let sum = allreduce_sum(comm, 1)?;
            let user: usize = comm.recv(peer, 0)?;
            Ok((sum, user))
        })
        .unwrap();
        assert_eq!(got[0], (2, 1));
        assert_eq!(got[1], (2, 0));
    }

    #[test]
    fn back_to_back_collectives_stay_in_lockstep() {
        // non-root ranks race ahead between rounds; per-source receives
        // must keep each round's values together
        let got = run(3, |comm| {
            let mut sums = Vec::new();
            for round in 0..20u64 {
                let s = reduce(comm, 0, comm.rank() as u64 + round * 100, |a, b| a + b)?;
                let g = gather(comm, 0, &(comm.rank() as u64 * 1000 + round))?;
                if comm.rank() == 0 {
                    sums.push((s.unwrap(), g.unwrap()));
                }
            }
            Ok(sums)
        })
        .unwrap();
        for (round, (s, g)) in got[0].iter().enumerate() {
            let round = round as u64;
            assert_eq!(*s, 3 * round * 100 + 3, "reduce round {round} mixed");
            assert_eq!(g, &vec![round, 1000 + round, 2000 + round], "gather round {round} mixed");
        }
    }

    #[test]
    fn collectives_are_counted_per_rank() {
        let (_, stats) = crate::comm::run_with_stats(3, |comm| {
            broadcast(comm, 0, (comm.rank() == 0).then_some(1u32))?;
            gather(comm, 0, &comm.rank())?;
            let v = if comm.rank() == 0 {
                scatter(comm, 0, Some(vec![1u32, 2, 3]))?
            } else {
                scatter::<u32>(comm, 0, None)?
            };
            allreduce_sum(comm, v as u64)?;
            alltoall(comm, vec![0u32, 1, 2])?;
            Ok(())
        })
        .unwrap();
        for st in &stats {
            // allreduce = reduce + an internal broadcast
            assert_eq!(st.broadcasts, 2);
            assert_eq!(st.gathers, 1);
            assert_eq!(st.scatters, 1);
            assert_eq!(st.reduces, 1);
            assert_eq!(st.alltoalls, 1);
        }
    }

    #[test]
    fn single_rank_collectives() {
        let got = run(1, |comm| {
            let b = broadcast(comm, 0, Some(5u32))?;
            let g = gather(comm, 0, &b)?;
            let s = allreduce_sum(comm, 3)?;
            Ok((b, g, s))
        })
        .unwrap();
        assert_eq!(got[0], (5, Some(vec![5]), 3));
    }
}
