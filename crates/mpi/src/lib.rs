//! # ezp-mpi — a simulated MPI for distributed-memory variants (§III-D)
//!
//! The paper's Game-of-Life assignment ends with an MPI+OpenMP variant:
//! ranks own horizontal blocks of the image and "exchange ghost-cells
//! between MPI processes, including meta-informations regarding the
//! state of tiles". Running a real `mpirun` is a hardware/stack gate this
//! reproduction replaces with a faithful simulation (see DESIGN.md):
//! ranks are OS threads, point-to-point messages travel over unbounded
//! channels (MPI buffered-send semantics), and the collective operations
//! are built on top of them, so user code is structured exactly like an
//! MPI program — explicit rank decomposition, sends, receives, barriers.
//!
//! * [`comm`] — [`Comm`] (rank, size, send/recv with tags and selective
//!   reception) and [`run`], the `mpirun -np N` equivalent;
//! * [`collective`] — barrier, broadcast, gather, all-reduce;
//! * [`ghost`] — row-block decomposition and ghost-row exchange helpers.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod collective;
pub mod comm;
pub mod ghost;

pub use comm::{run, run_tuned, run_with_stats, Comm, CommStats, Tag, ANY_SOURCE};
pub use ghost::BlockRows;
