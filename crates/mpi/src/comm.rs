//! The communicator: ranks, typed point-to-point messages, `run`.
//!
//! Every rank owns one unbounded receive channel; sending never blocks
//! (MPI buffered mode), receiving is *selective*: `recv(src, tag)` pulls
//! messages into a pending list until the matching one arrives, so
//! out-of-order traffic between rank pairs with different tags is safe —
//! the property the Game-of-Life variant relies on when it exchanges
//! ghost rows and tile-state metadata separately.

use ezp_core::error::{Error, Result};
use ezp_core::json::{FromJson, Json, ToJson};
use std::cell::RefCell;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Message tag, like MPI's. Use distinct tags for logically distinct
/// streams (ghost rows vs. metadata).
pub type Tag = u32;

/// Wildcard source for [`Comm::recv_any`].
pub const ANY_SOURCE: usize = usize::MAX;

/// A message in flight.
#[derive(Debug)]
struct Message {
    src: usize,
    tag: Tag,
    payload: Vec<u8>,
}

/// The per-rank communicator handle (an `MPI_COMM_WORLD` member).
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Received-but-not-yet-requested messages (selective reception).
    pending: RefCell<Vec<Message>>,
    barrier: Arc<Barrier>,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `value` to `dst` under `tag`. Never blocks (buffered mode).
    pub fn send<T: ToJson>(&self, dst: usize, tag: Tag, value: &T) -> Result<()> {
        if dst >= self.size {
            return Err(Error::Mpi(format!(
                "send to rank {dst} out of range (size {})",
                self.size
            )));
        }
        let payload = value.to_json().dump().into_bytes();
        self.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| Error::Mpi(format!("rank {dst} has terminated")))
    }

    /// Receives the next message from `src` with `tag`, blocking until it
    /// arrives. Other messages received meanwhile are buffered.
    pub fn recv<T: FromJson>(&self, src: usize, tag: Tag) -> Result<T> {
        let (_, value) = self.recv_match(|m| m.src == src && m.tag == tag)?;
        Ok(value)
    }

    /// Receives the next message with `tag` from any source; returns
    /// `(src, value)`.
    pub fn recv_any<T: FromJson>(&self, tag: Tag) -> Result<(usize, T)> {
        self.recv_match(|m| m.tag == tag)
    }

    fn recv_match<T: FromJson>(
        &self,
        matches: impl Fn(&Message) -> bool,
    ) -> Result<(usize, T)> {
        // check the pending buffer first (preserving arrival order)
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(&matches) {
                let m = pending.remove(pos);
                return decode(m);
            }
        }
        loop {
            let m = self
                .receiver
                .recv()
                .map_err(|_| Error::Mpi("world has shut down".into()))?;
            if matches(&m) {
                return decode(m);
            }
            self.pending.borrow_mut().push(m);
        }
    }

    /// Simultaneous send+receive with the same peer — the deadlock-free
    /// idiom of ghost exchange (`MPI_Sendrecv`). With buffered sends this
    /// is simply a send followed by a receive.
    pub fn sendrecv<T: ToJson, U: FromJson>(
        &self,
        dst: usize,
        send_tag: Tag,
        value: &T,
        src: usize,
        recv_tag: Tag,
    ) -> Result<U> {
        self.send(dst, send_tag, value)?;
        self.recv(src, recv_tag)
    }

    /// Synchronizes all ranks (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

fn decode<T: FromJson>(m: Message) -> Result<(usize, T)> {
    let value = std::str::from_utf8(&m.payload)
        .map_err(|e| Error::Mpi(format!("payload is not UTF-8 (src {}, tag {}): {e}", m.src, m.tag)))
        .and_then(|text| {
            Json::parse(text).and_then(|v| T::from_json(&v)).map_err(|e| {
                Error::Mpi(format!(
                    "deserialization failed (src {}, tag {}): {e}",
                    m.src, m.tag
                ))
            })
        })?;
    Ok((m.src, value))
}

/// Launches `np` ranks running `f` concurrently and returns their
/// results indexed by rank — the `mpirun -np N easypap ...` equivalent.
///
/// # Panics
///
/// Panics if any rank panics (after all ranks have been joined).
pub fn run<R, F>(np: usize, f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(&Comm) -> Result<R> + Sync,
{
    if np == 0 {
        return Err(Error::Mpi("world size must be > 0".into()));
    }
    let mut senders = Vec::with_capacity(np);
    let mut receivers = Vec::with_capacity(np);
    for _ in 0..np {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(Barrier::new(np));
    let comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Comm {
            rank,
            size: np,
            senders: senders.clone(),
            receiver,
            pending: RefCell::new(Vec::new()),
            barrier: barrier.clone(),
        })
        .collect();
    drop(senders);

    let mut results: Vec<Option<Result<R>>> = Vec::new();
    for _ in 0..np {
        results.push(None);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                s.spawn(move || f(&comm))
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[rank] = Some(r),
                Err(_) => results[rank] = Some(Err(Error::Mpi(format!("rank {rank} panicked")))),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every rank joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_correct_ranks() {
        let got = run(4, |comm| {
            assert_eq!(comm.size(), 4);
            Ok(comm.rank())
        })
        .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_pass() {
        // each rank sends its rank to the next; sum travels the ring
        let got = run(3, |comm| {
            let next = (comm.rank() + 1) % 3;
            let prev = (comm.rank() + 2) % 3;
            comm.send(next, 7, &comm.rank())?;
            let from_prev: usize = comm.recv(prev, 7)?;
            Ok(from_prev)
        })
        .unwrap();
        assert_eq!(got, vec![2, 0, 1]);
    }

    #[test]
    fn selective_reception_by_tag() {
        let got = run(2, |comm| -> Result<(String, String)> {
            if comm.rank() == 0 {
                comm.send(1, 1, &"first".to_string())?;
                comm.send(1, 2, &"second".to_string())?;
                Ok((String::new(), String::new()))
            } else {
                // request tag 2 before tag 1: the tag-1 message must wait
                // in the pending buffer, not be lost
                let b: String = comm.recv(0, 2)?;
                let a: String = comm.recv(0, 1)?;
                Ok((a, b))
            }
        })
        .unwrap();
        assert_eq!(got[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn recv_any_reports_source() {
        let got = run(3, |comm| {
            if comm.rank() == 0 {
                let mut sources = Vec::new();
                for _ in 0..2 {
                    let (src, v): (usize, u64) = comm.recv_any(5)?;
                    assert_eq!(v, src as u64 * 10);
                    sources.push(src);
                }
                sources.sort_unstable();
                Ok(sources)
            } else {
                comm.send(0, 5, &(comm.rank() as u64 * 10))?;
                Ok(vec![])
            }
        })
        .unwrap();
        assert_eq!(got[0], vec![1, 2]);
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let got = run(2, |comm| {
            let peer = 1 - comm.rank();
            let v: usize = comm.sendrecv(peer, 9, &comm.rank(), peer, 9)?;
            Ok(v)
        })
        .unwrap();
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run(4, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // after the barrier, every rank must have incremented
            assert_eq!(before.load(Ordering::SeqCst), 4);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn structured_payloads() {
        #[derive(PartialEq, Debug)]
        struct Ghost {
            row: Vec<u32>,
            steady: bool,
        }
        impl ToJson for Ghost {
            fn to_json(&self) -> Json {
                Json::obj([("row", self.row.to_json()), ("steady", self.steady.to_json())])
            }
        }
        impl FromJson for Ghost {
            fn from_json(v: &Json) -> Result<Ghost> {
                Ok(Ghost {
                    row: v.field("row")?,
                    steady: v.field("steady")?,
                })
            }
        }
        let got = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(
                    1,
                    3,
                    &Ghost {
                        row: vec![1, 2, 3],
                        steady: false,
                    },
                )?;
                Ok(true)
            } else {
                let g: Ghost = comm.recv(0, 3)?;
                Ok(g.row == vec![1, 2, 3] && !g.steady)
            }
        })
        .unwrap();
        assert!(got[1]);
    }

    #[test]
    fn send_to_bad_rank_errors() {
        let got = run(2, |comm| {
            if comm.rank() == 0 {
                assert!(comm.send(5, 0, &1u32).is_err());
            }
            Ok(())
        });
        assert!(got.is_ok());
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(run(0, |_| Ok(())).is_err());
    }

    #[test]
    fn rank_panic_is_reported_not_hung() {
        let got = run(2, |comm| {
            if comm.rank() == 1 {
                panic!("rank 1 exploded");
            }
            Ok(comm.rank())
        });
        assert!(got.is_err());
    }

    #[test]
    fn single_rank_world_works() {
        let got = run(1, |comm| {
            comm.barrier();
            comm.send(0, 0, &42u32)?; // self-send
            let v: u32 = comm.recv(0, 0)?;
            Ok(v)
        })
        .unwrap();
        assert_eq!(got, vec![42]);
    }
}
