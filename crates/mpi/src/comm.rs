//! The communicator: ranks, typed point-to-point messages, `run`.
//!
//! Every rank owns one unbounded receive mailbox — an [`ezp_chan`]
//! channel with one sender lane per peer rank, backend-selectable via
//! [`ChanTuning`] (`run_tuned`). Sending never blocks (MPI buffered
//! mode), receiving is *selective*: `recv(src, tag)` pulls messages
//! into a pending list until the matching one arrives, so out-of-order
//! traffic between rank pairs with different tags is safe — the
//! property the Game-of-Life variant relies on when it exchanges ghost
//! rows and tile-state metadata separately.

use ezp_chan::{unbounded, ChanReceiver, ChanSender};
use ezp_core::error::{Error, Result};
use ezp_core::json::{FromJson, Json, ToJson};
use ezp_core::ChanTuning;
use std::cell::RefCell;
use std::sync::{Arc, Barrier};

/// Message tag, like MPI's. Use distinct tags for logically distinct
/// streams (ghost rows vs. metadata).
pub type Tag = u32;

/// Wildcard source for [`Comm::recv_any`].
pub const ANY_SOURCE: usize = usize::MAX;

/// A message in flight.
#[derive(Debug)]
struct Message {
    src: usize,
    tag: Tag,
    payload: Vec<u8>,
}

/// Per-rank communication counters, filled in centrally by [`Comm`] so
/// every variant gets them for free. Bytes are serialized-payload bytes
/// (what would travel the wire in a real MPI).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives included).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Barrier entries.
    pub barriers: u64,
    /// Broadcast participations.
    pub broadcasts: u64,
    /// Gather participations.
    pub gathers: u64,
    /// Scatter participations.
    pub scatters: u64,
    /// Reduce/all-reduce participations.
    pub reduces: u64,
    /// All-to-all participations.
    pub alltoalls: u64,
}

impl ToJson for CommStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("msgs_sent", self.msgs_sent.to_json()),
            ("bytes_sent", self.bytes_sent.to_json()),
            ("msgs_received", self.msgs_received.to_json()),
            ("bytes_received", self.bytes_received.to_json()),
            ("barriers", self.barriers.to_json()),
            ("broadcasts", self.broadcasts.to_json()),
            ("gathers", self.gathers.to_json()),
            ("scatters", self.scatters.to_json()),
            ("reduces", self.reduces.to_json()),
            ("alltoalls", self.alltoalls.to_json()),
        ])
    }
}

impl FromJson for CommStats {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(CommStats {
            msgs_sent: v.field("msgs_sent")?,
            bytes_sent: v.field("bytes_sent")?,
            msgs_received: v.field("msgs_received")?,
            bytes_received: v.field("bytes_received")?,
            barriers: v.field("barriers")?,
            broadcasts: v.field("broadcasts")?,
            gathers: v.field("gathers")?,
            scatters: v.field("scatters")?,
            reduces: v.field("reduces")?,
            alltoalls: v.field("alltoalls")?,
        })
    }
}

/// The per-rank communicator handle (an `MPI_COMM_WORLD` member).
pub struct Comm {
    rank: usize,
    size: usize,
    /// `senders[dst]` is this rank's private lane into `dst`'s mailbox.
    senders: Vec<Box<dyn ChanSender<Message>>>,
    receiver: Box<dyn ChanReceiver<Message>>,
    /// Received-but-not-yet-requested messages (selective reception).
    pending: RefCell<Vec<Message>>,
    barrier: Arc<Barrier>,
    /// Communication counters; `RefCell` because a `Comm` is owned by
    /// one rank thread (same argument as `pending`).
    stats: RefCell<CommStats>,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `value` to `dst` under `tag`. Never blocks (buffered mode).
    pub fn send<T: ToJson>(&self, dst: usize, tag: Tag, value: &T) -> Result<()> {
        if dst >= self.size {
            return Err(Error::Mpi(format!(
                "send to rank {dst} out of range (size {})",
                self.size
            )));
        }
        let payload = value.to_json().dump().into_bytes();
        {
            let mut st = self.stats.borrow_mut();
            st.msgs_sent += 1;
            st.bytes_sent += payload.len() as u64;
        }
        self.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| Error::Mpi(format!("rank {dst} has terminated")))
    }

    /// Receives the next message from `src` with `tag`, blocking until it
    /// arrives. Other messages received meanwhile are buffered.
    pub fn recv<T: FromJson>(&self, src: usize, tag: Tag) -> Result<T> {
        let (_, value) = self.recv_match(|m| m.src == src && m.tag == tag)?;
        Ok(value)
    }

    /// Receives the next message with `tag` from any source; returns
    /// `(src, value)`.
    pub fn recv_any<T: FromJson>(&self, tag: Tag) -> Result<(usize, T)> {
        self.recv_match(|m| m.tag == tag)
    }

    fn recv_match<T: FromJson>(
        &self,
        matches: impl Fn(&Message) -> bool,
    ) -> Result<(usize, T)> {
        // check the pending buffer first (preserving arrival order)
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(&matches) {
                let m = pending.remove(pos);
                self.note_received(&m);
                return decode(m);
            }
        }
        loop {
            let m = self
                .receiver
                .recv()
                .map_err(|_| Error::Mpi("world has shut down".into()))?;
            if matches(&m) {
                self.note_received(&m);
                return decode(m);
            }
            self.pending.borrow_mut().push(m);
        }
    }

    fn note_received(&self, m: &Message) {
        let mut st = self.stats.borrow_mut();
        st.msgs_received += 1;
        st.bytes_received += m.payload.len() as u64;
    }

    /// Counter hook for the collectives module.
    pub(crate) fn note(&self, f: impl FnOnce(&mut CommStats)) {
        f(&mut self.stats.borrow_mut());
    }

    /// This rank's communication counters so far.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    /// Simultaneous send+receive with the same peer — the deadlock-free
    /// idiom of ghost exchange (`MPI_Sendrecv`). With buffered sends this
    /// is simply a send followed by a receive.
    pub fn sendrecv<T: ToJson, U: FromJson>(
        &self,
        dst: usize,
        send_tag: Tag,
        value: &T,
        src: usize,
        recv_tag: Tag,
    ) -> Result<U> {
        self.send(dst, send_tag, value)?;
        self.recv(src, recv_tag)
    }

    /// Synchronizes all ranks (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.stats.borrow_mut().barriers += 1;
        self.barrier.wait();
    }
}

fn decode<T: FromJson>(m: Message) -> Result<(usize, T)> {
    let value = std::str::from_utf8(&m.payload)
        .map_err(|e| Error::Mpi(format!("payload is not UTF-8 (src {}, tag {}): {e}", m.src, m.tag)))
        .and_then(|text| {
            Json::parse(text).and_then(|v| T::from_json(&v)).map_err(|e| {
                Error::Mpi(format!(
                    "deserialization failed (src {}, tag {}): {e}",
                    m.src, m.tag
                ))
            })
        })?;
    Ok((m.src, value))
}

/// Launches `np` ranks running `f` concurrently and returns their
/// results indexed by rank — the `mpirun -np N easypap ...` equivalent.
///
/// # Panics
///
/// Panics if any rank panics (after all ranks have been joined).
pub fn run<R, F>(np: usize, f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(&Comm) -> Result<R> + Sync,
{
    run_with_stats(np, f).map(|(results, _)| results)
}

/// [`run`], also returning each rank's [`CommStats`] (messages, bytes,
/// barriers and per-collective counts) so `--stats` can show the
/// communication side of an MPI variant.
pub fn run_with_stats<R, F>(np: usize, f: F) -> Result<(Vec<R>, Vec<CommStats>)>
where
    R: Send,
    F: Fn(&Comm) -> Result<R> + Sync,
{
    run_tuned(np, ChanTuning::default(), f)
}

/// [`run_with_stats`] with the mailbox channel's backend and wait
/// policy chosen by `tuning` (`--chan-backend`, `--wait-policy`) — the
/// knob the conformance matrix sweeps to hold both substrates to the
/// same semantics.
pub fn run_tuned<R, F>(np: usize, tuning: ChanTuning, f: F) -> Result<(Vec<R>, Vec<CommStats>)>
where
    R: Send,
    F: Fn(&Comm) -> Result<R> + Sync,
{
    if np == 0 {
        return Err(Error::Mpi("world size must be > 0".into()));
    }
    // One mailbox per rank, each with one sender lane per peer; rank
    // `src` takes lane `src` of every mailbox, so `senders[dst]` below
    // is a private per-producer lane (per-peer FIFO holds by
    // construction on both backends).
    let mut lanes_by_dst = Vec::with_capacity(np);
    let mut inboxes = Vec::with_capacity(np);
    for _ in 0..np {
        let (txs, rx) = unbounded::<Message>(tuning, np);
        lanes_by_dst.push(txs.into_iter());
        inboxes.push(rx);
    }
    let barrier = Arc::new(Barrier::new(np));
    let comms: Vec<Comm> = inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Comm {
            rank,
            size: np,
            senders: lanes_by_dst
                .iter_mut()
                .map(|lanes| lanes.next().expect("one sender lane per rank"))
                .collect(),
            receiver,
            pending: RefCell::new(Vec::new()),
            barrier: barrier.clone(),
            stats: RefCell::new(CommStats::default()),
        })
        .collect();

    let mut results: Vec<Option<(Result<R>, CommStats)>> = Vec::new();
    for _ in 0..np {
        results.push(None);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                s.spawn(move || {
                    let r = f(&comm);
                    (r, comm.stats())
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[rank] = Some(r),
                Err(_) => {
                    results[rank] = Some((
                        Err(Error::Mpi(format!("rank {rank} panicked"))),
                        CommStats::default(),
                    ))
                }
            }
        }
    });
    let mut values = Vec::with_capacity(np);
    let mut stats = Vec::with_capacity(np);
    for r in results {
        let (value, st) = r.expect("every rank joined");
        values.push(value?);
        stats.push(st);
    }
    Ok((values, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_correct_ranks() {
        let got = run(4, |comm| {
            assert_eq!(comm.size(), 4);
            Ok(comm.rank())
        })
        .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_pass() {
        // each rank sends its rank to the next; sum travels the ring
        let got = run(3, |comm| {
            let next = (comm.rank() + 1) % 3;
            let prev = (comm.rank() + 2) % 3;
            comm.send(next, 7, &comm.rank())?;
            let from_prev: usize = comm.recv(prev, 7)?;
            Ok(from_prev)
        })
        .unwrap();
        assert_eq!(got, vec![2, 0, 1]);
    }

    #[test]
    fn selective_reception_by_tag() {
        let got = run(2, |comm| -> Result<(String, String)> {
            if comm.rank() == 0 {
                comm.send(1, 1, &"first".to_string())?;
                comm.send(1, 2, &"second".to_string())?;
                Ok((String::new(), String::new()))
            } else {
                // request tag 2 before tag 1: the tag-1 message must wait
                // in the pending buffer, not be lost
                let b: String = comm.recv(0, 2)?;
                let a: String = comm.recv(0, 1)?;
                Ok((a, b))
            }
        })
        .unwrap();
        assert_eq!(got[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn recv_any_reports_source() {
        let got = run(3, |comm| {
            if comm.rank() == 0 {
                let mut sources = Vec::new();
                for _ in 0..2 {
                    let (src, v): (usize, u64) = comm.recv_any(5)?;
                    assert_eq!(v, src as u64 * 10);
                    sources.push(src);
                }
                sources.sort_unstable();
                Ok(sources)
            } else {
                comm.send(0, 5, &(comm.rank() as u64 * 10))?;
                Ok(vec![])
            }
        })
        .unwrap();
        assert_eq!(got[0], vec![1, 2]);
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let got = run(2, |comm| {
            let peer = 1 - comm.rank();
            let v: usize = comm.sendrecv(peer, 9, &comm.rank(), peer, 9)?;
            Ok(v)
        })
        .unwrap();
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run(4, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // after the barrier, every rank must have incremented
            assert_eq!(before.load(Ordering::SeqCst), 4);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn structured_payloads() {
        #[derive(PartialEq, Debug)]
        struct Ghost {
            row: Vec<u32>,
            steady: bool,
        }
        impl ToJson for Ghost {
            fn to_json(&self) -> Json {
                Json::obj([("row", self.row.to_json()), ("steady", self.steady.to_json())])
            }
        }
        impl FromJson for Ghost {
            fn from_json(v: &Json) -> Result<Ghost> {
                Ok(Ghost {
                    row: v.field("row")?,
                    steady: v.field("steady")?,
                })
            }
        }
        let got = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(
                    1,
                    3,
                    &Ghost {
                        row: vec![1, 2, 3],
                        steady: false,
                    },
                )?;
                Ok(true)
            } else {
                let g: Ghost = comm.recv(0, 3)?;
                Ok(g.row == vec![1, 2, 3] && !g.steady)
            }
        })
        .unwrap();
        assert!(got[1]);
    }

    #[test]
    fn send_to_bad_rank_errors() {
        let got = run(2, |comm| {
            if comm.rank() == 0 {
                assert!(comm.send(5, 0, &1u32).is_err());
            }
            Ok(())
        });
        assert!(got.is_ok());
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(run(0, |_| Ok(())).is_err());
    }

    #[test]
    fn rank_panic_is_reported_not_hung() {
        let got = run(2, |comm| {
            if comm.rank() == 1 {
                panic!("rank 1 exploded");
            }
            Ok(comm.rank())
        });
        assert!(got.is_err());
    }

    #[test]
    fn comm_stats_count_messages_bytes_and_barriers() {
        let (got, stats) = run_with_stats(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 0, &comm.rank())?;
            let v: usize = comm.recv(peer, 0)?;
            comm.barrier();
            Ok(v)
        })
        .unwrap();
        assert_eq!(got, vec![1, 0]);
        for st in &stats {
            assert_eq!(st.msgs_sent, 1);
            assert_eq!(st.msgs_received, 1);
            // both ranks ship a 1-byte JSON number ("0" / "1")
            assert_eq!(st.bytes_sent, 1);
            assert_eq!(st.bytes_received, 1);
            assert_eq!(st.barriers, 1);
        }
    }

    #[test]
    fn comm_stats_json_round_trips() {
        let st = CommStats {
            msgs_sent: 3,
            bytes_sent: u64::MAX,
            msgs_received: 2,
            bytes_received: 40,
            barriers: 1,
            broadcasts: 5,
            gathers: 6,
            scatters: 7,
            reduces: 8,
            alltoalls: 9,
        };
        let back = CommStats::from_json(&Json::parse(&st.to_json().dump()).unwrap()).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn mailboxes_behave_identically_on_every_backend_and_policy() {
        use ezp_core::{ChanBackendKind, WaitPolicy};
        for backend in ChanBackendKind::all() {
            for policy in WaitPolicy::all() {
                let tuning = ChanTuning { backend, policy };
                // the ring-pass exchange plus selective reception, the
                // two mailbox behaviors the variants lean on
                let (got, stats) = run_tuned(3, tuning, |comm| {
                    let next = (comm.rank() + 1) % 3;
                    let prev = (comm.rank() + 2) % 3;
                    comm.send(next, 2, &(comm.rank() * 10))?;
                    comm.send(next, 1, &comm.rank())?;
                    // request tag 1 before tag 2: out-of-order pull
                    let a: usize = comm.recv(prev, 1)?;
                    let b: usize = comm.recv(prev, 2)?;
                    Ok((a, b))
                })
                .unwrap();
                assert_eq!(got, vec![(2, 20), (0, 0), (1, 10)], "{tuning:?}");
                for st in &stats {
                    assert_eq!((st.msgs_sent, st.msgs_received), (2, 2), "{tuning:?}");
                }
            }
        }
    }

    #[test]
    fn single_rank_world_works() {
        let got = run(1, |comm| {
            comm.barrier();
            comm.send(0, 0, &42u32)?; // self-send
            let v: u32 = comm.recv(0, 0)?;
            Ok(v)
        })
        .unwrap();
        assert_eq!(got, vec![42]);
    }
}
