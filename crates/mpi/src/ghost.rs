//! Row-block decomposition and ghost-row exchange.
//!
//! The paper's MPI Game of Life splits the image into horizontal blocks
//! (Fig. 13 shows 2 ranks owning half the image each) and exchanges
//! boundary rows ("ghost cells") plus tile-state metadata every
//! iteration. [`BlockRows`] computes the decomposition; [`exchange_rows`]
//! does the two-neighbour exchange with `sendrecv` semantics.

use crate::comm::{Comm, Tag};
use ezp_core::error::Result;
use ezp_core::json::{FromJson, ToJson};

/// Tag used by the ghost exchange (distinct directions use tag+0/+1).
const TAG_GHOST_DOWN: Tag = u32::MAX - 10; // data flowing to higher ranks
const TAG_GHOST_UP: Tag = u32::MAX - 11; // data flowing to lower ranks

/// An even horizontal split of `total_rows` rows over `size` ranks
/// (remainder spread over the low ranks, like the scheduler's static
/// blocks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRows {
    /// Total number of rows decomposed.
    pub total_rows: usize,
    /// World size.
    pub size: usize,
    /// This rank.
    pub rank: usize,
}

impl BlockRows {
    /// Decomposition of `total_rows` rows as seen by `comm`'s rank.
    pub fn new(comm: &Comm, total_rows: usize) -> Self {
        BlockRows {
            total_rows,
            size: comm.size(),
            rank: comm.rank(),
        }
    }

    /// Explicit constructor (for tests and decomposition math).
    pub fn explicit(total_rows: usize, size: usize, rank: usize) -> Self {
        assert!(rank < size, "rank out of range");
        BlockRows {
            total_rows,
            size,
            rank,
        }
    }

    /// The row range `[start, end)` owned by `rank`.
    pub fn range_of(&self, rank: usize) -> (usize, usize) {
        let base = self.total_rows / self.size;
        let rem = self.total_rows % self.size;
        let start = rank * base + rank.min(rem);
        let len = base + usize::from(rank < rem);
        (start, start + len)
    }

    /// This rank's own row range.
    pub fn my_range(&self) -> (usize, usize) {
        self.range_of(self.rank)
    }

    /// Number of rows this rank owns.
    pub fn my_rows(&self) -> usize {
        let (s, e) = self.my_range();
        e - s
    }

    /// The rank owning global row `row`.
    pub fn owner_of(&self, row: usize) -> usize {
        assert!(row < self.total_rows, "row out of range");
        for rank in 0..self.size {
            let (s, e) = self.range_of(rank);
            if (s..e).contains(&row) {
                return rank;
            }
        }
        unreachable!("ranges partition the rows");
    }

    /// Rank above (owning smaller row indices), if any.
    pub fn up_neighbor(&self) -> Option<usize> {
        (self.rank > 0).then(|| self.rank - 1)
    }

    /// Rank below, if any (ranks owning zero rows have no meaningful
    /// neighbours but the exchange handles empty payloads anyway).
    pub fn down_neighbor(&self) -> Option<usize> {
        (self.rank + 1 < self.size).then(|| self.rank + 1)
    }
}

/// Exchanges ghost rows with both vertical neighbours: sends `first_row`
/// up and `last_row` down, returns `(ghost_above, ghost_below)` — the
/// neighbour rows needed to compute this block's boundary. `None` at the
/// world's edges.
pub fn exchange_rows<T>(
    comm: &Comm,
    block: &BlockRows,
    first_row: &T,
    last_row: &T,
) -> Result<(Option<T>, Option<T>)>
where
    T: ToJson + FromJson,
{
    // send phase (buffered, never blocks)
    if let Some(up) = block.up_neighbor() {
        comm.send(up, TAG_GHOST_UP, first_row)?;
    }
    if let Some(down) = block.down_neighbor() {
        comm.send(down, TAG_GHOST_DOWN, last_row)?;
    }
    // receive phase
    let ghost_above = match block.up_neighbor() {
        Some(up) => Some(comm.recv(up, TAG_GHOST_DOWN)?),
        None => None,
    };
    let ghost_below = match block.down_neighbor() {
        Some(down) => Some(comm.recv(down, TAG_GHOST_UP)?),
        None => None,
    };
    Ok((ghost_above, ghost_below))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[test]
    fn ranges_partition_rows() {
        for total in [0usize, 1, 7, 64, 100] {
            for size in 1..6 {
                let mut next = 0;
                let mut sum = 0;
                for rank in 0..size {
                    let b = BlockRows::explicit(total, size, rank);
                    let (s, e) = b.my_range();
                    assert_eq!(s, next);
                    next = e;
                    sum += e - s;
                }
                assert_eq!(sum, total);
            }
        }
    }

    #[test]
    fn owner_of_inverts_ranges() {
        let b = BlockRows::explicit(10, 3, 0);
        for row in 0..10 {
            let owner = b.owner_of(row);
            let (s, e) = b.range_of(owner);
            assert!((s..e).contains(&row));
        }
        assert_eq!(b.owner_of(0), 0);
        assert_eq!(b.owner_of(9), 2);
    }

    #[test]
    fn neighbors_at_edges() {
        let top = BlockRows::explicit(8, 3, 0);
        assert_eq!(top.up_neighbor(), None);
        assert_eq!(top.down_neighbor(), Some(1));
        let mid = BlockRows::explicit(8, 3, 1);
        assert_eq!(mid.up_neighbor(), Some(0));
        assert_eq!(mid.down_neighbor(), Some(2));
        let bottom = BlockRows::explicit(8, 3, 2);
        assert_eq!(bottom.up_neighbor(), Some(1));
        assert_eq!(bottom.down_neighbor(), None);
    }

    #[test]
    fn ghost_exchange_moves_boundary_rows() {
        // each rank's block is filled with its rank id; after exchange,
        // ghosts must carry the neighbour's id
        let got = run(3, |comm| {
            let block = BlockRows::new(comm, 12);
            let my_first = vec![comm.rank() as u32; 4];
            let my_last = vec![comm.rank() as u32 + 100; 4];
            let (above, below) = exchange_rows(comm, &block, &my_first, &my_last)?;
            Ok((above, below))
        })
        .unwrap();
        // rank 0: nothing above, rank 1's first row below
        assert_eq!(got[0].0, None);
        assert_eq!(got[0].1, Some(vec![1, 1, 1, 1]));
        // rank 1: rank 0's last row above, rank 2's first row below
        assert_eq!(got[1].0, Some(vec![100, 100, 100, 100]));
        assert_eq!(got[1].1, Some(vec![2, 2, 2, 2]));
        // rank 2: rank 1's last row above, nothing below
        assert_eq!(got[2].0, Some(vec![101, 101, 101, 101]));
        assert_eq!(got[2].1, None);
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let got = run(1, |comm| {
            let block = BlockRows::new(comm, 8);
            assert_eq!(block.my_rows(), 8);
            exchange_rows(comm, &block, &vec![1u8], &vec![2u8])
        })
        .unwrap();
        assert_eq!(got[0], (None, None));
    }

    #[test]
    fn repeated_exchanges_stay_in_sync() {
        // several iterations of exchange must not cross-talk
        let got = run(2, |comm| {
            let block = BlockRows::new(comm, 8);
            let mut seen = Vec::new();
            for it in 0..5u32 {
                let payload = vec![comm.rank() as u32 * 1000 + it];
                let (above, below) = exchange_rows(comm, &block, &payload, &payload)?;
                seen.push((above, below));
            }
            Ok(seen)
        })
        .unwrap();
        for it in 0..5u32 {
            assert_eq!(got[0][it as usize].1, Some(vec![1000 + it]));
            assert_eq!(got[1][it as usize].0, Some(vec![it]));
        }
    }
}
