//! Randomized message-traffic fuzzing of the MPI simulation.
//!
//! Selective reception is the subtle part of the communicator: messages
//! requested out of arrival order must be buffered, never lost or
//! duplicated. These property tests throw random traffic patterns at a
//! world and assert exact delivery.

use ezp_mpi::{collective, run};
use ezp_testkit::ezp_proptest;
use ezp_testkit::prop::any_u64;
use ezp_testkit::Rng;

ezp_proptest! {
    #![cases(16)]

    /// Every rank sends a random multiset of tagged messages to every
    /// other rank; receivers request them grouped by (src, tag) in a
    /// *different* random order. All payloads must arrive exactly once.
    fn random_traffic_delivers_exactly_once(
        np in 2usize..5,
        msgs_per_pair in 1usize..5,
        tags in 1u32..4,
        seed in any_u64(),
    ) {
        let results = run(np, |comm| {
            let me = comm.rank();
            // deterministic per-rank RNG so send/recv plans agree
            // send phase: to each peer, msgs_per_pair messages per tag
            for dst in 0..comm.size() {
                if dst == me {
                    continue;
                }
                for tag in 0..tags {
                    for k in 0..msgs_per_pair {
                        comm.send(dst, tag, &(me, tag, k))?;
                    }
                }
            }
            // receive phase: iterate (src, tag) pairs in a rank-seeded
            // shuffled order; within a pair, messages arrive FIFO
            let mut pairs: Vec<(usize, u32)> = (0..comm.size())
                .filter(|&s| s != me)
                .flat_map(|s| (0..tags).map(move |t| (s, t)))
                .collect();
            let mut rng = Rng::seed(seed ^ me as u64);
            rng.shuffle(&mut pairs);
            let mut received = Vec::new();
            for (src, tag) in pairs {
                for k in 0..msgs_per_pair {
                    let (s, t, kk): (usize, u32, usize) = comm.recv(src, tag)?;
                    assert_eq!((s, t, kk), (src, tag, k), "FIFO order within (src, tag)");
                    received.push((s, t, kk));
                }
            }
            Ok(received.len())
        })
        .unwrap();
        let expected = (np - 1) * msgs_per_pair * tags as usize;
        assert!(results.iter().all(|&n| n == expected));
    }

    /// Interleaving point-to-point chatter with collectives must never
    /// cross-contaminate either stream.
    fn collectives_and_p2p_interleave_safely(
        np in 2usize..5,
        rounds in 1usize..6,
    ) {
        let results = run(np, |comm| {
            let me = comm.rank();
            let next = (me + 1) % comm.size();
            let prev = (me + comm.size() - 1) % comm.size();
            let mut acc = Vec::new();
            for round in 0..rounds as u64 {
                comm.send(next, 7, &(me as u64 * 1000 + round))?;
                let sum = collective::allreduce_sum(comm, round + 1)?;
                let from_prev: u64 = comm.recv(prev, 7)?;
                assert_eq!(from_prev, prev as u64 * 1000 + round);
                acc.push(sum);
            }
            Ok(acc)
        })
        .unwrap();
        for r in &results {
            for (round, &sum) in r.iter().enumerate() {
                assert_eq!(sum, (round as u64 + 1) * np as u64);
            }
        }
    }
}
