//! The `easyplot` command: turn performance CSVs into graphs (§II-C).
//!
//! ```text
//! easyplot --input easypap.csv --kernel mandel --speedup
//! easyplot --input easypap.csv -x threads -y time_us --svg plot.svg
//! ```
//!
//! Mirrors the paper's `easyplot --kernel mandel --col grain --speedup`:
//! filters rows, factors out constant parameters, auto-builds the
//! legend, and renders ASCII (default) or SVG.

use ezp_core::csv::CsvTable;
use ezp_core::error::{Error, Result};
use ezp_plot::{render_ascii, render_svg, Dataset};
use std::fmt::Write as _;

struct PlotArgs {
    input: String,
    x: String,
    y: String,
    filters: Vec<(String, String)>,
    speedup: bool,
    /// `--hist COL`: bar chart grouped by a categorical column instead
    /// of a line plot.
    hist: Option<String>,
    svg: Option<String>,
}

fn parse_args<I, S>(args: I) -> Result<PlotArgs>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = PlotArgs {
        input: crate::easypap::PERF_CSV.to_string(),
        x: "threads".to_string(),
        y: "time_us".to_string(),
        filters: Vec::new(),
        speedup: false,
        hist: None,
        svg: None,
    };
    let mut it = args.into_iter();
    let need = |v: Option<S>, opt: &str| -> Result<String> {
        v.map(|s| s.as_ref().to_string())
            .ok_or_else(|| Error::Config(format!("option {opt} requires a value")))
    };
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        match arg {
            "--input" | "-i" => out.input = need(it.next(), arg)?,
            "-x" | "--x" => out.x = need(it.next(), arg)?,
            "-y" | "--y" => out.y = need(it.next(), arg)?,
            "--speedup" => out.speedup = true,
            "--hist" => out.hist = Some(need(it.next(), arg)?),
            "--svg" => out.svg = Some(need(it.next(), arg)?),
            // paper-style column filters: --kernel mandel, --variant ...
            "--kernel" | "--variant" | "--schedule" | "--machine" => {
                out.filters.push((arg[2..].to_string(), need(it.next(), arg)?));
            }
            "--dim" | "--tile" | "--iterations" => {
                out.filters.push((arg[2..].to_string(), need(it.next(), arg)?));
            }
            other => return Err(Error::Config(format!("unknown option `{other}`"))),
        }
    }
    Ok(out)
}

/// Runs `easyplot` and returns the console output (the ASCII chart, or
/// a confirmation line in SVG mode).
pub fn run_easyplot<I, S>(args: I) -> Result<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args = parse_args(args)?;
    let table = CsvTable::load(&args.input)?;
    // apply the column filters
    let filtered = table.filter(|row| {
        args.filters
            .iter()
            .all(|(col, val)| row.get(col) == Some(val.as_str()))
    });
    if filtered.is_empty() {
        return Err(Error::Config(format!(
            "no rows left after filtering {:?}",
            args.filters
        )));
    }
    if let Some(cat) = &args.hist {
        let bars = ezp_plot::bars_from_table(&filtered, cat, &args.y)?;
        let mut out = String::new();
        match &args.svg {
            Some(path) => {
                std::fs::write(path, ezp_plot::render_bars_svg(&bars, &args.y, 480.0, 320.0))?;
                writeln!(out, "histogram written to {path}").unwrap();
            }
            None => out.push_str(&ezp_plot::render_bars_ascii(&bars, &args.y, 40)),
        }
        return Ok(out);
    }
    let mut data = Dataset::from_table(&filtered, &args.x, &args.y, &["run"])?;
    if args.speedup {
        let ref_time = reference_time(&filtered, &args.x)?;
        data = data.into_speedup(ref_time);
    }
    let mut out = String::new();
    match &args.svg {
        Some(path) => {
            std::fs::write(path, render_svg(&data, 640.0, 420.0))?;
            writeln!(out, "plot written to {path}").unwrap();
            writeln!(out, "{}", data.constants_line()).unwrap();
        }
        None => out.push_str(&render_ascii(&data, 72, 20)),
    }
    Ok(out)
}

/// The `refTime` of a speedup plot: the mean time of the rows with the
/// smallest x value (typically `threads=1`, the sequential reference).
fn reference_time(table: &CsvTable, x_col: &str) -> Result<f64> {
    let xi = table
        .col(x_col)
        .ok_or_else(|| Error::Config(format!("no column `{x_col}`")))?;
    let ti = table
        .col("time_us")
        .ok_or_else(|| Error::Config("no column `time_us`".into()))?;
    let min_x = table
        .rows
        .iter()
        .filter_map(|r| r[xi].parse::<f64>().ok())
        .fold(f64::INFINITY, f64::min);
    let times: Vec<f64> = table
        .rows
        .iter()
        .filter(|r| r[xi].parse::<f64>().map(|v| v == min_x).unwrap_or(false))
        .filter_map(|r| r[ti].parse().ok())
        .collect();
    if times.is_empty() {
        return Err(Error::Config("no reference rows for speedup".into()));
    }
    Ok(times.iter().sum::<f64>() / times.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csv(name: &str) -> std::path::PathBuf {
        let mut t = CsvTable::new(vec![
            "machine", "kernel", "variant", "dim", "tile", "threads", "schedule", "iterations",
            "time_us", "run",
        ]);
        for (threads, sched, time) in [
            ("1", "static", "1000"),
            ("2", "static", "600"),
            ("4", "static", "400"),
            ("1", "dynamic,2", "1000"),
            ("2", "dynamic,2", "520"),
            ("4", "dynamic,2", "270"),
        ] {
            t.push_row(vec![
                "host", "mandel", "omp_tiled", "1024", "16", threads, sched, "10", time, "0",
            ])
            .unwrap();
        }
        // one blur row that the --kernel filter must drop
        t.push_row(vec![
            "host", "blur", "seq", "1024", "16", "1", "static", "10", "9999", "0",
        ])
        .unwrap();
        let path =
            std::env::temp_dir().join(format!("ezp_plot_cli_{}_{name}.csv", std::process::id()));
        t.save(&path).unwrap();
        path
    }

    #[test]
    fn ascii_speedup_plot_matches_fig6_contract() {
        let csv = sample_csv("speedup");
        let out = run_easyplot([
            "--input",
            csv.to_str().unwrap(),
            "--kernel",
            "mandel",
            "--speedup",
        ])
        .unwrap();
        // legend from the varying column only
        assert!(out.contains("schedule=static"));
        assert!(out.contains("schedule=dynamic,2"));
        // constants factored out and listed
        assert!(out.contains("kernel=mandel"));
        assert!(out.contains("dim=1024"));
        assert!(out.contains("refTime=1000"));
        assert!(out.contains("threads -> speedup"));
        std::fs::remove_file(csv).unwrap();
    }

    #[test]
    fn svg_output() {
        let csv = sample_csv("svg");
        let svg = std::env::temp_dir().join(format!("ezp_plot_{}.svg", std::process::id()));
        let out = run_easyplot([
            "--input",
            csv.to_str().unwrap(),
            "--kernel",
            "mandel",
            "--svg",
            svg.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("plot written"));
        assert!(std::fs::read_to_string(&svg).unwrap().contains("<polyline"));
        std::fs::remove_file(csv).unwrap();
        std::fs::remove_file(svg).unwrap();
    }

    #[test]
    fn histogram_mode_groups_by_category() {
        let csv = sample_csv("hist");
        let out = run_easyplot([
            "--input",
            csv.to_str().unwrap(),
            "--kernel",
            "mandel",
            "--hist",
            "schedule",
        ])
        .unwrap();
        assert!(out.contains("static"));
        assert!(out.contains("dynamic,2"));
        assert!(out.contains('#'));
        assert!(out.contains("(3 runs)"));
        std::fs::remove_file(csv).unwrap();
    }

    #[test]
    fn filter_with_no_matches_errors() {
        let csv = sample_csv("nomatch");
        let res = run_easyplot(["--input", csv.to_str().unwrap(), "--kernel", "nothing"]);
        assert!(res.is_err());
        std::fs::remove_file(csv).unwrap();
    }

    #[test]
    fn reference_time_uses_min_x_rows() {
        let csv = sample_csv("ref");
        let table = CsvTable::load(&csv).unwrap();
        let filtered = table.filter(|r| r.get("kernel") == Some("mandel"));
        assert_eq!(reference_time(&filtered, "threads").unwrap(), 1000.0);
        std::fs::remove_file(csv).unwrap();
    }

    #[test]
    fn unknown_option_errors() {
        assert!(run_easyplot(["--frobnicate"]).is_err());
    }
}
