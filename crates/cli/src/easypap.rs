//! The `easypap` command: run a kernel variant under the framework.

use ezp_core::ezp_debug;
use ezp_core::kernel::{MultiProbe, NullProbe, Probe};
use ezp_core::params::{DisplayMode, StatsFormat};
use ezp_core::perf::run_kernel_boxed;
use ezp_core::{Result, RunConfig};
use ezp_kernels::life::Life;
use ezp_kernels::registry;
use ezp_monitor::{activity, Monitor, MonitorReport, UnifiedReport};
use ezp_perf::PerfProbe;
use ezp_trace::{Trace, TraceMeta};
use std::fmt::Write as _;
use std::sync::Arc;

/// Default CSV file of the performance mode.
pub const PERF_CSV: &str = "easypap.csv";

/// Runs `easypap` with the given arguments (program name excluded) and
/// returns the console output.
pub fn run_easypap<I, S>(args: I) -> Result<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    // subcommands come first, before the flag grammar: `easypap serve`
    // runs the persistent daemon, `easypap submit` is its client
    match args.first().map(String::as_str) {
        Some("serve") => return crate::serve_cmd::run_serve(&args[1..]),
        Some("submit") => return crate::serve_cmd::run_submit(&args[1..]),
        _ => {}
    }
    // `easypap --list`: enumerate kernels and variants, like the original
    // framework's discovery of `<kernel>_compute_<variant>` symbols
    if args.iter().any(|a| a == "--list" || a == "-l") {
        let reg = registry();
        let mut out = String::from("available kernels:\n");
        for name in reg.kernel_names() {
            let k = reg.create(name)?;
            out.push_str(&format!("  {name:<12} variants: {}\n", k.variants().join(", ")));
        }
        out.push_str("streaming kernels (--stream=N):\n");
        for k in ezp_stream::stream_registry() {
            out.push_str(&format!("  {:<12} {}\n", k.name(), k.describe()));
        }
        return Ok(out);
    }
    let cfg = RunConfig::parse_args(args.iter().map(String::as_str))?;
    // `--debug` raises the process-wide log level; EZP_LOG still works
    // for runs without the flag.
    if cfg.debug {
        ezp_core::log::set_level(ezp_core::log::Level::Debug);
    }
    let mut out = String::new();

    // Fig. 13 special case: MPI debugging shows every rank's windows;
    // the per-rank reports live on the concrete Life kernel.
    if cfg.kernel == "life" && cfg.variant == "mpi_omp" && cfg.debug_mpi {
        return run_life_mpi_debug(cfg);
    }

    // `--stream=N`: the streaming frame driver pushes N frames through a
    // skeleton kernel instead of iterating one image in place
    if cfg.stream_frames.is_some() {
        return run_stream(cfg);
    }

    let reg = registry();
    // assemble the probe stack: monitoring/tracing feed off a Monitor
    // (the trace is the harvested report); `--stats`/`--trace-events`
    // add the perf probe for runtime counters and spans
    let monitor = if cfg.display == DisplayMode::Monitoring
        || cfg.trace
        || cfg.explain
        || cfg.trace_events.is_some()
    {
        Some(Arc::new(Monitor::new(cfg.threads, cfg.grid()?)))
    } else {
        None
    };
    // `--trace`/`--explain` also want the perf probe: the counter
    // snapshot (idle causes included) embeds into the saved trace and
    // feeds the explain report
    let perf = if cfg.stats.is_some() || cfg.trace || cfg.explain || cfg.trace_events.is_some() {
        Some(Arc::new(PerfProbe::new(cfg.threads)))
    } else {
        None
    };
    let mut probes: Vec<Arc<dyn Probe>> = Vec::new();
    if let Some(m) = &monitor {
        probes.push(m.clone());
    }
    if let Some(p) = &perf {
        probes.push(p.clone());
    }
    ezp_debug!(
        "easypap",
        "probe stack: monitor={} perf={}",
        monitor.is_some(),
        perf.is_some()
    );
    let probe: Arc<dyn Probe> = if probes.is_empty() {
        Arc::new(NullProbe)
    } else {
        Arc::new(MultiProbe::new(probes))
    };

    // `--frames DIR` replaces the animated window: run iteration by
    // iteration and dump each frame
    if let Some(frames_dir) = cfg.frames_dir.clone() {
        return run_with_frames(&reg, cfg, probe, monitor.as_deref(), perf.as_ref(), &frames_dir);
    }

    let (outcome, ctx, kernel) = run_kernel_boxed(&reg, cfg.clone(), probe)?;
    writeln!(out, "{}", outcome.summary()).unwrap();

    if cfg.display == DisplayMode::None {
        outcome.append_csv(PERF_CSV, 0)?;
        writeln!(out, "result appended to {PERF_CSV}").unwrap();
    } else {
        // no SDL window in this reproduction: dump the final frame
        let frame = format!("{}-{}.ppm", cfg.kernel, cfg.variant);
        std::fs::write(&frame, ctx.images.cur().to_ppm())?;
        writeln!(out, "final frame written to {frame}").unwrap();
    }
    if cfg.ansi {
        out.push_str(&ezp_render::ansi::to_ansi(&ezp_render::downscale(
            ctx.images.cur(),
            cfg.dim.min(64),
            cfg.dim.min(64),
        )));
    }

    let report: Option<MonitorReport> = monitor.as_ref().map(|m| m.report());
    if let Some(report) = &report {
        if cfg.display == DisplayMode::Monitoring {
            writeln!(out, "\n=== Activity Monitor ===").unwrap();
            out.push_str(&activity::render_report(report));
            if let Some(last) = report.iterations.last() {
                writeln!(out, "\n=== Tiling window (iteration {}) ===", last.iteration).unwrap();
                out.push_str(&report.tiling_snapshot(last.iteration).to_ascii());
                writeln!(out, "\n=== Heat map (iteration {}) ===", last.iteration).unwrap();
                out.push_str(&report.heat_map(last.iteration).to_ascii());
            }
        }
        if cfg.trace || cfg.explain {
            let mut trace = Trace::from_report(TraceMeta::from_config(&cfg), report);
            if let Some(p) = &perf {
                trace = trace.with_counters(p.snapshot());
            }
            if cfg.trace {
                ezp_trace::io::save(&trace, &cfg.trace_file)?;
                writeln!(
                    out,
                    "trace ({} tasks, {} iterations, {} edges) written to {}",
                    trace.tasks.len(),
                    trace.iteration_count(),
                    trace.edges.len(),
                    cfg.trace_file
                )
                .unwrap();
            }
            if cfg.explain {
                writeln!(out, "\n=== Explain (causal profile) ===").unwrap();
                out.push_str(&ezp_view::explain(&trace)?.render());
            }
        }
    }

    observability_tail(&mut out, &cfg, report, perf.as_ref(), kernel.stats_counters())?;
    Ok(out)
}

/// `--kernel <name> --stream=N`: push N frames through a streaming
/// skeleton kernel. Farm stages replicate `--farm-width` ways (0 =
/// one replica per thread) and frames leave the pipeline in
/// `--stream-mode` order.
fn run_stream(cfg: RunConfig) -> Result<String> {
    use ezp_core::error::Error;
    use ezp_stream::{stream_kernel, stream_registry};
    let frames = cfg.stream_frames.unwrap_or(0);
    let kernel = stream_kernel(&cfg.kernel).ok_or_else(|| {
        let names: Vec<&str> = stream_registry().iter().map(|k| k.name()).collect();
        Error::Config(format!(
            "unknown streaming kernel '{}' (available: {})",
            cfg.kernel,
            names.join(", ")
        ))
    })?;
    let mut out = String::new();
    if !cfg.stage_widths.is_empty() {
        // the built-in demos fix their own stage shapes, so accepting
        // `--stages` here would silently do nothing — reject instead
        return Err(Error::Config(format!(
            "--stages is not supported by built-in streaming kernel '{}' \
             (its stage shape is fixed; tune --farm-width instead)",
            cfg.kernel
        )));
    }
    let mut pool = ezp_sched::acquire_pool(cfg.threads);
    let farm_width = if cfg.farm_width == 0 { cfg.threads } else { cfg.farm_width };
    let perf = if cfg.stats.is_some() || cfg.trace_events.is_some() {
        Some(Arc::new(PerfProbe::new(cfg.threads)))
    } else {
        None
    };
    ezp_debug!(
        "easypap",
        "stream mode: {} frames, farm width {farm_width}, {} emission",
        frames,
        cfg.stream_mode
    );
    let probe: Arc<dyn Probe> = match &perf {
        Some(p) => p.clone(),
        None => Arc::new(NullProbe),
    };
    let sw = ezp_core::time::Stopwatch::start();
    let (outputs, stats) = kernel.run_tuned(
        cfg.dim,
        frames,
        cfg.stream_mode,
        farm_width,
        cfg.chan_tuning(),
        &mut pool,
        &*probe,
    )?;
    let bytes: usize = outputs.iter().map(|(_, b)| b.len()).sum();
    writeln!(
        out,
        "{} frames streamed ({bytes} bytes, {} emission, farm width {farm_width}) in {} ms",
        stats.frames,
        cfg.stream_mode,
        sw.elapsed_ms()
    )
    .unwrap();
    writeln!(
        out,
        "in flight <= {}, reorder depth <= {}, stage occupancy <= {}, {} backpressure stalls",
        stats.max_frames_in_flight,
        stats.max_reorder_depth,
        stats.max_stage_occupancy,
        stats.backpressure_stalls
    )
    .unwrap();
    writeln!(
        out,
        "emission channel ({:?}/{:?}): {} sends, {} recvs, {} full stalls, {} empty stalls",
        cfg.chan_backend,
        cfg.wait_policy,
        stats.chan_sends,
        stats.chan_recvs,
        stats.chan_full_stalls,
        stats.chan_empty_stalls
    )
    .unwrap();
    observability_tail(&mut out, &cfg, None, perf.as_ref(), Vec::new())?;
    Ok(out)
}

/// The `--trace-events` file and the `--stats` report, appended after
/// everything else so scripted consumers can split the report off the
/// human-readable lines above. Shared by the plain, `--frames` and
/// `--stream` runs; `extra_counters` carries kernel-provided counters
/// (per-worker values) into the `--stats` snapshot.
fn observability_tail(
    out: &mut String,
    cfg: &RunConfig,
    report: Option<MonitorReport>,
    perf: Option<&Arc<PerfProbe>>,
    extra_counters: Vec<(String, Vec<u64>)>,
) -> Result<()> {
    let spans = perf.map(|p| p.span_snapshot()).unwrap_or_default();
    if let (Some(path), Some(report)) = (&cfg.trace_events, &report) {
        let trace = Trace::from_report(TraceMeta::from_config(cfg), report);
        let doc = ezp_trace::to_chrome(&trace, &spans);
        std::fs::write(path, doc.dump())?;
        writeln!(
            out,
            "trace events ({} tiles, {} spans) written to {path}",
            trace.tasks.len(),
            spans.len()
        )
        .unwrap();
    }

    if let (Some(format), Some(perf)) = (cfg.stats, perf) {
        let mut snapshot = perf.snapshot();
        for (name, per_worker) in extra_counters {
            snapshot.push(&name, per_worker);
        }
        let unified = UnifiedReport::new(report, snapshot, spans);
        ezp_debug!(
            "easypap",
            "stats: {} counters, {} spans",
            unified.counters.counters.len(),
            unified.spans.len()
        );
        let rendered = match format {
            StatsFormat::Text => unified.to_text(),
            StatsFormat::Json => unified.to_json().dump(),
            StatsFormat::Csv => unified.to_csv(),
        };
        out.push_str(&rendered);
        if !rendered.ends_with('\n') {
            out.push('\n');
        }
    }
    Ok(())
}

/// `--frames DIR`: the animated-window replacement. The kernel runs one
/// iteration at a time, refreshing and dumping a frame after each, so
/// the directory ends up holding the same "series of images computed at
/// each iteration" the SDL window would have shown.
fn run_with_frames(
    reg: &ezp_core::Registry,
    cfg: RunConfig,
    probe: Arc<dyn Probe>,
    monitor: Option<&Monitor>,
    perf: Option<&Arc<PerfProbe>>,
    frames_dir: &str,
) -> Result<String> {
    use ezp_core::KernelCtx;
    use ezp_render::anim::{FrameFormat, FrameSink};
    let mut out = String::new();
    let mut kernel = reg.create_variant(&cfg.kernel, &cfg.variant)?;
    let variant = cfg.variant.clone();
    let iterations = cfg.iterations;
    let mut ctx = KernelCtx::new(cfg.clone())?.with_probe(probe);
    kernel.init(&mut ctx)?;
    let mut sink = FrameSink::new(frames_dir, FrameFormat::Ppm, 1)?;
    kernel.refresh_image(&mut ctx)?;
    sink.present(ctx.images.cur())?; // initial state
    let sw = ezp_core::time::Stopwatch::start();
    let mut completed = iterations;
    for it in 1..=iterations {
        let converged = kernel.compute(&mut ctx, &variant, 1)?;
        kernel.refresh_image(&mut ctx)?;
        sink.present(ctx.images.cur())?;
        if converged.is_some() {
            completed = it;
            break;
        }
    }
    writeln!(out, "{completed} iterations completed in {} ms", sw.elapsed_ms()).unwrap();
    writeln!(
        out,
        "{} frames written to {frames_dir}/",
        sink.frames().len()
    )
    .unwrap();
    let report = monitor.map(|m| m.report());
    observability_tail(&mut out, &cfg, report, perf, kernel.stats_counters())?;
    Ok(out)
}

/// `easypap --kernel life --variant mpi_omp --mpirun "-np N" --debug M`:
/// run the MPI Game of Life and show the monitoring windows of every
/// rank (Fig. 13).
fn run_life_mpi_debug(cfg: RunConfig) -> Result<String> {
    use ezp_core::{Kernel, KernelCtx};
    let mut out = String::new();
    ezp_debug!("easypap", "mpi debug mode: {} ranks, {} threads each", cfg.mpi_ranks, cfg.threads);
    let mut kernel = Life::default();
    let iterations = cfg.iterations;
    let variant = cfg.variant.clone();
    let mut ctx = KernelCtx::new(cfg.clone())?;
    kernel.init(&mut ctx)?;
    let sw = ezp_core::time::Stopwatch::start();
    let converged = kernel.compute(&mut ctx, &variant, iterations)?;
    let done = converged.unwrap_or(iterations);
    writeln!(out, "{done} iterations completed in {} ms", sw.elapsed_ms()).unwrap();
    kernel.refresh_image(&mut ctx)?;
    for (rank, report) in kernel.last_mpi_reports.iter().enumerate() {
        writeln!(out, "\n=== Monitoring window of MPI process {rank} ===").unwrap();
        if let Some(last) = report.iterations.last() {
            out.push_str(&report.tiling_snapshot(last.iteration).to_ascii());
        }
        out.push_str(&activity::render_idleness_history(report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // the CLI writes artifacts into the cwd; tests must not change it
    // concurrently, so all cwd-touching tests share one lock
    static CWD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn in_tmp_dir<T>(f: impl FnOnce() -> T) -> T {
        let _guard = CWD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "ezp_cli_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let r = f();
        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn list_shows_all_kernels_and_variants() {
        let out = run_easypap(["--list"]).unwrap();
        for k in ["mandel", "blur", "life", "ccomp", "sandpile", "heat", "spin"] {
            assert!(out.contains(k), "missing kernel {k} in --list");
        }
        assert!(out.contains("omp_tiled"));
        assert!(out.contains("mpi_omp"));
        assert!(out.contains("taskdep"));
    }

    #[test]
    fn performance_mode_prints_paper_line_and_appends_csv() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "mandel",
                "--variant",
                "omp_tiled",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "2",
                "--threads",
                "2",
                "--no-display",
            ])
            .unwrap();
            assert!(out.contains("2 iterations completed in"));
            assert!(out.contains("ms"));
            assert!(std::path::Path::new(PERF_CSV).exists());
        });
    }

    #[test]
    fn display_mode_dumps_a_frame() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "invert", "--variant", "seq", "--size", "32", "--tile-size", "8",
            ])
            .unwrap();
            assert!(out.contains("invert-seq.ppm"));
            let ppm = std::fs::read("invert-seq.ppm").unwrap();
            assert!(ppm.starts_with(b"P6\n32 32\n255\n"));
        });
    }

    #[test]
    fn monitoring_mode_prints_windows() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "mandel",
                "--variant",
                "omp_tiled",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "1",
                "--threads",
                "2",
                "--monitoring",
            ])
            .unwrap();
            assert!(out.contains("Activity Monitor"));
            assert!(out.contains("Tiling window"));
            assert!(out.contains("Heat map"));
            assert!(out.contains("CPU  0"));
        });
    }

    #[test]
    fn trace_mode_writes_a_loadable_trace() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "blur",
                "--variant",
                "omp_tiled",
                "--size",
                "32",
                "--tile-size",
                "8",
                "--iterations",
                "2",
                "--threads",
                "2",
                "--trace",
                "--no-display",
            ])
            .unwrap();
            assert!(out.contains("trace ("));
            let trace = ezp_trace::io::load("trace.ezv").unwrap();
            assert_eq!(trace.meta.kernel, "blur");
            assert_eq!(trace.iteration_count(), 2);
            assert_eq!(trace.tasks.len(), 2 * 16);
            // v2: the runtime-counter snapshot rides along in the trace
            let counters = trace.counters.expect("counters embedded in trace");
            assert!(counters.total("tasks_executed") > 0);
        });
    }

    #[test]
    fn explain_flag_appends_causal_profile() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "mandel",
                "--variant",
                "omp_tiled",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "2",
                "--threads",
                "2",
                "--explain",
                "--no-display",
            ])
            .unwrap();
            assert!(out.contains("Explain (causal profile)"), "{out}");
            assert!(out.contains("work T1"), "{out}");
            assert!(out.contains("span Tinf"), "{out}");
            assert!(out.contains("task latency"), "{out}");
            assert!(out.contains("# advice:"), "{out}");
        });
    }

    #[test]
    fn stats_json_reports_nonzero_task_counts() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "life", "--variant", "omp_tiled", "--size", "64", "--tile-size",
                "16", "--iterations", "3", "--threads", "2", "--no-display", "--stats=json",
                "--arg", "random:0.3",
            ])
            .unwrap();
            // the JSON object is the last block of the output
            let json_start = out.find('{').expect("no JSON in output");
            let j = ezp_core::json::Json::parse(&out[json_start..]).unwrap();
            let counters = j.get("counters").unwrap();
            let tasks = counters
                .get("counters")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .find(|c| c.field::<String>("name").unwrap() == "tasks_executed")
                .expect("tasks_executed counter missing");
            assert!(tasks.field::<u64>("total").unwrap() > 0, "no tasks counted");
            assert!(
                counters
                    .get("counters")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .any(|c| c.field::<String>("name").unwrap() == "chunks_dispensed"),
                "scheduler counters missing"
            );
        });
    }

    #[test]
    fn stats_text_and_csv_formats_render() {
        in_tmp_dir(|| {
            let text = run_easypap([
                "--kernel", "mandel", "--variant", "omp_tiled", "--size", "32", "--tile-size",
                "8", "--iterations", "1", "--threads", "2", "--no-display", "--stats",
            ])
            .unwrap();
            assert!(text.contains("# TYPE ezp_tasks_executed counter"), "{text}");
            assert!(text.contains("ezp_tasks_executed{worker=\"0\"}"), "{text}");
            let csv = run_easypap([
                "--kernel", "mandel", "--variant", "omp_tiled", "--size", "32", "--tile-size",
                "8", "--iterations", "1", "--threads", "2", "--no-display", "--stats=csv",
            ])
            .unwrap();
            assert!(csv.contains("counter,worker,value"), "{csv}");
            assert!(csv.contains("tasks_executed"), "{csv}");
        });
    }

    #[test]
    fn stats_json_includes_mpi_comm_counters() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "life", "--variant", "mpi_omp", "--size", "64", "--tile-size",
                "16", "--iterations", "2", "--threads", "2", "--mpirun", "-np 2",
                "--no-display", "--stats=json", "--arg", "random:0.3",
            ])
            .unwrap();
            let json_start = out.find('{').expect("no JSON in output");
            let j = ezp_core::json::Json::parse(&out[json_start..]).unwrap();
            let arr = j.get("counters").unwrap().get("counters").unwrap();
            let find = |name: &str| {
                arr.as_arr()
                    .unwrap()
                    .iter()
                    .find(|c| c.field::<String>("name").unwrap() == name)
                    .unwrap_or_else(|| panic!("{name} missing"))
                    .field::<u64>("total")
                    .unwrap()
            };
            // 2 ranks exchange ghost rows every iteration
            assert!(find("mpi_msgs_sent") > 0);
            assert!(find("mpi_bytes_sent") > 0);
            assert_eq!(find("mpi_msgs_sent"), find("mpi_msgs_received"));
        });
    }

    #[test]
    fn trace_events_file_is_chrome_loadable() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "blur", "--variant", "omp_tiled", "--size", "32", "--tile-size",
                "8", "--iterations", "2", "--threads", "2", "--no-display", "--trace-events",
                "out.json",
            ])
            .unwrap();
            assert!(out.contains("trace events ("), "{out}");
            let text = std::fs::read_to_string("out.json").unwrap();
            let j = ezp_core::json::Json::parse(&text).unwrap();
            let events = j.get("traceEvents").unwrap().as_arr().unwrap();
            // thread metadata + 2 iterations + 2*16 tiles + spans
            assert!(events.len() >= 3 + 2 + 32, "only {} events", events.len());
            assert!(events.iter().any(|e| e
                .field::<String>("ph")
                .map(|p| p == "X")
                .unwrap_or(false)));
        });
    }

    #[test]
    fn mpi_debug_mode_shows_per_rank_windows() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "life",
                "--variant",
                "mpi_omp",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "3",
                "--threads",
                "2",
                "--mpirun",
                "-np 2",
                "--monitoring",
                "--debug",
                "M",
            ])
            .unwrap();
            assert!(out.contains("MPI process 0"));
            assert!(out.contains("MPI process 1"));
        });
    }

    #[test]
    fn frames_mode_dumps_per_iteration_images() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "scrollup", "--variant", "seq", "--size", "16", "--tile-size", "8",
                "--iterations", "3", "--frames", "anim",
            ])
            .unwrap();
            assert!(out.contains("3 iterations completed"));
            assert!(out.contains("4 frames written")); // initial + 3
            for i in 1..=4 {
                let f = format!("anim/frame-{i:04}.ppm");
                assert!(std::path::Path::new(&f).exists(), "missing {f}");
            }
        });
    }

    #[test]
    fn frames_mode_stops_at_convergence() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "life", "--variant", "seq", "--size", "16", "--tile-size", "8",
                "--iterations", "10", "--frames", "anim", "--arg", "block",
            ])
            .unwrap();
            assert!(out.contains("1 iterations completed"));
            assert!(out.contains("2 frames written"));
        });
    }

    #[test]
    fn ansi_preview_is_emitted() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "spin", "--variant", "seq", "--size", "32", "--tile-size", "8",
                "--ansi",
            ])
            .unwrap();
            assert!(out.contains("\u{2580}"), "half-block glyphs expected");
            assert!(out.contains("\x1b[38;2;"));
        });
    }

    #[test]
    fn stream_mode_runs_a_demo_and_reports_counters() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "mandel_zoom",
                "--stream=8",
                "--threads",
                "2",
                "--farm-width",
                "2",
                "--size",
                "16",
                "--no-display",
                "--stats=json",
            ])
            .unwrap();
            assert!(out.contains("8 frames streamed"), "{out}");
            assert!(out.contains("ordered emission"), "{out}");
            let json_start = out.find('{').expect("no JSON in output");
            let j = ezp_core::json::Json::parse(&out[json_start..]).unwrap();
            let arr = j.get("counters").unwrap().get("counters").unwrap();
            let find = |name: &str| {
                arr.as_arr()
                    .unwrap()
                    .iter()
                    .find(|c| c.field::<String>("name").unwrap() == name)
                    .unwrap_or_else(|| panic!("{name} missing"))
                    .field::<u64>("total")
                    .unwrap()
            };
            assert_eq!(find("frames_emitted"), 8);
            assert!(find("frames_in_flight") > 0);
            assert!(find("stage_occupancy") > 0);
        });
    }

    #[test]
    fn stream_mode_unordered_and_list_section() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "wordcount",
                "--stream=6",
                "--stream-mode",
                "unordered",
                "--threads",
                "2",
                "--size",
                "8",
                "--no-display",
            ])
            .unwrap();
            assert!(out.contains("6 frames streamed"), "{out}");
            assert!(out.contains("unordered emission"), "{out}");
        });
        let list = run_easypap(["--list"]).unwrap();
        assert!(list.contains("streaming kernels"), "{list}");
        for k in ["mandel_zoom", "frame_diff", "wordcount"] {
            assert!(list.contains(k), "missing streaming kernel {k} in --list");
        }
    }

    #[test]
    fn stream_mode_rejects_unknown_kernels_and_bad_flags() {
        // a classic kernel is not a streaming kernel
        assert!(run_easypap(["--kernel", "mandel", "--stream=4", "--no-display"]).is_err());
        // streaming flags without --stream are a config error
        assert!(run_easypap([
            "--kernel",
            "mandel_zoom",
            "--farm-width",
            "2",
            "--no-display"
        ])
        .is_err());
    }

    #[test]
    fn bad_arguments_error_cleanly() {
        assert!(run_easypap(["--bogus"]).is_err());
        assert!(run_easypap(["--kernel", "unknown-kernel", "--no-display"]).is_err());
        assert!(run_easypap(["--kernel", "mandel", "--variant", "nope", "--no-display"]).is_err());
    }

    /// `--stages` used to be accepted and silently ignored for the
    /// built-in (fixed-shape) streaming demos; now it is a config
    /// error that names the alternative.
    #[test]
    fn stages_on_fixed_shape_streaming_kernels_is_rejected() {
        for kernel in ["mandel_zoom", "frame_diff", "wordcount"] {
            let err = run_easypap([
                "--kernel", kernel, "--stream=2", "--stages", "1,2,1", "--no-display",
            ])
            .expect_err("--stages must be rejected")
            .to_string();
            assert!(err.contains("--stages is not supported"), "got: {err}");
            assert!(err.contains(kernel), "names the kernel: {err}");
            assert!(err.contains("--farm-width"), "points at the knob: {err}");
        }
    }
}
