//! The `easypap` command: run a kernel variant under the framework.

use ezp_core::kernel::{MultiProbe, NullProbe, Probe};
use ezp_core::params::DisplayMode;
use ezp_core::perf::run_kernel;
use ezp_core::{Result, RunConfig};
use ezp_kernels::life::Life;
use ezp_kernels::registry;
use ezp_monitor::{activity, Monitor};
use ezp_trace::{Trace, TraceMeta};
use std::fmt::Write as _;
use std::sync::Arc;

/// Default CSV file of the performance mode.
pub const PERF_CSV: &str = "easypap.csv";

/// Runs `easypap` with the given arguments (program name excluded) and
/// returns the console output.
pub fn run_easypap<I, S>(args: I) -> Result<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    // `easypap --list`: enumerate kernels and variants, like the original
    // framework's discovery of `<kernel>_compute_<variant>` symbols
    if args.iter().any(|a| a == "--list" || a == "-l") {
        let reg = registry();
        let mut out = String::from("available kernels:\n");
        for name in reg.kernel_names() {
            let k = reg.create(name)?;
            out.push_str(&format!("  {name:<12} variants: {}\n", k.variants().join(", ")));
        }
        return Ok(out);
    }
    let cfg = RunConfig::parse_args(args.iter().map(String::as_str))?;
    let mut out = String::new();

    // Fig. 13 special case: MPI debugging shows every rank's windows;
    // the per-rank reports live on the concrete Life kernel.
    if cfg.kernel == "life" && cfg.variant == "mpi_omp" && cfg.debug_mpi {
        return run_life_mpi_debug(cfg);
    }

    let reg = registry();
    // assemble the probe stack: monitoring and/or tracing both feed off
    // a Monitor (the trace is the harvested report)
    let monitor = if cfg.display == DisplayMode::Monitoring || cfg.trace {
        Some(Arc::new(Monitor::new(cfg.threads, cfg.grid()?)))
    } else {
        None
    };
    let probe: Arc<dyn Probe> = match &monitor {
        Some(m) => Arc::new(MultiProbe::new(vec![m.clone() as Arc<dyn Probe>])),
        None => Arc::new(NullProbe),
    };

    // `--frames DIR` replaces the animated window: run iteration by
    // iteration and dump each frame
    if let Some(frames_dir) = cfg.frames_dir.clone() {
        return run_with_frames(&reg, cfg, probe, &frames_dir);
    }

    let (outcome, ctx) = run_kernel(&reg, cfg.clone(), probe)?;
    writeln!(out, "{}", outcome.summary()).unwrap();

    if cfg.display == DisplayMode::None {
        outcome.append_csv(PERF_CSV, 0)?;
        writeln!(out, "result appended to {PERF_CSV}").unwrap();
    } else {
        // no SDL window in this reproduction: dump the final frame
        let frame = format!("{}-{}.ppm", cfg.kernel, cfg.variant);
        std::fs::write(&frame, ctx.images.cur().to_ppm())?;
        writeln!(out, "final frame written to {frame}").unwrap();
    }
    if cfg.ansi {
        out.push_str(&ezp_render::ansi::to_ansi(&ezp_render::downscale(
            ctx.images.cur(),
            cfg.dim.min(64),
            cfg.dim.min(64),
        )));
    }

    if let Some(monitor) = &monitor {
        let report = monitor.report();
        if cfg.display == DisplayMode::Monitoring {
            writeln!(out, "\n=== Activity Monitor ===").unwrap();
            out.push_str(&activity::render_report(&report));
            if let Some(last) = report.iterations.last() {
                writeln!(out, "\n=== Tiling window (iteration {}) ===", last.iteration).unwrap();
                out.push_str(&report.tiling_snapshot(last.iteration).to_ascii());
                writeln!(out, "\n=== Heat map (iteration {}) ===", last.iteration).unwrap();
                out.push_str(&report.heat_map(last.iteration).to_ascii());
            }
        }
        if cfg.trace {
            let trace = Trace::from_report(TraceMeta::from_config(&cfg), &report);
            ezp_trace::io::save(&trace, &cfg.trace_file)?;
            writeln!(
                out,
                "trace ({} tasks, {} iterations) written to {}",
                trace.tasks.len(),
                trace.iteration_count(),
                cfg.trace_file
            )
            .unwrap();
        }
    }
    Ok(out)
}

/// `--frames DIR`: the animated-window replacement. The kernel runs one
/// iteration at a time, refreshing and dumping a frame after each, so
/// the directory ends up holding the same "series of images computed at
/// each iteration" the SDL window would have shown.
fn run_with_frames(
    reg: &ezp_core::Registry,
    cfg: RunConfig,
    probe: Arc<dyn Probe>,
    frames_dir: &str,
) -> Result<String> {
    use ezp_core::KernelCtx;
    use ezp_render::anim::{FrameFormat, FrameSink};
    let mut out = String::new();
    let mut kernel = reg.create_variant(&cfg.kernel, &cfg.variant)?;
    let variant = cfg.variant.clone();
    let iterations = cfg.iterations;
    let mut ctx = KernelCtx::new(cfg.clone())?.with_probe(probe);
    kernel.init(&mut ctx)?;
    let mut sink = FrameSink::new(frames_dir, FrameFormat::Ppm, 1)?;
    kernel.refresh_image(&mut ctx)?;
    sink.present(ctx.images.cur())?; // initial state
    let sw = ezp_core::time::Stopwatch::start();
    let mut completed = iterations;
    for it in 1..=iterations {
        let converged = kernel.compute(&mut ctx, &variant, 1)?;
        kernel.refresh_image(&mut ctx)?;
        sink.present(ctx.images.cur())?;
        if converged.is_some() {
            completed = it;
            break;
        }
    }
    writeln!(out, "{completed} iterations completed in {} ms", sw.elapsed_ms()).unwrap();
    writeln!(
        out,
        "{} frames written to {frames_dir}/",
        sink.frames().len()
    )
    .unwrap();
    Ok(out)
}

/// `easypap --kernel life --variant mpi_omp --mpirun "-np N" --debug M`:
/// run the MPI Game of Life and show the monitoring windows of every
/// rank (Fig. 13).
fn run_life_mpi_debug(cfg: RunConfig) -> Result<String> {
    use ezp_core::{Kernel, KernelCtx};
    let mut out = String::new();
    let mut kernel = Life::default();
    let iterations = cfg.iterations;
    let variant = cfg.variant.clone();
    let mut ctx = KernelCtx::new(cfg.clone())?;
    kernel.init(&mut ctx)?;
    let sw = ezp_core::time::Stopwatch::start();
    let converged = kernel.compute(&mut ctx, &variant, iterations)?;
    let done = converged.unwrap_or(iterations);
    writeln!(out, "{done} iterations completed in {} ms", sw.elapsed_ms()).unwrap();
    kernel.refresh_image(&mut ctx)?;
    for (rank, report) in kernel.last_mpi_reports.iter().enumerate() {
        writeln!(out, "\n=== Monitoring window of MPI process {rank} ===").unwrap();
        if let Some(last) = report.iterations.last() {
            out.push_str(&report.tiling_snapshot(last.iteration).to_ascii());
        }
        out.push_str(&activity::render_idleness_history(report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // the CLI writes artifacts into the cwd; tests must not change it
    // concurrently, so all cwd-touching tests share one lock
    static CWD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn in_tmp_dir<T>(f: impl FnOnce() -> T) -> T {
        let _guard = CWD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!(
            "ezp_cli_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let r = f();
        std::env::set_current_dir(old).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn list_shows_all_kernels_and_variants() {
        let out = run_easypap(["--list"]).unwrap();
        for k in ["mandel", "blur", "life", "ccomp", "sandpile", "heat", "spin"] {
            assert!(out.contains(k), "missing kernel {k} in --list");
        }
        assert!(out.contains("omp_tiled"));
        assert!(out.contains("mpi_omp"));
        assert!(out.contains("taskdep"));
    }

    #[test]
    fn performance_mode_prints_paper_line_and_appends_csv() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "mandel",
                "--variant",
                "omp_tiled",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "2",
                "--threads",
                "2",
                "--no-display",
            ])
            .unwrap();
            assert!(out.contains("2 iterations completed in"));
            assert!(out.contains("ms"));
            assert!(std::path::Path::new(PERF_CSV).exists());
        });
    }

    #[test]
    fn display_mode_dumps_a_frame() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "invert", "--variant", "seq", "--size", "32", "--tile-size", "8",
            ])
            .unwrap();
            assert!(out.contains("invert-seq.ppm"));
            let ppm = std::fs::read("invert-seq.ppm").unwrap();
            assert!(ppm.starts_with(b"P6\n32 32\n255\n"));
        });
    }

    #[test]
    fn monitoring_mode_prints_windows() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "mandel",
                "--variant",
                "omp_tiled",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "1",
                "--threads",
                "2",
                "--monitoring",
            ])
            .unwrap();
            assert!(out.contains("Activity Monitor"));
            assert!(out.contains("Tiling window"));
            assert!(out.contains("Heat map"));
            assert!(out.contains("CPU  0"));
        });
    }

    #[test]
    fn trace_mode_writes_a_loadable_trace() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "blur",
                "--variant",
                "omp_tiled",
                "--size",
                "32",
                "--tile-size",
                "8",
                "--iterations",
                "2",
                "--threads",
                "2",
                "--trace",
                "--no-display",
            ])
            .unwrap();
            assert!(out.contains("trace ("));
            let trace = ezp_trace::io::load("trace.ezv").unwrap();
            assert_eq!(trace.meta.kernel, "blur");
            assert_eq!(trace.iteration_count(), 2);
            assert_eq!(trace.tasks.len(), 2 * 16);
        });
    }

    #[test]
    fn mpi_debug_mode_shows_per_rank_windows() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel",
                "life",
                "--variant",
                "mpi_omp",
                "--size",
                "64",
                "--tile-size",
                "16",
                "--iterations",
                "3",
                "--threads",
                "2",
                "--mpirun",
                "-np 2",
                "--monitoring",
                "--debug",
                "M",
            ])
            .unwrap();
            assert!(out.contains("MPI process 0"));
            assert!(out.contains("MPI process 1"));
        });
    }

    #[test]
    fn frames_mode_dumps_per_iteration_images() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "scrollup", "--variant", "seq", "--size", "16", "--tile-size", "8",
                "--iterations", "3", "--frames", "anim",
            ])
            .unwrap();
            assert!(out.contains("3 iterations completed"));
            assert!(out.contains("4 frames written")); // initial + 3
            for i in 1..=4 {
                let f = format!("anim/frame-{i:04}.ppm");
                assert!(std::path::Path::new(&f).exists(), "missing {f}");
            }
        });
    }

    #[test]
    fn frames_mode_stops_at_convergence() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "life", "--variant", "seq", "--size", "16", "--tile-size", "8",
                "--iterations", "10", "--frames", "anim", "--arg", "block",
            ])
            .unwrap();
            assert!(out.contains("1 iterations completed"));
            assert!(out.contains("2 frames written"));
        });
    }

    #[test]
    fn ansi_preview_is_emitted() {
        in_tmp_dir(|| {
            let out = run_easypap([
                "--kernel", "spin", "--variant", "seq", "--size", "32", "--tile-size", "8",
                "--ansi",
            ])
            .unwrap();
            assert!(out.contains("\u{2580}"), "half-block glyphs expected");
            assert!(out.contains("\x1b[38;2;"));
        });
    }

    #[test]
    fn bad_arguments_error_cleanly() {
        assert!(run_easypap(["--bogus"]).is_err());
        assert!(run_easypap(["--kernel", "unknown-kernel", "--no-display"]).is_err());
        assert!(run_easypap(["--kernel", "mandel", "--variant", "nope", "--no-display"]).is_err());
    }
}
