//! # easypap-cli — the `easypap`, `easyview` and `easyplot` commands
//!
//! These are the front doors the paper's students use:
//!
//! ```text
//! easypap --kernel mandel --variant omp_tiled --tile-size 16 \
//!         --iterations 50 --no-display
//! 50 iterations completed in 579 ms
//! ```
//!
//! The library half of this crate implements the three commands as pure
//! functions from argument vectors to output text, so the whole CLI
//! surface is unit-testable; the `src/bin/*.rs` wrappers only print.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod easypap;
pub mod easyplot;
pub mod easyview;

pub use easypap::run_easypap;
pub use easyplot::run_easyplot;
pub use easyview::run_easyview;
