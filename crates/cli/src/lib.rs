//! # easypap-cli — the `easypap`, `easyview` and `easyplot` commands
//!
//! These are the front doors the paper's students use:
//!
//! ```text
//! easypap --kernel mandel --variant omp_tiled --tile-size 16 \
//!         --iterations 50 --no-display
//! 50 iterations completed in 579 ms
//! ```
//!
//! The library half of this crate implements the three commands as pure
//! functions from argument vectors to output text, so the whole CLI
//! surface is unit-testable; the `src/bin/*.rs` wrappers only print.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod easypap;
pub mod easyplot;
pub mod easyview;
pub mod serve_cmd;

pub use easypap::run_easypap;
pub use easyplot::run_easyplot;
pub use easyview::run_easyview;

/// Prints a command's output to stdout and maps I/O failures to an
/// exit code: a broken pipe (`easypap ... | head`) is a normal way for
/// a consumer to say "enough" and exits 0; any other write error is
/// reported and exits 1.
///
/// The `src/bin/*.rs` wrappers ended with `print!("{out}")`, which
/// panics on `EPIPE` because Rust disables `SIGPIPE` — piping a run
/// into `head -1` produced a panic trace instead of a clean exit.
pub fn emit(out: &str) -> i32 {
    use std::io::Write as _;
    let mut stdout = std::io::stdout().lock();
    match stdout.write_all(out.as_bytes()).and_then(|()| stdout.flush()) {
        Ok(()) => 0,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            eprintln!("error writing to stdout: {e}");
            1
        }
    }
}
