//! The `easyview` command-line entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match easypap_cli::run_easyview(args.iter().map(String::as_str)) {
        Ok(out) => std::process::exit(easypap_cli::emit(&out)),
        Err(e) => {
            eprintln!("easyview: {e}");
            std::process::exit(1);
        }
    }
}
