//! The `easyplot` command-line entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match easypap_cli::run_easyplot(args.iter().map(String::as_str)) {
        Ok(out) => std::process::exit(easypap_cli::emit(&out)),
        Err(e) => {
            eprintln!("easyplot: {e}");
            std::process::exit(1);
        }
    }
}
