//! `easypap serve` and `easypap submit` — the persistent-service front
//! end.
//!
//! `serve` keeps kernels, registry, and worker pools warm in a
//! long-running daemon; `submit` is the matching client. Both are
//! plain argv→text functions like the rest of the CLI so the parsing
//! and the output formatting are unit-testable without a terminal:
//!
//! ```text
//! easypap serve --port 7878 --workers 4 --slots 2 --max-tenants 8 &
//! easypap submit --port 7878 --kernel mandel --variant seq -s 256 --tenant acme
//! job 1 (tenant acme) done: 1 iteration(s) in 12.3 ms, digest 59ca7…
//! ```

use ezp_core::error::Error;
use ezp_core::json::ToJson;
use ezp_core::params::{ChanBackendKind, WaitPolicy};
use ezp_core::Result;
use ezp_serve::{Client, JobSpec, Response, ServeConfig, Server};
use std::fmt::Write as _;

/// Default TCP port of `easypap serve` / `easypap submit`.
pub const DEFAULT_PORT: u16 = 7878;

/// Splits `--flag=value` / `--flag value` argument styles: returns the
/// flag name and, for the `=` style, the inline value.
fn split_flag(arg: &str) -> (&str, Option<&str>) {
    match arg.split_once('=') {
        Some((flag, value)) => (flag, Some(value)),
        None => (arg, None),
    }
}

/// The value of `flag`, inline or as the following argument.
fn flag_value<'a>(
    flag: &str,
    inline: Option<&'a str>,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str> {
    match inline {
        Some(v) => Ok(v),
        None => it
            .next()
            .map(String::as_str)
            .ok_or_else(|| Error::Config(format!("{flag} needs a value"))),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T> {
    value
        .parse()
        .map_err(|_| Error::Config(format!("{flag}: invalid value `{value}`")))
}

/// `easypap serve [--port N] [--workers N] [--slots N] [--max-tenants N]
/// [--queue-cap N] [--chan-backend B] [--wait-policy P]` — run the
/// daemon in the foreground until a client sends `shutdown`.
pub fn run_serve(args: &[String]) -> Result<String> {
    let mut cfg = ServeConfig { port: DEFAULT_PORT, ..ServeConfig::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = split_flag(arg);
        match flag {
            "--port" => cfg.port = parse_num(flag, flag_value(flag, inline, &mut it)?)?,
            "--workers" => {
                cfg.workers = parse_num(flag, flag_value(flag, inline, &mut it)?)?;
                if cfg.workers == 0 {
                    return Err(Error::Config("--workers must be > 0".into()));
                }
            }
            "--slots" => {
                cfg.slots = parse_num(flag, flag_value(flag, inline, &mut it)?)?;
                if cfg.slots == 0 {
                    return Err(Error::Config("--slots must be > 0".into()));
                }
            }
            "--max-tenants" => {
                cfg.max_tenants = parse_num(flag, flag_value(flag, inline, &mut it)?)?;
                if cfg.max_tenants == 0 {
                    return Err(Error::Config("--max-tenants must be > 0".into()));
                }
            }
            "--queue-cap" => {
                cfg.queue_cap = parse_num(flag, flag_value(flag, inline, &mut it)?)?;
                if cfg.queue_cap == 0 {
                    return Err(Error::Config("--queue-cap must be > 0".into()));
                }
            }
            "--chan-backend" => {
                cfg.tuning.backend = ChanBackendKind::parse(flag_value(flag, inline, &mut it)?)?;
            }
            "--wait-policy" => {
                cfg.tuning.policy = WaitPolicy::parse(flag_value(flag, inline, &mut it)?)?;
            }
            other => {
                return Err(Error::Config(format!("easypap serve: unknown option `{other}`")))
            }
        }
    }
    let server = Server::start(cfg.clone())?;
    // the summary text below only materializes at shutdown; tell the
    // operator we are up via stderr so scripts can synchronize
    eprintln!(
        "easypap serve: listening on {} ({} worker(s) x {} slot(s), {} tenant(s), queue cap {})",
        server.addr(),
        cfg.workers,
        cfg.slots,
        cfg.max_tenants,
        cfg.queue_cap
    );
    let summary = server.wait();
    let (admitted, rejected, completed, cancelled, failed) = summary.totals;
    let mut out = String::new();
    writeln!(
        out,
        "served {admitted} job(s) ({completed} completed, {cancelled} cancelled, \
         {failed} failed), {rejected} rejected"
    )
    .unwrap();
    writeln!(
        out,
        "pool leases: {} ({} waited, {} ms blocked)",
        summary.mux.leases,
        summary.mux.lease_waits,
        summary.mux.wait_ns / 1_000_000
    )
    .unwrap();
    out.push_str(&summary.stats.pretty());
    out.push('\n');
    Ok(out)
}

/// `easypap submit [--host H] [--port N] [--kernel K] [--variant V]
/// [-s N] [-ts N] [-i N] [-t N] [--tenant T] [--stall-us N] [--retry]
/// [--report] | --server-stats | --stop` — submit one job to a running
/// daemon (or query/stop it).
pub fn run_submit(args: &[String]) -> Result<String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = DEFAULT_PORT;
    let mut spec = JobSpec::default();
    let (mut retry, mut report, mut stats_mode, mut stop_mode) = (false, false, false, false);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = split_flag(arg);
        match flag {
            "--host" => host = flag_value(flag, inline, &mut it)?.to_string(),
            "--port" => port = parse_num(flag, flag_value(flag, inline, &mut it)?)?,
            "--kernel" | "-k" => spec.kernel = flag_value(flag, inline, &mut it)?.to_string(),
            "--variant" | "-v" => spec.variant = flag_value(flag, inline, &mut it)?.to_string(),
            "--size" | "-s" => spec.size = parse_num(flag, flag_value(flag, inline, &mut it)?)?,
            "--tile-size" | "-ts" => {
                spec.tile = parse_num(flag, flag_value(flag, inline, &mut it)?)?
            }
            "--iterations" | "-i" => {
                spec.iterations = parse_num(flag, flag_value(flag, inline, &mut it)?)?
            }
            "--threads" | "-t" => {
                spec.threads = parse_num(flag, flag_value(flag, inline, &mut it)?)?
            }
            "--tenant" => spec.tenant = Some(flag_value(flag, inline, &mut it)?.to_string()),
            "--stall-us" => {
                spec.stall_us = parse_num(flag, flag_value(flag, inline, &mut it)?)?
            }
            "--retry" => retry = true,
            "--report" => report = true,
            "--server-stats" => stats_mode = true,
            "--stop" => stop_mode = true,
            other => {
                return Err(Error::Config(format!("easypap submit: unknown option `{other}`")))
            }
        }
    }
    let addr = format!("{host}:{port}");
    let mut client = Client::connect(&addr)
        .map_err(|e| Error::Config(format!("cannot reach easypap serve at {addr}: {e}")))?;
    if stats_mode {
        let stats = client.stats()?;
        return Ok(format!("{}\n", stats.pretty()));
    }
    if stop_mode {
        client.shutdown()?;
        return Ok(format!("easypap serve at {addr} acknowledged shutdown\n"));
    }
    let resp = if retry { client.submit_retrying(&spec)? } else { client.submit(&spec)? };
    match resp {
        Response::Done { job_id, tenant, elapsed_ns, iterations, digest, report: rep } => {
            let mut out = String::new();
            writeln!(
                out,
                "job {job_id} (tenant {tenant}) done: {iterations} iteration(s) in {:.1} ms, \
                 digest {digest}",
                elapsed_ns as f64 / 1e6
            )
            .unwrap();
            if report {
                out.push_str(&rep.pretty());
                out.push('\n');
            }
            Ok(out)
        }
        Response::Rejected { reason, retry_after_ms } => Err(Error::Config(format!(
            "server rejected the job: {reason} (retry after {retry_after_ms} ms, \
             or pass --retry to wait)"
        ))),
        Response::Failed { job_id, error } => {
            Err(Error::Config(format!("job {job_id} failed: {error}")))
        }
        other => Err(Error::Config(format!(
            "unexpected server response: {}",
            other.to_json().dump()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_options_are_rejected_with_the_subcommand_name() {
        let err = run_serve(&argv(&["--bogus"])).unwrap_err().to_string();
        assert!(err.contains("easypap serve"), "got: {err}");
        let err = run_submit(&argv(&["--bogus"])).unwrap_err().to_string();
        assert!(err.contains("easypap submit"), "got: {err}");
        assert!(run_serve(&argv(&["--workers", "0"])).is_err());
        assert!(run_serve(&argv(&["--port"])).is_err(), "missing value");
    }

    #[test]
    fn submit_without_a_daemon_names_the_address() {
        // port 9 (discard) is never an easypap server
        let err = run_submit(&argv(&["--port", "9"])).unwrap_err().to_string();
        assert!(err.contains("cannot reach"), "got: {err}");
        assert!(err.contains(":9"), "got: {err}");
    }

    #[test]
    fn submit_stats_and_stop_drive_an_in_process_daemon() {
        // ephemeral-port daemon, exercised through the submit front end
        let server = Server::start(ServeConfig::default()).unwrap();
        let port = server.addr().port().to_string();
        let out = run_submit(&argv(&[
            "--port", &port, "--kernel", "mandel", "--variant", "seq", "-s", "64", "-i", "2",
            "--tenant", "cli-test", "--report",
        ]))
        .unwrap();
        assert!(out.contains("(tenant cli-test) done: 2 iteration(s)"), "got: {out}");
        assert!(out.contains("digest "), "got: {out}");
        assert!(out.contains("\"tenant\": \"cli-test\""), "report rides along: {out}");

        let stats = run_submit(&argv(&["--port", &port, "--server-stats"])).unwrap();
        assert!(stats.contains("\"jobs_admitted\""), "got: {stats}");
        assert!(stats.contains("cli-test"), "got: {stats}");

        let bye = run_submit(&argv(&["--port", &port, "--stop"])).unwrap();
        assert!(bye.contains("acknowledged shutdown"), "got: {bye}");
        let summary = server.wait();
        assert_eq!(summary.totals.2, 1, "one completed job");
    }

    #[test]
    fn serve_subcommand_runs_until_remotely_stopped() {
        // fixed port: the foreground `serve` path cannot report an
        // ephemeral port back to the test
        let port = "39471";
        let handle = {
            let args = argv(&["--port", port, "--workers", "1", "--slots", "1"]);
            std::thread::spawn(move || run_serve(&args))
        };
        // wait for the listener, then run one job and stop the daemon
        let mut last_err = String::new();
        let mut served = false;
        for _ in 0..100 {
            match run_submit(&argv(&["--port", port, "--kernel", "mandel", "-s", "64"])) {
                Ok(out) => {
                    assert!(out.contains("done: 1 iteration(s)"), "got: {out}");
                    served = true;
                    break;
                }
                Err(e) => last_err = e.to_string(),
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(served, "daemon never came up: {last_err}");
        run_submit(&argv(&["--port", port, "--stop"])).unwrap();
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.contains("served 1 job(s) (1 completed"), "got: {summary}");
        assert!(summary.contains("pool leases: 1"), "got: {summary}");
    }

    #[test]
    fn failed_jobs_surface_as_cli_errors() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let port = server.addr().port().to_string();
        let err = run_submit(&argv(&["--port", &port, "--kernel", "no-such"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("failed"), "got: {err}");
        drop(server);
    }
}
