//! The `easyview` command: post-mortem trace exploration (§II-D).
//!
//! ```text
//! easyview trace.ezv                        # Gantt chart, all iterations
//! easyview trace.ezv --iter 7:9             # restrict the range
//! easyview trace.ezv --cpu 3                # coverage map of CPU 3
//! easyview trace.ezv --at 1234567           # tasks crossing a timestamp
//! easyview a.ezv --compare b.ezv            # two-trace comparison
//! easyview trace.ezv --svg gantt.svg        # export the Gantt as SVG
//! easyview explain trace.ezv                # causal profile + advice
//! ```

use ezp_core::error::{Error, Result};
use ezp_view::{CoverageMap, GanttModel, TraceComparison};
use std::fmt::Write as _;

/// Parsed `easyview` invocation.
struct ViewArgs {
    trace_path: String,
    iter_range: Option<(u32, u32)>,
    cpu: Option<usize>,
    at: Option<u64>,
    compare: Option<String>,
    svg: Option<String>,
    /// `--highlight out.ppm`: render the tiles under the mouse (at
    /// `--at T`, or mid-span) over a thumbnail, like Fig. 7's right pane.
    highlight: Option<String>,
    width: usize,
    /// `easyview explain <trace>`: causal-profiling report instead of
    /// the Gantt chart.
    explain: bool,
}

fn parse_args<I, S>(args: I) -> Result<ViewArgs>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = ViewArgs {
        trace_path: String::new(),
        iter_range: None,
        cpu: None,
        at: None,
        compare: None,
        svg: None,
        highlight: None,
        width: 100,
        explain: false,
    };
    let mut it = args.into_iter();
    let need = |v: Option<S>, opt: &str| -> Result<String> {
        v.map(|s| s.as_ref().to_string())
            .ok_or_else(|| Error::Config(format!("option {opt} requires a value")))
    };
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        match arg {
            "--iter" => {
                let spec = need(it.next(), arg)?;
                let (lo, hi) = spec
                    .split_once(':')
                    .ok_or_else(|| Error::Config(format!("--iter wants lo:hi, got `{spec}`")))?;
                let lo = lo.parse().map_err(|_| Error::Config(format!("bad iteration `{lo}`")))?;
                let hi = hi.parse().map_err(|_| Error::Config(format!("bad iteration `{hi}`")))?;
                out.iter_range = Some((lo, hi));
            }
            "--cpu" => {
                out.cpu = Some(
                    need(it.next(), arg)?
                        .parse()
                        .map_err(|_| Error::Config("bad cpu rank".into()))?,
                )
            }
            "--at" => {
                out.at = Some(
                    need(it.next(), arg)?
                        .parse()
                        .map_err(|_| Error::Config("bad timestamp".into()))?,
                )
            }
            "--compare" => out.compare = Some(need(it.next(), arg)?),
            "--svg" => out.svg = Some(need(it.next(), arg)?),
            "--highlight" => out.highlight = Some(need(it.next(), arg)?),
            "--width" => {
                out.width = need(it.next(), arg)?
                    .parse()
                    .map_err(|_| Error::Config("bad width".into()))?
            }
            "explain" if !out.explain && out.trace_path.is_empty() => out.explain = true,
            other if !other.starts_with('-') && out.trace_path.is_empty() => {
                out.trace_path = other.to_string();
            }
            other => return Err(Error::Config(format!("unknown option `{other}`"))),
        }
    }
    if out.trace_path.is_empty() {
        return Err(Error::Config("usage: easyview <trace.ezv> [options]".into()));
    }
    Ok(out)
}

/// Runs `easyview` and returns the console output.
pub fn run_easyview<I, S>(args: I) -> Result<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let args = parse_args(args)?;
    let trace = ezp_trace::io::load(&args.trace_path)?;
    let mut out = String::new();
    writeln!(
        out,
        "trace: {} ({} iterations, {} tasks, {} CPUs, schedule {})",
        trace.meta.label,
        trace.iteration_count(),
        trace.tasks.len(),
        trace.meta.threads,
        trace.meta.schedule
    )
    .unwrap();

    if args.explain {
        writeln!(out, "\n=== Explain (causal profile) ===").unwrap();
        out.push_str(&ezp_view::explain(&trace)?.render());
        return Ok(out);
    }

    if let Some(other_path) = &args.compare {
        let other = ezp_trace::io::load(other_path)?;
        let cmp = TraceComparison::new(&trace, &other)?;
        writeln!(out, "\n=== Trace comparison ===").unwrap();
        writeln!(out, "{}", cmp.summary()).unwrap();
        for (it, base, opt) in cmp.per_iteration() {
            writeln!(
                out,
                "  iteration {it}: {} -> {} (x{:.2})",
                ezp_core::time::format_duration_ns(base),
                ezp_core::time::format_duration_ns(opt),
                base as f64 / opt.max(1) as f64
            )
            .unwrap();
        }
        let fast = cmp.tasks_faster_than(5.0);
        writeln!(out, "  {} tasks at least 5x faster", fast.len()).unwrap();
        return Ok(out);
    }

    let (lo, hi) = args.iter_range.unwrap_or_else(|| {
        let lo = trace.iterations.first().map(|s| s.iteration).unwrap_or(1);
        let hi = trace.iterations.last().map(|s| s.iteration).unwrap_or(1);
        (lo, hi)
    });
    let gantt = GanttModel::new(&trace, lo, hi);

    if args.at.is_some() || args.highlight.is_some() {
        let t = args
            .at
            .unwrap_or_else(|| gantt.t0 + (gantt.t1.saturating_sub(gantt.t0)) / 2);
        writeln!(out, "\n=== Tasks crossing t={t} (vertical mouse mode) ===").unwrap();
        let crossing = gantt.tasks_at_time(t);
        for task in &crossing {
            writeln!(out, "  {}", GanttModel::bubble(task)).unwrap();
        }
        if let Some(path) = &args.highlight {
            // Fig. 7's right pane: highlighted tiles over a thumbnail of
            // the computed surface (a neutral grid stands in for the
            // image, which the trace does not store)
            let grid = trace.meta.grid()?;
            let mut thumb = ezp_core::Img2D::filled(
                128,
                128,
                ezp_core::Rgba::new(60, 60, 60, 255),
            );
            let tiles: Vec<ezp_core::Tile> = crossing
                .iter()
                .map(|r| grid.tile_of_pixel(r.x.min(grid.width() - 1), r.y.min(grid.height() - 1)))
                .collect();
            ezp_render::highlight_tiles(&mut thumb, trace.meta.dim, &tiles, ezp_core::Rgba::YELLOW);
            std::fs::write(path, thumb.to_ppm())?;
            writeln!(out, "highlight thumbnail -> {path}").unwrap();
        }
        return Ok(out);
    }

    if let Some(cpu) = args.cpu {
        writeln!(out, "\n=== Coverage map of CPU {cpu}, iterations {lo}..{hi} ===").unwrap();
        let cov = CoverageMap::new(&trace, cpu, lo, hi)?;
        out.push_str(&cov.to_ascii());
        writeln!(
            out,
            "covered {} tiles, locality {:.3}",
            cov.covered_tiles(),
            cov.locality()
        )
        .unwrap();
        return Ok(out);
    }

    writeln!(out, "\n=== Task statistics ===").unwrap();
    out.push_str(&ezp_view::stats::render(&trace));
    writeln!(out, "\n=== Gantt chart, iterations {lo}..{hi} ===").unwrap();
    out.push_str(&gantt.to_ascii(args.width));
    if let Some(svg_path) = &args.svg {
        std::fs::write(svg_path, gantt.to_svg(1000.0, 24.0))?;
        writeln!(out, "SVG written to {svg_path}").unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_monitor::TileRecord;
    use ezp_trace::{Trace, TraceMeta};

    fn sample_trace_file(name: &str) -> std::path::PathBuf {
        let mk = |it: u32, x: usize, s: u64, e: u64, w: usize| TileRecord {
            iteration: it,
            x,
            y: 0,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: e,
            worker: w,
        };
        let trace = Trace {
            meta: TraceMeta {
                kernel: "mandel".into(),
                variant: "omp".into(),
                dim: 64,
                tile_size: 16,
                threads: 2,
                schedule: "dynamic".into(),
                label: format!("mandel/{name}"),
            },
            iterations: vec![
                IterationSpan {
                    iteration: 1,
                    start_ns: 0,
                    end_ns: 100,
                },
                IterationSpan {
                    iteration: 2,
                    start_ns: 100,
                    end_ns: 200,
                },
            ],
            tasks: vec![
                mk(1, 0, 0, 50, 0),
                mk(1, 16, 0, 80, 1),
                mk(2, 32, 100, 150, 0),
                mk(2, 48, 100, 190, 1),
            ],
            edges: Vec::new(),
            counters: None,
        };
        let path = std::env::temp_dir().join(format!(
            "ezp_view_cli_{}_{}_{name}.ezv",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").replace("::", "_")
        ));
        ezp_trace::io::save(&trace, &path).unwrap();
        path
    }

    #[test]
    fn gantt_output() {
        let path = sample_trace_file("gantt");
        let out = run_easyview([path.to_str().unwrap()]).unwrap();
        assert!(out.contains("Gantt chart, iterations 1..2"));
        assert!(out.contains("Task statistics"));
        assert!(out.contains("tasks: 4"));
        assert!(out.contains("CPU  0"));
        assert!(out.contains("CPU  1"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn iteration_range_and_at() {
        let path = sample_trace_file("at");
        let out =
            run_easyview([path.to_str().unwrap(), "--iter", "1:1", "--at", "25"]).unwrap();
        assert!(out.contains("Tasks crossing t=25"));
        assert!(out.contains("CPU 0"));
        assert!(out.contains("CPU 1"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn coverage_mode() {
        let path = sample_trace_file("cov");
        let out = run_easyview([path.to_str().unwrap(), "--cpu", "0"]).unwrap();
        assert!(out.contains("Coverage map of CPU 0"));
        assert!(out.contains("covered 2 tiles"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn compare_mode() {
        let a = sample_trace_file("cmp_a");
        let b = sample_trace_file("cmp_b");
        let out =
            run_easyview([a.to_str().unwrap(), "--compare", b.to_str().unwrap()]).unwrap();
        assert!(out.contains("Trace comparison"));
        assert!(out.contains("iteration 1"));
        std::fs::remove_file(a).unwrap();
        std::fs::remove_file(b).unwrap();
    }

    #[test]
    fn svg_export() {
        let path = sample_trace_file("svg");
        let svg_path = std::env::temp_dir().join(format!("ezp_view_{}.svg", std::process::id()));
        let out = run_easyview([
            path.to_str().unwrap(),
            "--svg",
            svg_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("SVG written"));
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(svg_path).unwrap();
    }

    #[test]
    fn highlight_mode_writes_thumbnail() {
        let path = sample_trace_file("hl");
        let thumb = std::env::temp_dir().join(format!("ezp_view_hl_{}.ppm", std::process::id()));
        let out = run_easyview([
            path.to_str().unwrap(),
            "--at",
            "25",
            "--highlight",
            thumb.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("highlight thumbnail"));
        let bytes = std::fs::read(&thumb).unwrap();
        assert!(bytes.starts_with(b"P6\n128 128\n"));
        // some pixels must be highlighted (yellow-ish, not all gray)
        assert!(bytes[15..].chunks(3).any(|c| c[0] > 200 && c[1] > 200 && c[2] < 100));
        std::fs::remove_file(path).unwrap();
        std::fs::remove_file(thumb).unwrap();
    }

    #[test]
    fn explain_mode_renders_causal_profile() {
        let path = sample_trace_file("explain");
        let out = run_easyview(["explain", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("Explain (causal profile)"), "{out}");
        assert!(out.contains("work T1"), "{out}");
        assert!(out.contains("span Tinf"), "{out}");
        assert!(out.contains("# advice:"), "{out}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn errors() {
        assert!(run_easyview(Vec::<&str>::new()).is_err()); // no trace
        assert!(run_easyview(["/nonexistent.ezv"]).is_err());
        let path = sample_trace_file("err");
        assert!(run_easyview([path.to_str().unwrap(), "--iter", "abc"]).is_err());
        assert!(run_easyview([path.to_str().unwrap(), "--bogus"]).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
