//! Regression: `easypap ... | head -1` must exit cleanly.
//!
//! Rust disables `SIGPIPE`, so writes to a closed pipe surface as
//! `EPIPE` errors — and the old `print!("{out}")` in the bin wrappers
//! turned that into a panic. These tests run the real binary with its
//! stdout pipe closed early and pin the contract: exit code 0, no
//! panic trace on stderr.

use std::process::{Command, Stdio};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ezp-pipe-{tag}-{}-{}",
        std::process::id(),
        ezp_core::time::now_ns()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Closed-pipe run: spawn with a piped stdout, drop the read end
/// before the child writes its (larger than the 64 KiB pipe buffer)
/// report, and collect (exit status, stderr).
fn run_with_closed_stdout(args: &[&str], tag: &str) -> (std::process::ExitStatus, String) {
    let dir = scratch_dir(tag);
    let mut child = Command::new(env!("CARGO_BIN_EXE_easypap"))
        .args(args)
        .current_dir(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn easypap");
    // this is `head -1` in the limit: take nothing, close the pipe
    drop(child.stdout.take());
    let out = child.wait_with_output().expect("wait easypap");
    let _ = std::fs::remove_dir_all(&dir);
    (out.status, String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn closed_stdout_pipe_is_a_clean_exit() {
    // `--ansi` makes the output comfortably exceed the pipe buffer, so
    // the child reliably hits EPIPE mid-write
    let (status, stderr) = run_with_closed_stdout(
        &["--kernel", "mandel", "--variant", "seq", "-s", "128", "-i", "1", "--ansi"],
        "ansi",
    );
    assert!(status.success(), "broken pipe must exit 0, got {status:?}; stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "no panic trace, got: {stderr}");
}

#[test]
fn closed_stdout_pipe_is_clean_for_small_output_too() {
    // small output fits the pipe buffer: the write succeeds outright,
    // but the flush path must not trip over the closed pipe either
    let (status, stderr) = run_with_closed_stdout(
        &["--kernel", "mandel", "--variant", "seq", "-s", "64", "-i", "1", "--no-display"],
        "small",
    );
    assert!(status.success(), "got {status:?}; stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "no panic trace, got: {stderr}");
}
