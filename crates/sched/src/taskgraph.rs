//! OpenMP-style tasks with dependencies.
//!
//! The connected-components assignment (paper §III-C) parallelizes a 2D
//! propagation with `#pragma omp task depend(in: left, up) depend(inout:
//! self)` (Fig. 11), producing the diagonal "wave of tasks" EASYVIEW
//! visualizes in Fig. 12. [`TaskGraph`] is that runtime: a DAG of task
//! ids executed by a [`WorkerPool`] such that a task never starts before
//! all of its predecessors completed.

use crate::deque::{Steal, TaskDeque};
use crate::park::ParkLot;
use crate::pool::WorkerPool;
use ezp_core::error::{Error, Result};
use ezp_core::kernel::{EdgeKind, IdleCause, NullProbe, Probe, RuntimeEvent};
use ezp_core::time::now_ns;
use ezp_core::{TileGrid, WorkerId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A directed acyclic graph of `n` tasks (ids `0..n`).
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    /// `dependents[t]` = tasks that must wait for `t`.
    dependents: Vec<Vec<usize>>,
    /// `kinds[t][i]` = edge family of the edge `t → dependents[t][i]`
    /// (kept parallel to `dependents` so the hot release loop, which
    /// only walks `dependents`, stays untouched).
    kinds: Vec<Vec<EdgeKind>>,
    /// Number of predecessors per task.
    indegree: Vec<usize>,
}

impl TaskGraph {
    /// Creates a graph of `n` independent tasks.
    pub fn new(n: usize) -> Self {
        TaskGraph {
            dependents: vec![Vec::new(); n],
            kinds: vec![Vec::new(); n],
            indegree: vec![0; n],
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.indegree.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.indegree.is_empty()
    }

    /// Declares that `after` cannot start before `before` completed
    /// (`depend(in: before) depend(inout: after)`). The edge is a
    /// [`EdgeKind::Data`] dependency; streaming skeletons use
    /// [`TaskGraph::add_dep_kind`] for their width/capacity families.
    pub fn add_dep(&mut self, before: usize, after: usize) {
        self.add_dep_kind(before, after, EdgeKind::Data);
    }

    /// [`TaskGraph::add_dep`] with an explicit edge family, so traces
    /// can distinguish true data flow from structural backpressure.
    pub fn add_dep_kind(&mut self, before: usize, after: usize, kind: EdgeKind) {
        assert!(before < self.len() && after < self.len(), "task id out of range");
        assert_ne!(before, after, "a task cannot depend on itself");
        self.dependents[before].push(after);
        self.kinds[before].push(kind);
        self.indegree[after] += 1;
    }

    /// Predecessor count of `task`.
    pub fn indegree(&self, task: usize) -> usize {
        self.indegree[task]
    }

    /// Tasks that directly depend on `task` (its successors).
    pub fn dependents(&self, task: usize) -> &[usize] {
        &self.dependents[task]
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.dependents.iter().map(Vec::len).sum()
    }

    /// Visits every edge as `(before, after, kind)`, in task order.
    pub fn for_each_edge(&self, mut f: impl FnMut(usize, usize, EdgeKind)) {
        for t in 0..self.len() {
            for (i, &d) in self.dependents[t].iter().enumerate() {
                f(t, d, self.kinds[t][i]);
            }
        }
    }

    /// The down-right wavefront over a tile grid: tile `(tx, ty)` depends
    /// on its left and upper neighbours — the exact dependence pattern of
    /// Fig. 11. Task ids are the grid's linear indices.
    pub fn down_right_wavefront(grid: &TileGrid) -> Self {
        let mut g = TaskGraph::new(grid.len());
        for t in grid.iter() {
            let id = grid.linear_index(t.tx, t.ty);
            if t.tx > 0 {
                g.add_dep(grid.linear_index(t.tx - 1, t.ty), id);
            }
            if t.ty > 0 {
                g.add_dep(grid.linear_index(t.tx, t.ty - 1), id);
            }
        }
        g
    }

    /// The symmetric up-left wavefront: tile `(tx, ty)` depends on its
    /// right and lower neighbours (the second phase of `ccomp`).
    pub fn up_left_wavefront(grid: &TileGrid) -> Self {
        let mut g = TaskGraph::new(grid.len());
        for t in grid.iter() {
            let id = grid.linear_index(t.tx, t.ty);
            if t.tx + 1 < grid.tiles_x() {
                g.add_dep(grid.linear_index(t.tx + 1, t.ty), id);
            }
            if t.ty + 1 < grid.tiles_y() {
                g.add_dep(grid.linear_index(t.tx, t.ty + 1), id);
            }
        }
        g
    }

    /// Executes every task sequentially on the calling thread, passing
    /// rank 0 — the same `f(task, rank)` shape as [`TaskGraph::run`], so
    /// one closure serves both the `seq` and `taskdep` variants of a
    /// kernel.
    ///
    /// **Execution-order guarantee**: `run_seq` is fully deterministic —
    /// a Kahn traversal whose ready queue is FIFO and is seeded with the
    /// initially-ready tasks in ascending id order, so the same graph
    /// always replays the same order. This is a *stronger* contract than
    /// [`TaskGraph::run`], which only promises a valid topological order
    /// (a task never starts before its predecessors complete) and
    /// deliberately guarantees nothing else: which worker runs a task and
    /// how concurrent ready tasks interleave is up to the OS scheduler.
    /// Tests that need to explore those interleavings deterministically
    /// should use `vexec::virtual_taskgraph` (feature `ezp-check`).
    ///
    /// Returns [`Error::Config`] when the graph has a cycle.
    pub fn run_seq(&self, mut f: impl FnMut(usize, WorkerId)) -> Result<()> {
        let mut indegree = self.indegree.clone();
        let mut ready: VecDeque<usize> = (0..self.len()).filter(|&t| indegree[t] == 0).collect();
        let mut done = 0;
        while let Some(t) = ready.pop_front() {
            f(t, 0);
            done += 1;
            for &d in &self.dependents[t] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push_back(d);
                }
            }
        }
        if done != self.len() {
            return Err(Error::Config(format!(
                "task graph has a cycle: only {done}/{} tasks runnable",
                self.len()
            )));
        }
        Ok(())
    }

    /// Executes the graph on the pool: workers pick ready tasks, run
    /// `f(task, rank)`, and release dependents. Returns when all tasks
    /// completed, or with an error when the graph has a cycle.
    pub fn run(&self, pool: &mut WorkerPool, f: impl Fn(usize, WorkerId) + Sync) -> Result<()> {
        self.run_probed(pool, &NullProbe, f)
    }

    /// [`TaskGraph::run`] with a probe receiving [`RuntimeEvent`]s:
    /// one `ChunkDispensed` per task picked, a `DequeSteal` per task
    /// obtained from another worker's deque, and a `TaskWait` plus the
    /// waited `IdleNs` each time a worker parks with no ready task in
    /// sight. Timing only happens when the probe wants events.
    ///
    /// ## Execution model (lock-free)
    ///
    /// Each worker owns a [`TaskDeque`] of ready task ids: it pushes
    /// dependents it releases and pops them back LIFO; when its own
    /// deque is dry it steals FIFO from the others. No mutex guards the
    /// ready state — an earlier version serialized every pick on a
    /// global `Mutex<VecDeque>`, which is exactly the contention a
    /// task-per-tile wavefront (Fig. 11/12) exposes.
    ///
    /// Termination and cycle detection ride three SeqCst counters:
    /// `pending` (tasks not yet completed), `active` (workers inside a
    /// busy streak — raised before the first pick attempt, lowered only
    /// after a pick found nothing anywhere) and `events` (completion
    /// epochs). A worker that finds no task anywhere decrements
    /// `active` and then checks, in order: `events` snapshot → all
    /// deques empty → `active == 0` → `events` unchanged → `pending >
    /// 0`. In the SeqCst total order any in-flight completion either
    /// bumps `events` inside the window (check fails, retry), leaves a
    /// pushed dependent visible to the scan, or leaves its claimant
    /// visible in `active` — so a clean pass proves no task is running
    /// or ready, and remaining `pending` tasks form a cycle. Workers
    /// with nothing to do park on a [`ParkLot`] whose wake condition
    /// (completion count moved, or a deque became non-empty) every
    /// completer makes true before notifying.
    pub fn run_probed(
        &self,
        pool: &mut WorkerPool,
        probe: &dyn Probe,
        f: impl Fn(usize, WorkerId) + Sync,
    ) -> Result<()> {
        let n = self.len();
        if n == 0 {
            return Ok(());
        }
        let timed = probe.wants_runtime_events();
        // Edge provenance for tracers: enumerate the DAG once, before
        // any task runs, so the recorded trace is a timed graph rather
        // than a bag of intervals. Gated separately — O(edges) work only
        // a tracer should pay.
        if probe.wants_dep_edges() {
            self.for_each_edge(|from, to, kind| probe.dep_edge(from, to, kind));
        }
        let threads = pool.width();
        let indegree: Vec<AtomicUsize> =
            self.indegree.iter().map(|&d| AtomicUsize::new(d)).collect();
        // One deque per worker, each sized for the whole graph: a worker
        // can release at most n-1 dependents into its own deque.
        let deques: Vec<TaskDeque> = (0..threads).map(|_| TaskDeque::with_capacity(n)).collect();
        // Seed initially-ready tasks round-robin so every worker starts
        // with local work when the frontier is wide.
        {
            let mut next = 0;
            for t in (0..n).filter(|&t| self.indegree[t] == 0) {
                deques[next % threads].push(t);
                next += 1;
            }
        }
        let pending = AtomicUsize::new(n);
        let active = AtomicUsize::new(0);
        let events = AtomicU64::new(0);
        let cycle = AtomicBool::new(false);
        let idle = ParkLot::new();

        crate::parallel::run_region_probed(pool, probe, timed, |rank| {
            let my = &deques[rank];
            loop {
                if pending.load(Ordering::SeqCst) == 0 || cycle.load(Ordering::SeqCst) {
                    return;
                }
                // Claim before looking: `active` makes this worker's
                // pick attempts visible to concurrent cycle checks. It
                // is raised once per busy *streak*, not per task, so
                // consecutive local pops pay no extra RMW traffic.
                active.fetch_add(1, Ordering::SeqCst);
                loop {
                    let mut task = my.pop();
                    if task.is_none() {
                        'victims: for i in 1..threads {
                            let victim = &deques[(rank + i) % threads];
                            loop {
                                match victim.steal() {
                                    Steal::Success(t) => {
                                        if timed {
                                            probe.runtime_event(rank, RuntimeEvent::DequeSteal);
                                        }
                                        task = Some(t);
                                        break 'victims;
                                    }
                                    // A failed CAS means another thief won;
                                    // re-read rather than move on, the victim
                                    // may hold more.
                                    Steal::Retry => std::hint::spin_loop(),
                                    Steal::Empty => continue 'victims,
                                }
                            }
                        }
                    }
                    let Some(task) = task else { break };
                    if timed {
                        probe.runtime_event(rank, RuntimeEvent::ChunkDispensed { len: 1 });
                    }
                    f(task, rank);
                    let mut released = false;
                    // ORDERING: synchronizing. Each predecessor's Release
                    // half orders its task's effects before the decrement;
                    // the Acquire half of the *final* decrement (the one
                    // seeing 1) makes every predecessor's effects visible
                    // to whoever runs the released dependent.
                    for &d in &self.dependents[task] {
                        if indegree[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            my.push(d);
                            released = true;
                        }
                    }
                    // Publish completion: the pushes above happen-before
                    // the `events` bump, which happens-before the
                    // `pending` decrement — the order the cycle check
                    // relies on. Notify last, once the wake conditions
                    // are true — and only when a sleeper could actually
                    // have something to do: a dependent became ready, or
                    // this was the final task. A completion that releases
                    // nothing mid-graph leaves parked workers parked
                    // instead of waking the whole lot per task.
                    events.fetch_add(1, Ordering::SeqCst);
                    let left = pending.fetch_sub(1, Ordering::SeqCst);
                    if released || left == 1 {
                        idle.notify();
                    }
                }
                {
                    active.fetch_sub(1, Ordering::SeqCst);
                    // Termination / cycle check (see module comment).
                    let e0 = events.load(Ordering::SeqCst);
                    let all_empty = deques.iter().all(|d| d.len_hint() == 0);
                    let quiet = active.load(Ordering::SeqCst) == 0;
                    let stable = events.load(Ordering::SeqCst) == e0;
                    if pending.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    if all_empty && quiet && stable {
                        // No task running, none ready, some pending:
                        // the remainder is cyclic.
                        cycle.store(true, Ordering::SeqCst);
                        idle.notify();
                        return;
                    }
                    let t0 = if timed {
                        probe.runtime_event(rank, RuntimeEvent::TaskWait);
                        now_ns()
                    } else {
                        0
                    };
                    idle.wait_until(|| {
                        pending.load(Ordering::SeqCst) == 0
                            || cycle.load(Ordering::SeqCst)
                            || events.load(Ordering::SeqCst) != e0
                            || deques.iter().any(|d| d.len_hint() > 0)
                    });
                    if timed {
                        probe.runtime_event(
                            rank,
                            RuntimeEvent::IdleNs {
                                ns: now_ns().saturating_sub(t0),
                                cause: IdleCause::DepStall,
                            },
                        );
                    }
                }
            }
        });

        if cycle.load(Ordering::SeqCst) {
            let done = n - pending.load(Ordering::SeqCst);
            return Err(Error::Config(format!(
                "task graph has a cycle: only {done}/{n} tasks runnable"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::vec_of;
    use std::sync::Mutex;

    fn record_parallel(graph: &TaskGraph, threads: usize) -> Vec<usize> {
        let mut pool = WorkerPool::new(threads);
        let order = Mutex::new(Vec::new());
        graph
            .run(&mut pool, |t, _| order.lock().unwrap().push(t))
            .unwrap();
        order.into_inner().unwrap()
    }

    fn assert_topological(graph: &TaskGraph, order: &[usize]) {
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        assert_eq!(order.len(), graph.len(), "not all tasks ran");
        for t in 0..graph.len() {
            for &d in &graph.dependents[t] {
                assert!(
                    pos[&t] < pos[&d],
                    "dependency violated: {t} must precede {d} in {order:?}"
                );
            }
        }
    }

    #[test]
    fn chain_runs_in_order() {
        let mut g = TaskGraph::new(5);
        for i in 0..4 {
            g.add_dep(i, i + 1);
        }
        let order = record_parallel(&g, 4);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn diamond_respects_deps() {
        // 0 -> {1, 2} -> 3
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1);
        g.add_dep(0, 2);
        g.add_dep(1, 3);
        g.add_dep(2, 3);
        for _ in 0..10 {
            let order = record_parallel(&g, 3);
            assert_topological(&g, &order);
            assert_eq!(order[0], 0);
            assert_eq!(order[3], 3);
        }
    }

    #[test]
    fn wavefront_order_is_diagonal() {
        let grid = TileGrid::square(40, 10).unwrap(); // 4x4 tiles
        let g = TaskGraph::down_right_wavefront(&grid);
        let order = record_parallel(&g, 4);
        assert_topological(&g, &order);
        // the first task must be the top-left corner, the last the
        // bottom-right corner — the wave of Fig. 12
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), grid.len() - 1);
    }

    #[test]
    fn up_left_wavefront_is_reversed() {
        let grid = TileGrid::square(30, 10).unwrap(); // 3x3
        let g = TaskGraph::up_left_wavefront(&grid);
        let order = record_parallel(&g, 2);
        assert_topological(&g, &order);
        assert_eq!(order[0], grid.len() - 1); // bottom-right first
        assert_eq!(*order.last().unwrap(), 0); // top-left last
    }

    #[test]
    fn cycle_is_detected_parallel_and_seq() {
        let mut g = TaskGraph::new(3);
        g.add_dep(0, 1);
        g.add_dep(1, 2);
        g.add_dep(2, 0);
        let mut pool = WorkerPool::new(2);
        assert!(g.run(&mut pool, |_, _| {}).is_err());
        assert!(g.run_seq(|_, _| {}).is_err());
        // pool survives a cycle error
        let done = AtomicUsize::new(0);
        TaskGraph::new(2)
            .run(&mut pool, |_, _| {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn partial_cycle_still_runs_prefix_tasks() {
        // 0 -> 1, plus a 2<->3 cycle: 0 and 1 can run, then error
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1);
        g.add_dep(2, 3);
        g.add_dep(3, 2);
        let ran = Mutex::new(Vec::new());
        let mut pool = WorkerPool::new(2);
        let err = g
            .run(&mut pool, |t, _| ran.lock().unwrap().push(t))
            .unwrap_err();
        assert!(err.to_string().contains("cycle"));
        let mut ran = ran.into_inner().unwrap();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1]);
    }

    #[test]
    fn empty_graph_is_trivially_done() {
        let g = TaskGraph::new(0);
        let mut pool = WorkerPool::new(2);
        assert!(g.run(&mut pool, |_, _| {}).is_ok());
        assert!(g.run_seq(|_, _| {}).is_ok());
    }

    #[test]
    fn seq_matches_parallel_coverage() {
        let grid = TileGrid::square(50, 10).unwrap();
        let g = TaskGraph::down_right_wavefront(&grid);
        let mut seq_order = Vec::new();
        g.run_seq(|t, rank| {
            assert_eq!(rank, 0, "run_seq always reports rank 0");
            seq_order.push(t);
        })
        .unwrap();
        assert_topological(&g, &seq_order);
    }

    #[test]
    fn run_seq_order_is_deterministic_fifo_kahn() {
        let grid = TileGrid::square(40, 10).unwrap();
        let g = TaskGraph::down_right_wavefront(&grid);
        let order = |g: &TaskGraph| {
            let mut o = Vec::new();
            g.run_seq(|t, _| o.push(t)).unwrap();
            o
        };
        // the documented guarantee: same graph, same order, every time
        assert_eq!(order(&g), order(&g));
        // and independent tasks come out in ascending-id (FIFO) order
        let free = TaskGraph::new(5);
        assert_eq!(order(&free), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "depend on itself")]
    fn self_dependency_rejected() {
        let mut g = TaskGraph::new(2);
        g.add_dep(1, 1);
    }

    #[test]
    fn edges_carry_their_kind() {
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1); // defaults to Data
        g.add_dep_kind(0, 2, EdgeKind::Width);
        g.add_dep_kind(2, 3, EdgeKind::Capacity);
        assert_eq!(g.edge_count(), 3);
        let mut edges = Vec::new();
        g.for_each_edge(|f, t, k| edges.push((f, t, k)));
        assert_eq!(
            edges,
            vec![
                (0, 1, EdgeKind::Data),
                (0, 2, EdgeKind::Width),
                (2, 3, EdgeKind::Capacity),
            ]
        );
    }

    #[test]
    fn run_probed_reports_edges_to_tracers() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct EdgeTracer(StdMutex<Vec<(usize, usize, EdgeKind)>>);
        impl Probe for EdgeTracer {
            fn dep_edge(&self, from: usize, to: usize, kind: EdgeKind) {
                self.0.lock().unwrap().push((from, to, kind));
            }
            fn wants_dep_edges(&self) -> bool {
                true
            }
        }
        let grid = TileGrid::square(30, 10).unwrap(); // 3x3 tiles
        let g = TaskGraph::down_right_wavefront(&grid);
        let tracer = EdgeTracer::default();
        let mut pool = WorkerPool::new(2);
        g.run_probed(&mut pool, &tracer, |_, _| {}).unwrap();
        let edges = tracer.0.into_inner().unwrap();
        // 3x3 wavefront: 2 edges per inner tile boundary = 12 edges
        assert_eq!(edges.len(), 12);
        assert!(edges.iter().all(|&(_, _, k)| k == EdgeKind::Data));
        assert!(edges.contains(&(0, 1, EdgeKind::Data)));
        assert!(edges.contains(&(0, 3, EdgeKind::Data)));
    }

    ezp_proptest! {
        #![cases(32)]

        fn prop_random_dag_runs_topologically(
            n in 1usize..40,
            edges in vec_of((0usize..40, 0usize..40), 0..80),
            threads in 1usize..5,
        ) {
            let mut g = TaskGraph::new(n);
            for (a, b) in edges {
                let (a, b) = (a % n, b % n);
                // only forward edges -> guaranteed acyclic
                if a < b {
                    g.add_dep(a, b);
                }
            }
            let order = record_parallel(&g, threads);
            assert_topological(&g, &order);
        }
    }
}
