//! `parallel for` helpers: scheduled loops over ranges and tile grids.
//!
//! These are the Rust spellings of the paper's Fig. 2:
//!
//! ```c
//! #pragma omp for collapse(2) schedule(static)
//! for (int y = 0; y < DIM; y += TILE_SIZE)
//!   for (int x = 0; x < DIM; x += TILE_SIZE)
//!     do_tile (x, y, TILE_SIZE, TILE_SIZE, omp_get_thread_num ());
//! ```
//!
//! becomes [`parallel_for_tiles`], which linearizes the grid
//! (`collapse(2)`), carves it up with the requested [`Schedule`] and
//! brackets every tile with the probe's `start_tile`/`end_tile` — the
//! instrumentation EASYPAP asks students to insert by hand.

use crate::dispenser::{dispenser_for, Dispenser};
use crate::img_cell::{ImgCell, TileWriter};
use crate::pool::WorkerPool;
use ezp_core::kernel::{IdleCause, NullProbe, Probe, RuntimeEvent};
use ezp_core::time::now_ns;
use ezp_core::{Img2D, Schedule, Tile, TileGrid, WorkerId};

/// Runs `f(i, rank)` for every `i in 0..n`, scheduled by `schedule`
/// over the pool's workers (`#pragma omp for schedule(...)`).
pub fn parallel_for_range(
    pool: &mut WorkerPool,
    n: usize,
    schedule: Schedule,
    f: impl Fn(usize, WorkerId) + Sync,
) {
    parallel_for_range_probed(pool, n, schedule, &NullProbe, f);
}

/// [`parallel_for_range`] with a probe receiving the scheduler's
/// [`RuntimeEvent`]s (chunks dispensed, idle time, steals). The clock
/// reads feeding `IdleNs` only happen when the probe asks for events,
/// so passing [`NullProbe`] costs one branch per chunk.
pub fn parallel_for_range_probed(
    pool: &mut WorkerPool,
    n: usize,
    schedule: Schedule,
    probe: &dyn Probe,
    f: impl Fn(usize, WorkerId) + Sync,
) {
    if n == 0 {
        // An empty range is a no-op: dispatching a region anyway would
        // bump `regions_run` and emit per-worker barrier events for a
        // loop that never existed.
        return;
    }
    let threads = pool.width();
    let disp = dispenser_for(schedule, n, threads);
    let timed = probe.wants_runtime_events();
    run_region_probed(pool, probe, timed, |rank| {
        loop {
            let t0 = if timed { now_ns() } else { 0 };
            let Some((start, len)) = disp.next(rank) else {
                if timed {
                    report_loop_end(probe, rank, t0);
                }
                break;
            };
            if timed {
                report_chunk(probe, rank, t0, len);
            }
            for i in start..start + len {
                f(i, rank);
            }
        }
    });
    if timed {
        report_steals(probe, &*disp);
    }
}

/// Runs `f(tile, rank)` for every tile of `grid` (`collapse(2)` order),
/// scheduled by `schedule`, with monitoring brackets around each tile
/// and [`RuntimeEvent`]s for probes that want them.
pub fn parallel_for_tiles(
    pool: &mut WorkerPool,
    grid: &TileGrid,
    schedule: Schedule,
    probe: &dyn Probe,
    f: impl Fn(Tile, WorkerId) + Sync,
) {
    if grid.len() == 0 {
        return;
    }
    let threads = pool.width();
    let disp = dispenser_for(schedule, grid.len(), threads);
    let timed = probe.wants_runtime_events();
    run_region_probed(pool, probe, timed, |rank| {
        loop {
            let t0 = if timed { now_ns() } else { 0 };
            let Some((start, len)) = disp.next(rank) else {
                if timed {
                    report_loop_end(probe, rank, t0);
                }
                break;
            };
            if timed {
                report_chunk(probe, rank, t0, len);
            }
            for i in start..start + len {
                let tile = grid.tile_at(i);
                probe.start_tile(rank);
                f(tile, rank);
                probe.end_tile(tile.x, tile.y, tile.w, tile.h, rank);
            }
        }
    });
    if timed {
        report_steals(probe, &*disp);
    }
}

/// Runs one pool region and, when `timed`, reports the pool's
/// epoch-protocol spin/park delta for it as a single
/// [`RuntimeEvent::PoolSync`] (attributed to rank 0: the pool counters
/// are global, not per-worker). Shared by the probed loop helpers and
/// the task-graph executor.
pub(crate) fn run_region_probed(
    pool: &mut WorkerPool,
    probe: &dyn Probe,
    timed: bool,
    f: impl Fn(WorkerId) + Sync,
) {
    let before = timed.then(|| pool.sync_stats());
    pool.run(f);
    if let Some(b) = before {
        let a = pool.sync_stats();
        probe.runtime_event(
            0,
            RuntimeEvent::PoolSync {
                parks: a.parks.saturating_sub(b.parks),
                spins: a.spins.saturating_sub(b.spins),
            },
        );
        let park_ns = a.park_ns.saturating_sub(b.park_ns);
        if park_ns > 0 {
            // Kernel-blocked time of the epoch protocol, attributed to
            // rank 0 like PoolSync (the pool counters are global).
            probe.runtime_event(
                0,
                RuntimeEvent::IdleNs {
                    ns: park_ns,
                    cause: IdleCause::PoolPark,
                },
            );
        }
    }
}

/// The wait for the chunk ended in work: report it plus the dispense.
/// The wait is the dispenser's steal/contention path, so the idle slice
/// is attributed to `cause="steal"`.
fn report_chunk(probe: &dyn Probe, rank: WorkerId, t0: u64, len: usize) {
    probe.runtime_event(
        rank,
        RuntimeEvent::IdleNs {
            ns: now_ns().saturating_sub(t0),
            cause: IdleCause::Steal,
        },
    );
    probe.runtime_event(rank, RuntimeEvent::ChunkDispensed { len });
}

/// The wait ended in exhaustion: the rank hits the loop-end barrier.
fn report_loop_end(probe: &dyn Probe, rank: WorkerId, t0: u64) {
    probe.runtime_event(
        rank,
        RuntimeEvent::IdleNs {
            ns: now_ns().saturating_sub(t0),
            cause: IdleCause::Barrier,
        },
    );
    probe.runtime_event(rank, RuntimeEvent::BarrierWait);
}

/// After the loop: forward the dispenser's steal counters (if any).
fn report_steals(probe: &dyn Probe, disp: &dyn Dispenser) {
    if let Some(stats) = disp.steal_stats() {
        for (rank, s) in stats.iter().enumerate() {
            probe.runtime_event(
                rank,
                RuntimeEvent::Steals {
                    attempted: s.attempted,
                    succeeded: s.succeeded,
                },
            );
        }
    }
}

/// Tile-parallel write access to an image: `f` gets a bounds-checked
/// [`TileWriter`] for its tile. This is the full `do_tile` idiom — the
/// common body of `mandel`-style kernels that paint the current image in
/// place.
pub fn parallel_for_tiles_img<T: Copy + Send + Sync>(
    pool: &mut WorkerPool,
    grid: &TileGrid,
    schedule: Schedule,
    probe: &dyn Probe,
    img: &mut Img2D<T>,
    f: impl Fn(&TileWriter<'_, '_, T>, WorkerId) + Sync,
) {
    let cell = ImgCell::new(img);
    parallel_for_tiles(pool, grid, schedule, probe, |tile, rank| {
        let writer = cell.tile_writer(tile);
        f(&writer, rank);
    });
}

/// Sequential tile loop with the same instrumentation — the `seq`/
/// `tiled` baseline variants, so that traces of sequential runs are
/// comparable in EASYVIEW.
pub fn sequential_for_tiles(
    grid: &TileGrid,
    probe: &dyn Probe,
    mut f: impl FnMut(Tile),
) {
    for tile in grid.iter() {
        probe.start_tile(0);
        f(tile);
        probe.end_tile(tile.x, tile.y, tile.w, tile.h, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::kernel::NullProbe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_covers_all_indices_under_every_schedule() {
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(2),
            Schedule::Guided(1),
            Schedule::NonmonotonicDynamic(1),
        ] {
            let mut pool = WorkerPool::new(4);
            let n = 333;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_range(&mut pool, n, sched, |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{sched:?} missed or duplicated iterations"
            );
        }
    }

    #[test]
    fn tiles_get_valid_ranks() {
        let mut pool = WorkerPool::new(3);
        let grid = TileGrid::square(32, 8).unwrap();
        let bad_ranks = AtomicUsize::new(0);
        parallel_for_tiles(&mut pool, &grid, Schedule::Dynamic(1), &NullProbe, |_, rank| {
            if rank >= 3 {
                bad_ranks.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(bad_ranks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn probe_sees_one_bracket_per_tile() {
        struct Counter {
            starts: AtomicUsize,
            ends: AtomicUsize,
            pixels: AtomicUsize,
        }
        impl Probe for Counter {
            fn start_tile(&self, _: WorkerId) {
                self.starts.fetch_add(1, Ordering::Relaxed);
            }
            fn end_tile(&self, _: usize, _: usize, w: usize, h: usize, _: WorkerId) {
                self.ends.fetch_add(1, Ordering::Relaxed);
                self.pixels.fetch_add(w * h, Ordering::Relaxed);
            }
        }
        let probe = Counter {
            starts: AtomicUsize::new(0),
            ends: AtomicUsize::new(0),
            pixels: AtomicUsize::new(0),
        };
        let mut pool = WorkerPool::new(2);
        let grid = TileGrid::new(20, 12, 8, 8).unwrap(); // ragged: 3x2 tiles
        parallel_for_tiles(&mut pool, &grid, Schedule::Static, &probe, |_, _| {});
        assert_eq!(probe.starts.load(Ordering::Relaxed), 6);
        assert_eq!(probe.ends.load(Ordering::Relaxed), 6);
        assert_eq!(probe.pixels.load(Ordering::Relaxed), 240); // 20*12
    }

    #[test]
    fn tiles_img_paints_disjointly() {
        let mut pool = WorkerPool::new(4);
        let grid = TileGrid::square(64, 16).unwrap();
        let mut img: Img2D<u32> = Img2D::square(64);
        parallel_for_tiles_img(
            &mut pool,
            &grid,
            Schedule::NonmonotonicDynamic(1),
            &NullProbe,
            &mut img,
            |w, _| {
                let t = w.tile();
                for y in t.y..t.y + t.h {
                    for x in t.x..t.x + t.w {
                        w.set(x, y, (x + 64 * y) as u32);
                    }
                }
            },
        );
        for y in 0..64 {
            for x in 0..64 {
                assert_eq!(img.get(x, y), (x + 64 * y) as u32);
            }
        }
    }

    #[test]
    fn sequential_for_tiles_uses_rank_zero() {
        struct RankCheck(AtomicUsize);
        impl Probe for RankCheck {
            fn start_tile(&self, w: WorkerId) {
                assert_eq!(w, 0);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let probe = RankCheck(AtomicUsize::new(0));
        let grid = TileGrid::square(16, 4).unwrap();
        let mut seen = 0;
        sequential_for_tiles(&grid, &probe, |_| seen += 1);
        assert_eq!(seen, 16);
        assert_eq!(probe.0.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn empty_range_does_not_dispatch_a_region() {
        // S2 regression: n == 0 must not run a region (polluting
        // regions_run and per-worker barrier counters) under any policy
        let mut pool = WorkerPool::new(2);
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(2),
            Schedule::Dynamic(1),
            Schedule::Guided(2),
            Schedule::NonmonotonicDynamic(1),
        ] {
            parallel_for_range(&mut pool, 0, sched, |_, _| {
                panic!("no iteration may run for an empty range");
            });
        }
        assert_eq!(pool.regions_run(), 0);
        // pool unaffected: a real loop still works
        let count = AtomicUsize::new(0);
        parallel_for_range(&mut pool, 10, Schedule::Dynamic(2), |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
        assert_eq!(pool.regions_run(), 1);
    }

    #[test]
    fn single_tile_grid_works() {
        let mut pool = WorkerPool::new(4);
        let grid = TileGrid::square(8, 8).unwrap();
        let count = AtomicUsize::new(0);
        parallel_for_tiles(&mut pool, &grid, Schedule::Guided(1), &NullProbe, |t, _| {
            assert_eq!((t.w, t.h), (8, 8));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
