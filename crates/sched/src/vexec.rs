//! Virtual-scheduler executor: deterministic schedule exploration
//! (`ezp-check`).
//!
//! The real [`WorkerPool`](crate::WorkerPool) leaves interleavings to the
//! OS; a test that wants to *search* interleavings needs to own them.
//! This module re-runs the three scheduling substrates — chunk dispensers
//! ([`virtual_drain`] / [`virtual_for_range`] / [`virtual_for_tiles`])
//! and task graphs ([`virtual_taskgraph`]) — on `N` *logical* workers
//! multiplexed onto the calling thread. Which worker acts next is decided
//! by an explicit [`Interleave`] strategy from `ezp-testkit`, so a run is
//! a pure function of `(strategy kind, seed)`: a failing interleaving
//! found by a random walk replays byte-for-byte from its seed.
//!
//! The granularity of a virtual step is one dispenser call (one chunk) or
//! one task. That is exactly the granularity at which the scheduling
//! layer's invariants live — "every index handed out exactly once",
//! "a task never starts before its predecessors" — and the granularity
//! the shadow-write detector (`ezp_core::shadow`) needs: it judges
//! conflicts by *writer identity and happens-before*, not by wall-clock
//! order, so executing each chunk atomically loses no races.
//!
//! Everything here is compiled only under the `ezp-check` feature and is
//! never linked into production runs.

use crate::deque::{Steal, TaskDeque};
use crate::dispenser::{dispenser_for, Dispenser};
use crate::taskgraph::TaskGraph;
use ezp_core::error::{Error, Result};
use ezp_core::{Schedule, Tile, TileGrid, WorkerId};
use ezp_testkit::schedule::Interleave;

/// One step of a virtual schedule: `rank` called the dispenser and got
/// `chunk` (`None` = exhausted; the rank leaves the schedule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VStep {
    /// The logical worker that acted.
    pub rank: WorkerId,
    /// The chunk `(start, len)` granted, or `None` on exhaustion.
    pub chunk: Option<(usize, usize)>,
}

/// Drains `disp` from `workers` logical workers under `strategy`.
///
/// `f(index, chunk_id, rank)` runs for every iteration index, where
/// `chunk_id` numbers dispenser grants in schedule order — the writer
/// identity the shadow detector keys on. Returns the full step trace,
/// which is byte-for-byte reproducible for a given strategy state.
pub fn virtual_drain(
    disp: &dyn Dispenser,
    workers: usize,
    strategy: &mut dyn Interleave,
    mut f: impl FnMut(usize, usize, WorkerId),
) -> Vec<VStep> {
    assert!(workers > 0, "virtual execution needs at least one worker");
    let mut runnable = vec![true; workers];
    let mut trace = Vec::new();
    let mut chunk_id = 0usize;
    while let Some(rank) = strategy.next_worker(&runnable) {
        match disp.next(rank) {
            Some((start, len)) => {
                trace.push(VStep {
                    rank,
                    chunk: Some((start, len)),
                });
                for i in start..start + len {
                    f(i, chunk_id, rank);
                }
                chunk_id += 1;
            }
            None => {
                runnable[rank] = false;
                trace.push(VStep { rank, chunk: None });
            }
        }
    }
    trace
}

/// [`virtual_drain`] over a fresh dispenser for `schedule` — the virtual
/// twin of [`parallel_for_range`](crate::parallel_for_range).
pub fn virtual_for_range(
    n: usize,
    schedule: Schedule,
    workers: usize,
    strategy: &mut dyn Interleave,
    f: impl FnMut(usize, usize, WorkerId),
) -> Vec<VStep> {
    let disp = dispenser_for(schedule, n, workers);
    virtual_drain(&*disp, workers, strategy, f)
}

/// The virtual twin of [`parallel_for_tiles`](crate::parallel_for_tiles):
/// `f(tile, chunk_id, rank)` for every tile of `grid`, chunked and
/// interleaved like the real scheduler would under `schedule`.
pub fn virtual_for_tiles(
    grid: &TileGrid,
    schedule: Schedule,
    workers: usize,
    strategy: &mut dyn Interleave,
    mut f: impl FnMut(Tile, usize, WorkerId),
) -> Vec<VStep> {
    let disp = dispenser_for(schedule, grid.len(), workers);
    virtual_drain(&*disp, workers, strategy, |i, chunk, rank| {
        f(grid.tile_at(i), chunk, rank)
    })
}

/// Executes `graph` under an explicit interleaving: each step, `strategy`
/// picks the acting worker *and* which ready task it grabs
/// ([`Interleave::pick`]), so random-walk strategies explore the space of
/// valid topological orders. Returns the `(task, rank)` execution order,
/// or [`Error::Config`] on a cycle (same contract as
/// [`TaskGraph::run`]).
pub fn virtual_taskgraph(
    graph: &TaskGraph,
    workers: usize,
    strategy: &mut dyn Interleave,
    mut f: impl FnMut(usize, WorkerId),
) -> Result<Vec<(usize, WorkerId)>> {
    assert!(workers > 0, "virtual execution needs at least one worker");
    let n = graph.len();
    let mut indegree: Vec<usize> = (0..n).map(|t| graph.indegree(t)).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&t| indegree[t] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let runnable = vec![true; workers];
    while !ready.is_empty() {
        let rank = strategy
            .next_worker(&runnable)
            .expect("workers > 0 and all runnable");
        let task = ready.remove(strategy.pick(ready.len()));
        f(task, rank);
        order.push((task, rank));
        for &d in graph.dependents(task) {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push(d);
            }
        }
    }
    if order.len() != n {
        return Err(Error::Config(format!(
            "task graph has a cycle: only {}/{n} tasks runnable",
            order.len()
        )));
    }
    Ok(order)
}

/// The virtual twin of the *deque-based* task-graph executor
/// ([`TaskGraph::run_probed`]): per-worker [`TaskDeque`]s with owner
/// LIFO pops and thief FIFO steals, interleaved one scheduling action
/// at a time by `strategy`.
///
/// Unlike [`virtual_taskgraph`] (which models an abstract ready set),
/// this drives the *real* lock-free deque through every strategy-chosen
/// owner/thief sequence: each step the strategy picks a worker, which
/// pops its own deque or — when empty — steals from the victim the
/// strategy picks among the non-empty deques. Released dependents go to
/// the acting worker's deque, exactly as in the threaded executor.
/// Returns the `(task, rank)` execution order plus how many grabs were
/// steals, or [`Error::Config`] on a cycle.
pub fn virtual_deque_taskgraph(
    graph: &TaskGraph,
    workers: usize,
    strategy: &mut dyn Interleave,
    mut f: impl FnMut(usize, WorkerId),
) -> Result<(Vec<(usize, WorkerId)>, u64)> {
    assert!(workers > 0, "virtual execution needs at least one worker");
    let n = graph.len();
    let mut indegree: Vec<usize> = (0..n).map(|t| graph.indegree(t)).collect();
    let deques: Vec<TaskDeque> = (0..workers).map(|_| TaskDeque::with_capacity(n.max(1))).collect();
    // Same round-robin seeding as the threaded executor.
    for (i, t) in (0..n).filter(|&t| indegree[t] == 0).enumerate() {
        deques[i % workers].push(t);
    }
    let mut order = Vec::with_capacity(n);
    let mut steals = 0u64;
    let runnable = vec![true; workers];
    loop {
        if order.len() == n {
            break;
        }
        // A cycle leaves every deque empty with tasks outstanding.
        if deques.iter().all(|d| d.len_hint() == 0) {
            return Err(Error::Config(format!(
                "task graph has a cycle: only {}/{n} tasks runnable",
                order.len()
            )));
        }
        let rank = strategy
            .next_worker(&runnable)
            .expect("workers > 0 and all runnable");
        let task = match deques[rank].pop() {
            Some(t) => t,
            None => {
                // Steal from a strategy-chosen non-empty victim.
                let victims: Vec<usize> = (0..workers)
                    .filter(|&v| v != rank && deques[v].len_hint() > 0)
                    .collect();
                if victims.is_empty() {
                    continue; // nothing to grab; another worker acts next
                }
                let victim = victims[strategy.pick(victims.len())];
                match deques[victim].steal() {
                    Steal::Success(t) => {
                        steals += 1;
                        t
                    }
                    // Serialized execution: a steal from a non-empty
                    // deque cannot lose a race.
                    Steal::Retry | Steal::Empty => unreachable!("uncontended steal failed"),
                }
            }
        };
        f(task, rank);
        order.push((task, rank));
        for &d in graph.dependents(task) {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                deques[rank].push(d);
            }
        }
    }
    Ok((order, steals))
}

/// The outcome of a virtual streaming run ([`virtual_pipeline`] /
/// [`virtual_farm`]): the substrate's execution order, the frame ids in
/// emission order, and the reorder-buffer peak the emission mode
/// implied. Two runs from the same `(strategy kind, seed)` compare
/// equal — the replay contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VStream {
    /// `(task, rank)` execution order of the underlying substrate —
    /// graph nodes for a pipeline, frame ids for a farm.
    pub order: Vec<(usize, WorkerId)>,
    /// Frame ids in emission order: `0..frames` in ordered mode,
    /// completion order otherwise.
    pub emitted: Vec<usize>,
    /// Successful steals (deque steals for a pipeline, dispenser steals
    /// for a farm).
    pub steals: u64,
    /// Peak count of completed-but-unemitted frames (always 0 in
    /// unordered mode, where completion emits immediately).
    pub max_reorder_depth: usize,
}

/// Tracks the reorder buffer of an ordered (or pass-through unordered)
/// emission as frames complete in schedule order.
struct VReorder {
    ordered: bool,
    parked: Vec<bool>,
    frontier: usize,
    completed: usize,
    emitted: Vec<usize>,
    max_depth: usize,
}

impl VReorder {
    fn new(frames: usize, ordered: bool) -> Self {
        VReorder {
            ordered,
            parked: vec![false; frames],
            frontier: 0,
            completed: 0,
            emitted: Vec::with_capacity(frames),
            max_depth: 0,
        }
    }

    fn complete(&mut self, frame: usize) {
        self.completed += 1;
        if !self.ordered {
            self.emitted.push(frame);
            return;
        }
        self.parked[frame] = true;
        while self.frontier < self.parked.len() && self.parked[self.frontier] {
            self.emitted.push(self.frontier);
            self.frontier += 1;
        }
        // depth after the frontier advance: in-order arrivals cost 0,
        // mirroring the engine's accounting
        self.max_depth = self.max_depth.max(self.completed - self.frontier);
    }
}

/// The virtual twin of the streaming pipeline engine
/// (`ezp_stream::run_pipeline`): compiles `shape` over `frames` frames
/// to its task graph ([`PipeShape::graph`]) and executes it on the real
/// deque substrate under `strategy` ([`virtual_deque_taskgraph`]),
/// modeling the ordered reorder buffer (or unordered pass-through) at
/// the final stage.
///
/// The invariants the `ezp_check` sweeps pin on the result: ordered
/// emission is exactly `0..frames` (frame `n + 1` never leaves before
/// `n`), unordered emission is a permutation of it, and the run replays
/// byte-for-byte from its `(strategy, seed)`.
pub fn virtual_pipeline(
    shape: &crate::skeleton::PipeShape,
    frames: usize,
    workers: usize,
    ordered: bool,
    strategy: &mut dyn Interleave,
) -> Result<VStream> {
    let graph = shape.graph(frames);
    let last = shape.stages() - 1;
    let mut re = VReorder::new(frames, ordered);
    let (order, steals) = virtual_deque_taskgraph(&graph, workers, strategy, |t, _| {
        if shape.stage_of(t) == last {
            re.complete(shape.frame_of(t));
        }
    })?;
    Ok(VStream {
        order,
        emitted: re.emitted,
        steals,
        max_reorder_depth: re.max_depth,
    })
}

/// The virtual twin of the farm skeleton (`ezp_stream::Farm`): a fresh
/// [`StealingDispenser`](crate::dispenser::StealingDispenser) generation
/// over `frames` frames drained by `width` virtual lanes under
/// `strategy`, with the same reorder model at the sink as
/// [`virtual_pipeline`]. Build `strategy` for `width` workers.
pub fn virtual_farm(
    frames: usize,
    width: usize,
    ordered: bool,
    strategy: &mut dyn Interleave,
) -> VStream {
    let width = width.max(1);
    let disp = crate::dispenser::StealingDispenser::new(frames, width, 1);
    let mut re = VReorder::new(frames, ordered);
    let mut order = Vec::with_capacity(frames);
    virtual_drain(&disp, width, strategy, |f, _, rank| {
        order.push((f, rank));
        re.complete(f);
    });
    let steals = disp
        .steal_stats()
        .map(|s| s.iter().map(|r| r.succeeded).sum())
        .unwrap_or(0);
    VStream {
        order,
        emitted: re.emitted,
        steals,
        max_reorder_depth: re.max_depth,
    }
}

/// What a worker model is doing inside [`virtual_region_protocol`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WPhase {
    /// Waiting for `job_seq` to pass its last seen region (or shutdown).
    Parked,
    /// Saw the epoch bump and copied the job; about to run it.
    Running,
    /// Ran the body (and recorded a panic, if told to); about to
    /// decrement `remaining`.
    Finishing,
}

/// A step-level model of the pool's epoch protocol (`pool.rs`): one
/// master and `workers` virtual workers interleaved by `strategy`, each
/// protocol step (publish, observe-epoch, run, decrement, observe-done,
/// read-panics, shutdown) a separate scheduling point.
///
/// `panic_plan(seq, rank)` says whether `rank`'s body panics in region
/// `seq` (1-based). For every region the model asserts the invariants
/// the threaded implementation's soundness comment claims:
///
/// * the master observes completion only after *every* worker ran that
///   exact region and decremented `remaining` (no early unblock, no
///   lost worker);
/// * the panic count the master reads equals the plan's count for that
///   region — never a leftover from region N-1 (the S1 regression);
/// * after the final region the master's shutdown reaches all workers,
///   including ones still parked (the shutdown-during-park schedule).
///
/// Returns the per-region panic counts the master observed.
pub fn virtual_region_protocol(
    regions: u64,
    workers: usize,
    panic_plan: impl Fn(u64, WorkerId) -> bool,
    strategy: &mut dyn Interleave,
) -> Vec<usize> {
    assert!(workers > 0, "virtual execution needs at least one worker");
    // Shared words of the protocol (plain vars: the model is serial).
    let mut job_seq = 0u64;
    let mut done_seq = 0u64;
    let mut remaining = 0usize;
    let mut panics = 0usize;
    let mut shutdown = false;
    // Per-worker state.
    let mut phase = vec![WPhase::Parked; workers];
    let mut last_seq = vec![0u64; workers];
    let mut ran = vec![0u32; workers];
    let mut alive = vec![true; workers];
    // Master state.
    let mut master_waiting = false; // between publish and observe-done
    let mut observed = Vec::new();

    // Slot `workers` is the master; workers are 0..workers. Parking is
    // modeled as leaving the runnable set (a parked thread cannot be
    // scheduled), and ParkLot notifies as re-entering it — so unfair
    // strategies (steal-heavy, starve-one) cannot spin the model on an
    // idle actor, and a lost wakeup would surface as non-termination
    // with work outstanding.
    let mut runnable = vec![true; workers + 1];
    while let Some(actor) = strategy.next_worker(&runnable) {
        if actor == workers {
            // ---- master step ----
            if master_waiting {
                // observe-done + read-panics (protocol step 4)
                if done_seq == job_seq {
                    for (w, &r) in ran.iter().enumerate() {
                        assert_eq!(
                            r, 1,
                            "master unblocked while worker {w} ran region {job_seq} {r} times"
                        );
                    }
                    let expected = (0..workers).filter(|&w| panic_plan(job_seq, w)).count();
                    assert_eq!(
                        panics, expected,
                        "region {job_seq}: master read a stale panic count"
                    );
                    observed.push(panics);
                    master_waiting = false;
                } else {
                    // park on the done lot; the last finisher notifies
                    runnable[workers] = false;
                }
            } else if job_seq < regions {
                // publish (protocol steps 1-2): reset accounting, then
                // bump the epoch and notify the idle lot — same order
                // as WorkerPool::run
                panics = 0;
                remaining = workers;
                ran = vec![0; workers];
                job_seq += 1;
                master_waiting = true;
                for w in 0..workers {
                    if alive[w] {
                        runnable[w] = true;
                    }
                }
            } else {
                // all regions observed: set shutdown, notify the idle
                // lot, exit (Drop joins, which the model's end-state
                // assertions stand in for)
                shutdown = true;
                for w in 0..workers {
                    if alive[w] {
                        runnable[w] = true;
                    }
                }
                runnable[workers] = false;
            }
        } else {
            // ---- worker step ----
            match phase[actor] {
                WPhase::Parked => {
                    if shutdown {
                        // shutdown observed from the parked wait — the
                        // shutdown-during-park path
                        alive[actor] = false;
                        runnable[actor] = false;
                    } else if job_seq > last_seq[actor] {
                        assert_eq!(
                            job_seq,
                            last_seq[actor] + 1,
                            "worker {actor} skipped an epoch"
                        );
                        last_seq[actor] = job_seq;
                        phase[actor] = WPhase::Running;
                    } else {
                        // nothing to do: park on the idle lot
                        runnable[actor] = false;
                    }
                }
                WPhase::Running => {
                    ran[actor] += 1;
                    if panic_plan(last_seq[actor], actor) {
                        panics += 1;
                    }
                    phase[actor] = WPhase::Finishing;
                }
                WPhase::Finishing => {
                    remaining -= 1;
                    if remaining == 0 {
                        done_seq = last_seq[actor];
                        // notify the done lot
                        runnable[workers] = true;
                    }
                    phase[actor] = WPhase::Parked;
                }
            }
        }
    }
    assert!(
        alive.iter().all(|&a| !a),
        "shutdown lost: a worker is still parked after master exit"
    );
    assert_eq!(observed.len() as u64, regions, "master lost a region");
    observed
}

/// What a [`virtual_chan`] run observed: every popped item in pop
/// order, plus the occupancy peak and stall counts. Two runs from the
/// same `(strategy kind, seed)` compare equal — the replay contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VChanReport {
    /// `(producer, seq)` for every popped item, in pop order. A read
    /// that observed an unwritten slot (possible only with
    /// `broken = true`) records `(lane, u64::MAX)`.
    pub popped: Vec<(usize, u64)>,
    /// Peak of `tail - head` over all lanes and steps.
    pub max_occupancy: usize,
    /// Times a producer found its lane full and parked.
    pub full_stalls: u64,
    /// Times a consumer swept every lane without work and parked.
    pub empty_stalls: u64,
}

/// Per-lane state of the step-level channel model: the monotone
/// counters and slot array of `ezp_chan::ring::RingCore`, one lane per
/// producer as in the MPMC composition.
struct VLane {
    /// `cap` slots; `None` = unwritten (the model's `MaybeUninit`).
    slots: Vec<Option<(usize, u64)>>,
    head: u64,
    tail: u64,
    /// Pop-claim flag (`ezp_chan::mpmc`'s per-lane consumer claim).
    claimed: bool,
    /// Producer finished all its items (`tx_alive == false`).
    done: bool,
}

/// Producer protocol step about to execute (one scheduling point each —
/// the granularity at which the ring's release/acquire pairs matter).
#[derive(Clone, Copy, PartialEq, Eq)]
enum PPhase {
    /// Load `head`, compare against `cap`.
    CheckFull,
    /// Write the slot (`(*slot.get()).write(value)`).
    WriteSlot,
    /// Release-store the bumped `tail`.
    PublishTail,
}

/// Consumer protocol step about to execute.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CPhase {
    /// Sweep lanes from the rotation cursor; claim one with an item.
    Claim,
    /// Read the slot out (`assume_init_read`).
    ReadSlot { lane: usize },
    /// Release-store the bumped `head`, drop the claim.
    PublishHead { lane: usize },
}

/// A step-level model of the `ezp-chan` MPMC channel — `producers`
/// single-producer ring lanes of capacity `cap`, drained by `consumers`
/// claim-rotating consumers — interleaved one protocol step at a time
/// by `strategy`. This is the `virtual_chan` twin the real channel's
/// adversarial battery leans on: the threaded tests can only sample
/// interleavings, the model *enumerates* them under every strategy
/// family and replays any failure from `(kind, seed)`.
///
/// Each producer pushes `items` values `0..items`; each push is three
/// scheduling points (`CheckFull`, `WriteSlot`, `PublishTail` — the
/// ring's load-acquire, slot write, and store-release). Each pop is
/// three as well (`Claim`, `ReadSlot`, `PublishHead`). Parking is
/// modeled as leaving the runnable set, with publishes and claim
/// releases re-entering waiters — so unfair strategies (steal-heavy,
/// starve-one) cannot spin the model on a blocked actor, and a lost
/// wakeup surfaces as non-termination with work outstanding.
///
/// `broken = true` swaps the producer's `WriteSlot` and `PublishTail`
/// steps — the bug the real ring's Release ordering on `tail` prevents:
/// the new count is published *before* the slot holds the value. A
/// consumer scheduled into that window reads an unwritten slot, which
/// the model records as `(lane, u64::MAX)`; [`check_chan_oracle`]
/// rejects it. `injected_broken_ordering_is_caught` in the ezp-check
/// suite pins that the oracle really catches this.
///
/// Build `strategy` for `producers + consumers` actors (producers come
/// first).
pub fn virtual_chan(
    producers: usize,
    consumers: usize,
    cap: usize,
    items: u64,
    broken: bool,
    strategy: &mut dyn Interleave,
) -> VChanReport {
    let producers = producers.max(1);
    let consumers = consumers.max(1);
    let cap = cap.max(1) as u64;
    let mut lanes: Vec<VLane> = (0..producers)
        .map(|_| VLane {
            slots: vec![None; cap as usize],
            head: 0,
            tail: 0,
            claimed: false,
            done: false,
        })
        .collect();
    let mut p_phase = vec![PPhase::CheckFull; producers];
    let mut p_next = vec![0u64; producers]; // next seq to push
    let mut c_phase = vec![CPhase::Claim; consumers];
    let mut c_cursor = vec![0usize; consumers]; // lane rotation
    // Parked actors (out of the runnable set, awaiting a wake).
    let mut p_parked = vec![false; producers];
    let mut c_parked = vec![false; consumers];

    let mut report = VChanReport {
        popped: Vec::with_capacity((producers as u64 * items) as usize),
        max_occupancy: 0,
        full_stalls: 0,
        empty_stalls: 0,
    };

    // Actors 0..producers are producers; producers..producers+consumers
    // are consumers. `runnable[x] = false` models parked or finished.
    let mut runnable = vec![true; producers + consumers];
    if items == 0 {
        for (p, r) in runnable.iter_mut().take(producers).enumerate() {
            lanes[p].done = true;
            *r = false;
        }
    }

    // A publish (or a producer finishing) can satisfy any sleeping
    // consumer; a drained slot or dropped claim can satisfy sleepers on
    // the other side. Waking everyone parked on the event's side is
    // exactly what `ParkLot::notify` (notify_all) does.
    macro_rules! wake_consumers {
        () => {
            for (c, parked) in c_parked.iter_mut().enumerate() {
                if *parked {
                    *parked = false;
                    runnable[producers + c] = true;
                }
            }
        };
    }

    while let Some(actor) = strategy.next_worker(&runnable) {
        if actor < producers {
            // ---- producer step ----
            let p = actor;
            let lane = &mut lanes[p];
            match p_phase[p] {
                PPhase::CheckFull => {
                    if lane.tail - lane.head >= cap {
                        // full: park on the not-full lot
                        report.full_stalls += 1;
                        p_parked[p] = true;
                        runnable[p] = false;
                    } else {
                        p_phase[p] =
                            if broken { PPhase::PublishTail } else { PPhase::WriteSlot };
                    }
                }
                PPhase::WriteSlot => {
                    // In broken mode the publish already bumped `tail`,
                    // so the item's slot is the one just published.
                    let slot_of = if broken { lane.tail - 1 } else { lane.tail };
                    let idx = (slot_of % cap) as usize;
                    lane.slots[idx] = Some((p, p_next[p]));
                    if broken {
                        // broken ordering: the write lands *after* the
                        // publish; this completes the push
                        p_next[p] += 1;
                        if p_next[p] == items {
                            lane.done = true;
                            runnable[p] = false;
                            wake_consumers!();
                        } else {
                            p_phase[p] = PPhase::CheckFull;
                        }
                    } else {
                        p_phase[p] = PPhase::PublishTail;
                    }
                }
                PPhase::PublishTail => {
                    // In broken mode the slot is still unwritten here —
                    // the published count runs ahead of the data.
                    lane.tail += 1;
                    report.max_occupancy =
                        report.max_occupancy.max((lane.tail - lane.head) as usize);
                    debug_assert!(lane.tail - lane.head <= cap, "occupancy exceeded cap");
                    if broken {
                        p_phase[p] = PPhase::WriteSlot;
                    } else {
                        p_next[p] += 1;
                        if p_next[p] == items {
                            lane.done = true;
                            runnable[p] = false;
                        } else {
                            p_phase[p] = PPhase::CheckFull;
                        }
                    }
                    wake_consumers!();
                }
            }
        } else {
            // ---- consumer step ----
            let c = actor - producers;
            match c_phase[c] {
                CPhase::Claim => {
                    let mut claimed_lane = None;
                    for off in 0..producers {
                        let l = (c_cursor[c] + off) % producers;
                        if !lanes[l].claimed && lanes[l].tail > lanes[l].head {
                            lanes[l].claimed = true;
                            c_cursor[c] = (l + 1) % producers;
                            claimed_lane = Some(l);
                            break;
                        }
                    }
                    match claimed_lane {
                        Some(l) => c_phase[c] = CPhase::ReadSlot { lane: l },
                        None => {
                            if lanes.iter().all(|l| l.done && l.tail == l.head) {
                                // drained and every producer gone: the
                                // channel is closed for good
                                runnable[producers + c] = false;
                            } else {
                                // empty (or every populated lane claimed):
                                // park on the not-empty lot
                                report.empty_stalls += 1;
                                c_parked[c] = true;
                                runnable[producers + c] = false;
                            }
                        }
                    }
                }
                CPhase::ReadSlot { lane } => {
                    let l = &mut lanes[lane];
                    // `take` models `assume_init_read`: the slot no
                    // longer owns the value. Reading `None` means the
                    // producer published before writing — the bug the
                    // oracle exists to catch.
                    let value = l.slots[(l.head % cap) as usize]
                        .take()
                        .unwrap_or((lane, u64::MAX));
                    report.popped.push(value);
                    c_phase[c] = CPhase::PublishHead { lane };
                }
                CPhase::PublishHead { lane } => {
                    lanes[lane].head += 1;
                    lanes[lane].claimed = false;
                    c_phase[c] = CPhase::Claim;
                    // a slot freed: wake the lane's producer; a claim
                    // dropped (and possibly more items visible): wake
                    // sleeping consumers
                    if p_parked[lane] {
                        p_parked[lane] = false;
                        runnable[lane] = true;
                    }
                    wake_consumers!();
                }
            }
        }
    }

    assert!(
        lanes.iter().all(|l| l.done && l.tail == l.head),
        "virtual_chan did not terminate cleanly: a lost wakeup left work outstanding"
    );
    report
}

/// The happens-before oracle over a [`virtual_chan`] run: every item
/// pushed is popped exactly once, and each producer's items appear in
/// pop order exactly as pushed (per-producer FIFO). Returns a
/// diagnostic instead of panicking so the injected-bug test can assert
/// the oracle *fires* on a broken ring.
pub fn check_chan_oracle(
    report: &VChanReport,
    producers: usize,
    items: u64,
) -> std::result::Result<(), String> {
    let expect_total = producers as u64 * items;
    if report.popped.len() as u64 != expect_total {
        return Err(format!(
            "lost or duplicated items: popped {} of {expect_total}",
            report.popped.len()
        ));
    }
    let mut next = vec![0u64; producers];
    for (i, &(p, seq)) in report.popped.iter().enumerate() {
        if p >= producers {
            return Err(format!("pop {i}: unknown producer {p}"));
        }
        if seq == u64::MAX {
            return Err(format!(
                "pop {i}: producer {p} slot read before it was written (torn publish)"
            ));
        }
        if seq != next[p] {
            return Err(format!(
                "pop {i}: producer {p} out of order: got seq {seq}, expected {} \
                 (lost, duplicated or reordered)",
                next[p]
            ));
        }
        next[p] += 1;
    }
    for (p, &n) in next.iter().enumerate() {
        if n != items {
            return Err(format!("producer {p}: only {n} of {items} items popped"));
        }
    }
    Ok(())
}

/// Transitive happens-before over a [`TaskGraph`], as per-task descendant
/// bitsets — the oracle [`ezp_core::shadow::ShadowSession`] needs to
/// judge cross-task conflicts. Intended for test-sized graphs (memory is
/// `O(n²/64)`).
pub struct Reachability {
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Computes reachability for `graph`. Panics on a cyclic graph (run
    /// [`TaskGraph::run_seq`] first to validate untrusted graphs).
    pub fn of(graph: &TaskGraph) -> Self {
        let n = graph.len();
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        // Process in reverse topological order so descendant sets of
        // dependents are complete before being merged into their
        // predecessors.
        let mut topo = Vec::with_capacity(n);
        graph
            .run_seq(|t, _| topo.push(t))
            .expect("reachability requires an acyclic graph");
        for &t in topo.iter().rev() {
            for &d in graph.dependents(t) {
                bits[t * words + d / 64] |= 1 << (d % 64);
                let (head, tail) = bits.split_at_mut(t.max(d) * words);
                let (src, dst) = if d > t {
                    (&tail[..words], &mut head[t * words..t * words + words])
                } else {
                    (&head[d * words..d * words + words], &mut tail[..words])
                };
                for (dw, sw) in dst.iter_mut().zip(src.iter()) {
                    *dw |= sw;
                }
            }
        }
        Reachability { words, bits }
    }

    /// True when a dependency path leads from `a` to `b` (`a` happens
    /// before `b`).
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        self.bits[a * self.words + b / 64] >> (b % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispenser::StealingDispenser;
    use ezp_testkit::schedule::{RandomWalk, RoundRobin, StarveOne, StealHeavy, StrategyKind};

    fn assert_exact_cover(hits: &[u32], what: &str) {
        for (i, &h) in hits.iter().enumerate() {
            assert_eq!(h, 1, "{what}: index {i} handed out {h} times");
        }
    }

    /// The dispenser-audit proof test: under every strategy family and
    /// many seeds, every policy hands out every index exactly once —
    /// including the stealing dispenser under adversarial steal-heavy and
    /// starve-one schedules (the exact interleaving class a double-grant
    /// under concurrent steal + local pop would corrupt).
    #[test]
    fn every_policy_exact_cover_under_adversarial_schedules() {
        let policies = [
            Schedule::Static,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(2),
            Schedule::Guided(1),
            Schedule::NonmonotonicDynamic(1),
            Schedule::NonmonotonicDynamic(3),
        ];
        for policy in policies {
            for kind in StrategyKind::all() {
                for seed in 0..16u64 {
                    for workers in [1usize, 2, 3, 5, 8] {
                        let n = 157;
                        let mut hits = vec![0u32; n];
                        let mut strategy = kind.build(seed, workers);
                        virtual_for_range(n, policy, workers, &mut *strategy, |i, _, _| {
                            hits[i] += 1;
                        });
                        assert_exact_cover(
                            &hits,
                            &format!("{policy:?} / {kind:?} / seed {seed} / {workers} workers"),
                        );
                    }
                }
            }
        }
    }

    /// Steal-heavy really does force the favourite through the steal
    /// path: it must record successful steals while other ranks still
    /// hold untouched static blocks.
    #[test]
    fn steal_heavy_schedule_forces_steals() {
        let n = 64;
        let d = StealingDispenser::new(n, 4, 1);
        let mut strategy = StealHeavy::new(2);
        let mut hits = vec![0u32; n];
        virtual_drain(&d, 4, &mut strategy, |i, _, _| hits[i] += 1);
        let stats = d.steal_stats().unwrap();
        assert!(stats[2].succeeded > 0, "favourite never stole: {stats:?}");
        // and nothing was lost or duplicated while it raided the others
        assert_exact_cover(&hits, "steal-heavy over stealing dispenser");
    }

    /// A starved worker that wakes up last must still find its static
    /// block (or what the thieves left of it) accounted for exactly once.
    #[test]
    fn starved_worker_sees_consistent_remains() {
        for seed in 0..32u64 {
            let n = 97;
            let mut hits = vec![0u32; n];
            let mut strategy = StarveOne::seeded(seed, 4);
            virtual_for_range(
                n,
                Schedule::NonmonotonicDynamic(2),
                4,
                &mut strategy,
                |i, _, _| hits[i] += 1,
            );
            assert_exact_cover(&hits, &format!("starve-one seed {seed}"));
        }
    }

    /// Same seed ⇒ same trace, different seed ⇒ (almost surely) a
    /// different trace: the replay contract of the executor as a whole.
    #[test]
    fn traces_replay_from_their_seed() {
        let trace = |seed: u64| {
            let mut s = RandomWalk::seeded(seed);
            virtual_for_range(200, Schedule::Dynamic(3), 4, &mut s, |_, _, _| {})
        };
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    fn virtual_tiles_visit_every_tile_once() {
        let grid = TileGrid::new(50, 30, 16, 8).unwrap();
        let mut seen = vec![0u32; grid.len()];
        let mut s = RandomWalk::seeded(42);
        virtual_for_tiles(&grid, Schedule::Guided(1), 3, &mut s, |t, _, _| {
            seen[grid.linear_index(t.tx, t.ty)] += 1;
        });
        assert_exact_cover(&seen, "virtual_for_tiles");
    }

    #[test]
    fn virtual_taskgraph_is_topological_for_all_seeds() {
        let grid = TileGrid::square(40, 10).unwrap();
        let g = TaskGraph::down_right_wavefront(&grid);
        let reach = Reachability::of(&g);
        for seed in 0..32u64 {
            let mut s = RandomWalk::seeded(seed);
            let order = virtual_taskgraph(&g, 4, &mut s, |_, _| {}).unwrap();
            assert_eq!(order.len(), g.len());
            let mut pos = vec![usize::MAX; g.len()];
            for (i, &(t, _)) in order.iter().enumerate() {
                pos[t] = i;
            }
            for a in 0..g.len() {
                for b in 0..g.len() {
                    if reach.precedes(a, b) {
                        assert!(
                            pos[a] < pos[b],
                            "seed {seed}: {a} must precede {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn virtual_taskgraph_detects_cycles() {
        let mut g = TaskGraph::new(3);
        g.add_dep(0, 1);
        g.add_dep(1, 2);
        g.add_dep(2, 0);
        let mut s = RoundRobin::new();
        assert!(virtual_taskgraph(&g, 2, &mut s, |_, _| {}).is_err());
    }

    #[test]
    fn deque_taskgraph_is_topological_and_replayable() {
        let grid = TileGrid::square(32, 8).unwrap();
        let g = TaskGraph::down_right_wavefront(&grid);
        let reach = Reachability::of(&g);
        for seed in 0..8u64 {
            let mut s = RandomWalk::seeded(seed);
            let (order, _) = virtual_deque_taskgraph(&g, 4, &mut s, |_, _| {}).unwrap();
            assert_eq!(order.len(), g.len());
            let mut pos = vec![usize::MAX; g.len()];
            for (i, &(t, _)) in order.iter().enumerate() {
                pos[t] = i;
            }
            for a in 0..g.len() {
                for b in 0..g.len() {
                    if reach.precedes(a, b) {
                        assert!(pos[a] < pos[b], "seed {seed}: {a} must precede {b}");
                    }
                }
            }
            // Replay contract: same seed, same trace.
            let mut s2 = RandomWalk::seeded(seed);
            let (order2, _) = virtual_deque_taskgraph(&g, 4, &mut s2, |_, _| {}).unwrap();
            assert_eq!(order, order2, "seed {seed} did not replay");
        }
    }

    #[test]
    fn deque_taskgraph_steal_heavy_steals_without_losing_tasks() {
        let grid = TileGrid::square(24, 4).unwrap();
        let g = TaskGraph::down_right_wavefront(&grid);
        let mut s = StealHeavy::new(1);
        let mut hits = vec![0u32; g.len()];
        let (order, steals) = virtual_deque_taskgraph(&g, 4, &mut s, |t, _| hits[t] += 1).unwrap();
        assert_eq!(order.len(), g.len());
        assert!(steals > 0, "steal-heavy schedule never exercised the steal path");
        assert_exact_cover(&hits, "deque taskgraph under steal-heavy");
    }

    #[test]
    fn deque_taskgraph_detects_cycles() {
        let mut g = TaskGraph::new(3);
        g.add_dep(0, 1);
        g.add_dep(1, 2);
        g.add_dep(2, 0);
        let mut s = RoundRobin::new();
        assert!(virtual_deque_taskgraph(&g, 2, &mut s, |_, _| {}).is_err());
    }

    #[test]
    fn region_protocol_counts_panics_per_region_for_all_strategies() {
        // Region 1 has two planned panics, region 2 none, region 3 one:
        // a stale read (the S1 bug) shows up as region 2 observing 2.
        let plan = |seq: u64, rank: WorkerId| match seq {
            1 => rank == 0 || rank == 2,
            3 => rank == 1,
            _ => false,
        };
        for kind in StrategyKind::all() {
            for seed in 0..8u64 {
                // Model actors = workers + master, so build for workers+1.
                let mut s = kind.build(seed, 4);
                let observed = virtual_region_protocol(3, 3, plan, &mut *s);
                assert_eq!(
                    observed,
                    vec![2, 0, 1],
                    "{kind:?} seed {seed}: stale or lost panic count"
                );
            }
        }
    }

    #[test]
    fn region_protocol_single_worker_and_no_regions() {
        let mut s = RoundRobin::new();
        assert_eq!(virtual_region_protocol(0, 1, |_, _| false, &mut s), vec![]);
        let mut s = RoundRobin::new();
        assert_eq!(
            virtual_region_protocol(5, 1, |seq, _| seq % 2 == 1, &mut s),
            vec![1, 0, 1, 0, 1]
        );
    }

    #[test]
    fn virtual_pipeline_ordered_emits_in_frame_order() {
        use crate::skeleton::{PipeShape, PipeStage};
        let shape = PipeShape::new(vec![
            PipeStage::farm(3),
            PipeStage::serial(),
        ]);
        for seed in 0..8u64 {
            let mut s = RandomWalk::seeded(seed);
            let v = virtual_pipeline(&shape, 20, 3, true, &mut s).unwrap();
            assert_eq!(v.emitted, (0..20).collect::<Vec<_>>(), "seed {seed}");
            assert_eq!(v.order.len(), 20 * 2);
        }
    }

    #[test]
    fn virtual_pipeline_unordered_is_a_permutation() {
        use crate::skeleton::{PipeShape, PipeStage};
        let shape = PipeShape::new(vec![PipeStage::farm(4), PipeStage::farm(2)]);
        let mut s = RandomWalk::seeded(5);
        let v = virtual_pipeline(&shape, 30, 4, false, &mut s).unwrap();
        let mut sorted = v.emitted.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<_>>());
        assert_eq!(v.max_reorder_depth, 0, "unordered mode has no reorder buffer");
    }

    #[test]
    fn virtual_farm_covers_and_replays() {
        for ordered in [true, false] {
            let mut s = RandomWalk::seeded(11);
            let v = virtual_farm(33, 4, ordered, &mut s);
            let mut sorted = v.emitted.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..33).collect::<Vec<_>>());
            if ordered {
                assert_eq!(v.emitted, sorted);
            }
            let mut s2 = RandomWalk::seeded(11);
            assert_eq!(virtual_farm(33, 4, ordered, &mut s2), v, "no replay");
        }
    }

    #[test]
    fn virtual_chan_single_producer_single_consumer_is_fifo() {
        let mut s = RoundRobin::new();
        let v = virtual_chan(1, 1, 4, 32, false, &mut s);
        check_chan_oracle(&v, 1, 32).unwrap();
        assert!(v.max_occupancy <= 4);
        // round-robin alternates producer/consumer steps, so the ring
        // never fills beyond a couple of items
        assert!(v.max_occupancy >= 1);
    }

    #[test]
    fn virtual_chan_backpressure_shows_as_full_stalls() {
        // Starve the consumer (actor 1): the producer runs alone until
        // the cap-1 ring fills, so it must park on every publish.
        let mut s = StealHeavy::new(0);
        let v = virtual_chan(1, 1, 1, 16, false, &mut s);
        check_chan_oracle(&v, 1, 16).unwrap();
        assert_eq!(v.max_occupancy, 1);
        assert!(v.full_stalls >= 15, "cap-1 ring must stall: {v:?}");
    }

    #[test]
    fn virtual_chan_replays_from_its_seed() {
        for kind in StrategyKind::all() {
            let mut a = kind.build(7, 5);
            let mut b = kind.build(7, 5);
            assert_eq!(
                virtual_chan(2, 3, 2, 20, false, &mut *a),
                virtual_chan(2, 3, 2, 20, false, &mut *b),
                "{kind:?}: run did not replay from its seed"
            );
        }
    }

    #[test]
    fn virtual_chan_oracle_rejects_handmade_corruption() {
        let mut s = RoundRobin::new();
        let good = virtual_chan(2, 1, 4, 8, false, &mut s);
        check_chan_oracle(&good, 2, 8).unwrap();

        let mut lost = good.clone();
        lost.popped.pop();
        assert!(check_chan_oracle(&lost, 2, 8).is_err(), "lost item missed");

        let mut dup = good.clone();
        let first = dup.popped[0];
        dup.popped[1] = first;
        assert!(check_chan_oracle(&dup, 2, 8).is_err(), "duplicate missed");

        let mut reordered = good.clone();
        // swap a producer's first two items in pop order
        let idx: Vec<usize> = reordered
            .popped
            .iter()
            .enumerate()
            .filter(|(_, &(p, _))| p == 0)
            .map(|(i, _)| i)
            .collect();
        reordered.popped.swap(idx[0], idx[1]);
        assert!(
            check_chan_oracle(&reordered, 2, 8).is_err(),
            "per-producer reorder missed"
        );

        let mut torn = good;
        torn.popped[3] = (0, u64::MAX);
        assert!(check_chan_oracle(&torn, 2, 8).is_err(), "torn read missed");
    }

    #[test]
    fn reachability_matches_hand_computed_diamond() {
        // 0 -> {1, 2} -> 3
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1);
        g.add_dep(0, 2);
        g.add_dep(1, 3);
        g.add_dep(2, 3);
        let r = Reachability::of(&g);
        assert!(r.precedes(0, 1) && r.precedes(0, 2) && r.precedes(0, 3));
        assert!(r.precedes(1, 3) && r.precedes(2, 3));
        assert!(!r.precedes(1, 2) && !r.precedes(2, 1));
        assert!(!r.precedes(3, 0) && !r.precedes(1, 0));
    }
}
