//! Streaming-skeleton shapes compiled to task-graph node generators.
//!
//! `ezp-stream`'s pipeline and farm skeletons do not get their own
//! scheduler: a skeleton over a window of frames *compiles down* to a
//! [`TaskGraph`] whose nodes are `(frame, stage)` units, and the
//! existing deque executor ([`TaskGraph::run_probed`]) — Chase-Lev
//! deques, steal path, ParkLot idling — does the actual scheduling.
//! This module is the compiler: it turns a [`PipeShape`] (per-stage
//! replication width and bounded input buffers) into dependency edges.
//!
//! Three edge families encode the streaming semantics structurally, so
//! backpressure and ordering need no runtime channel machinery:
//!
//! * **data** — `(f, s-1) → (f, s)`: a frame flows through stages in
//!   order;
//! * **width** — `(f - w_s, s) → (f, s)`: at most `w_s` frames occupy
//!   stage `s` concurrently. `w_s = 1` serializes the stage in frame
//!   order, which is what makes *stateful* stages (frame differencing)
//!   legal: successive invocations are ordered by a dependency edge,
//!   i.e. by happens-before;
//! * **capacity** — `(f - c_s, s) → (f, s-1)`: frame `f` may only
//!   *start* stage `s-1` once frame `f - c_s` has *left* stage `s`, so
//!   at most `c_s` frames sit between the two stages (the bounded
//!   inter-stage buffer, including frames in service). A slow stage
//!   therefore stalls its upstream — backpressure as graph structure.
//!
//! Every edge strictly increases the frame-major node index
//! `f * stages + s` (data: `+1`; width: `+w_s * stages`; capacity:
//! `+c_s * stages - 1`, positive because `c_s >= 1` and capacity edges
//! only exist for `stages >= 2`), so the generated graph is acyclic
//! *by construction* — bounded stages cannot deadlock, a fact the
//! `ezp-check` sweep (`virtual_pipeline` under the starve-one
//! strategy) pins at the schedule level.

use crate::taskgraph::TaskGraph;
use ezp_core::kernel::EdgeKind;

/// Default bounded-buffer capacity between stages.
pub const DEFAULT_CAPACITY: usize = 4;

/// One pipeline stage: how many frames may occupy it concurrently
/// (`width`, the farm replication factor) and how many frames may sit
/// between the previous stage and this one (`capacity`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipeStage {
    /// Concurrent frames inside the stage (1 = serial, in frame order).
    pub width: usize,
    /// Bounded input-buffer depth ahead of the stage (≥ 1).
    pub capacity: usize,
}

impl PipeStage {
    /// A serial stage (width 1) with the default buffer capacity.
    pub fn serial() -> Self {
        PipeStage {
            width: 1,
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// A farm stage replicated `width` times, default buffer capacity.
    pub fn farm(width: usize) -> Self {
        PipeStage {
            width: width.max(1),
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// The same stage with a bounded input buffer of `capacity` frames
    /// (clamped to ≥ 1).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }
}

/// The compile-time shape of a pipeline: an ordered list of stages.
#[derive(Clone, Debug)]
pub struct PipeShape {
    stages: Vec<PipeStage>,
}

impl PipeShape {
    /// Builds a shape, clamping every width and capacity to at least 1
    /// (a zero-capacity buffer would deadlock the stream; a
    /// zero-width stage could never run).
    pub fn new(stages: impl IntoIterator<Item = PipeStage>) -> Self {
        let stages: Vec<PipeStage> = stages
            .into_iter()
            .map(|s| PipeStage {
                width: s.width.max(1),
                capacity: s.capacity.max(1),
            })
            .collect();
        assert!(!stages.is_empty(), "a pipeline needs at least one stage");
        PipeShape { stages }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// The stage descriptors.
    pub fn stage(&self, s: usize) -> PipeStage {
        self.stages[s]
    }

    /// Node id of `(frame, stage)` — frame-major.
    pub fn node(&self, frame: usize, stage: usize) -> usize {
        frame * self.stages.len() + stage
    }

    /// Frame of a node id.
    pub fn frame_of(&self, node: usize) -> usize {
        node / self.stages.len()
    }

    /// Stage of a node id.
    pub fn stage_of(&self, node: usize) -> usize {
        node % self.stages.len()
    }

    /// True when `from → to` is a *data* edge (same frame, next stage)
    /// rather than a width/capacity (backpressure) edge. The streaming
    /// engine uses this to classify why a node's last dependency
    /// released: a non-data final release means the frame was
    /// data-ready but waited on buffer space — a backpressure stall.
    pub fn is_data_edge(&self, from: usize, to: usize) -> bool {
        to == from + 1 && self.frame_of(from) == self.frame_of(to)
    }

    /// Compiles the shape over `frames` frames into a [`TaskGraph`]
    /// with the data/width/capacity edge families described in the
    /// module docs. The graph is acyclic by construction.
    pub fn graph(&self, frames: usize) -> TaskGraph {
        let s_count = self.stages.len();
        let mut g = TaskGraph::new(frames * s_count);
        for f in 0..frames {
            for (s, st) in self.stages.iter().enumerate() {
                let id = self.node(f, s);
                // data: the frame flows stage to stage
                if s > 0 {
                    g.add_dep_kind(self.node(f, s - 1), id, EdgeKind::Data);
                }
                // width: at most `width` frames inside the stage
                if f >= st.width {
                    g.add_dep_kind(self.node(f - st.width, s), id, EdgeKind::Width);
                }
                // capacity: bounded buffer between s-1 and s
                if s > 0 && f >= st.capacity {
                    g.add_dep_kind(
                        self.node(f - st.capacity, s),
                        self.node(f, s - 1),
                        EdgeKind::Capacity,
                    );
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::vec_of;

    #[test]
    fn node_indexing_round_trips() {
        let shape = PipeShape::new([PipeStage::farm(2), PipeStage::serial(), PipeStage::farm(4)]);
        for f in 0..7 {
            for s in 0..3 {
                let id = shape.node(f, s);
                assert_eq!(shape.frame_of(id), f);
                assert_eq!(shape.stage_of(id), s);
            }
        }
        assert!(shape.is_data_edge(shape.node(2, 0), shape.node(2, 1)));
        assert!(!shape.is_data_edge(shape.node(1, 1), shape.node(3, 1)));
    }

    #[test]
    fn serial_stage_orders_frames() {
        // width-1 stage: frame f's stage-1 node depends on frame f-1's
        let shape = PipeShape::new([PipeStage::farm(4), PipeStage::serial()]);
        let g = shape.graph(3);
        let prev = shape.node(0, 1);
        let next = shape.node(1, 1);
        assert!(g.dependents(prev).contains(&next));
    }

    #[test]
    fn capacity_edges_bound_the_buffer() {
        let shape = PipeShape::new([
            PipeStage {
                width: 4,
                capacity: 4,
            },
            PipeStage {
                width: 4,
                capacity: 2,
            },
        ]);
        let g = shape.graph(6);
        // frame 5 may not start stage 0 before frame 3 left stage 1
        assert!(g.dependents(shape.node(3, 1)).contains(&shape.node(5, 0)));
        // but the frame within the window has no such edge
        assert!(!g.dependents(shape.node(4, 1)).contains(&shape.node(5, 0)));
    }

    #[test]
    fn generated_graphs_are_acyclic_and_ordered() {
        let shape = PipeShape::new([PipeStage::farm(2), PipeStage::serial(), PipeStage::farm(3)]);
        let g = shape.graph(10);
        let mut order = Vec::new();
        g.run_seq(|t, _| order.push(t)).expect("pipeline graph must be acyclic");
        assert_eq!(order.len(), 30);
        // serial stage 1 runs in frame order
        let stage1: Vec<usize> = order
            .iter()
            .filter(|&&t| shape.stage_of(t) == 1)
            .map(|&t| shape.frame_of(t))
            .collect();
        assert_eq!(stage1, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn edge_families_are_tagged() {
        let shape = PipeShape::new([
            PipeStage::farm(2).capacity(2),
            PipeStage::serial().capacity(2),
        ]);
        let g = shape.graph(4);
        let mut kinds = std::collections::BTreeMap::new();
        g.for_each_edge(|f, t, k| {
            kinds.insert((f, t), k);
        });
        // data: frame 1 flows stage 0 -> stage 1
        assert_eq!(kinds[&(shape.node(1, 0), shape.node(1, 1))], EdgeKind::Data);
        // width: the serial stage orders frame 1 after frame 0
        assert_eq!(kinds[&(shape.node(0, 1), shape.node(1, 1))], EdgeKind::Width);
        // capacity: frame 2 may not start stage 0 before frame 0 left stage 1
        assert_eq!(kinds[&(shape.node(0, 1), shape.node(2, 0))], EdgeKind::Capacity);
    }

    #[test]
    fn zero_width_and_capacity_are_clamped() {
        let shape = PipeShape::new([PipeStage {
            width: 0,
            capacity: 0,
        }]);
        assert_eq!(shape.stage(0).width, 1);
        assert_eq!(shape.stage(0).capacity, 1);
        shape.graph(4).run_seq(|_, _| {}).unwrap();
    }

    ezp_proptest! {
        #![cases(32)]

        fn prop_random_shapes_compile_acyclic(
            frames in 0usize..20,
            widths in vec_of(1usize..5, 1..5),
            caps in vec_of(1usize..4, 1..5),
        ) {
            let stages: Vec<PipeStage> = widths
                .iter()
                .zip(caps.iter().cycle())
                .map(|(&w, &c)| PipeStage { width: w, capacity: c })
                .collect();
            let shape = PipeShape::new(stages);
            let g = shape.graph(frames);
            let mut n = 0usize;
            g.run_seq(|_, _| n += 1).expect("acyclic by construction");
            assert_eq!(n, frames * shape.stages());
        }
    }
}
