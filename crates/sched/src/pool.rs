//! A persistent worker-thread pool executing parallel regions.
//!
//! `WorkerPool::run(f)` is `#pragma omp parallel`: every worker invokes
//! `f(rank)` once, and `run` returns when all of them are done. Workers
//! are parked between regions, so repeated parallel loops (one per
//! iteration of a kernel, like Fig. 2's `omp parallel` around the
//! iteration loop) do not pay thread creation costs.
//!
//! ## Hot-path synchronization
//!
//! Launching and closing a region is lock-free: a seqlock-style epoch
//! protocol replaces the mutex+condvar round trip an earlier version
//! paid on both sides of every region. Mutexes survive only inside the
//! [`ParkLot`] parking fallback, entered when a spin phase did not see
//! progress — a genuinely idle thread blocks in the kernel instead of
//! burning a core.
//!
//! ## Safety architecture
//!
//! The pool hands workers a borrowed closure without boxing per region.
//! The closure reference is type- and lifetime-erased into a raw pointer
//! while the region runs; soundness rests on a strict protocol:
//!
//! 1. `run` resets `panics`/`remaining` and writes the erased pointer
//!    into the job cell with a *plain* store. This is data-race-free
//!    because the pool is quiescent: `run` previously observed
//!    `done_seq == seq` (SeqCst), which happens-after the last worker's
//!    `remaining` decrement, which happens-after every worker's read of
//!    the cell (AcqRel chain through `remaining`). No worker touches the
//!    cell again until the next epoch is published.
//! 2. `run` publishes the region by storing the new sequence number to
//!    `job_seq` (SeqCst) and notifying the idle [`ParkLot`]. Workers
//!    spin-then-park on `job_seq`; observing the bump (SeqCst) makes the
//!    cell write visible, so they copy the pointer and run the closure.
//! 3. Each worker decrements `remaining` (AcqRel) when done; the last
//!    one stores the sequence number to `done_seq` (SeqCst) and notifies
//!    the done [`ParkLot`].
//! 4. `run` does not return until it observes `done_seq == seq`, so the
//!    closure cannot be dropped (nor its borrows invalidated) while any
//!    worker can still dereference the pointer, and every write the
//!    closure made is visible to the caller.
//!
//! Worker panics are caught, counted in `panics`, and re-raised from
//! `run` as a single panic naming the region, so a crashing tile
//! function cannot deadlock the pool. The counter is reset by `run`
//! *before* publishing the next epoch and read *after* observing
//! completion, both on the SeqCst spine above — a panic in region N is
//! reported by region N and can never leak into region N+1.

use crate::park::ParkLot;
use std::cell::UnsafeCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The job a region runs: type-erased `&dyn Fn(usize)`.
#[derive(Clone, Copy)]
struct ErasedJob {
    /// Raw wide pointer to the region closure.
    ptr: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointer is only dereferenced while `run` keeps the original
// closure alive (see protocol above), and the pointee is `Sync`.
unsafe impl Send for ErasedJob {}

/// The seqlock payload: the current region's erased closure. Written
/// only by `run` while the pool is quiescent, read by workers only
/// after they observe the matching `job_seq` bump.
struct JobCell(UnsafeCell<Option<ErasedJob>>);

// SAFETY: accesses are ordered by the epoch protocol documented in the
// module header — the writer is quiescent-exclusive, readers are
// epoch-gated — so the cell is never accessed concurrently.
unsafe impl Sync for JobCell {}

/// Cumulative blocking-fallback activity of a pool (all regions so
/// far): how often threads had to spin or actually park instead of
/// finding the epoch already advanced. Exposed so the observability
/// layer can report the cost of region launch/close synchronization
/// (see `pool_parks` / `pool_spins` in docs/observability.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolSyncStats {
    /// Times a thread (worker or the caller of `run`) blocked on a
    /// condvar waiting for an epoch to advance.
    pub parks: u64,
    /// Spin-phase iterations executed while waiting for an epoch.
    pub spins: u64,
    /// Wall time spent in the park (slow) path, in nanoseconds. This is
    /// the `cause="pool_park"` slice of idle-cause attribution: time a
    /// thread was blocked in the kernel between regions rather than
    /// spinning or working.
    pub park_ns: u64,
}

struct PoolState {
    /// Published region sequence number (0 = no region yet).
    job_seq: AtomicU64,
    /// The erased closure of the published region.
    job: JobCell,
    /// Workers still running the current region.
    remaining: AtomicUsize,
    /// Last fully completed region sequence number.
    done_seq: AtomicU64,
    /// Number of workers that panicked in the current region.
    panics: AtomicUsize,
    /// Set when the pool is shutting down (SeqCst, before `idle.notify`).
    shutdown: AtomicBool,
    /// Workers wait here for the next epoch (or shutdown).
    idle: ParkLot,
    /// `run` waits here for region completion.
    done: ParkLot,
    // The three stat fields are counter-only: cumulative tallies whose
    // value is the entire payload.
    /// Cumulative parks across all threads and regions.
    stat_parks: AtomicU64,
    /// Cumulative spin iterations across all threads and regions.
    stat_spins: AtomicU64,
    /// Cumulative nanoseconds spent parked across all threads/regions.
    stat_park_ns: AtomicU64,
}

impl PoolState {
    fn record_wait(&self, stats: crate::park::WaitStats) {
        // ORDERING: counter-only. The spin/park totals feed the stats
        // report; nothing synchronizes on them, so Relaxed increments
        // suffice (monotonicity is all the readers rely on).
        if stats.spins > 0 {
            self.stat_spins.fetch_add(stats.spins, Ordering::Relaxed);
        }
        if stats.parks > 0 {
            self.stat_parks.fetch_add(stats.parks, Ordering::Relaxed);
        }
        if stats.park_ns > 0 {
            self.stat_park_ns.fetch_add(stats.park_ns, Ordering::Relaxed);
        }
    }
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Logical width: how many ranks a region dispatches work to.
    /// Always `1..=threads`; ranks `>= width` still wake for the epoch
    /// (the `remaining` accounting covers every worker) but return
    /// immediately, so one pool can serve jobs narrower than itself —
    /// the property `PoolMux` leases rely on.
    width: usize,
    next_seq: u64,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (ranks `0..threads`).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one worker");
        let state = Arc::new(PoolState {
            job_seq: AtomicU64::new(0),
            job: JobCell(UnsafeCell::new(None)),
            remaining: AtomicUsize::new(0),
            done_seq: AtomicU64::new(0),
            panics: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: ParkLot::new(),
            done: ParkLot::new(),
            stat_parks: AtomicU64::new(0),
            stat_spins: AtomicU64::new(0),
            stat_park_ns: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|rank| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("ezp-worker-{rank}"))
                    .spawn(move || worker_loop(rank, state))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            state,
            handles,
            threads,
            width: threads,
            next_seq: 0,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Logical width: the number of ranks [`WorkerPool::run`] hands work
    /// to. Defaults to [`WorkerPool::threads`]; narrowed by
    /// [`WorkerPool::set_width`] when a wide shared pool runs a job that
    /// asked for fewer workers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Limits subsequent regions to `n` working ranks (clamped to
    /// `1..=threads`). Ranks `>= n` still participate in the epoch
    /// protocol (wake, decrement `remaining`) but run no user code, so
    /// the seqlock launch/close argument is untouched. Schedulers that
    /// size their dispensers off the pool must read
    /// [`WorkerPool::width`], not [`WorkerPool::threads`].
    pub fn set_width(&mut self, n: usize) {
        self.width = n.clamp(1, self.threads);
    }

    /// Number of parallel regions this pool has executed — a cheap
    /// sanity figure for the stats report (every `parallel for` and
    /// task-graph run is one region).
    pub fn regions_run(&self) -> u64 {
        self.next_seq
    }

    /// Cumulative spin/park counts of the epoch protocol (all regions
    /// so far). Deltas across a region quantify how much launching and
    /// closing it had to block.
    pub fn sync_stats(&self) -> PoolSyncStats {
        // ORDERING: counter-only snapshot of the Relaxed totals above;
        // the two loads need no ordering between them (the report is
        // explicitly approximate while a region is in flight).
        PoolSyncStats {
            parks: self.state.stat_parks.load(Ordering::Relaxed),
            spins: self.state.stat_spins.load(Ordering::Relaxed),
            park_ns: self.state.stat_park_ns.load(Ordering::Relaxed),
        }
    }

    /// Runs one parallel region: every rank `< width()` executes
    /// `f(rank)` exactly once; returns when all workers are done.
    ///
    /// # Panics
    ///
    /// Panics if any worker panicked inside `f` (after the region has
    /// fully completed, so the pool stays usable).
    pub fn run(&mut self, f: impl Fn(usize) + Sync) {
        if self.width == self.threads {
            self.dispatch(&f);
        } else {
            let width = self.width;
            self.dispatch(&|rank| {
                if rank < width {
                    f(rank);
                }
            });
        }
    }

    /// Dispatches one epoch to every worker (the full seqlock protocol;
    /// see the module docs). Width limiting happens in the wrappers —
    /// this layer always involves all `threads` workers so `remaining`
    /// accounting stays uniform.
    fn dispatch(&mut self, f: &(dyn Fn(usize) + Sync)) {
        self.next_seq += 1;
        let seq = self.next_seq;
        let state = &*self.state;
        // ORDERING: synchronizing via the spine, not locally — these
        // Relaxed resets are ordered before any worker activity of this
        // region by the SeqCst `job_seq` publication below (workers only
        // act after observing the epoch bump).
        state.panics.store(0, Ordering::Relaxed);
        state.remaining.store(self.threads, Ordering::Relaxed);
        let ptr: *const (dyn Fn(usize) + Sync) = f;
        // SAFETY: the transmute only erases the pointee's lifetime to
        // `'static`. The pointee outlives every dereference because `f`
        // lives in the caller's frame and this function blocks until
        // `done_seq == seq` (protocol step 4), which happens-after the
        // last worker's use of the pointer — so no worker can
        // dereference it after `f` is dropped.
        let ptr: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(ptr) };
        // SAFETY: the pool is quiescent (protocol step 1) — no worker
        // reads the cell until the `job_seq` store below.
        unsafe { *state.job.0.get() = Some(ErasedJob { ptr }) };
        state.job_seq.store(seq, Ordering::SeqCst);
        state.idle.notify();
        // Wait for completion: spin, then park on the done lot.
        let wait = state
            .done
            .wait_until(|| state.done_seq.load(Ordering::SeqCst) == seq);
        state.record_wait(wait);
        let panics = state.panics.load(Ordering::SeqCst);
        if panics > 0 {
            panic!("{panics} worker(s) panicked in parallel region {seq}");
        }
    }

    /// Runs a region over exactly `n` conceptual workers even when the
    /// pool (or its current width) is larger or smaller: ranks `>= n`
    /// return immediately. Convenient for `--threads` smaller than the
    /// pool.
    ///
    /// `n == 0` is a no-op: no region is dispatched, so `regions_run`
    /// and the per-region perf counters are untouched.
    pub fn run_limited(&mut self, n: usize, f: impl Fn(usize) + Sync) {
        let n = n.min(self.width);
        if n == 0 {
            return;
        }
        self.dispatch(&|rank| {
            if rank < n {
                f(rank);
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // SeqCst store before notify: a worker is either spinning (sees
        // the flag on its next check) or parked with `shutdown` in its
        // wait condition (the ParkLot protocol guarantees the wakeup).
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.idle.notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rank: usize, state: Arc<PoolState>) {
    let mut last_seq = 0u64;
    loop {
        // Wait for a region newer than the last one we ran, or shutdown.
        let wait = state.idle.wait_until(|| {
            state.shutdown.load(Ordering::SeqCst) || state.job_seq.load(Ordering::SeqCst) > last_seq
        });
        state.record_wait(wait);
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // `job_seq` can only have advanced by exactly one: the next
        // region is not published until every worker (us included)
        // completed the previous one.
        last_seq = state.job_seq.load(Ordering::SeqCst);
        // SAFETY: gated on the epoch bump (protocol step 2); `run`
        // keeps the closure alive until we decrement `remaining`.
        let job = unsafe { (*state.job.0.get()).expect("epoch published without a job") };
        // SAFETY: `job.ptr` points at the closure `run` owns for this
        // epoch; it stays valid until our `remaining` decrement below,
        // which is the last thing this iteration does with it.
        let f = unsafe { &*job.ptr };
        if std::panic::catch_unwind(AssertUnwindSafe(|| f(rank))).is_err() {
            state.panics.fetch_add(1, Ordering::SeqCst);
        }
        // ORDERING: synchronizing. AcqRel makes each worker's closure
        // effects visible to whichever worker decrements last (Acquire
        // pairs with every earlier Release decrement), and that last
        // worker's SeqCst `done_seq` store releases the lot to `run`.
        if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last worker out closes the region.
            state.done_seq.store(last_seq, Ordering::SeqCst);
            state.done.notify();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_rank_runs_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let hits = [const { AtomicU64::new(0) }; 4];
        pool.run(|rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn regions_are_reusable() {
        let mut pool = WorkerPool::new(3);
        let count = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn borrows_are_visible_after_run() {
        let mut pool = WorkerPool::new(4);
        let data: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run(|rank| data[rank].store(rank as u64 + 1, Ordering::Relaxed));
        let values: Vec<u64> = data.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn single_worker_pool_works() {
        let mut pool = WorkerPool::new(1);
        let count = AtomicU64::new(0);
        pool.run(|rank| {
            assert_eq!(rank, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_limited_skips_high_ranks() {
        let mut pool = WorkerPool::new(4);
        let hits = [const { AtomicU64::new(0) }; 4];
        pool.run_limited(2, |rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(hits[2].load(Ordering::Relaxed), 0);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn run_limited_zero_is_a_no_op() {
        let mut pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        pool.run_limited(0, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(pool.regions_run(), 0, "no region may be dispatched for n == 0");
        // and the pool still works afterwards
        pool.run_limited(4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(pool.regions_run(), 1);
    }

    #[test]
    fn width_limits_ranks_and_is_reversible() {
        let mut pool = WorkerPool::new(4);
        assert_eq!(pool.width(), 4);
        pool.set_width(2);
        let hits = [const { AtomicU64::new(0) }; 4];
        pool.run(|rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(hits[2].load(Ordering::Relaxed), 0);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
        // widen back: all ranks participate again
        pool.set_width(4);
        pool.run(|rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert!(h.load(Ordering::Relaxed) >= 1);
        }
        assert_eq!(hits[2].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn width_is_clamped_to_pool_size() {
        let mut pool = WorkerPool::new(2);
        pool.set_width(9);
        assert_eq!(pool.width(), 2);
        pool.set_width(0);
        assert_eq!(pool.width(), 1);
        let count = AtomicU64::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_limited_respects_width() {
        let mut pool = WorkerPool::new(4);
        pool.set_width(2);
        let count = AtomicU64::new(0);
        pool.run_limited(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2, "run_limited may not exceed width");
    }

    #[test]
    fn worker_panic_is_propagated_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|rank| {
                if rank == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // pool must still work after a panicked region
        let count = AtomicU64::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panic_in_region_n_is_not_observed_by_region_n_plus_one() {
        // Regression for the panic-accounting race: the reset and the
        // read of `panics` ride the epoch protocol's SeqCst spine, so a
        // panic in region N must be reported by region N exactly, and
        // the immediately following region must come up clean — over
        // many alternations, not just one.
        let mut pool = WorkerPool::new(3);
        for round in 0..25 {
            let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(|rank| {
                    if rank == round % 3 {
                        panic!("round {round}");
                    }
                });
            }));
            assert!(res.is_err(), "round {round}: panic was lost");
            // region N+1 must not observe region N's panic count
            let count = AtomicU64::new(0);
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 3, "round {round}");
        }
    }

    #[test]
    fn multiple_panics_in_one_region_are_all_counted() {
        let mut pool = WorkerPool::new(4);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|rank| {
                if rank < 3 {
                    panic!("boom {rank}");
                }
            });
        }));
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.starts_with("3 worker(s) panicked"), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(3);
        drop(pool); // must not hang
    }

    #[test]
    fn drop_joins_cleanly_after_regions() {
        // Shutdown must reach workers that are parked between regions.
        let mut pool = WorkerPool::new(3);
        pool.run(|_| {});
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(pool); // must not hang
    }

    #[test]
    fn sync_stats_accumulate_monotonically() {
        let mut pool = WorkerPool::new(2);
        let before = pool.sync_stats();
        for _ in 0..10 {
            pool.run(|_| {});
        }
        let after = pool.sync_stats();
        assert!(after.parks >= before.parks);
        assert!(after.spins >= before.spins);
    }
}
