//! A persistent worker-thread pool executing parallel regions.
//!
//! `WorkerPool::run(f)` is `#pragma omp parallel`: every worker invokes
//! `f(rank)` once, and `run` returns when all of them are done. Workers
//! are parked between regions, so repeated parallel loops (one per
//! iteration of a kernel, like Fig. 2's `omp parallel` around the
//! iteration loop) do not pay thread creation costs.
//!
//! ## Safety architecture
//!
//! The pool hands workers a borrowed closure without boxing per region.
//! The closure reference is type- and lifetime-erased into a raw pointer
//! while the region runs; soundness rests on a strict protocol:
//!
//! 1. `run` publishes the erased pointer under a mutex, then wakes workers;
//! 2. workers copy the pointer and the region sequence number, run the
//!    closure, then report completion;
//! 3. `run` does not return (and therefore the closure cannot be dropped
//!    or its borrows invalidated) until every worker has reported.
//!
//! Worker panics are caught, counted, and re-raised from `run` as a
//! single panic naming the region, so a crashing tile function cannot
//! deadlock the pool.

use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The job a region runs: type-erased `&dyn Fn(usize)`.
#[derive(Clone, Copy)]
struct ErasedJob {
    /// Raw wide pointer to the region closure.
    ptr: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointer is only dereferenced while `run` keeps the original
// closure alive (see protocol above), and the pointee is `Sync`.
unsafe impl Send for ErasedJob {}

struct PoolState {
    /// Current job and its sequence number (0 = no job yet).
    job: Mutex<(u64, Option<ErasedJob>)>,
    /// Signals workers that a new job (or shutdown) is available.
    job_ready: Condvar,
    /// Workers still running the current region.
    remaining: AtomicUsize,
    /// Signals `run` that the region is complete.
    region_done: Mutex<u64>,
    done_cv: Condvar,
    /// Number of workers that panicked in the current region.
    panics: AtomicUsize,
    /// Set when the pool is shutting down. Written under the `job` mutex
    /// so that workers waiting on `job_ready` cannot miss the wakeup.
    shutdown: std::sync::atomic::AtomicBool,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    state: Arc<PoolState>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    next_seq: u64,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (ranks `0..threads`).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one worker");
        let state = Arc::new(PoolState {
            job: Mutex::new((0, None)),
            job_ready: Condvar::new(),
            remaining: AtomicUsize::new(0),
            region_done: Mutex::new(0),
            done_cv: Condvar::new(),
            panics: AtomicUsize::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|rank| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("ezp-worker-{rank}"))
                    .spawn(move || worker_loop(rank, state))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            state,
            handles,
            threads,
            next_seq: 0,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of parallel regions this pool has executed — a cheap
    /// sanity figure for the stats report (every `parallel for` and
    /// task-graph run is one region).
    pub fn regions_run(&self) -> u64 {
        self.next_seq
    }

    /// Runs one parallel region: every worker executes `f(rank)` exactly
    /// once; returns when all are done.
    ///
    /// # Panics
    ///
    /// Panics if any worker panicked inside `f` (after the region has
    /// fully completed, so the pool stays usable).
    pub fn run(&mut self, f: impl Fn(usize) + Sync) {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.state.panics.store(0, Ordering::Relaxed);
        self.state.remaining.store(self.threads, Ordering::Release);
        // Erase the closure, including its lifetime: the pointee outlives
        // the region because this function owns `f` and blocks until every
        // worker reports done, so extending the pointer to `'static` is
        // sound under the protocol documented at the top of the module.
        let ptr: *const (dyn Fn(usize) + Sync) = &f;
        let ptr: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(ptr) };
        let erased = ErasedJob { ptr };
        {
            let mut job = self.state.job.lock().unwrap();
            *job = (seq, Some(erased));
            self.state.job_ready.notify_all();
        }
        // Wait for completion. Workers never panic while holding a pool
        // lock (the region closure runs under catch_unwind with no guard
        // live), so lock poisoning cannot occur and unwrap is safe.
        let mut done = self.state.region_done.lock().unwrap();
        while *done < seq {
            done = self.state.done_cv.wait(done).unwrap();
        }
        drop(done);
        let panics = self.state.panics.load(Ordering::Acquire);
        if panics > 0 {
            panic!("{panics} worker(s) panicked in parallel region {seq}");
        }
    }

    /// Runs a region over exactly `n` conceptual workers even when the
    /// pool is larger or smaller: ranks `>= n` return immediately.
    /// Convenient for `--threads` smaller than the pool.
    pub fn run_limited(&mut self, n: usize, f: impl Fn(usize) + Sync) {
        let n = n.min(self.threads);
        self.run(|rank| {
            if rank < n {
                f(rank);
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            // Hold the job mutex while flipping the flag: a worker is
            // either inside `job_ready.wait` (and gets the notify) or has
            // not re-checked the flag yet (and will see it set).
            let _guard = self.state.job.lock().unwrap();
            self.state.shutdown.store(true, Ordering::Release);
            self.state.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rank: usize, state: Arc<PoolState>) {
    let mut last_seq = 0u64;
    loop {
        // Wait for a job newer than the last one we ran, or shutdown.
        let job = {
            let mut guard = state.job.lock().unwrap();
            loop {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let (seq, job) = *guard;
                if seq > last_seq {
                    last_seq = seq;
                    break job.expect("job published without closure");
                }
                guard = state.job_ready.wait(guard).unwrap();
            }
        };
        // SAFETY: `run` keeps the closure alive until we report done.
        let f = unsafe { &*job.ptr };
        if std::panic::catch_unwind(AssertUnwindSafe(|| f(rank))).is_err() {
            state.panics.fetch_add(1, Ordering::AcqRel);
        }
        if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last worker out closes the region.
            let mut done = state.region_done.lock().unwrap();
            *done = last_seq;
            state.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_rank_runs_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let hits = [const { AtomicU64::new(0) }; 4];
        pool.run(|rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn regions_are_reusable() {
        let mut pool = WorkerPool::new(3);
        let count = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn borrows_are_visible_after_run() {
        let mut pool = WorkerPool::new(4);
        let data: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run(|rank| data[rank].store(rank as u64 + 1, Ordering::Relaxed));
        let values: Vec<u64> = data.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn single_worker_pool_works() {
        let mut pool = WorkerPool::new(1);
        let count = AtomicU64::new(0);
        pool.run(|rank| {
            assert_eq!(rank, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_limited_skips_high_ranks() {
        let mut pool = WorkerPool::new(4);
        let hits = [const { AtomicU64::new(0) }; 4];
        pool.run_limited(2, |rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(hits[2].load(Ordering::Relaxed), 0);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn worker_panic_is_propagated_and_pool_survives() {
        let mut pool = WorkerPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|rank| {
                if rank == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // pool must still work after a panicked region
        let count = AtomicU64::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(3);
        drop(pool); // must not hang
    }
}
