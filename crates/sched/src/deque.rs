//! A fixed-capacity work-stealing deque of task ids.
//!
//! The task-graph executor keeps one [`TaskDeque`] per worker: the
//! owner pushes newly-released dependents and pops them back LIFO
//! (depth-first, cache-warm), thieves steal FIFO from the opposite end
//! (breadth-first, grabbing the oldest — usually largest — subtree).
//! This is the Chase–Lev / Arora–Blumofe–Plaxton design, simplified by
//! two properties the task-graph use-case guarantees:
//!
//! * **Elements are plain `usize` task ids** stored in `AtomicUsize`
//!   slots — no boxed payloads, so a lost race on `steal` just discards
//!   a stale integer; there is no memory to reclaim and no ABA hazard.
//! * **Capacity is fixed up front** (a graph of `n` tasks can never
//!   hold more than `n` entries in any deque), so the buffer never
//!   grows and slots are recycled only after `top` has moved past them.
//!
//! All cross-thread transitions use `SeqCst`: the deque operates at
//! task granularity (thousands of ops per region, not billions), so
//! the cost of the strongest ordering is noise next to the mutex the
//! previous global ready queue took on *every* pop.
//!
//! **Calling protocol**: exactly one thread — the owner — may call
//! [`TaskDeque::push`] / [`TaskDeque::pop`] on a given deque at a time;
//! any number of threads may call [`TaskDeque::steal`] concurrently.
//! The task-graph executor guarantees this structurally (deque `r`
//! belongs to worker rank `r`). Violating it cannot corrupt memory
//! (every slot is an atomic) but can hand out a task twice — the same
//! rank-serial contract the [`Dispenser`](crate::Dispenser) trait
//! documents.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

/// Outcome of a [`TaskDeque::steal`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Stole this task id.
    Success(usize),
}

/// A fixed-capacity lock-free work-stealing deque (owner LIFO, thief
/// FIFO) over `usize` task ids.
pub struct TaskDeque {
    /// Owner end. Only the owner writes it (plain increments /
    /// decrements via store); thieves read it.
    bottom: AtomicIsize,
    /// Thief end. Advanced by CAS (thieves and the owner's last-element
    /// pop race here).
    top: AtomicIsize,
    /// Power-of-two ring of task-id slots. Slot contents are
    /// synchronizing via the spine, not locally (via-the-spine): the
    /// `top`/`bottom` Acquire/SeqCst protocol publishes each slot
    /// before a thief may read it, so the cells stay `Relaxed`.
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

impl TaskDeque {
    /// A deque holding at most `capacity` concurrent entries (rounded
    /// up to a power of two, minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        TaskDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// A racy size estimate: exact when quiescent, approximate under
    /// concurrency. Never negative.
    pub fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b.saturating_sub(t).max(0) as usize
    }

    /// Owner-only: pushes `task` on the LIFO end.
    ///
    /// # Panics
    ///
    /// Panics if the deque is full — the executor sizes each deque for
    /// the whole graph, so hitting this is a bug, not a load condition.
    pub fn push(&self, task: usize) {
        // ORDERING: counter-only (owner-private). Only the owner writes
        // `bottom`, so it reads its own last store; Relaxed is enough.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::SeqCst);
        assert!(
            (b - t) < self.buf.len() as isize,
            "TaskDeque overflow: capacity {} exhausted",
            self.buf.len()
        );
        // ORDERING: synchronizing via the spine, not locally — the slot
        // store is ordered before the SeqCst `bottom` publication below,
        // and a thief reads the slot only after observing that `bottom`,
        // so the Relaxed slot store is never read early.
        self.buf[b as usize & self.mask].store(task, Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible.
        self.bottom.store(b + 1, Ordering::SeqCst);
    }

    /// Owner-only: pops the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<usize> {
        // ORDERING: counter-only (owner-private read of `bottom`, same
        // argument as in `push`).
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // Reserve the slot first so a concurrent thief sees the deque
        // one shorter; the SeqCst store/load pair below makes the
        // reservation and the thief's `top` advance totally ordered.
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Deque was empty; undo the reservation.
            self.bottom.store(b + 1, Ordering::SeqCst);
            return None;
        }
        // ORDERING: counter-only (owner-private). The slot at `b` was
        // last written by our own `push`; thieves never write slots.
        let task = self.buf[b as usize & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            self.bottom.store(b + 1, Ordering::SeqCst);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Thief-safe: steals the oldest task (FIFO end). Any thread may
    /// call this concurrently.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Read the slot before claiming it; if the CAS below fails the
        // value is stale and simply discarded (plain integer, no ABA).
        // ORDERING: synchronizing via the spine, not locally — the SeqCst
        // `bottom` load above happens-after the owner's SeqCst publish of
        // `bottom`, which orders the owner's Relaxed slot store before
        // this Relaxed load; a stale value can only flow into a failing
        // CAS.
        let task = self.buf[t as usize & self.mask].load(Ordering::Relaxed);
        match self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Steal::Success(task),
            Err(_) => Steal::Retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn owner_lifo_order() {
        let d = TaskDeque::with_capacity(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn thief_fifo_order() {
        let d = TaskDeque::with_capacity(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.steal(), Steal::Success(2));
        assert_eq!(d.steal(), Steal::Success(3));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn owner_and_thief_split_the_deque() {
        let d = TaskDeque::with_capacity(8);
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Success(0)); // oldest
        assert_eq!(d.pop(), Some(3)); // newest
        assert_eq!(d.len_hint(), 2);
    }

    #[test]
    fn capacity_rounds_up_and_wraps() {
        let d = TaskDeque::with_capacity(3);
        assert_eq!(d.capacity(), 4);
        // cycle more items through than the capacity to exercise wrap
        for round in 0..5 {
            for i in 0..4 {
                d.push(round * 4 + i);
            }
            for i in (0..4).rev() {
                assert_eq!(d.pop(), Some(round * 4 + i));
            }
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let d = TaskDeque::with_capacity(2);
        d.push(0);
        d.push(1);
        d.push(2);
    }

    #[test]
    fn concurrent_thieves_and_owner_never_lose_or_duplicate() {
        // The deque's core invariant under real contention: every pushed
        // id comes out exactly once, split arbitrarily between the
        // owner's pops and the thieves' steals.
        const N: usize = 2000;
        for round in 0..8 {
            let d = TaskDeque::with_capacity(N);
            let stolen: Vec<std::sync::Mutex<Vec<usize>>> =
                (0..3).map(|_| std::sync::Mutex::new(Vec::new())).collect();
            let done = AtomicUsize::new(0);
            let mut popped = Vec::new();
            std::thread::scope(|s| {
                let d = &d;
                let done = &done;
                for slot in &stolen {
                    s.spawn(move || {
                        let mut grabbed = Vec::new();
                        loop {
                            match d.steal() {
                                Steal::Success(v) => grabbed.push(v),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => {
                                    if done.load(Ordering::SeqCst) == 1 && d.steal() == Steal::Empty
                                    {
                                        break;
                                    }
                                }
                            }
                        }
                        slot.lock().unwrap().extend(grabbed);
                    });
                }
                // Owner: interleave pushes and pops.
                for i in 0..N {
                    d.push(i);
                    if i % 3 == round % 3 {
                        if let Some(v) = d.pop() {
                            popped.push(v);
                        }
                    }
                }
                while let Some(v) = d.pop() {
                    popped.push(v);
                }
                done.store(1, Ordering::SeqCst);
            });
            let mut all: Vec<usize> = popped;
            for slot in &stolen {
                all.extend(slot.lock().unwrap().iter().copied());
            }
            assert_eq!(all.len(), N, "round {round}: lost or duplicated tasks");
            let set: BTreeSet<usize> = all.iter().copied().collect();
            assert_eq!(set.len(), N, "round {round}: duplicate task ids");
        }
    }
}
