//! OpenMP loop-scheduling policies as concurrent chunk dispensers.
//!
//! A [`Dispenser`] hands out chunks `(start, len)` of a linear iteration
//! space `0..n` to worker ranks until exhaustion. One dispenser instance
//! serves one `parallel for`; the five implementations mirror the
//! `schedule(...)` clauses the paper's Fig. 4 visualizes:
//!
//! * [`StaticBlock`] — `schedule(static)`: one contiguous block per rank;
//! * [`StaticCyclic`] — `schedule(static, k)`: round-robin chunks of `k`;
//! * [`DynamicChunks`] — `schedule(dynamic, k)`: first-come first-served;
//! * [`GuidedChunks`] — `schedule(guided, k)`: exponentially shrinking
//!   chunks, never below `k`;
//! * [`StealingDispenser`] — `schedule(nonmonotonic:dynamic)`: "tiles are
//!   first distributed in a static manner, but work-stealing is
//!   eventually used to correct load imbalance" (§II-B).
//!
//! All five dispensers are lock-free: atomic cursors where the policy
//! is a single stream, and packed per-rank range words updated by CAS
//! for the stealing policy (see [`StealingDispenser`] for the
//! no-double-grant argument).

use ezp_core::Schedule;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Work-stealing activity of one rank over a dispenser's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Times the rank entered the steal path (its own range was empty).
    pub attempted: u64,
    /// Attempts that obtained work from a victim.
    pub succeeded: u64,
}

/// A concurrent source of chunks over `0..n`.
///
/// Implementations must collectively hand out every index exactly once,
/// whatever the interleaving of `next` calls *across ranks* — the
/// invariant the property tests in this module (and the adversarial
/// `ezp-check` schedules in `vexec`) pin down.
///
/// **Calling protocol**: at most one thread serves a given rank at a
/// time. [`WorkerPool`](crate::WorkerPool) guarantees this structurally
/// (one thread per rank), and [`StealingDispenser`] relies on it: a
/// rank's *private remainder* (the interval it last stole) is written
/// only by that rank, so two threads calling `next` with the *same*
/// rank concurrently could each overwrite the remainder with different
/// stolen intervals and leak the loser's work. Calls with distinct
/// ranks may race freely — the shared range words are CAS-protected.
///
/// **Generations**: one dispenser *instance* serves one consumer
/// generation — a single `parallel for` drained to exhaustion. The
/// protocol above says nothing about *reuse*, and reuse is where the
/// hazard lives: a stealing dispenser abandoned mid-drain leaves work
/// parked in rank-private remainders, and naively resetting only the
/// shared range words would let those stale intervals leak into the
/// next generation as double grants. Streaming workloads that fan the
/// same dispenser over frame after frame must re-arm it between
/// generations with an exclusive-access reset (see
/// [`StealingDispenser::rearm`]) rather than recycling it hot.
pub trait Dispenser: Sync + Send {
    /// Next chunk for `rank`, as `(start, len)` with `len > 0`, or `None`
    /// when no work is left for this rank.
    fn next(&self, rank: usize) -> Option<(usize, usize)>;

    /// Total length of the iteration space.
    fn len(&self) -> usize;

    /// True when the iteration space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-rank steal counters, for dispensers that steal. `None` for
    /// policies without stealing, so the scheduling layer emits steal
    /// events only where they mean something.
    fn steal_stats(&self) -> Option<Vec<StealStats>> {
        None
    }
}

/// Builds the dispenser implementing `schedule` for `n` iterations and
/// `threads` ranks.
pub fn dispenser_for(schedule: Schedule, n: usize, threads: usize) -> Box<dyn Dispenser> {
    assert!(threads > 0, "dispenser needs at least one rank");
    match schedule {
        Schedule::Static => Box::new(StaticBlock::new(n, threads)),
        Schedule::StaticChunk(k) => Box::new(StaticCyclic::new(n, threads, k)),
        Schedule::Dynamic(k) => Box::new(DynamicChunks::new(n, k)),
        Schedule::Guided(k) => Box::new(GuidedChunks::new(n, threads, k)),
        Schedule::NonmonotonicDynamic(k) => Box::new(StealingDispenser::new(n, threads, k)),
    }
}

/// `schedule(static)`: rank `r` owns the contiguous block
/// `[r*n/P, (r+1)*n/P)` (even split, remainder spread over low ranks,
/// like libgomp). Served as one chunk per rank.
pub struct StaticBlock {
    n: usize,
    threads: usize,
    /// Per-rank "already taken" flags (an atomic cursor would also do,
    /// but one flag per rank keeps `next` wait-free). counter-only: the
    /// flag is the entire payload; block bounds come from immutable
    /// fields.
    taken: Vec<AtomicUsize>,
}

impl StaticBlock {
    /// Creates the dispenser.
    pub fn new(n: usize, threads: usize) -> Self {
        StaticBlock {
            n,
            threads,
            taken: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// The block assigned to `rank`, as `(start, len)`.
    pub fn block_of(n: usize, threads: usize, rank: usize) -> (usize, usize) {
        let base = n / threads;
        let rem = n % threads;
        let start = rank * base + rank.min(rem);
        let len = base + usize::from(rank < rem);
        (start, len)
    }
}

impl Dispenser for StaticBlock {
    fn next(&self, rank: usize) -> Option<(usize, usize)> {
        // ORDERING: counter-only. The swap's *atomicity* is what grants
        // the block at most once; the block bounds are computed from
        // immutable fields, so no data rides on this edge and Relaxed
        // suffices.
        if rank >= self.threads || self.taken[rank].swap(1, Ordering::Relaxed) == 1 {
            return None;
        }
        let (start, len) = Self::block_of(self.n, self.threads, rank);
        if len == 0 {
            None
        } else {
            Some((start, len))
        }
    }

    fn len(&self) -> usize {
        self.n
    }
}

/// `schedule(static, k)`: chunk `i` (of size `k`) goes to rank
/// `i % threads`, so rank `r` serves chunks `r, r+P, r+2P, ...`.
pub struct StaticCyclic {
    n: usize,
    threads: usize,
    k: usize,
    /// Per-rank next chunk index. counter-only: each slot is
    /// rank-private and the index is the entire payload.
    cursor: Vec<AtomicUsize>,
}

impl StaticCyclic {
    /// Creates the dispenser; `k` is clamped to at least 1.
    pub fn new(n: usize, threads: usize, k: usize) -> Self {
        StaticCyclic {
            n,
            threads,
            k: k.max(1),
            cursor: (0..threads).map(AtomicUsize::new).collect(),
        }
    }
}

impl Dispenser for StaticCyclic {
    fn next(&self, rank: usize) -> Option<(usize, usize)> {
        if rank >= self.threads {
            return None;
        }
        // ORDERING: counter-only (and per-rank private besides): the
        // cursor is just an index generator; chunk bounds derive from
        // immutable fields, so nothing synchronizes on this increment.
        let chunk = self.cursor[rank].fetch_add(self.threads, Ordering::Relaxed);
        let start = chunk * self.k;
        if start >= self.n {
            return None;
        }
        Some((start, self.k.min(self.n - start)))
    }

    fn len(&self) -> usize {
        self.n
    }
}

/// `schedule(dynamic, k)`: a single atomic cursor; idle ranks grab the
/// next `k` iterations — "the opportunistic nature of the dynamic
/// clause" (Fig. 4b).
pub struct DynamicChunks {
    n: usize,
    k: usize,
    /// counter-only: the monotone cursor is the entire payload; chunk
    /// ownership comes from the fetch_add's atomicity alone.
    cursor: AtomicUsize,
}

impl DynamicChunks {
    /// Creates the dispenser; `k` is clamped to at least 1.
    pub fn new(n: usize, k: usize) -> Self {
        DynamicChunks {
            n,
            k: k.max(1),
            cursor: AtomicUsize::new(0),
        }
    }
}

impl Dispenser for DynamicChunks {
    fn next(&self, _rank: usize) -> Option<(usize, usize)> {
        // ORDERING: counter-only. The fetch_add's atomicity hands each
        // chunk out exactly once; the iteration payload is reached via
        // the region's own synchronization, not this cursor.
        let start = self.cursor.fetch_add(self.k, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        Some((start, self.k.min(self.n - start)))
    }

    fn len(&self) -> usize {
        self.n
    }
}

/// `schedule(guided, k)`: each grab takes `max(remaining / (2 P), k)`
/// iterations, so "the size of chunks assigned to threads decreases over
/// time" (Fig. 4d). Implemented with a CAS loop on the shared cursor.
pub struct GuidedChunks {
    n: usize,
    threads: usize,
    k: usize,
    /// counter-only: the monotone cursor is the entire payload; chunk
    /// ownership comes from the CAS's atomicity alone.
    cursor: AtomicUsize,
}

impl GuidedChunks {
    /// Creates the dispenser; `k` and `threads` are clamped to at least
    /// 1 (a `threads == 0` caller would otherwise divide by zero in the
    /// chunk-size formula).
    pub fn new(n: usize, threads: usize, k: usize) -> Self {
        GuidedChunks {
            n,
            threads: threads.max(1),
            k: k.max(1),
            cursor: AtomicUsize::new(0),
        }
    }
}

impl Dispenser for GuidedChunks {
    fn next(&self, _rank: usize) -> Option<(usize, usize)> {
        // ORDERING: counter-only. The cursor is a pure index allocator;
        // no other memory is published through it.
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            if cur >= self.n {
                return None;
            }
            let remaining = self.n - cur;
            let chunk = (remaining.div_ceil(2 * self.threads)).max(self.k).min(remaining);
            // ORDERING: counter-only. A successful CAS atomically claims
            // `[cur, cur+chunk)`; the claim itself is the whole payload,
            // so Relaxed on success and failure both suffice.
            match self.cursor.compare_exchange_weak(
                cur,
                cur + chunk,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((cur, chunk)),
                Err(seen) => cur = seen,
            }
        }
    }

    fn len(&self) -> usize {
        self.n
    }
}

/// `schedule(nonmonotonic:dynamic)`: the OpenMP 5 behaviour the paper
/// singles out (Fig. 4c) — an initial static distribution corrected by
/// work stealing. Each rank owns a range `[lo, hi)`; the owner takes `k`
/// iterations from the front, thieves split half of the largest victim's
/// remaining range from the back (preserving the "static at first,
/// stolen later" visual pattern and the locality the paper praises in
/// §III-B).
///
/// ## Lock-free protocol and the no-double-grant argument
///
/// Each rank's *stealable* range lives in one padded `AtomicU64` packing
/// `hi << 32 | lo`, so a single CAS moves either bound atomically with
/// respect to the other:
///
/// * the **owner** advances `lo` by up to `k` (front of the range);
/// * a **thief** retreats `hi` by half the remainder (back of the range).
///
/// Both are strictly monotone — `lo` only grows, `hi` only shrinks, and
/// a stolen interval is *never* written back into any shared word — so
/// no packed word can ever repeat a bit pattern. That rules out ABA by
/// construction: a CAS succeeds only against the state it read, and
/// every successful CAS detaches a half-open interval disjoint from
/// everything detached before. (An earlier design reinstalled stolen
/// ranges into the thief's shared slot; a CAS port of *that* has a real
/// ABA double-grant when an interval travels through a steal chain back
/// to identical bounds. The monotone design makes the hazard
/// unrepresentable instead of merely unlikely.)
///
/// What a thief steals goes into its own **private remainder** — a
/// padded `(lo, hi)` pair of plain atomics written only by that rank
/// and invisible to other thieves. The [`Dispenser`] rank-serial
/// calling protocol makes that single-writer discipline structural;
/// because the slots are atomics (not `UnsafeCell`), violating the
/// protocol would be a logic error, never memory unsafety.
pub struct StealingDispenser {
    n: usize,
    k: usize,
    /// Per-rank stealable ranges as packed `hi << 32 | lo` words.
    ranges: Vec<RangeWord>,
    /// Per-rank private remainders (stolen intervals being drained).
    remainders: Vec<Remainder>,
    /// Per-rank steal counters; each rank only writes its own slot.
    stats: Vec<StealSlot>,
}

/// A padded packed-range word (`hi << 32 | lo`).
#[repr(align(128))]
struct RangeWord(AtomicU64);

impl RangeWord {
    fn pack(lo: usize, hi: usize) -> u64 {
        ((hi as u64) << 32) | lo as u64
    }

    fn unpack(w: u64) -> (usize, usize) {
        ((w & 0xFFFF_FFFF) as usize, (w >> 32) as usize)
    }
}

/// A rank-private stolen interval, drained front-first by its owner.
/// Single-writer by the rank-serial protocol; atomics only so that a
/// protocol violation stays a logic error. Both fields are
/// synchronizing via the spine, not locally (via-the-spine): the
/// rank-serial protocol orders every access, so `Relaxed` suffices.
#[repr(align(128))]
#[derive(Default)]
struct Remainder {
    lo: AtomicUsize,
    hi: AtomicUsize,
}

/// Padded per-rank steal counters (owner-writes-only, like the monitor's
/// worker slots). Both fields are counter-only: statistics whose value
/// is the entire payload.
#[repr(align(128))]
#[derive(Default)]
struct StealSlot {
    attempted: AtomicU64,
    succeeded: AtomicU64,
}

impl StealingDispenser {
    /// Creates the dispenser; `k` is clamped to at least 1.
    ///
    /// # Panics
    ///
    /// Panics when `n` does not fit the 32-bit halves of the packed
    /// range words (`n > u32::MAX`) — far beyond any real iteration
    /// space a 2D image loop produces.
    pub fn new(n: usize, threads: usize, k: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "StealingDispenser supports at most u32::MAX iterations (got {n})"
        );
        let ranges = (0..threads)
            .map(|r| {
                let (start, len) = StaticBlock::block_of(n, threads, r);
                RangeWord(AtomicU64::new(RangeWord::pack(start, start + len)))
            })
            .collect();
        StealingDispenser {
            n,
            k: k.max(1),
            ranges,
            remainders: (0..threads).map(|_| Remainder::default()).collect(),
            stats: (0..threads).map(|_| StealSlot::default()).collect(),
        }
    }

    /// Re-arms the dispenser for a new consumer generation over a fresh
    /// iteration space `0..n`, restoring the initial static split.
    ///
    /// `&mut self` is the whole synchronization story: a re-arm is only
    /// legal *between* generations, when no rank is calling [`next`]
    /// (structurally guaranteed by exclusive access), so every slot can
    /// be reset with plain Relaxed stores.
    ///
    /// Two resets matter, and the second is the latent one: besides the
    /// shared range words, every rank's **private remainder** must be
    /// cleared. A generation abandoned before exhaustion (a streamed
    /// frame whose consumer stopped early) leaves stolen intervals
    /// parked in those remainders; carrying one into the next
    /// generation would re-grant indices of the *old* space inside the
    /// new one — a double grant the lock-free protocol itself can never
    /// produce. The regression tests pin exactly this scenario.
    ///
    /// Steal statistics are deliberately *not* reset: they are
    /// cumulative over the dispenser's lifetime, matching how the perf
    /// layer aggregates counters across a streamed run.
    ///
    /// [`next`]: Dispenser::next
    ///
    /// # Panics
    ///
    /// Panics when `n > u32::MAX`, like [`StealingDispenser::new`].
    pub fn rearm(&mut self, n: usize) {
        assert!(
            u32::try_from(n).is_ok(),
            "StealingDispenser supports at most u32::MAX iterations (got {n})"
        );
        let threads = self.ranges.len();
        self.n = n;
        for (r, word) in self.ranges.iter().enumerate() {
            let (start, len) = StaticBlock::block_of(n, threads, r);
            // ORDERING: counter-only. `&mut self` proves no concurrent
            // reader exists; publication to the next generation's
            // workers happens via the region launch that hands the
            // dispenser out, not via these stores.
            word.0
                .store(RangeWord::pack(start, start + len), Ordering::Relaxed);
        }
        for rem in &self.remainders {
            // The latent-hazard reset: drop any interval a thief parked
            // here during an abandoned generation.
            rem.lo.store(0, Ordering::Relaxed);
            rem.hi.store(0, Ordering::Relaxed);
        }
    }

    /// Takes up to `k` iterations from the front of `rank`'s stealable
    /// range (CAS loop against thieves shrinking `hi`), falling back to
    /// the rank's private remainder.
    fn take_local(&self, rank: usize) -> Option<(usize, usize)> {
        let word = &self.ranges[rank].0;
        let mut w = word.load(Ordering::SeqCst);
        loop {
            let (lo, hi) = RangeWord::unpack(w);
            if lo >= hi {
                break;
            }
            let len = self.k.min(hi - lo);
            match word.compare_exchange_weak(
                w,
                RangeWord::pack(lo + len, hi),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some((lo, len)),
                Err(seen) => w = seen,
            }
        }
        // Shared range drained; serve the private remainder (plain
        // single-writer reads/writes — no CAS needed).
        // ORDERING: counter-only (rank-private). The remainder slots are
        // written and read only by this rank (the Dispenser rank-serial
        // protocol), so every Relaxed load sees the rank's own last
        // store; no cross-thread edge exists to order.
        let lo = self.remainders[rank].lo.load(Ordering::Relaxed);
        let hi = self.remainders[rank].hi.load(Ordering::Relaxed);
        if lo >= hi {
            return None;
        }
        let len = self.k.min(hi - lo);
        self.remainders[rank].lo.store(lo + len, Ordering::Relaxed);
        Some((lo, len))
    }

    /// Steals half of the largest victim's stealable remainder into
    /// `rank`'s private remainder, then serves from it.
    fn steal(&self, rank: usize) -> Option<(usize, usize)> {
        // ORDERING: counter-only here; the later Release increment of
        // `succeeded` is what publishes this attempt to stats readers
        // (see `steal_stats` for the pairing).
        self.stats[rank].attempted.fetch_add(1, Ordering::Relaxed);
        loop {
            // Pick the victim with the most stealable work left.
            let mut victim = None;
            let mut best = 0;
            for v in (0..self.ranges.len()).filter(|&v| v != rank) {
                let (lo, hi) = RangeWord::unpack(self.ranges[v].0.load(Ordering::SeqCst));
                let avail = hi.saturating_sub(lo);
                if avail > best {
                    best = avail;
                    victim = Some(v);
                }
            }
            // Nothing stealable anywhere: done. (Private remainders are
            // not stealable — their owners will drain them.)
            let victim = victim?;
            let word = &self.ranges[victim].0;
            let w = word.load(Ordering::SeqCst);
            let (lo, hi) = RangeWord::unpack(w);
            let avail = hi.saturating_sub(lo);
            if avail == 0 {
                // Drained between the scan and the re-read; rescan.
                continue;
            }
            let take = (avail / 2).max(1);
            let start = hi - take;
            if word
                .compare_exchange(
                    w,
                    RangeWord::pack(lo, start),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                // Lost the race (owner advanced or another thief shrank);
                // rescan — every CAS failure means someone else made
                // progress, so this loop is lock-free.
                continue;
            }
            // [start, hi) is now detached: no shared word contains it and
            // it can never re-enter one. Park it in our private slot.
            // ORDERING: counter-only (rank-private slots, same argument
            // as in `take_local` — only this rank touches them).
            debug_assert!(
                self.remainders[rank].lo.load(Ordering::Relaxed)
                    >= self.remainders[rank].hi.load(Ordering::Relaxed),
                "stealing with private work left"
            );
            self.remainders[rank].lo.store(start, Ordering::Relaxed);
            self.remainders[rank].hi.store(hi, Ordering::Relaxed);
            // ORDERING: synchronizing. Release-publish the success
            // *after* the attempt increment (program order) so a stats
            // reader that Acquire-loads this count also sees the
            // matching attempt — the attempted >= succeeded invariant.
            self.stats[rank].succeeded.fetch_add(1, Ordering::Release);
            return self.take_local(rank);
        }
    }
}

impl Dispenser for StealingDispenser {
    fn next(&self, rank: usize) -> Option<(usize, usize)> {
        if rank >= self.ranges.len() {
            return None;
        }
        self.take_local(rank).or_else(|| self.steal(rank))
    }

    fn len(&self) -> usize {
        self.n
    }

    fn steal_stats(&self) -> Option<Vec<StealStats>> {
        Some(
            self.stats
                .iter()
                .map(|s| {
                    // ORDERING: synchronizing (coherent mid-flight
                    // snapshot). Load `succeeded` first — Acquire, pairing
                    // with the Release increment in `steal` — then
                    // `attempted` (Relaxed: its visibility rides the same
                    // pair). Every success counted was preceded by its
                    // attempt increment in the writer's program order, so
                    // attempted >= succeeded holds in every report, even
                    // one racing the steal path.
                    let succeeded = s.succeeded.load(Ordering::Acquire);
                    let attempted = s.attempted.load(Ordering::Relaxed);
                    StealStats {
                        attempted,
                        succeeded,
                    }
                })
                .collect(),
        )
    }
}

/// Drains a dispenser from a single rank, for tests and the simulator.
pub fn drain_rank(d: &dyn Dispenser, rank: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    while let Some(c) = d.next(rank) {
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use std::collections::BTreeSet;

    /// Exhausts a dispenser from `threads` ranks round-robin (serial but
    /// interleaved), returning every index handed out.
    fn drain_interleaved(d: &dyn Dispenser, threads: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut live: Vec<usize> = (0..threads).collect();
        while !live.is_empty() {
            live.retain(|&rank| match d.next(rank) {
                Some((start, len)) => {
                    out.extend(start..start + len);
                    true
                }
                None => false,
            });
        }
        out
    }

    fn assert_exact_cover(indices: &[usize], n: usize) {
        assert_eq!(indices.len(), n, "wrong number of iterations handed out");
        let set: BTreeSet<usize> = indices.iter().copied().collect();
        assert_eq!(set.len(), n, "duplicate iterations");
        assert_eq!(set.iter().next_back().copied(), n.checked_sub(1));
    }

    #[test]
    fn static_blocks_are_contiguous_and_even() {
        let d = StaticBlock::new(10, 3);
        assert_eq!(d.next(0), Some((0, 4)));
        assert_eq!(d.next(1), Some((4, 3)));
        assert_eq!(d.next(2), Some((7, 3)));
        assert_eq!(d.next(0), None);
        assert_eq!(d.next(5), None); // out-of-range rank
    }

    #[test]
    fn static_handles_more_threads_than_work() {
        let d = StaticBlock::new(2, 5);
        let got = drain_interleaved(&d, 5);
        assert_exact_cover(&got, 2);
    }

    #[test]
    fn static_cyclic_round_robins() {
        let d = StaticCyclic::new(12, 2, 2); // chunks: 0..2,2..4,...
        assert_eq!(d.next(0), Some((0, 2)));
        assert_eq!(d.next(1), Some((2, 2)));
        assert_eq!(d.next(0), Some((4, 2)));
        assert_eq!(d.next(1), Some((6, 2)));
        assert_eq!(d.next(0), Some((8, 2)));
        assert_eq!(d.next(1), Some((10, 2)));
        assert_eq!(d.next(0), None);
        assert_eq!(d.next(1), None);
    }

    #[test]
    fn dynamic_is_first_come_first_served() {
        let d = DynamicChunks::new(5, 2);
        assert_eq!(d.next(1), Some((0, 2)));
        assert_eq!(d.next(0), Some((2, 2)));
        assert_eq!(d.next(1), Some((4, 1))); // last partial chunk
        assert_eq!(d.next(0), None);
    }

    #[test]
    fn guided_chunks_shrink_and_respect_min() {
        let d = GuidedChunks::new(1000, 4, 5);
        let chunks = drain_rank(&d, 0);
        let sizes: Vec<usize> = chunks.iter().map(|&(_, l)| l).collect();
        // non-increasing
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "guided chunks grew: {sizes:?}");
        }
        // first chunk is remaining/(2P) = 125
        assert_eq!(sizes[0], 125);
        // all chunks (except possibly the last) >= k
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 5);
        }
        assert_exact_cover(&drain_interleaved(&GuidedChunks::new(1000, 4, 5), 4), 1000);
    }

    #[test]
    fn stealing_starts_static_then_steals() {
        let d = StealingDispenser::new(8, 2, 1);
        // rank 1 drains its own half first
        let own: Vec<_> = (0..4).map(|_| d.next(1).unwrap()).collect();
        assert_eq!(own, vec![(4, 1), (5, 1), (6, 1), (7, 1)]);
        // now rank 1 must steal from rank 0's untouched block [0,4):
        // steals the back half [2,4)
        assert_eq!(d.next(1), Some((2, 1)));
        assert_eq!(d.next(1), Some((3, 1)));
        // rank 0 still owns [0,2)
        assert_eq!(d.next(0), Some((0, 1)));
        assert_eq!(d.next(0), Some((1, 1)));
        assert_eq!(d.next(0), None);
        assert_eq!(d.next(1), None);
    }

    #[test]
    fn steal_counters_track_the_static_then_steal_scenario() {
        // same interleaving as `stealing_starts_static_then_steals`,
        // checking the counters it should leave behind
        let d = StealingDispenser::new(8, 2, 1);
        for _ in 0..4 {
            d.next(1).unwrap(); // rank 1 drains its own half
        }
        assert_eq!(d.next(1), Some((2, 1))); // attempt #1: succeeds
        assert_eq!(d.next(1), Some((3, 1))); // local, no steal
        assert_eq!(d.next(0), Some((0, 1)));
        assert_eq!(d.next(0), Some((1, 1)));
        assert_eq!(d.next(0), None); // rank 0 attempt: nothing left
        assert_eq!(d.next(1), None); // rank 1 attempt #2: nothing left
        let stats = d.steal_stats().unwrap();
        assert_eq!(stats[1], StealStats { attempted: 2, succeeded: 1 });
        assert_eq!(stats[0], StealStats { attempted: 1, succeeded: 0 });
    }

    #[test]
    fn guided_with_zero_threads_does_not_divide_by_zero() {
        // direct construction with threads == 0 must clamp, not panic
        let d = GuidedChunks::new(100, 0, 4);
        let got = drain_interleaved(&d, 1);
        assert_exact_cover(&got, 100);
        // and the empty space stays empty
        assert_eq!(GuidedChunks::new(0, 0, 1).next(0), None);
    }

    #[test]
    fn steal_stats_never_report_more_successes_than_attempts() {
        // S3 regression: sample the stats *while* ranks are draining
        // through the steal path; every snapshot, per rank, must satisfy
        // attempted >= succeeded (the release/acquire pairing on the
        // succeeded counter).
        for round in 0..10 {
            let threads = 4;
            let n = 64 + round;
            let d = StealingDispenser::new(n, threads, 1);
            let stop = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let workers: Vec<_> = (0..threads)
                    .map(|rank| {
                        let d = &d;
                        s.spawn(move || while d.next(rank).is_some() {})
                    })
                    .collect();
                let d = &d;
                let stop = &stop;
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        for (rank, st) in d.steal_stats().unwrap().iter().enumerate() {
                            assert!(
                                st.attempted >= st.succeeded,
                                "rank {rank}: mid-flight report shows {} successes \
                                 but only {} attempts",
                                st.succeeded,
                                st.attempted
                            );
                        }
                    }
                });
                // let the sampler race the drain; release it once the
                // workers are done
                for w in workers {
                    w.join().unwrap();
                }
                stop.store(1, Ordering::Relaxed);
            });
            // final report still satisfies the invariant and counts
            // at least one attempt somewhere (k=1 forces steal traffic
            // unless the interleaving drained everything locally)
            for st in d.steal_stats().unwrap() {
                assert!(st.attempted >= st.succeeded);
            }
        }
    }

    #[test]
    fn rearm_resets_to_a_fresh_static_split() {
        let mut d = StealingDispenser::new(8, 2, 1);
        let first = drain_interleaved(&d, 2);
        assert_exact_cover(&first, 8);
        // fully drained: a second generation over a *different* space
        d.rearm(10);
        assert_eq!(d.len(), 10);
        let second = drain_interleaved(&d, 2);
        assert_exact_cover(&second, 10);
    }

    #[test]
    fn rearm_clears_stale_private_remainders() {
        // The latent one-region-one-generation hazard: rank 1 drains its
        // half and steals [2,4) from rank 0, which parks [3,4) in rank
        // 1's *private remainder*. The generation is then abandoned
        // mid-drain. Without the remainder reset in `rearm`, index 3 of
        // the dead generation would be re-granted inside the next one —
        // a double grant over the new space.
        let mut d = StealingDispenser::new(8, 2, 1);
        for _ in 0..4 {
            d.next(1).unwrap(); // rank 1 drains [4,8)
        }
        assert_eq!(d.next(1), Some((2, 1))); // steal parks [3,4) privately
        // abandon the generation here: remainder [3,4) is non-empty
        d.rearm(6);
        let got = drain_interleaved(&d, 2);
        assert_exact_cover(&got, 6);
    }

    #[test]
    fn rearm_streams_many_generations_exactly_once_each() {
        // the streaming pattern: one dispenser re-armed across frames,
        // each frame's space covered exactly once, under real threads
        let threads = 4;
        let mut d = StealingDispenser::new(0, threads, 1);
        for frame in 0..12usize {
            let n = 16 + frame; // vary the space across generations
            d.rearm(n);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let d_ref = &d;
            std::thread::scope(|s| {
                for rank in 0..threads {
                    let hits = &hits;
                    s.spawn(move || {
                        while let Some((start, len)) = d_ref.next(rank) {
                            for h in hits.iter().skip(start).take(len) {
                                h.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "frame {frame}: index {i} granted a wrong number of times"
                );
            }
        }
        // stats survived the generations (cumulative, never reset)
        let stats = d.steal_stats().unwrap();
        assert!(stats.iter().map(|s| s.attempted).sum::<u64>() > 0);
    }

    #[test]
    fn stealing_rejects_oversized_spaces() {
        // the packed-word representation caps n at u32::MAX; make sure
        // the constructor says so instead of silently corrupting ranges
        if usize::BITS > 32 {
            let res = std::panic::catch_unwind(|| {
                StealingDispenser::new(u32::MAX as usize + 1, 2, 1)
            });
            assert!(res.is_err());
        }
    }

    #[test]
    fn only_the_stealing_policy_reports_steal_stats() {
        assert!(StaticBlock::new(8, 2).steal_stats().is_none());
        assert!(StaticCyclic::new(8, 2, 1).steal_stats().is_none());
        assert!(DynamicChunks::new(8, 1).steal_stats().is_none());
        assert!(GuidedChunks::new(8, 2, 1).steal_stats().is_none());
    }

    #[test]
    fn empty_space_yields_nothing() {
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(2),
            Schedule::Dynamic(2),
            Schedule::Guided(2),
            Schedule::NonmonotonicDynamic(2),
        ] {
            let d = dispenser_for(sched, 0, 3);
            assert!(d.is_empty());
            for rank in 0..3 {
                assert_eq!(d.next(rank), None, "{sched:?}");
            }
        }
    }

    #[test]
    fn concurrent_exact_cover_all_policies() {
        // the real-threads version of the coverage invariant
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(2),
            Schedule::Guided(1),
            Schedule::NonmonotonicDynamic(2),
        ] {
            let threads = 4;
            let n = 1017;
            let d = dispenser_for(sched, n, threads);
            let d_ref: &dyn Dispenser = &*d;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|s| {
                for rank in 0..threads {
                    let hits = &hits;
                    let d_ref = &d_ref;
                    s.spawn(move || {
                        while let Some((start, len)) = d_ref.next(rank) {
                            for h in hits.iter().skip(start).take(len) {
                                h.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "{sched:?}: iteration {i} handed out a wrong number of times"
                );
            }
        }
    }

    #[test]
    fn steal_contention_never_double_grants() {
        // Regression pin for the steal + local-pop audit: tiny per-rank
        // blocks and k=1 force nearly every `next` through the steal
        // path, with all ranks racing to shrink each other's ranges.
        // Every index must still come out exactly once.
        for round in 0..20 {
            let threads = 4;
            let n = 4 * threads + round % 3; // a handful of indices per rank
            let d = StealingDispenser::new(n, threads, 1);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|s| {
                for rank in 0..threads {
                    let d = &d;
                    let hits = &hits;
                    s.spawn(move || {
                        while let Some((start, len)) = d.next(rank) {
                            for h in hits.iter().skip(start).take(len) {
                                h.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "round {round}: index {i} granted a wrong number of times"
                );
            }
        }
    }

    ezp_proptest! {
        fn prop_exact_cover(
            n in 0usize..500,
            threads in 1usize..9,
            k in 1usize..8,
            which in 0usize..5,
        ) {
            let sched = match which {
                0 => Schedule::Static,
                1 => Schedule::StaticChunk(k),
                2 => Schedule::Dynamic(k),
                3 => Schedule::Guided(k),
                _ => Schedule::NonmonotonicDynamic(k),
            };
            let d = dispenser_for(sched, n, threads);
            let got = drain_interleaved(&*d, threads);
            assert_exact_cover(&got, n);
        }

        fn prop_guided_non_increasing(n in 1usize..2000, threads in 1usize..9, k in 1usize..6) {
            let d = GuidedChunks::new(n, threads, k);
            let sizes: Vec<usize> = drain_rank(&d, 0).iter().map(|&(_, l)| l).collect();
            for w in sizes.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }

        fn prop_static_block_partition(n in 0usize..10_000, threads in 1usize..17) {
            let mut total = 0;
            let mut next_start = 0;
            for rank in 0..threads {
                let (start, len) = StaticBlock::block_of(n, threads, rank);
                assert_eq!(start, next_start);
                next_start = start + len;
                total += len;
            }
            assert_eq!(total, n);
        }
    }
}
