//! # ezp-sched — the OpenMP-substrate: thread pool, loop scheduling, tasks
//!
//! EASYPAP assignments revolve around OpenMP's `parallel for`,
//! `schedule(...)` clauses and task dependencies. This crate rebuilds that
//! runtime from scratch on plain threads, so that the framework has the
//! same knobs the paper teaches:
//!
//! * [`WorkerPool`] — a persistent pool of worker threads executing
//!   parallel regions (`#pragma omp parallel`);
//! * [`dispenser`] — OpenMP loop-scheduling policies (`static`,
//!   `static,k`, `dynamic,k`, `guided,k`, `nonmonotonic:dynamic`) as
//!   concurrent chunk dispensers over a linear iteration space;
//! * [`parallel`] — `parallel_for`-style helpers over index ranges and
//!   tile grids, with the paper's `monitoring_start_tile`/`end_tile`
//!   instrumentation built in (§II-B);
//! * [`img_cell`] — the disjoint-tile shared-image wrapper that lets
//!   worker threads write their own tiles of one image concurrently;
//! * [`taskgraph`] — OpenMP-style tasks with dependencies, used by the
//!   connected-components wavefront of Fig. 11/12.
//!
//! The per-policy *behaviour* (who computes which tile) is exactly what
//! the Tiling window of Fig. 4 visualizes; `ezp-simsched` replays the
//! same policies in virtual time for deterministic analysis.

#![warn(missing_docs)]
// `unsafe_code` is deliberately NOT denied here: `pool` (lifetime-erased
// closure dispatch) and `img_cell` (disjoint-tile aliasing) are two of
// the three sanctioned unsafe islands of the workspace (the third is
// `ezp-chan`'s SPSC ring slots). Every `unsafe` block in them carries a
// `SAFETY:` argument, enforced by `ezp-lint`'s `unsafe-needs-safety`
// rule.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod deque;
pub mod dispenser;
pub mod img_cell;
pub mod mux;
pub mod parallel;
pub use ezp_core::park;
pub mod pool;
pub mod skeleton;
pub mod taskgraph;
#[cfg(feature = "ezp-check")]
pub mod vexec;

pub use deque::{Steal, TaskDeque};
pub use dispenser::{dispenser_for, Dispenser, StealStats};
pub use img_cell::{ImgCell, TileWriter};
pub use mux::{acquire_pool, MuxStats, PoolHandle, PoolLease, PoolMux};
pub use parallel::{
    parallel_for_range, parallel_for_range_probed, parallel_for_tiles, parallel_for_tiles_img,
};
pub use park::{ParkLot, WaitStats};
pub use pool::{PoolSyncStats, WorkerPool};
pub use skeleton::{PipeShape, PipeStage};
pub use taskgraph::TaskGraph;
#[cfg(feature = "ezp-check")]
pub use vexec::{
    check_chan_oracle, virtual_chan, virtual_drain, virtual_for_range, virtual_for_tiles,
    virtual_taskgraph, Reachability, VChanReport, VStep,
};
