//! Pool multiplexing: many independent jobs over a fixed set of
//! persistent [`WorkerPool`]s.
//!
//! A classic `easypap` run owns the process: one CLI invocation, one
//! region family, one pool, exit. A service ([`ezp-serve`]) must run
//! *many* independent jobs concurrently without spawning threads per
//! job. [`PoolMux`] is the composition layer that makes the worker pool
//! shared: it pre-spawns `slots` pools of `workers` threads each and
//! leases them out one job at a time. Each leased pool still runs its
//! regions through the untouched seqlock epoch protocol — jobs in
//! different slots proceed fully concurrently, and a returned lease
//! leaves the pool parked and reusable, so the thread-spawn cost is
//! paid once at service start instead of per job.
//!
//! [`ezp-serve`]: ../../ezp_serve/index.html
//!
//! ## Routing kernels onto a leased pool
//!
//! Kernels do not take a pool parameter — historically each `compute`
//! call built its own `WorkerPool::new(ctx.threads())`. [`acquire_pool`]
//! replaces that idiom: it checks this thread's installed shared pool
//! first (see [`PoolLease::install`]) and only falls back to spawning a
//! fresh pool when none is installed. Standalone CLI runs therefore
//! behave exactly as before, while a serve runner thread that installed
//! its lease gets every kernel in the job onto the shared workers, with
//! the pool's logical [width](WorkerPool::set_width) narrowed to the
//! job's requested thread count.
//!
//! The install/acquire hand-off moves the pool *by value* through a
//! thread-local slot, so there is no aliasing and no unsafe code: at any
//! instant the pool is owned by exactly one of {the mux, a lease, the
//! thread-local slot, an acquired handle}. A nested `acquire_pool` while
//! one handle is outstanding simply falls back to a fresh pool.

use crate::pool::WorkerPool;
use ezp_core::time::now_ns;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

thread_local! {
    /// The shared pool installed on this thread, if a lease routed one
    /// here. Checked out (moved) by [`acquire_pool`], returned on
    /// handle drop.
    static INSTALLED: RefCell<Option<WorkerPool>> = const { RefCell::new(None) };
}

/// Cumulative lease traffic of a [`PoolMux`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Leases granted so far.
    pub leases: u64,
    /// Lease requests that had to block because every slot was busy.
    pub lease_waits: u64,
    /// Wall time spent blocked waiting for a free slot, in nanoseconds.
    pub wait_ns: u64,
}

/// A fixed set of persistent [`WorkerPool`]s leased out job by job.
pub struct PoolMux {
    /// Free pools. A `Mutex` is fine here: lease/return is per *job*,
    /// not per region — the region hot path stays inside the leased
    /// pool's lock-free epoch protocol.
    free: Mutex<Vec<WorkerPool>>,
    /// Wakes blocked `lease` callers when a pool is returned.
    returned: Condvar,
    slots: usize,
    workers: usize,
    // counter-only statistics: the tallies are the entire payload and
    // the stats snapshot tolerates mid-update skew.
    stat_leases: AtomicU64,
    stat_waits: AtomicU64,
    stat_wait_ns: AtomicU64,
}

impl PoolMux {
    /// Spawns `slots` pools of `workers` threads each (both clamped to
    /// at least 1). Total worker threads = `slots × workers`, all
    /// parked until leased.
    pub fn new(slots: usize, workers: usize) -> Self {
        let slots = slots.max(1);
        let workers = workers.max(1);
        PoolMux {
            free: Mutex::new((0..slots).map(|_| WorkerPool::new(workers)).collect()),
            returned: Condvar::new(),
            slots,
            workers,
            stat_leases: AtomicU64::new(0),
            stat_waits: AtomicU64::new(0),
            stat_wait_ns: AtomicU64::new(0),
        }
    }

    /// Number of slots (maximum concurrent leases).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Worker threads per slot.
    pub fn workers_per_slot(&self) -> usize {
        self.workers
    }

    /// Grants a lease immediately if a slot is free.
    pub fn try_lease(&self) -> Option<PoolLease<'_>> {
        let pool = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop()?;
        // ORDERING: Relaxed — counter-only statistic, synchronizes with
        // nothing; the free list itself is guarded by the mutex.
        self.stat_leases.fetch_add(1, Ordering::Relaxed);
        Some(PoolLease { mux: self, pool: Some(pool) })
    }

    /// Grants a lease, blocking until a slot frees up.
    pub fn lease(&self) -> PoolLease<'_> {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.is_empty() {
            // ORDERING: Relaxed (here and below) — counter-only wait
            // statistics; all synchronization is the mutex + condvar.
            self.stat_waits.fetch_add(1, Ordering::Relaxed);
            let t0 = now_ns();
            while free.is_empty() {
                free = self.returned.wait(free).unwrap_or_else(|e| e.into_inner());
            }
            self.stat_wait_ns
                .fetch_add(now_ns().saturating_sub(t0), Ordering::Relaxed);
        }
        let pool = free.pop().expect("non-empty free list");
        drop(free);
        // ORDERING: Relaxed — counter-only statistic.
        self.stat_leases.fetch_add(1, Ordering::Relaxed);
        PoolLease { mux: self, pool: Some(pool) }
    }

    /// Snapshot of the lease counters.
    pub fn stats(&self) -> MuxStats {
        // ORDERING: Relaxed — counter-only reads of independent
        // statistics; slight skew between them is acceptable.
        MuxStats {
            leases: self.stat_leases.load(Ordering::Relaxed),
            lease_waits: self.stat_waits.load(Ordering::Relaxed),
            wait_ns: self.stat_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Hands `pool` back to the free list (width restored), waking one
    /// blocked `lease` caller.
    fn give_back(&self, mut pool: WorkerPool) {
        pool.set_width(pool.threads());
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        free.push(pool);
        drop(free);
        self.returned.notify_one();
    }
}

/// An exclusive lease on one of a [`PoolMux`]'s pools. Dereferences to
/// the [`WorkerPool`]; returning it (and waking a waiter) happens on
/// drop. If the leased pool was lost to a leak inside
/// [`PoolLease::install`], drop replaces it with a fresh pool so the
/// mux never shrinks — a slot is an epoch-protocol resource the service
/// must not leak.
pub struct PoolLease<'m> {
    mux: &'m PoolMux,
    pool: Option<WorkerPool>,
}

impl PoolLease<'_> {
    /// Installs the leased pool on this thread for the duration of `f`,
    /// narrowed to `width` working ranks, so every
    /// [`acquire_pool`] inside `f` — kernels building their "own" pool —
    /// lands on the shared workers. The pool is recovered even if `f`
    /// panics (the acquired handle returns it to the thread-local slot
    /// during unwind, and the restore guard moves it back here).
    pub fn install<R>(&mut self, width: usize, f: impl FnOnce() -> R) -> R {
        let mut pool = self.pool.take().expect("lease already consumed");
        pool.set_width(width);
        INSTALLED.with(|slot| *slot.borrow_mut() = Some(pool));
        // Restore on drop so a panicking `f` cannot strand the pool in
        // the thread-local slot.
        struct Restore<'a, 'm>(&'a mut PoolLease<'m>);
        impl Drop for Restore<'_, '_> {
            fn drop(&mut self) {
                self.0.pool = INSTALLED.with(|slot| slot.borrow_mut().take());
            }
        }
        let restore = Restore(self);
        let r = f();
        drop(restore);
        r
    }
}

impl Deref for PoolLease<'_> {
    type Target = WorkerPool;
    fn deref(&self) -> &WorkerPool {
        self.pool.as_ref().expect("lease pool checked out")
    }
}

impl DerefMut for PoolLease<'_> {
    fn deref_mut(&mut self) -> &mut WorkerPool {
        self.pool.as_mut().expect("lease pool checked out")
    }
}

impl Drop for PoolLease<'_> {
    fn drop(&mut self) {
        let pool = self
            .pool
            .take()
            .unwrap_or_else(|| WorkerPool::new(self.mux.workers));
        self.mux.give_back(pool);
    }
}

/// A worker pool for `n` threads: the installed shared pool when this
/// thread is running under a [`PoolLease::install`] scope (narrowed to
/// `min(n, threads)` ranks), otherwise a freshly spawned pool owned by
/// the handle. Kernels use this instead of `WorkerPool::new` so the
/// same code serves both the one-shot CLI and the daemon.
pub fn acquire_pool(n: usize) -> PoolHandle {
    let installed = INSTALLED.with(|slot| slot.borrow_mut().take());
    match installed {
        Some(mut pool) => {
            pool.set_width(n);
            PoolHandle { pool: Some(pool), shared: true }
        }
        None => PoolHandle {
            pool: Some(WorkerPool::new(n.max(1))),
            shared: false,
        },
    }
}

/// RAII handle from [`acquire_pool`]: dereferences to the
/// [`WorkerPool`]; on drop a shared pool goes back to the thread-local
/// slot (for the next `acquire_pool` in the same job), an owned pool
/// joins its threads.
pub struct PoolHandle {
    pool: Option<WorkerPool>,
    shared: bool,
}

impl PoolHandle {
    /// True when this handle borrowed the thread's installed shared
    /// pool rather than spawning its own.
    pub fn is_shared(&self) -> bool {
        self.shared
    }
}

impl Deref for PoolHandle {
    type Target = WorkerPool;
    fn deref(&self) -> &WorkerPool {
        self.pool.as_ref().expect("handle pool present until drop")
    }
}

impl DerefMut for PoolHandle {
    fn deref_mut(&mut self) -> &mut WorkerPool {
        self.pool.as_mut().expect("handle pool present until drop")
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        if self.shared {
            if let Some(pool) = self.pool.take() {
                INSTALLED.with(|slot| *slot.borrow_mut() = Some(pool));
            }
        }
        // owned pools just drop: WorkerPool::drop joins the threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Arc;

    #[test]
    fn lease_and_return_cycle() {
        let mux = PoolMux::new(2, 2);
        {
            let a = mux.try_lease().expect("slot free");
            let _b = mux.try_lease().expect("second slot free");
            assert!(mux.try_lease().is_none(), "only two slots");
            assert_eq!(a.threads(), 2);
        }
        // both returned
        assert!(mux.try_lease().is_some());
        let s = mux.stats();
        assert_eq!(s.leases, 3);
    }

    #[test]
    fn blocking_lease_waits_for_return() {
        let mux = Arc::new(PoolMux::new(1, 1));
        let first = mux.lease();
        let mux2 = Arc::clone(&mux);
        let waiter = std::thread::spawn(move || {
            let lease = mux2.lease(); // blocks until `first` drops
            lease.threads()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(first);
        assert_eq!(waiter.join().unwrap(), 1);
        assert!(mux.stats().leases >= 2);
    }

    #[test]
    fn leased_pools_run_regions_concurrently() {
        let mux = Arc::new(PoolMux::new(2, 2));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let mux = Arc::clone(&mux);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let mut lease = mux.lease();
                    for _ in 0..20 {
                        lease.run(|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 2 * 20 * 2);
    }

    #[test]
    fn acquire_without_install_spawns_owned_pool() {
        let mut pool = acquire_pool(3);
        assert!(!pool.is_shared());
        assert_eq!(pool.threads(), 3);
        let count = AtomicU64::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn install_routes_acquire_to_the_shared_pool() {
        let mux = PoolMux::new(1, 4);
        let mut lease = mux.lease();
        let ran = lease.install(2, || {
            let mut pool = acquire_pool(2);
            assert!(pool.is_shared());
            assert_eq!(pool.threads(), 4, "shared pool keeps its size");
            assert_eq!(pool.width(), 2, "narrowed to the job's request");
            let count = AtomicUsize::new(0);
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            drop(pool);
            // sequential re-acquire inside the same job works
            let pool2 = acquire_pool(4);
            assert!(pool2.is_shared());
            count.load(Ordering::Relaxed)
        });
        assert_eq!(ran, 2, "only width ranks execute");
        // after install the lease holds the pool again, width restored
        // on return to the mux
        drop(lease);
        let lease2 = mux.lease();
        assert_eq!(lease2.width(), 4);
    }

    #[test]
    fn nested_acquire_falls_back_to_owned() {
        let mux = PoolMux::new(1, 2);
        let mut lease = mux.lease();
        lease.install(2, || {
            let outer = acquire_pool(2);
            assert!(outer.is_shared());
            let inner = acquire_pool(2);
            assert!(!inner.is_shared(), "slot is checked out: fresh pool");
            drop(inner);
            drop(outer);
        });
    }

    #[test]
    fn panic_inside_install_does_not_lose_the_pool() {
        let mux = PoolMux::new(1, 2);
        {
            let mut lease = mux.lease();
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                lease.install(2, || {
                    let mut pool = acquire_pool(2);
                    pool.run(|rank| {
                        if rank == 0 {
                            panic!("job blew up");
                        }
                    });
                });
            }));
            assert!(res.is_err());
        }
        // the slot came back and still works
        let mut lease = mux.lease();
        let count = AtomicU64::new(0);
        lease.install(2, || {
            let mut pool = acquire_pool(2);
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
