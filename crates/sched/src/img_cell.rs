//! Shared-image access for tile-parallel kernels.
//!
//! A tiled kernel has many workers writing *disjoint tiles* of the same
//! image concurrently. That is data-race-free by construction (the tile
//! grid partitions the image — a property-tested invariant of
//! `ezp_core::TileGrid`), but the borrow checker cannot see it across a
//! stride-y 2D layout. [`ImgCell`] encapsulates the one `unsafe` spot:
//! it erases a `&mut Img2D<T>` into a shared handle, and only exposes
//! writes through [`TileWriter`], which bounds-checks every access
//! against its tile rectangle. As long as each in-flight `TileWriter`
//! covers a distinct tile — which the dispensers guarantee by handing
//! each tile out exactly once — all writes are disjoint.

use ezp_core::{Img2D, Tile};
use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A shared, tile-writable view of an `Img2D<T>`.
pub struct ImgCell<'a, T> {
    data: &'a UnsafeCell<[T]>,
    width: usize,
    height: usize,
    _marker: PhantomData<&'a mut Img2D<T>>,
}

// SAFETY: concurrent access is restricted to disjoint tile rectangles via
// `TileWriter` (bounds-checked); reads via `get` may race with writes to
// *other tiles* only, never with writes to the same pixel.
unsafe impl<'a, T: Send + Sync> Sync for ImgCell<'a, T> {}

impl<'a, T: Copy> ImgCell<'a, T> {
    /// Wraps an exclusively borrowed image. The wrapper holds the borrow
    /// for `'a`, so no other access to the image can happen meanwhile.
    pub fn new(img: &'a mut Img2D<T>) -> Self {
        let width = img.width();
        let height = img.height();
        let slice: &'a mut [T] = img.as_mut_slice();
        // SAFETY: `UnsafeCell<[T]>` has the same layout as `[T]`.
        let data = unsafe { &*(slice as *mut [T] as *const UnsafeCell<[T]>) };
        ImgCell {
            data,
            width,
            height,
            _marker: PhantomData,
        }
    }

    /// Image width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    #[inline]
    fn ptr(&self) -> *mut T {
        self.data.get() as *mut T
    }

    /// Reads pixel `(x, y)`.
    ///
    /// Reading is safe for pixels that no concurrent `TileWriter` covers
    /// (e.g. reading the *current* image while writers fill the *next*
    /// one, or reading your own tile). Racing a read with a write to the
    /// same pixel yields an unspecified—but not undefined, `T: Copy` and
    /// the slot is always initialized—stale-or-fresh value; kernels in
    /// this workspace never do that.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(x < self.width && y < self.height, "pixel out of image");
        // SAFETY: in-bounds (checked above); disjointness per type docs.
        unsafe { *self.ptr().add(y * self.width + x) }
    }

    /// A writer restricted to `tile`'s rectangle.
    pub fn tile_writer(&self, tile: Tile) -> TileWriter<'_, 'a, T> {
        assert!(
            tile.x + tile.w <= self.width && tile.y + tile.h <= self.height,
            "tile exceeds image bounds"
        );
        TileWriter { cell: self, tile }
    }
}

/// Write access limited to one tile rectangle; every access is checked.
pub struct TileWriter<'c, 'a, T> {
    cell: &'c ImgCell<'a, T>,
    tile: Tile,
}

impl<'c, 'a, T: Copy> TileWriter<'c, 'a, T> {
    /// The tile this writer covers.
    #[inline]
    pub fn tile(&self) -> Tile {
        self.tile
    }

    /// Writes pixel `(x, y)` (absolute image coordinates).
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` lies outside this writer's tile — the guard
    /// that turns a would-be data race into a loud failure.
    #[inline]
    pub fn set(&self, x: usize, y: usize, v: T) {
        assert!(
            self.tile.contains(x, y),
            "write to ({x},{y}) outside tile ({},{},{}x{})",
            self.tile.x,
            self.tile.y,
            self.tile.w,
            self.tile.h
        );
        // SAFETY: (x,y) is inside this writer's tile; tiles of in-flight
        // writers are disjoint (see type-level docs), so no other thread
        // writes this slot.
        unsafe {
            *self.cell.ptr().add(y * self.cell.width + x) = v;
        }
    }

    /// Reads pixel `(x, y)` from anywhere in the image (stencils read
    /// neighbours outside their own tile).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        self.cell.get(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;

    #[test]
    fn sequential_tile_writes_land() {
        let mut img: Img2D<u32> = Img2D::square(8);
        let grid = TileGrid::square(8, 4).unwrap();
        {
            let cell = ImgCell::new(&mut img);
            for t in grid.iter() {
                let w = cell.tile_writer(t);
                for y in t.y..t.y + t.h {
                    for x in t.x..t.x + t.w {
                        w.set(x, y, (t.tx + 10 * t.ty) as u32);
                    }
                }
            }
        }
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(7, 0), 1);
        assert_eq!(img.get(0, 7), 10);
        assert_eq!(img.get(7, 7), 11);
    }

    #[test]
    #[should_panic(expected = "outside tile")]
    fn out_of_tile_write_panics() {
        let mut img: Img2D<u32> = Img2D::square(8);
        let grid = TileGrid::square(8, 4).unwrap();
        let cell = ImgCell::new(&mut img);
        let w = cell.tile_writer(grid.tile(0, 0));
        w.set(4, 0, 1); // first pixel of the neighbouring tile
    }

    #[test]
    #[should_panic(expected = "exceeds image bounds")]
    fn oversized_tile_rejected() {
        let mut img: Img2D<u32> = Img2D::square(8);
        let cell = ImgCell::new(&mut img);
        let bad = Tile {
            x: 4,
            y: 4,
            w: 8,
            h: 8,
            tx: 1,
            ty: 1,
        };
        let _ = cell.tile_writer(bad);
    }

    #[test]
    fn concurrent_disjoint_tiles() {
        let mut img: Img2D<u32> = Img2D::square(64);
        let grid = TileGrid::square(64, 16).unwrap();
        {
            let cell = ImgCell::new(&mut img);
            std::thread::scope(|s| {
                for t in grid.iter() {
                    let cell = &cell;
                    s.spawn(move || {
                        let w = cell.tile_writer(t);
                        for y in t.y..t.y + t.h {
                            for x in t.x..t.x + t.w {
                                w.set(x, y, grid.linear_index(t.tx, t.ty) as u32 + 1);
                            }
                        }
                    });
                }
            });
        }
        // every pixel got its tile's id
        for t in grid.iter() {
            let want = grid.linear_index(t.tx, t.ty) as u32 + 1;
            for y in t.y..t.y + t.h {
                for x in t.x..t.x + t.w {
                    assert_eq!(img.get(x, y), want);
                }
            }
        }
    }

    #[test]
    fn reads_see_prior_writes() {
        let mut img: Img2D<u32> = Img2D::filled(4, 4, 7);
        let cell = ImgCell::new(&mut img);
        assert_eq!(cell.get(3, 3), 7);
        let grid = TileGrid::square(4, 2).unwrap();
        let w = cell.tile_writer(grid.tile(0, 0));
        w.set(0, 0, 99);
        assert_eq!(w.get(0, 0), 99);
        assert_eq!(w.get(3, 3), 7); // cross-tile read
    }
}
