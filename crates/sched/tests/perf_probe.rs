//! The scheduling layer feeding `ezp-perf`: counters accumulated through
//! the real worker pool must add up exactly, and every dispenser event
//! (chunks, idle, barrier, steals) must land in the right counter.

use ezp_perf::{names, PerfProbe};
use ezp_sched::{
    parallel_for_range, parallel_for_range_probed, parallel_for_tiles, TaskGraph, WorkerPool,
};
use ezp_core::{Schedule, TileGrid};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn tile_loop_counts_sum_to_total_tasks() {
    // satellite check: concurrent increments through the pool lose
    // nothing — per-worker task counts sum to the exact tile count
    let threads = 4;
    let mut pool = WorkerPool::new(threads);
    let probe = PerfProbe::new(threads);
    let grid = TileGrid::square(64, 4).unwrap(); // 16x16 = 256 tiles
    let executed = AtomicUsize::new(0);
    for _ in 0..3 {
        parallel_for_tiles(&mut pool, &grid, Schedule::Dynamic(2), &probe, |_, _| {
            executed.fetch_add(1, Ordering::Relaxed);
        });
    }
    let snap = probe.snapshot();
    assert_eq!(executed.load(Ordering::Relaxed), 3 * 256);
    assert_eq!(snap.total(names::TASKS_EXECUTED), 3 * 256);
    assert_eq!(
        snap.get(names::TASKS_EXECUTED).unwrap().per_worker.len(),
        threads
    );
    // every worker passed the end-of-loop barrier once per loop
    assert_eq!(snap.total(names::BARRIER_WAITS), 3 * threads as u64);
    // dynamic,2 over 256 tiles: at least 128 dispenses per loop
    assert!(snap.total(names::CHUNKS_DISPENSED) >= 3 * 128);
    assert_eq!(pool.regions_run(), 3);
}

#[test]
fn range_loop_reports_chunks_and_idle() {
    let mut pool = WorkerPool::new(2);
    let probe = PerfProbe::new(2);
    let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
    parallel_for_range_probed(&mut pool, 100, Schedule::Guided(1), &probe, |i, _| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    let snap = probe.snapshot();
    // range loops have no tile brackets, but chunk/barrier events flow
    assert_eq!(snap.total(names::TASKS_EXECUTED), 0);
    assert!(snap.total(names::CHUNKS_DISPENSED) > 0);
    assert_eq!(snap.total(names::BARRIER_WAITS), 2);
    // idle_ns was measured (waiting for the dispenser takes > 0 ns)
    assert!(snap.total(names::IDLE_NS) > 0);
}

#[test]
fn uninstrumented_range_loop_still_works() {
    let mut pool = WorkerPool::new(3);
    let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
    parallel_for_range(&mut pool, 50, Schedule::Static, |i, _| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn stealing_loop_reports_steals_to_the_probe() {
    // Make rank 0's static half slow so rank 1 finishes its own block
    // and has to steal: the dispenser's counters must reach the probe.
    let mut pool = WorkerPool::new(2);
    let probe = PerfProbe::new(2);
    parallel_for_range_probed(
        &mut pool,
        8,
        Schedule::NonmonotonicDynamic(1),
        &probe,
        |i, _| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        },
    );
    let snap = probe.snapshot();
    let attempted = snap.total(names::STEALS_ATTEMPTED);
    let succeeded = snap.total(names::STEALS_SUCCEEDED);
    // both ranks attempt at least once (each ends on an empty space)
    assert!(attempted >= 2, "attempted = {attempted}");
    assert!(succeeded >= 1, "rank 1 should have stolen slow work");
    assert!(succeeded <= attempted);
}

#[test]
fn task_graph_reports_one_dispense_per_task() {
    let grid = TileGrid::square(40, 10).unwrap(); // 4x4 tasks
    let graph = TaskGraph::down_right_wavefront(&grid);
    let mut pool = WorkerPool::new(3);
    let probe = PerfProbe::new(3);
    let done = AtomicUsize::new(0);
    graph
        .run_probed(&mut pool, &probe, |_, _| {
            done.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    let snap = probe.snapshot();
    assert_eq!(done.load(Ordering::Relaxed), 16);
    assert_eq!(snap.total(names::CHUNKS_DISPENSED), 16);
    // the wavefront forces workers to park while the frontier is narrow
    // (not asserted > 0: with a fast body the queue may never be empty)
    assert!(snap.total(names::TASK_WAITS) <= 1000);
}
