//! # ezp-bench — the figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (there are no
//! numbered tables): `cargo run --release -p ezp-bench --bin fig06_speedup`
//! prints the same rows/series the paper reports. The mapping
//! figure → binary lives in `DESIGN.md`; measured-vs-paper numbers are
//! recorded in `EXPERIMENTS.md`.
//!
//! This library holds the shared workload builders so that every figure
//! binary uses identical parameters.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use ezp_core::{Schedule, TileGrid};
use ezp_kernels::mandel::{self, Viewport};
use ezp_simsched::CostMap;

/// The thread counts of the paper's Fig. 6 sweep (`range(2, 13, 2)`).
pub fn paper_thread_counts() -> Vec<usize> {
    (2..=12).step_by(2).collect()
}

/// The four scheduling policies of Fig. 4 / Fig. 6.
pub fn paper_schedules() -> [Schedule; 4] {
    Schedule::paper_policies()
}

/// The exact Mandelbrot cost map for `dim`×`dim` pixels with
/// `tile`×`tile` tiles: per-tile cost = summed escape iterations, the
/// deterministic stand-in for the paper's measured per-tile times.
pub fn mandel_cost_map(dim: usize, tile: usize, max_iter: u32) -> CostMap {
    let view = Viewport::default();
    let grid = TileGrid::square(dim, tile).expect("valid geometry");
    CostMap::from_fn(grid, |t| mandel::tile_cost(&view, t, dim, max_iter).max(1))
}

/// Blur cost map (Fig. 9b): uniform per-pixel cost with heavier border
/// tiles (`penalty`x, modelling the branchy non-vectorized path).
pub fn blur_cost_map(dim: usize, tile: usize, penalty: u64) -> CostMap {
    let grid = TileGrid::square(dim, tile).expect("valid geometry");
    CostMap::from_fn(grid, |t| ezp_kernels::blur::tile_cost(t, dim, penalty))
}

/// Standard header printed by every figure binary.
pub fn banner(fig: &str, what: &str) {
    println!("================================================================");
    println!("  {fig} — {what}");
    println!("  easypap-rs reproduction (virtual-time where noted; see DESIGN.md)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        assert_eq!(paper_thread_counts(), vec![2, 4, 6, 8, 10, 12]);
        assert_eq!(paper_schedules().len(), 4);
    }

    #[test]
    fn mandel_cost_map_is_imbalanced() {
        let m = mandel_cost_map(128, 16, 256);
        assert_eq!(m.len(), 64);
        assert!(m.imbalance_cv() > 0.5, "cv = {}", m.imbalance_cv());
    }

    #[test]
    fn blur_cost_map_matches_fig9b() {
        let m = blur_cost_map(64, 16, 10);
        // corner tile is border: 10x the inner cost
        assert_eq!(m.cost_at(0, 0), 10 * m.cost_at(1, 1));
    }
}
