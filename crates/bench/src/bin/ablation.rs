//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Three sweeps, all deterministic (virtual time over the exact mandel
//! cost map):
//!
//! 1. **dispatch overhead × chunk size** — why `dynamic,1` is not free:
//!    the per-chunk cost the simulator's `dispatch_overhead_ns` models
//!    eats the balancing gains when chunks get tiny;
//! 2. **steal granularity** — the `nonmonotonic:dynamic` work-stealing
//!    chunk (`k`): steal-half-ranges with local chunks of `k`;
//! 3. **tile size (grain)** — the Fig. 6 grain-16-vs-32 contrast pushed
//!    across the whole range: too-coarse tiles can't balance, too-fine
//!    tiles drown in dispatch overhead.

use ezp_bench::{banner, mandel_cost_map};
use ezp_core::Schedule;
use ezp_simsched::{simulate, SimConfig};

fn main() {
    banner("ablation", "scheduling design-choice sweeps (virtual time)");
    let dim = 512;
    let threads = 8;

    // 1) dispatch overhead x dynamic chunk size
    println!("== 1) speedup of dynamic,k under per-chunk dispatch overhead (P={threads}) ==");
    let costs = mandel_cost_map(dim, 16, 512);
    print!("{:>14}", "overhead\\k:");
    let chunks = [1usize, 2, 4, 8, 16];
    for k in chunks {
        print!("{k:>8}");
    }
    println!();
    for overhead in [0u64, 100, 500, 2000, 10000] {
        print!("{overhead:>12}ns");
        for k in chunks {
            let sim = simulate(&costs, SimConfig::new(threads, Schedule::Dynamic(k)).overhead(overhead));
            print!("{:>8.2}", sim.speedup());
        }
        println!();
    }
    println!("(read: with costly dispatch, bigger chunks win; at zero overhead, k=1 is unbeatable)\n");

    // 2) steal granularity for nonmonotonic:dynamic
    println!("== 2) nonmonotonic:dynamic steal/local chunk k (P={threads}, overhead 200ns) ==");
    for k in [1usize, 2, 4, 8, 16, 32] {
        let sim = simulate(
            &costs,
            SimConfig::new(threads, Schedule::NonmonotonicDynamic(k)).overhead(200),
        );
        println!("  k={k:<3} speedup {:.2}", sim.speedup());
    }
    println!();

    // 3) tile size (grain) sweep at fixed schedule
    println!("== 3) grain sweep, dynamic,2 with 200ns dispatch overhead (P={threads}) ==");
    println!("{:>8} {:>8} {:>10} {:>8}", "grain", "tiles", "imbal(cv)", "speedup");
    for grain in [8usize, 16, 32, 64, 128, 256] {
        let costs = mandel_cost_map(dim, grain, 512);
        let sim = simulate(&costs, SimConfig::new(threads, Schedule::Dynamic(2)).overhead(200));
        println!(
            "{grain:>8} {:>8} {:>10.2} {:>8.2}",
            costs.len(),
            costs.imbalance_cv(),
            sim.speedup()
        );
    }
    println!(
        "(the sweet spot sits between \"enough tiles to balance\" and \"not so\n\
         many that dispatch dominates\" — the trade-off behind the paper's\n\
         grain-16-vs-32 panels)"
    );
}
