//! What-if extrapolation: measure once, simulate any machine.
//!
//! Records a *real* single-threaded trace of a kernel on this host,
//! converts the measured per-tile durations into a cost map
//! ([`ezp_simsched::CostMap::from_trace`]), and replays it on simulated
//! machines with 2..12 CPUs under every scheduling policy. This is the
//! glue that makes the paper's speedup methodology (Fig. 6) available
//! to students whose laptop has fewer cores than the lab machine.

use ezp_bench::{banner, paper_schedules, paper_thread_counts};
use ezp_core::kernel::Probe;
use ezp_core::perf::run_kernel;
use ezp_core::{RunConfig, Schedule};
use ezp_monitor::Monitor;
use ezp_simsched::{simulate, CostMap, SimConfig};
use ezp_trace::{Trace, TraceMeta};
use std::sync::Arc;

fn measure(kernel: &str, variant: &str, dim: usize, tile: usize) -> Trace {
    let cfg = RunConfig::new(kernel)
        .variant(variant)
        .size(dim)
        .tile(tile)
        .iterations(1)
        .threads(1)
        .schedule(Schedule::Dynamic(1));
    let reg = ezp_kernels::registry();
    let monitor = Arc::new(Monitor::new(1, cfg.grid().unwrap()));
    run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>).unwrap();
    Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report())
}

fn main() {
    banner("what-if", "measured trace -> simulated machines");
    for (kernel, variant, dim, tile) in [
        ("mandel", "tiled", 512usize, 16usize),
        ("blur", "omp_tiled_opt", 512, 32),
    ] {
        println!("\n== {kernel}/{variant} {dim}x{dim}, tiles {tile}x{tile} (measured on this host, 1 thread) ==");
        let trace = measure(kernel, variant, dim, tile);
        let costs = CostMap::from_trace(&trace, 1).expect("geometry is valid");
        println!(
            "measured sequential time {} over {} tiles, imbalance cv {:.2}",
            ezp_core::time::format_duration_ns(costs.total()),
            costs.len(),
            costs.imbalance_cv()
        );
        print!("{:>24}", "threads:");
        for t in paper_thread_counts() {
            print!("{t:>7}");
        }
        println!();
        for schedule in paper_schedules() {
            print!("{:>24}", schedule.as_omp_str());
            for threads in paper_thread_counts() {
                let sim = simulate(&costs, SimConfig::new(threads, schedule).overhead(200));
                print!("{:>7.2}", costs.total() as f64 / sim.makespan_ns.max(1) as f64);
            }
            println!();
        }
    }
    println!(
        "\n(mandel: imbalanced -> static falls behind; blur: near-uniform\n\
         tiles -> every policy scales, the Fig. 6 contrast from measured data)"
    );
}
