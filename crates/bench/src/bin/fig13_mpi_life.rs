//! Fig. 13 — MPI Game of Life in debugging mode.
//!
//! "The monitoring windows reveal that each process contains 4 threads
//! and works on half of the image. Most importantly, since the sparse
//! dataset consists in planers evolving along the diagonals of the
//! image, we can check that only tiles located near diagonals are
//! computed." Reruns that session: 2 ranks x 4 threads, lazy tiles,
//! diagonal gliders; prints each rank's tiling window and quantifies
//! the diagonal locality.

use ezp_bench::banner;
use ezp_core::{Kernel, KernelCtx, RunConfig, TileGrid};
use ezp_kernels::life::Life;

fn main() {
    banner("Fig. 13", "life mpi_omp: per-rank monitoring windows");
    let dim = 512;
    let tile = 32;
    let mut cfg = RunConfig::new("life")
        .variant("mpi_omp")
        .size(dim)
        .tile(tile)
        .iterations(10)
        .threads(4);
    cfg.mpi_ranks = 2;
    cfg.kernel_arg = Some("gliders:64".to_string());
    cfg.debug_mpi = true;
    println!(
        "workload: life {dim}x{dim}, tiles {tile}x{tile}, 2 MPI ranks x 4 threads, sparse diagonal gliders\n"
    );

    let mut kernel = Life::default();
    let mut ctx = KernelCtx::new(cfg).unwrap();
    kernel.init(&mut ctx).unwrap();
    let live0 = kernel.board().live_count();
    kernel.compute(&mut ctx, "mpi_omp", 10).unwrap();
    println!("live cells: {live0} -> {}\n", kernel.board().live_count());

    let grid = TileGrid::square(dim, tile).unwrap();
    let mut computed_total = 0usize;
    let mut near_diag_total = 0usize;
    for (rank, report) in kernel.last_mpi_reports.iter().enumerate() {
        let it = report.iterations.last().map(|s| s.iteration).unwrap_or(1);
        let snap = report.tiling_snapshot(it);
        println!("--- monitoring window of MPI process {rank} (iteration {it}) ---");
        print!("{}", snap.to_ascii());
        let halves: (usize, usize) = grid.iter().fold((0, 0), |(top, bot), t| {
            if snap.owner(t.tx, t.ty).is_some() {
                if t.ty < grid.tiles_y() / 2 {
                    (top + 1, bot)
                } else {
                    (top, bot + 1)
                }
            } else {
                (top, bot)
            }
        });
        println!(
            "computed tiles: {} (top half {}, bottom half {})\n",
            snap.computed_tiles(),
            halves.0,
            halves.1
        );
        for t in grid.iter() {
            if snap.owner(t.tx, t.ty).is_some() {
                computed_total += 1;
                let main = (t.tx as i64 - t.ty as i64).abs() <= 1;
                let anti = (t.tx as i64 + t.ty as i64 - grid.tiles_x() as i64 + 1).abs() <= 2;
                if main || anti {
                    near_diag_total += 1;
                }
            }
        }
    }
    println!(
        "tiles computed near a diagonal: {near_diag_total}/{computed_total} ({:.0}%)",
        100.0 * near_diag_total as f64 / computed_total.max(1) as f64
    );
    println!(
        "lazy-evaluation saving: {}/{} tiles skipped per iteration on average",
        grid.len() * 2 - computed_total,
        grid.len() * 2
    );
    println!(
        "\npaper's checks: (1) each rank's window only shows activity in its\n\
         half; (2) activity hugs the diagonals — both visible above."
    );
}
