//! Fig. 5 — the experiments-automation script, executed for real.
//!
//! The paper's `expTools` script sweeps mandel `omp_tiled` over grains
//! {16, 32}, `OMP_NUM_THREADS` in 2..12 step 2 and four schedules, 10
//! runs each. This binary executes the same sweep (scaled down to stay
//! laptop-friendly: dim 256, 2 iterations, 3 runs — override via env
//! `EZP_FULL=1` for the paper-size version) and leaves `fig05.csv`
//! behind for `easyplot`.

use ezp_bench::banner;
use ezp_exp::Sweep;

fn main() {
    banner("Fig. 5", "expTools sweep -> CSV");
    let full = std::env::var("EZP_FULL").is_ok();
    let (dim, iterations, runs) = if full { (1024, 10, 10) } else { (256, 2, 3) };
    let threads: Vec<String> = (2..=12).step_by(2).map(|t| t.to_string()).collect();

    let sweep = Sweep::new()
        .fixed("--kernel", "mandel")
        .fixed("--variant", "omp_tiled")
        .fixed("--size", dim)
        .fixed("--iterations", iterations)
        .set("--grain", [16, 32])
        .set("--threads", threads)
        .set(
            "--schedule",
            ["static", "guided", "dynamic,2", "nonmonotonic:dynamic"],
        )
        .runs(runs);
    println!(
        "sweep: {} configurations x {runs} runs (dim {dim}, {iterations} iterations){}",
        sweep.combinations(),
        if full { " [FULL]" } else { " [scaled; EZP_FULL=1 for paper size]" }
    );
    let csv = "fig05.csv";
    let _ = std::fs::remove_file(csv);
    let outcomes = sweep.execute(&ezp_kernels::registry(), csv).unwrap();
    let total_ms: u64 = outcomes.iter().map(|o| o.elapsed_ns / 1_000_000).sum();
    println!(
        "{} runs completed in {total_ms} ms total -> {csv}",
        outcomes.len()
    );
    println!("\nplot it:  easyplot --input {csv} --kernel mandel --speedup");
}
