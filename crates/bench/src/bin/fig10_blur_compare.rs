//! Fig. 10 — trace comparison: basic vs optimized blur.
//!
//! "This later version is approximately 3 times faster in this setup
//! (iteration 3 with the basic version is as long as iterations [7..9]
//! with the optimized version)... many tasks are approximately 10 times
//! faster than their original version... short durations do always
//! correspond to inner tiles." Real wall-clock measurement (run with
//! `--release`; absolute factors depend on the host's vectorizer, the
//! *direction* and the inner-tile attribution are the reproduced shape).

use ezp_bench::banner;
use ezp_core::kernel::Probe;
use ezp_core::perf::run_kernel;
use ezp_core::{RunConfig, Schedule};
use ezp_monitor::Monitor;
use ezp_trace::{Trace, TraceMeta};
use ezp_view::{GanttModel, TraceComparison};
use std::sync::Arc;

fn traced(variant: &str, dim: usize, tile: usize, iters: u32) -> Trace {
    let cfg = RunConfig::new("blur")
        .variant(variant)
        .size(dim)
        .tile(tile)
        .iterations(iters)
        .threads(2)
        .schedule(Schedule::Dynamic(2));
    let reg = ezp_kernels::registry();
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid().unwrap()));
    run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>).unwrap();
    Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report())
}

fn main() {
    banner("Fig. 10", "blur basic vs optimized trace comparison");
    let (dim, tile, iters) = (1024, 32, 9);
    println!("workload: blur {dim}x{dim}, tiles {tile}x{tile}, {iters} iterations, 2 threads\n");

    let basic = traced("omp_tiled", dim, tile, iters);
    let opt = traced("omp_tiled_opt", dim, tile, iters);
    let cmp = TraceComparison::new(&basic, &opt).unwrap();

    println!("{}\n", cmp.summary());
    println!("{:>10} {:>12} {:>12} {:>8}", "iteration", "basic", "optimized", "ratio");
    for (it, b, o) in cmp.per_iteration() {
        println!(
            "{:>10} {:>12} {:>12} {:>7.2}x",
            it,
            ezp_core::time::format_duration_ns(b),
            ezp_core::time::format_duration_ns(o),
            b as f64 / o.max(1) as f64
        );
    }

    // the ">= 5x faster tasks are inner tiles" claim
    let grid = basic.meta.grid().unwrap();
    for threshold in [3.0, 5.0, 10.0] {
        let fast = cmp.tasks_faster_than(threshold);
        let inner = fast
            .iter()
            .filter(|t| !grid.tile_of_pixel(t.x, t.y).is_border(&grid))
            .count();
        println!(
            "tasks >= {threshold:>4.1}x faster: {:>4}   of which inner tiles: {:>4} ({:.0}%)",
            fast.len(),
            inner,
            if fast.is_empty() { 0.0 } else { 100.0 * inner as f64 / fast.len() as f64 }
        );
    }

    // the paper's specific cross-check: iteration 3 basic ~= iterations 7..9 optimized
    let b3 = cmp
        .per_iteration()
        .iter()
        .find(|(it, _, _)| *it == 3)
        .map(|&(_, b, _)| b)
        .unwrap_or(0);
    let o789: u64 = cmp
        .per_iteration()
        .iter()
        .filter(|(it, _, _)| (7..=9).contains(it))
        .map(|&(_, _, o)| o)
        .sum();
    println!(
        "\npaper's caption check: basic iteration 3 = {}, optimized iterations 7..9 = {} (ratio {:.2})",
        ezp_core::time::format_duration_ns(b3),
        ezp_core::time::format_duration_ns(o789),
        b3 as f64 / o789.max(1) as f64
    );

    // stacked Gantt charts, like the figure
    println!("\n--- basic, iterations 7..9 ---");
    print!("{}", GanttModel::new(&basic, 7, 9).to_ascii(100));
    println!("--- optimized, iterations 7..9 ---");
    print!("{}", GanttModel::new(&opt, 7, 9).to_ascii(100));
    ezp_trace::io::save(&basic, "fig10_basic.ezv").unwrap();
    ezp_trace::io::save(&opt, "fig10_opt.ezv").unwrap();
    println!("traces -> fig10_basic.ezv / fig10_opt.ezv (explore with easyview --compare)");
}
