//! Fig. 8 — the two dynamic-scheduling patterns on small tiles.
//!
//! "Pattern 1 reveals horizontal stripes of the same color together
//! with a few stripes featuring an alternation of two colors... Pattern
//! 2 features a quasi-perfect cyclic distribution of colors" — both on
//! mandel with `schedule(dynamic)` and small tiles. This binary prints
//! the tiling window and quantifies both patterns.

use ezp_bench::{banner, mandel_cost_map};
use ezp_core::Schedule;
use ezp_simsched::{simulate, SimConfig};
use ezp_view::patterns;

fn main() {
    banner("Fig. 8", "dynamic scheduling patterns (stripes + cyclic)");
    let dim = 512;
    let tile = 16; // small tiles: 32x32 grid
    let threads = 6;
    let costs = mandel_cost_map(dim, tile, 1024);
    println!(
        "workload: mandel {dim}x{dim}, tiles {tile}x{tile}, {threads} CPUs, schedule(dynamic,1)\n"
    );

    let sim = simulate(&costs, SimConfig::new(threads, Schedule::Dynamic(1)).overhead(0));
    let report = sim.to_report(&costs, "mandel", "omp_tiled");
    let snap = report.tiling_snapshot(1);
    print!("{}", snap.to_ascii());

    let grid = costs.grid();
    let owners = snap.owners().to_vec();
    println!("\n--- Pattern 1: stripes ---");
    println!(
        "rows handled by a single thread: {}",
        patterns::striped_rows(&snap, 1)
    );
    println!(
        "rows handled by at most two threads: {}",
        patterns::striped_rows(&snap, 2)
    );
    println!(
        "longest same-thread run: {} tiles (grid row = {} tiles)",
        patterns::max_run_length(&owners),
        grid.tiles_x()
    );

    println!("\n--- Pattern 2: cyclic distribution in the uniform-cost area ---");
    let heavy = (costs.max() as f64 * 0.9) as u64;
    let heavy_owners: Vec<Option<usize>> = (0..grid.len())
        .map(|i| {
            if costs.cost(i) >= heavy {
                owners[i]
            } else {
                None
            }
        })
        .collect();
    let n_heavy = heavy_owners.iter().flatten().count();
    println!(
        "tiles in the heavy (interior) area: {n_heavy}; cyclic score at period {threads}: {:.2}",
        patterns::cyclic_score(&heavy_owners, threads)
    );
    for period in [threads - 1, threads, threads + 1] {
        println!(
            "  cyclic score at period {period}: {:.2}{}",
            patterns::cyclic_score(&heavy_owners, period),
            if period == threads { "  <= should peak here" } else { "" }
        );
    }
    println!(
        "\npaper's reading: cheap areas produce long same-color stripes (a few\n\
         threads race through them while the rest are stuck in the set);\n\
         equal-cost areas make dynamic degenerate into a round-robin."
    );
}
