//! Fig. 7 — EASYVIEW: Gantt chart + task/tile linking.
//!
//! Records a real (wall-clock) trace of mandel `omp_tiled`, then drives
//! the EASYVIEW interactions the figure shows: the per-CPU Gantt chart,
//! the hover bubble with a task's duration, and the vertical mouse mode
//! that maps a time to the set of tiles being computed.

use ezp_bench::banner;
use ezp_core::kernel::Probe;
use ezp_core::perf::run_kernel;
use ezp_core::{RunConfig, Schedule};
use ezp_monitor::Monitor;
use ezp_trace::{Trace, TraceMeta};
use ezp_view::GanttModel;
use std::sync::Arc;

fn main() {
    banner("Fig. 7", "EASYVIEW Gantt chart with task/tile linking");
    let cfg = RunConfig::new("mandel")
        .variant("omp_tiled")
        .size(256)
        .tile(32)
        .iterations(10)
        .threads(4)
        .schedule(Schedule::Dynamic(2));
    let reg = ezp_kernels::registry();
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid().unwrap()));
    let (outcome, _ctx) = run_kernel(&reg, cfg.clone(), monitor.clone() as Arc<dyn Probe>).unwrap();
    println!("{}\n", outcome.summary());
    let trace = Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report());
    ezp_trace::io::save(&trace, "fig07.ezv").unwrap();
    println!("trace -> fig07.ezv ({} tasks)\n", trace.tasks.len());

    // the Gantt chart for a selectable iteration range
    let gantt = GanttModel::new(&trace, 3, 5);
    println!("--- Gantt chart, iterations 3..5 ---");
    print!("{}", gantt.to_ascii(100));
    std::fs::write("fig07_gantt.svg", gantt.to_svg(1000.0, 26.0)).unwrap();
    println!("-> fig07_gantt.svg\n");

    // hover bubble: "moving the mouse over a task displays its duration"
    let longest = gantt
        .tasks()
        .iter()
        .max_by_key(|t| t.duration_ns())
        .expect("tasks recorded");
    println!("hover on the longest task: {}", GanttModel::bubble(longest));

    // vertical mouse mode: tasks (and their tiles) crossing a time
    let mid = gantt.t0 + (gantt.t1 - gantt.t0) / 2;
    let crossing = gantt.tasks_at_time(mid);
    println!(
        "\nvertical mouse mode at t = midpoint: {} tasks in flight",
        crossing.len()
    );
    for t in &crossing {
        println!("  highlighted tile ({:>3},{:>3}) {}x{} on CPU {}", t.x, t.y, t.w, t.h, t.worker);
    }
    println!(
        "\n(sweeping the mouse left->right replays the order in which tiles\n\
         were computed, exactly the Fig. 7 interaction)"
    );
}
