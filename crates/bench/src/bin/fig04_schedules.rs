//! Fig. 4 — tile→thread assignment under the four scheduling policies.
//!
//! "(a) the static clause evenly distributes tiles to threads in
//! contiguous chunks; (b) reveals the opportunistic nature of the
//! dynamic clause; (c) nonmonotonic: tiles are first distributed in a
//! static manner, but work-stealing is eventually used to correct load
//! imbalance; (d) chunks assigned to threads decrease over time with
//! guided." This binary prints the four tiling windows over the exact
//! mandel workload plus the per-policy signatures as numbers.

use ezp_bench::{banner, mandel_cost_map, paper_schedules};
use ezp_core::Schedule;
use ezp_simsched::{simulate, SimConfig};
use ezp_view::patterns;

fn main() {
    banner("Fig. 4", "tiling windows per scheduling policy");
    let dim = 512;
    let tile = 32; // 16x16 tile grid, like the figure
    let threads = 6;
    let costs = mandel_cost_map(dim, tile, 512);
    println!("workload: mandel {dim}x{dim}, tiles {tile}x{tile}, {threads} CPUs\n");

    for schedule in paper_schedules() {
        let sim = simulate(&costs, SimConfig::new(threads, schedule));
        let report = sim.to_report(&costs, "mandel", "omp_tiled");
        let snap = report.tiling_snapshot(1);
        let owners = snap.owners().to_vec();
        println!("--- schedule({schedule}) ---");
        print!("{}", snap.to_ascii());
        println!(
            "max same-thread run: {:<4} mean run: {:<6.2} cyclic score (period {threads}): {:.2}  speedup: {:.2}\n",
            patterns::max_run_length(&owners),
            patterns::mean_run_length(&owners),
            patterns::cyclic_score(&owners, threads),
            sim.speedup(),
        );
    }

    // the per-policy signatures the figure teaches, as assertions
    let sig = |s: Schedule| {
        let sim = simulate(&costs, SimConfig::new(threads, s));
        let snap = sim
            .to_report(&costs, "mandel", "omp_tiled")
            .tiling_snapshot(1);
        patterns::max_run_length(snap.owners())
    };
    let tiles_per_thread = costs.len() / threads;
    println!("signatures:");
    println!(
        "  static: longest run {} (= full contiguous block of ~{} tiles)",
        sig(Schedule::Static),
        tiles_per_thread
    );
    println!(
        "  dynamic,2: longest run {} (short opportunistic chunks)",
        sig(Schedule::Dynamic(2))
    );
    println!(
        "  nonmonotonic: longest run {} (static blocks, later split by steals)",
        sig(Schedule::NonmonotonicDynamic(1))
    );
    println!(
        "  guided: longest run {} (big first chunks, shrinking tail)",
        sig(Schedule::Guided(1))
    );
}
