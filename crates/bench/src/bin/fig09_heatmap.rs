//! Fig. 9 — heat-map mode: (a) mandel, (b) blur.
//!
//! "The brighter an area is, the more time-consuming it is. On picture
//! (a) we can distinguish the shape of the Mandelbrot set... On picture
//! (b), border tiles take a longer time to be processed than inner
//! tiles." Both panels are reproduced from *real measured* kernel runs
//! (wall-clock per-tile durations), rendered as ASCII heat maps, and
//! quantified.

use ezp_bench::banner;
use ezp_core::kernel::Probe;
use ezp_core::perf::run_kernel;
use ezp_core::{RunConfig, Schedule};
use ezp_monitor::{HeatMap, Monitor};
use std::sync::Arc;

fn measured_heat(kernel: &str, variant: &str, dim: usize, tile: usize) -> HeatMap {
    let cfg = RunConfig::new(kernel)
        .variant(variant)
        .size(dim)
        .tile(tile)
        .iterations(2)
        .threads(2)
        .schedule(Schedule::Dynamic(2));
    let reg = ezp_kernels::registry();
    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid().unwrap()));
    run_kernel(&reg, cfg, monitor.clone() as Arc<dyn Probe>).unwrap();
    monitor.report().heat_map(2)
}

fn main() {
    banner("Fig. 9", "heat maps: (a) mandel set shape, (b) blur borders");

    // (a) mandel: the set's interior glows
    println!("--- (a) mandel omp_tiled, 256x256, tiles 16x16 ---");
    let mandel = measured_heat("mandel", "omp_tiled", 256, 16);
    print!("{}", mandel.to_ascii());
    let img = mandel.to_image(4);
    std::fs::write("fig09a_mandel_heat.ppm", img.to_ppm()).unwrap();
    println!(
        "max tile {:.1}x the mean — the bright region IS the Mandelbrot set\n-> fig09a_mandel_heat.ppm\n",
        mandel.max_duration() as f64 / mandel.mean_duration().max(1.0)
    );

    // (b) the *optimized* blur: the paper's panel shows the heat map
    // "after implementing this optimization" — inner tiles now run the
    // branch-free fast path, so the borders glow
    println!("--- (b) blur omp_tiled_opt (border-specialized), 256x256, tiles 32x32 ---");
    let opt = measured_heat("blur", "omp_tiled_opt", 256, 32);
    print!("{}", opt.to_ascii());
    match opt.border_inner_ratio() {
        Some(r) => println!("border/inner mean duration: x{r:.2} (paper: borders slower)"),
        None => println!("grid too small for inner tiles"),
    }
    std::fs::write("fig09b_blur_heat.ppm", opt.to_image(4).to_ppm()).unwrap();
    println!("-> fig09b_blur_heat.ppm\n");

    // contrast with the unoptimized variant, whose map is flat-ish
    let basic = measured_heat("blur", "omp_tiled", 256, 32);
    if let (Some(basic_r), Some(opt_r)) = (basic.border_inner_ratio(), opt.border_inner_ratio()) {
        println!(
            "border/inner ratio, basic vs optimized: x{basic_r:.2} -> x{opt_r:.2}\n\
             (before the optimization every tile runs the same branchy code, so\n\
             the map is nearly flat; specializing the inner tiles makes the\n\
             borders stand out — exactly what students check in Fig. 9b)"
        );
    }
}
