//! Fig. 6 — speedup vs threads, grain 16 and 32, four policies.
//!
//! The paper's graph: mandel, dim=1024, 10 iterations, threads 2..12
//! (step 2), `OMP_SCHEDULE` in {static, guided, dynamic,2,
//! nonmonotonic:dynamic}, two panels (grain 16 / grain 32), speedup
//! against the sequential refTime. This binary prints both panels as
//! tables, writes `fig06.csv` (the raw data, easyplot-compatible) and
//! `fig06_grain{16,32}.svg` (the graphs).
//!
//! Virtual time: per-tile costs are the exact Mandelbrot iteration
//! counts, executed by the discrete-event scheduler (DESIGN.md).

use ezp_bench::{banner, mandel_cost_map, paper_schedules, paper_thread_counts};
use ezp_core::csv::CsvTable;
use ezp_plot::{render_svg, Dataset};
use ezp_simsched::analysis::speedup_curve;

fn main() {
    banner("Fig. 6", "mandel speedup vs threads, grain 16 & 32");
    let dim = 1024;
    let iterations = 10;
    let max_iter = 512;
    let threads = paper_thread_counts();
    let overhead_ns = 200; // per-chunk dispatch cost (virtual)

    let mut csv = CsvTable::new(vec![
        "kernel", "variant", "dim", "grain", "schedule", "threads", "speedup",
    ]);

    for grain in [16usize, 32] {
        let costs = mandel_cost_map(dim, grain, max_iter);
        println!(
            "\n== grain = {grain} (refTime = {} virtual ns sequential) ==",
            costs.total() * iterations as u64
        );
        print!("{:>24}", "threads:");
        for t in &threads {
            print!("{t:>7}");
        }
        println!();
        for schedule in paper_schedules() {
            let curve = speedup_curve(&costs, schedule, &threads, iterations, overhead_ns);
            print!("{:>24}", schedule.as_omp_str());
            for p in &curve {
                print!("{:>7.2}", p.speedup);
                csv.push_row(vec![
                    "mandel".to_string(),
                    "omp_tiled".to_string(),
                    dim.to_string(),
                    grain.to_string(),
                    schedule.as_omp_str(),
                    p.threads.to_string(),
                    format!("{:.4}", p.speedup),
                ])
                .unwrap();
            }
            println!();
        }
        // SVG panel, legend auto-generated like easyplot
        let panel = csv.filter(|r| r.get("grain") == Some(&grain.to_string()));
        if let Ok(data) = Dataset::from_table(&panel, "threads", "speedup", &[]) {
            let path = format!("fig06_grain{grain}.svg");
            std::fs::write(&path, render_svg(&data, 640.0, 420.0)).unwrap();
            println!("  -> {path}");
        }
    }
    csv.save("fig06.csv").unwrap();
    println!("\nraw data -> fig06.csv");
    println!(
        "\npaper's shape to verify: dynamic,2 and nonmonotonic:dynamic on top,\n\
         guided close behind, static clearly below (its contiguous blocks\n\
         cannot balance the Mandelbrot interior); grain 16 slightly better\n\
         than grain 32 for the dynamic policies at high thread counts."
    );
}
