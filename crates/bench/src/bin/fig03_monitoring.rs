//! Fig. 3 — the monitoring windows under a static schedule.
//!
//! "In Fig. 3, we clearly observe a load imbalance between CPUs. The
//! static distribution of tiles is indeed inappropriate because the
//! large black area ... involves much more computations than other
//! areas." This binary reruns that session: mandel `omp_tiled`,
//! `schedule(static)`, monitoring on, and prints the Activity Monitor
//! (per-CPU loads + cumulated idleness) and Tiling window, plus the
//! imbalance numbers that the paper reads off the screen.

use ezp_bench::{banner, mandel_cost_map};
use ezp_core::Schedule;
use ezp_simsched::{simulate_iterations, SimConfig};

fn main() {
    banner("Fig. 3", "Activity Monitor + Tiling window, mandel static");
    let dim = 512;
    let tile = 32;
    let threads = 6;
    let costs = mandel_cost_map(dim, tile, 512);
    println!(
        "workload: mandel {dim}x{dim}, tiles {tile}x{tile}, {threads} CPUs, schedule(static)\n"
    );

    let sim = simulate_iterations(&costs, SimConfig::new(threads, Schedule::Static), 3);
    let report = sim.to_report(&costs, "mandel", "omp_tiled");

    println!("--- Activity Monitor ---");
    print!("{}", ezp_monitor::activity::render_report(&report));

    let snap = report.tiling_snapshot(1);
    println!("\n--- Tiling window (iteration 1) ---");
    print!("{}", snap.to_ascii());

    let stats = report.iteration_stats(1).unwrap();
    let loads: Vec<String> = (0..threads).map(|w| format!("{:.0}%", stats.load(w) * 100.0)).collect();
    println!("\nper-CPU load: {}", loads.join(" "));
    println!("imbalance (max/mean busy): {:.2}", stats.imbalance());
    println!(
        "\npaper's observation: static chunks give the CPUs owning the black\n\
         area far more work — the load bars above should be visibly uneven\n\
         (imbalance well above 1.0). Speedup at {threads} CPUs: {:.2} (ideal {threads}).",
        sim.speedup()
    );
}
