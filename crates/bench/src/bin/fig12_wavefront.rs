//! Fig. 11/12 — task dependencies: the ccomp wavefront.
//!
//! Fig. 11 is the `#pragma omp task depend(...)` snippet — here the
//! [`ezp_sched::TaskGraph`] wavefront builders. Fig. 12 shows EASYVIEW
//! "visualizing the wave of tasks moving forward": three snapshots of
//! completed tiles while sweeping the mouse across the Gantt chart.
//! A correct dependency implementation shows a diagonal frontier; an
//! over-constrained one (the student failure mode) degenerates to a
//! sequential staircase, which the parallelism metric below exposes.

use ezp_bench::banner;
use ezp_core::kernel::Probe;
use ezp_core::{Kernel, KernelCtx, RunConfig};
use ezp_kernels::ccomp::CComp;
use ezp_monitor::Monitor;
use ezp_trace::{Trace, TraceMeta};
use ezp_view::GanttModel;
use std::sync::Arc;

fn main() {
    banner("Fig. 11/12", "ccomp task-dependency wavefront");
    let mut cfg = RunConfig::new("ccomp").size(256).tile(16).threads(4);
    cfg.seed = 42;
    println!("workload: ccomp 256x256, tiles 16x16 (16x16 grid), 4 threads\n");

    let monitor = Arc::new(Monitor::new(cfg.threads, cfg.grid().unwrap()));
    let mut ctx = KernelCtx::new(cfg.clone())
        .unwrap()
        .with_probe(monitor.clone() as Arc<dyn Probe>);
    let mut kernel = CComp::default();
    kernel.init(&mut ctx).unwrap();
    let converged = kernel.compute(&mut ctx, "taskdep", 500).unwrap();
    println!("converged after {:?} iterations\n", converged);

    let trace = Trace::from_report(TraceMeta::from_config(&cfg), &monitor.report());
    let grid = cfg.grid().unwrap();
    let gantt = GanttModel::new(&trace, 1, 1);

    // Fig. 12: completed tiles at three mouse positions
    for percent in [20u64, 50, 80] {
        let t = gantt.t0 + (gantt.t1 - gantt.t0) * percent / 100;
        println!("--- mouse at {percent}% of iteration 1 ---");
        for ty in 0..grid.tiles_y() {
            let row: String = (0..grid.tiles_x())
                .map(|tx| {
                    let done = gantt.tasks().iter().any(|task| {
                        task.end_ns <= t
                            && grid.tile_of_pixel(task.x, task.y) == grid.tile(tx, ty)
                    });
                    if done {
                        '#'
                    } else {
                        '.'
                    }
                })
                .collect();
            println!("{row}");
        }
        println!();
    }

    // quantify the parallelism the dependencies allow. Wall-clock
    // overlap is meaningless on a single-CPU host, so the claim is
    // checked in virtual time: the same task graph, list-scheduled on 4
    // virtual CPUs (DESIGN.md substitution).
    use ezp_sched::TaskGraph;
    use ezp_simsched::simulate_taskgraph;
    let graph = TaskGraph::down_right_wavefront(&grid);
    let costs = vec![100u64; grid.len()];
    let sim = simulate_taskgraph(&graph, &costs, 4);
    println!(
        "virtual-time check on 4 CPUs: max tasks in flight = {}, speedup = {:.2}",
        sim.max_parallelism(),
        sim.speedup()
    );
    println!(
        "(> 1 proves the dependencies allow diagonal parallelism; an\n\
         over-constrained program — the student bug EASYVIEW exposes —\n\
         would show exactly 1 here and a sequential staircase above.\n\
         critical path {} vs makespan {} virtual ns)",
        sim.critical_path_ns, sim.makespan_ns
    );
    print!("\n--- Gantt, iteration 1 (real wall-clock trace) ---\n{}", gantt.to_ascii(100));
}
