//! Overhead of the `ezp-perf` instrumentation: the same scheduled
//! parallel loop driven once with a [`NullProbe`] (counters off — the
//! `wants_runtime_events` gate skips every clock read) and once with a
//! live [`PerfProbe`]. The acceptance bar is ≤5% slowdown on a
//! realistic tile workload; the final line prints the measured ratio.
//!
//! Run with `cargo bench -p ezp-bench --bench perf_overhead`. Set
//! `EZP_BENCH_CSV=path` to append the results as CSV.

use ezp_core::kernel::{NullProbe, Probe};
use ezp_core::Schedule;
use ezp_perf::PerfProbe;
use ezp_sched::{parallel_for_range_probed, WorkerPool};
use ezp_testkit::{Bench, BenchSet};

const TASKS: usize = 1024;
const THREADS: usize = 4;

/// Per-task workload sized like a real tile (a few µs of arithmetic, as
/// a 16×16 pixel tile costs): heavy enough that the per-task probe
/// cost — two clock reads, a couple of padded atomic adds and a
/// histogram record — has to amortize, exactly the regime `--stats`
/// runs in. The xorshift steps are a serial dependency chain LLVM
/// cannot strength-reduce; an affine recurrence here folds to a
/// sub-µs loop and the "tile" stops being tile-sized.
fn tile_work(i: usize) -> u64 {
    let mut acc = i as u64 | 1;
    for _ in 0..4096 {
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc ^= acc << 17;
    }
    acc
}

fn run_loop(pool: &mut WorkerPool, schedule: Schedule, probe: &dyn Probe) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    let sum = AtomicU64::new(0);
    parallel_for_range_probed(pool, TASKS, schedule, probe, |i, rank| {
        // tile brackets like a real kernel: with the PerfProbe these
        // feed the task-latency histogram, so its recording cost is
        // part of what the ≤5% bar measures
        probe.start_tile(rank);
        sum.fetch_add(std::hint::black_box(tile_work(i)), Ordering::Relaxed);
        probe.end_tile(i % 32, i / 32, 16, 16, rank);
    });
    sum.load(Ordering::Relaxed)
}

const SCHEDULES: [Schedule; 3] = [
    Schedule::Static,
    Schedule::Dynamic(4),
    Schedule::NonmonotonicDynamic(4),
];

fn main() {
    let mut set = BenchSet::with_config(Bench::new().warmup(5).samples(30));
    let mut pool = WorkerPool::new(THREADS);
    for schedule in SCHEDULES {
        let name = schedule.as_omp_str();
        set.bench("uninstrumented", &name, || {
            run_loop(&mut pool, schedule, &NullProbe)
        });
        let probe = PerfProbe::new(THREADS);
        set.bench("perf_probe", &name, || {
            run_loop(&mut pool, schedule, &probe)
        });
    }
    print!("{}", set.table());

    // Headline number: worst-case instrumented/uninstrumented ratio.
    // Compared on the per-variant *minimum*: the workload is fixed, so
    // the min is the least-interfered sample and the only estimator
    // that doesn't fold scheduler/host jitter (which swings medians by
    // more than the 5% bar on a busy machine) into the ratio.
    let min = |set: &BenchSet, name: &str, param: &str| -> u64 {
        set.results()
            .iter()
            .find(|r| r.name == name && r.param == param)
            .map(|r| r.min_ns)
            .unwrap()
    };
    let mut worst: f64 = 0.0;
    for schedule in SCHEDULES {
        let name = schedule.as_omp_str();
        let base = min(&set, "uninstrumented", &name);
        let inst = min(&set, "perf_probe", &name);
        let ratio = inst as f64 / base.max(1) as f64;
        println!("overhead {name}: {:+.2}%", (ratio - 1.0) * 100.0);
        worst = worst.max(ratio);
    }
    println!(
        "worst-case perf-probe overhead: {:+.2}% (target <= +5%)",
        (worst - 1.0) * 100.0
    );
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
}
