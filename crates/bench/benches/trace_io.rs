//! Microbenches of the trace format: encode/decode throughput and the
//! simulator that generates figure-scale traces. Keeping trace I/O cheap
//! is what makes `--trace` usable in lab sessions.
//!
//! Run with `cargo bench -p ezp-bench --bench trace_io`. Set
//! `EZP_BENCH_CSV=path` to append the results as CSV.

use ezp_bench::mandel_cost_map;
use ezp_core::Schedule;
use ezp_simsched::{simulate_iterations, SimConfig};
use ezp_testkit::{Bench, BenchSet};
use ezp_trace::io;

fn make_trace(iterations: u32) -> ezp_trace::Trace {
    let costs = mandel_cost_map(512, 16, 128); // 1024 tiles
    let sim = simulate_iterations(&costs, SimConfig::new(4, Schedule::Dynamic(2)), iterations);
    sim.to_trace(&costs, "mandel", "omp_tiled")
}

fn encode_decode(set: &mut BenchSet) {
    for iters in [1u32, 8] {
        let trace = make_trace(iters);
        let bytes = io::to_bytes(&trace).unwrap();
        let tasks = trace.tasks.len().to_string();
        set.bench("trace_encode_tasks", &tasks, || {
            io::to_bytes(&trace).unwrap().len()
        });
        set.bench("trace_decode_tasks", &tasks, || {
            io::from_bytes(&bytes).unwrap().tasks.len()
        });
    }
}

fn simulator(set: &mut BenchSet) {
    let costs = mandel_cost_map(1024, 16, 256); // Fig. 6 panel scale
    for schedule in [Schedule::Static, Schedule::Dynamic(2), Schedule::NonmonotonicDynamic(1)] {
        set.bench("simsched", &schedule.as_omp_str(), || {
            let sim = simulate_iterations(&costs, SimConfig::new(12, schedule), 1);
            sim.makespan_ns
        });
    }
}

fn main() {
    let mut set = BenchSet::with_config(Bench::new().warmup(2).samples(10));
    encode_decode(&mut set);
    simulator(&mut set);
    print!("{}", set.table());
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
}
