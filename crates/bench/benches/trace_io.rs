//! Criterion microbenches of the trace format: encode/decode throughput
//! and the simulator that generates figure-scale traces. Keeping trace
//! I/O cheap is what makes `--trace` usable in lab sessions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ezp_bench::mandel_cost_map;
use ezp_core::Schedule;
use ezp_simsched::{simulate_iterations, SimConfig};
use ezp_trace::io;

fn make_trace(iterations: u32) -> ezp_trace::Trace {
    let costs = mandel_cost_map(512, 16, 128); // 1024 tiles
    let sim = simulate_iterations(&costs, SimConfig::new(4, Schedule::Dynamic(2)), iterations);
    sim.to_trace(&costs, "mandel", "omp_tiled")
}

fn encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_io");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for iters in [1u32, 8] {
        let trace = make_trace(iters);
        let bytes = io::to_bytes(&trace).unwrap();
        group.bench_with_input(
            BenchmarkId::new("encode_tasks", trace.tasks.len()),
            &trace,
            |b, t| b.iter(|| std::hint::black_box(io::to_bytes(t).unwrap().len())),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_tasks", trace.tasks.len()),
            &bytes,
            |b, bs| b.iter(|| std::hint::black_box(io::from_bytes(bs).unwrap().tasks.len())),
        );
    }
    group.finish();
}

fn simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simsched");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let costs = mandel_cost_map(1024, 16, 256); // Fig. 6 panel scale
    for schedule in [Schedule::Static, Schedule::Dynamic(2), Schedule::NonmonotonicDynamic(1)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(schedule.as_omp_str()),
            &schedule,
            |b, &s| {
                b.iter(|| {
                    let sim = simulate_iterations(&costs, SimConfig::new(12, s), 1);
                    std::hint::black_box(sim.makespan_ns)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, encode_decode, simulator);
criterion_main!(benches);
