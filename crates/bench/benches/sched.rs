//! Microbenches of the scheduling substrate: per-chunk dispensing cost
//! of every policy, parallel-region launch latency, and task-graph
//! throughput — the overheads the simulator's `dispatch_overhead_ns`
//! parameter models.
//!
//! Run with `cargo bench -p ezp-bench --bench sched`. Set
//! `EZP_BENCH_CSV=path` to append the results as CSV.

use ezp_core::{Schedule, TileGrid};
use ezp_sched::{dispenser_for, TaskGraph, WorkerPool};
use ezp_testkit::{Bench, BenchSet};

fn dispensers(set: &mut BenchSet) {
    let n = 4096;
    for schedule in [
        Schedule::Static,
        Schedule::StaticChunk(4),
        Schedule::Dynamic(1),
        Schedule::Dynamic(4),
        Schedule::Guided(1),
        Schedule::NonmonotonicDynamic(1),
    ] {
        set.bench("dispenser_drain", &schedule.as_omp_str(), || {
            // single-rank drain isolates the per-chunk cost
            let d = dispenser_for(schedule, n, 4);
            let mut total = 0usize;
            for rank in 0..4 {
                while let Some((_, len)) = d.next(rank) {
                    total += len;
                }
            }
            assert_eq!(total, n);
            total
        });
    }
}

fn parallel_region(set: &mut BenchSet) {
    for threads in [1usize, 2, 4] {
        let mut pool = WorkerPool::new(threads);
        set.bench("pool_empty_region", &threads.to_string(), || {
            pool.run(|rank| {
                std::hint::black_box(rank);
            })
        });
    }
}

fn task_graph(set: &mut BenchSet) {
    let grid = TileGrid::square(256, 16).unwrap(); // 16x16 = 256 tasks
    let mut pool = WorkerPool::new(2);
    set.bench("taskgraph", "wavefront_256_tasks", || {
        let g = TaskGraph::down_right_wavefront(&grid);
        g.run(&mut pool, |t, _| {
            std::hint::black_box(t);
        })
        .unwrap()
    });
    set.bench("taskgraph", "wavefront_seq_baseline", || {
        let g = TaskGraph::down_right_wavefront(&grid);
        g.run_seq(|t, _| {
            std::hint::black_box(t);
        })
        .unwrap()
    });
}

fn main() {
    let mut set = BenchSet::with_config(Bench::new().warmup(3).samples(20));
    dispensers(&mut set);
    parallel_region(&mut set);
    task_graph(&mut set);
    print!("{}", set.table());
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
}
