//! Criterion microbenches of the scheduling substrate: per-chunk
//! dispensing cost of every policy, parallel-region launch latency, and
//! task-graph throughput — the overheads the simulator's
//! `dispatch_overhead_ns` parameter models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ezp_core::{Schedule, TileGrid};
use ezp_sched::{dispenser_for, TaskGraph, WorkerPool};

fn dispensers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispenser_drain");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 4096;
    for schedule in [
        Schedule::Static,
        Schedule::StaticChunk(4),
        Schedule::Dynamic(1),
        Schedule::Dynamic(4),
        Schedule::Guided(1),
        Schedule::NonmonotonicDynamic(1),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(schedule.as_omp_str()),
            &schedule,
            |b, &s| {
                b.iter(|| {
                    // single-rank drain isolates the per-chunk cost
                    let d = dispenser_for(s, n, 4);
                    let mut total = 0usize;
                    for rank in 0..4 {
                        while let Some((_, len)) = d.next(rank) {
                            total += len;
                        }
                    }
                    assert_eq!(total, n);
                    std::hint::black_box(total)
                })
            },
        );
    }
    group.finish();
}

fn parallel_region(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("empty_region", threads),
            &threads,
            |b, &t| {
                let mut pool = WorkerPool::new(t);
                b.iter(|| pool.run(|rank| { std::hint::black_box(rank); }))
            },
        );
    }
    group.finish();
}

fn task_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("taskgraph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let grid = TileGrid::square(256, 16).unwrap(); // 16x16 = 256 tasks
    group.bench_function("wavefront_256_tasks", |b| {
        let mut pool = WorkerPool::new(2);
        b.iter(|| {
            let g = TaskGraph::down_right_wavefront(&grid);
            g.run(&mut pool, |t, _| {
                std::hint::black_box(t);
            })
            .unwrap()
        })
    });
    group.bench_function("wavefront_seq_baseline", |b| {
        b.iter(|| {
            let g = TaskGraph::down_right_wavefront(&grid);
            g.run_seq(|t| {
                std::hint::black_box(t);
            })
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, dispensers, parallel_region, task_graph);
criterion_main!(benches);
