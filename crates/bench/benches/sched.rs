//! Microbenches of the scheduling substrate: per-chunk dispensing cost
//! of every policy, parallel-region launch latency, task-graph
//! throughput, and the lock-free hot paths against inline mutex
//! baselines — the overheads the simulator's `dispatch_overhead_ns`
//! parameter models, and the numbers behind `ci/BENCH_sched.json`.
//!
//! Run with `cargo bench -p ezp-bench --bench sched`.
//!
//! * `EZP_BENCH_CSV=path` appends every result as CSV.
//! * `EZP_BENCH_JSON=path` writes the hot-path summary (regions/sec,
//!   tasks/sec, steal ops/sec at 1/2/4/8 workers, lock-free vs mutex)
//!   as JSON — the file `ci/verify.sh` diffs against the committed
//!   baseline.
//! * `EZP_BENCH_SMOKE=1` shrinks iteration counts so the whole lane
//!   finishes in seconds; throughput numbers stay comparable (they are
//!   per-second rates), only noisier.

use ezp_core::{Schedule, TileGrid};
use ezp_sched::{dispenser_for, Steal, TaskDeque, TaskGraph, WorkerPool};
use ezp_testkit::{Bench, BenchSet};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var("EZP_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn dispensers(set: &mut BenchSet) {
    let n = 4096;
    for schedule in [
        Schedule::Static,
        Schedule::StaticChunk(4),
        Schedule::Dynamic(1),
        Schedule::Dynamic(4),
        Schedule::Guided(1),
        Schedule::NonmonotonicDynamic(1),
    ] {
        set.bench("dispenser_drain", &schedule.as_omp_str(), || {
            // single-rank drain isolates the per-chunk cost
            let d = dispenser_for(schedule, n, 4);
            let mut total = 0usize;
            for rank in 0..4 {
                while let Some((_, len)) = d.next(rank) {
                    total += len;
                }
            }
            assert_eq!(total, n);
            total
        });
    }
}

/// The mutex+condvar region protocol the pool used before the seqlock
/// rewrite, replicated inline as the comparison baseline: publish under
/// a lock, `notify_all`, workers wait on the condvar, last finisher
/// signals done. Measures the same thing `WorkerPool::run` measures —
/// one empty region end to end.
struct MutexPool {
    shared: std::sync::Arc<MutexShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

struct MutexShared {
    state: Mutex<MutexState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

struct MutexState {
    seq: u64,
    done_seq: u64,
    remaining: usize,
    shutdown: bool,
}

impl MutexPool {
    fn new(threads: usize) -> Self {
        let shared = std::sync::Arc::new(MutexShared {
            state: Mutex::new(MutexState {
                seq: 0,
                done_seq: 0,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let sh = shared.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let mut st = sh.state.lock().unwrap();
                        while st.seq == last && !st.shutdown {
                            st = sh.work_cv.wait(st).unwrap();
                        }
                        if st.shutdown {
                            return;
                        }
                        last = st.seq;
                        drop(st);
                        std::hint::black_box(last); // the empty region body
                        let mut st = sh.state.lock().unwrap();
                        st.remaining -= 1;
                        if st.remaining == 0 {
                            st.done_seq = last;
                            sh.done_cv.notify_one();
                        }
                    }
                })
            })
            .collect();
        MutexPool {
            shared,
            handles,
            threads,
        }
    }

    fn run(&mut self) {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap();
        st.remaining = self.threads;
        st.seq += 1;
        let seq = st.seq;
        sh.work_cv.notify_all();
        while st.done_seq != seq {
            st = sh.done_cv.wait(st).unwrap();
        }
    }
}

impl Drop for MutexPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The wavefront graph run through a shared `Mutex<VecDeque>` ready
/// queue with condvar waits — a faithful replica of the executor the
/// per-worker deques replaced. Same pool, same graph, same release
/// logic; only the ready-queue structure differs.
fn run_mutex_taskgraph(g: &TaskGraph, pool: &mut WorkerPool) {
    struct QueueState {
        ready: VecDeque<usize>,
        pending: usize,
    }
    let n = g.len();
    let indegree: Vec<AtomicUsize> = (0..n).map(|t| AtomicUsize::new(g.indegree(t))).collect();
    let state = Mutex::new(QueueState {
        ready: (0..n)
            .filter(|&t| indegree[t].load(Ordering::Relaxed) == 0)
            .collect(),
        pending: n,
    });
    let cv = Condvar::new();
    pool.run(|_| loop {
        let task = {
            let mut st = state.lock().unwrap();
            loop {
                if st.pending == 0 {
                    return;
                }
                if let Some(t) = st.ready.pop_front() {
                    break t;
                }
                st = cv.wait(st).unwrap();
            }
        };
        std::hint::black_box(task);
        for &d in g.dependents(task) {
            if indegree[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                state.lock().unwrap().ready.push_back(d);
                cv.notify_one();
            }
        }
        let mut st = state.lock().unwrap();
        st.pending -= 1;
        if st.pending == 0 {
            cv.notify_all();
        }
    });
}

/// Steal-path drain: `workers` thieves concurrently empty a preloaded
/// queue, each counting locally; the caller times the whole drain.
/// `steal` abstracts over the lock-free deque and the mutex baseline so
/// both sides pay identical harness costs: `Some(true)` = got one,
/// `Some(false)` = lost a race (retry), `None` = empty (done — nobody
/// pushes during the drain, so empty is final). Returns the total
/// drained, which the caller asserts.
fn thief_drain(workers: usize, steal: &(dyn Fn() -> Option<bool> + Sync)) -> usize {
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut got = 0usize;
                    loop {
                        match steal() {
                            Some(true) => got += 1,
                            // Lost a CAS race: on an oversubscribed core
                            // the winner needs the CPU, so yield rather
                            // than spin out the timeslice.
                            Some(false) => std::thread::yield_now(),
                            None => break,
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            total.fetch_add(h.join().unwrap(), Ordering::Relaxed);
        }
    });
    total.load(Ordering::Relaxed)
}

struct HotPath {
    regions: Vec<f64>,
    mutex_regions: Vec<f64>,
    tasks: Vec<f64>,
    mutex_tasks: Vec<f64>,
    steals: Vec<f64>,
    mutex_steals: Vec<f64>,
}

fn hot_paths(set: &mut BenchSet) -> HotPath {
    let regions_per_sample: u64 = if smoke() { 20 } else { 200 };
    let graph_dim = 128; // 16x16 = 256 tasks in both modes
    let steal_items: usize = if smoke() { 2_000 } else { 20_000 };

    let mut out = HotPath {
        regions: vec![],
        mutex_regions: vec![],
        tasks: vec![],
        mutex_tasks: vec![],
        steals: vec![],
        mutex_steals: vec![],
    };

    let grid = TileGrid::square(graph_dim, 8).unwrap();
    let g = TaskGraph::down_right_wavefront(&grid);
    let n_tasks = g.len() as f64;

    for &w in &WORKER_SWEEP {
        // regions/sec: lock-free epoch protocol vs mutex+condvar.
        let mut pool = WorkerPool::new(w);
        let r = set.bench("regions_lockfree", &w.to_string(), || {
            for _ in 0..regions_per_sample {
                pool.run(|rank| {
                    std::hint::black_box(rank);
                });
            }
        });
        out.regions
            .push(regions_per_sample as f64 * 1e9 / r.min_ns.max(1) as f64);

        let mut mpool = MutexPool::new(w);
        let r = set.bench("regions_mutex", &w.to_string(), || {
            for _ in 0..regions_per_sample {
                mpool.run();
            }
        });
        out.mutex_regions
            .push(regions_per_sample as f64 * 1e9 / r.min_ns.max(1) as f64);
        drop(mpool);

        // tasks/sec: per-worker deques vs a shared locked queue.
        let r = set.bench("taskgraph_deques", &w.to_string(), || {
            g.run(&mut pool, |t, _| {
                std::hint::black_box(t);
            })
            .unwrap()
        });
        out.tasks.push(n_tasks * 1e9 / r.min_ns.max(1) as f64);

        let r = set.bench("taskgraph_mutex_queue", &w.to_string(), || {
            run_mutex_taskgraph(&g, &mut pool);
        });
        out.mutex_tasks.push(n_tasks * 1e9 / r.min_ns.max(1) as f64);

        // steal ops/sec: w thieves drain a preloaded queue, deque FIFO
        // CAS vs Mutex<VecDeque> pop_front.
        let deque = TaskDeque::with_capacity(steal_items);
        let r = set.bench("steal_deque", &w.to_string(), || {
            for i in 0..steal_items {
                deque.push(i);
            }
            let got = thief_drain(w, &|| match deque.steal() {
                Steal::Success(_) => Some(true),
                Steal::Retry => Some(false),
                Steal::Empty => None,
            });
            assert_eq!(got, steal_items);
        });
        out.steals
            .push(steal_items as f64 * 1e9 / r.min_ns.max(1) as f64);

        // Preload item by item on both sides: each sample measures one
        // full push+steal cycle per item through the structure's own
        // single-item operations.
        let queue: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::with_capacity(steal_items));
        let r = set.bench("steal_mutex_queue", &w.to_string(), || {
            for i in 0..steal_items {
                queue.lock().unwrap().push_back(i);
            }
            let got = thief_drain(w, &|| queue.lock().unwrap().pop_front().map(|_| true));
            assert_eq!(got, steal_items);
        });
        out.mutex_steals
            .push(steal_items as f64 * 1e9 / r.min_ns.max(1) as f64);
    }
    out
}

fn json_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", items.join(", "))
}

fn write_json(path: &str, mode: &str, hp: &HotPath) -> std::io::Result<()> {
    let workers: Vec<String> = WORKER_SWEEP.iter().map(|w| w.to_string()).collect();
    let body = format!(
        "{{\n  \"bench\": \"sched\",\n  \"mode\": \"{mode}\",\n  \"workers\": [{}],\n  \
         \"lockfree\": {{\n    \"regions_per_sec\": {},\n    \"tasks_per_sec\": {},\n    \
         \"steal_ops_per_sec\": {}\n  }},\n  \"mutex_baseline\": {{\n    \
         \"regions_per_sec\": {},\n    \"tasks_per_sec\": {},\n    \
         \"steal_ops_per_sec\": {}\n  }}\n}}\n",
        workers.join(", "),
        json_array(&hp.regions),
        json_array(&hp.tasks),
        json_array(&hp.steals),
        json_array(&hp.mutex_regions),
        json_array(&hp.mutex_tasks),
        json_array(&hp.mutex_steals),
    );
    std::fs::write(path, body)
}

fn main() {
    let (warmup, samples) = if smoke() { (1, 9) } else { (3, 20) };
    let mut set = BenchSet::with_config(Bench::new().warmup(warmup).samples(samples));
    if !smoke() {
        dispensers(&mut set);
    }
    let hp = hot_paths(&mut set);
    print!("{}", set.table());
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
    if let Ok(path) = std::env::var("EZP_BENCH_JSON") {
        let mode = if smoke() { "smoke" } else { "full" };
        write_json(&path, mode, &hp).unwrap();
        eprintln!("wrote {path}");
    }
}
