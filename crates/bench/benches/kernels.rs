//! Criterion microbenches over the kernel library: sequential vs
//! parallel variants of the three kernels the paper's assignments
//! revolve around (mandel, blur, life). Absolute numbers depend on the
//! host; the interesting outputs are the *ratios* (blur basic vs
//! optimized — the Fig. 10 factor — and lazy vs eager life).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ezp_core::kernel::NullProbe;
use ezp_core::perf::run_kernel;
use ezp_core::{RunConfig, Schedule};
use std::sync::Arc;

fn bench_variants(c: &mut Criterion, kernel: &str, variants: &[&str], dim: usize, iters: u32) {
    let reg = ezp_kernels::registry();
    let mut group = c.benchmark_group(kernel);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &variant in variants {
        group.bench_with_input(BenchmarkId::from_parameter(variant), &variant, |b, &v| {
            b.iter(|| {
                let cfg = RunConfig::new(kernel)
                    .variant(v)
                    .size(dim)
                    .tile(32)
                    .iterations(iters)
                    .threads(2)
                    .schedule(Schedule::Dynamic(2));
                let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
                std::hint::black_box(outcome.elapsed_ns)
            })
        });
    }
    group.finish();
}

fn mandel(c: &mut Criterion) {
    bench_variants(c, "mandel", &["seq", "tiled", "omp_tiled"], 256, 1);
}

fn blur(c: &mut Criterion) {
    // the Fig. 10 pair: branchy vs border-specialized
    bench_variants(c, "blur", &["seq", "omp_tiled", "omp_tiled_opt"], 256, 2);
}

fn life(c: &mut Criterion) {
    let reg = ezp_kernels::registry();
    let mut group = c.benchmark_group("life");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    // sparse board: lazy evaluation should shine (§III-E)
    for variant in ["seq", "omp_tiled", "lazy"] {
        group.bench_with_input(BenchmarkId::from_parameter(variant), &variant, |b, &v| {
            b.iter(|| {
                let mut cfg = RunConfig::new("life")
                    .variant(v)
                    .size(256)
                    .tile(32)
                    .iterations(8)
                    .threads(2)
                    .schedule(Schedule::Dynamic(1));
                cfg.kernel_arg = Some("gliders:64".into());
                let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
                std::hint::black_box(outcome.elapsed_ns)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, mandel, blur, life);
criterion_main!(benches);
