//! Microbenches over the kernel library: sequential vs parallel variants
//! of the three kernels the paper's assignments revolve around (mandel,
//! blur, life). Absolute numbers depend on the host; the interesting
//! outputs are the *ratios* (blur basic vs optimized — the Fig. 10
//! factor — and lazy vs eager life).
//!
//! Run with `cargo bench -p ezp-bench --bench kernels`. Set
//! `EZP_BENCH_CSV=path` to append the results as CSV.

use ezp_core::kernel::NullProbe;
use ezp_core::perf::run_kernel;
use ezp_core::{RunConfig, Schedule};
use ezp_testkit::{Bench, BenchSet};
use std::sync::Arc;

fn bench_variants(set: &mut BenchSet, kernel: &str, variants: &[&str], dim: usize, iters: u32) {
    let reg = ezp_kernels::registry();
    for &variant in variants {
        set.bench(kernel, variant, || {
            let cfg = RunConfig::new(kernel)
                .variant(variant)
                .size(dim)
                .tile(32)
                .iterations(iters)
                .threads(2)
                .schedule(Schedule::Dynamic(2));
            let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
            outcome.elapsed_ns
        });
    }
}

fn bench_life(set: &mut BenchSet) {
    let reg = ezp_kernels::registry();
    // sparse board: lazy evaluation should shine (§III-E)
    for variant in ["seq", "omp_tiled", "lazy"] {
        set.bench("life", variant, || {
            let mut cfg = RunConfig::new("life")
                .variant(variant)
                .size(256)
                .tile(32)
                .iterations(8)
                .threads(2)
                .schedule(Schedule::Dynamic(1));
            cfg.kernel_arg = Some("gliders:64".into());
            let (outcome, _) = run_kernel(&reg, cfg, Arc::new(NullProbe)).unwrap();
            outcome.elapsed_ns
        });
    }
}

fn main() {
    let mut set = BenchSet::with_config(Bench::new().warmup(2).samples(10));
    bench_variants(&mut set, "mandel", &["seq", "tiled", "omp_tiled"], 256, 1);
    // the Fig. 10 pair: branchy vs border-specialized
    bench_variants(&mut set, "blur", &["seq", "omp_tiled", "omp_tiled_opt"], 256, 2);
    bench_life(&mut set);
    print!("{}", set.table());
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
}
