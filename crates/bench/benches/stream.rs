//! Streaming-skeleton throughput: frames/sec of the pipeline engine in
//! ordered and unordered emission across a farm-width sweep, against
//! the sequential one-frame-at-a-time baseline — the numbers behind
//! `ci/BENCH_stream.json`.
//!
//! Run with `cargo bench -p ezp-bench --bench stream`.
//!
//! * `EZP_BENCH_CSV=path` appends every result as CSV.
//! * `EZP_BENCH_JSON=path` writes the frames/sec summary as JSON — the
//!   file `ci/verify.sh` diffs against the committed baseline. The gate
//!   compares parallel/sequential *ratios*, so a slow CI host does not
//!   fail it, but the engine regressing >20% relative to its own
//!   in-run baseline does.
//! * `EZP_BENCH_SMOKE=1` shrinks frame counts so the lane finishes in
//!   seconds; frames/sec rates stay comparable, only noisier.

use ezp_core::kernel::NullProbe;
use ezp_sched::WorkerPool;
use ezp_stream::{stream_kernel, EmitMode, StreamKernel};
use ezp_testkit::{Bench, BenchSet};

const WIDTH_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var("EZP_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

struct StreamRates {
    ordered: Vec<f64>,
    unordered: Vec<f64>,
    seq_baseline: f64,
}

fn stream_rates(set: &mut BenchSet) -> StreamRates {
    let (dim, frames) = if smoke() { (24, 12) } else { (48, 48) };
    let kernel: Box<dyn StreamKernel> =
        stream_kernel("mandel_zoom").expect("mandel_zoom missing from the stream registry");

    let r = set.bench("stream_seq", "baseline", || {
        std::hint::black_box(kernel.run_seq(dim, frames)).len()
    });
    let seq_baseline = frames as f64 * 1e9 / r.min_ns.max(1) as f64;

    let mut ordered = Vec::new();
    let mut unordered = Vec::new();
    let mut pool = WorkerPool::new(8);
    for &w in &WIDTH_SWEEP {
        for (mode, rates) in [
            (EmitMode::Ordered, &mut ordered),
            (EmitMode::Unordered, &mut unordered),
        ] {
            let name = match mode {
                EmitMode::Ordered => "stream_ordered",
                EmitMode::Unordered => "stream_unordered",
            };
            let r = set.bench(name, &w.to_string(), || {
                let (out, stats) = kernel
                    .run(dim, frames, mode, w, &mut pool, &NullProbe)
                    .unwrap();
                assert_eq!(stats.frames, frames);
                std::hint::black_box(out).len()
            });
            rates.push(frames as f64 * 1e9 / r.min_ns.max(1) as f64);
        }
    }
    StreamRates {
        ordered,
        unordered,
        seq_baseline,
    }
}

fn json_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", items.join(", "))
}

fn write_json(path: &str, mode: &str, rates: &StreamRates) -> std::io::Result<()> {
    let widths: Vec<String> = WIDTH_SWEEP.iter().map(|w| w.to_string()).collect();
    let body = format!(
        "{{\n  \"bench\": \"stream\",\n  \"mode\": \"{mode}\",\n  \"widths\": [{}],\n  \
         \"ordered\": {{\n    \"frames_per_sec\": {}\n  }},\n  \"unordered\": {{\n    \
         \"frames_per_sec\": {}\n  }},\n  \"seq_baseline\": {{\n    \
         \"frames_per_sec\": [{:.1}]\n  }}\n}}\n",
        widths.join(", "),
        json_array(&rates.ordered),
        json_array(&rates.unordered),
        rates.seq_baseline,
    );
    std::fs::write(path, body)
}

fn main() {
    let (warmup, samples) = if smoke() { (1, 9) } else { (3, 20) };
    let mut set = BenchSet::with_config(Bench::new().warmup(warmup).samples(samples));
    let rates = stream_rates(&mut set);
    print!("{}", set.table());
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
    if let Ok(path) = std::env::var("EZP_BENCH_JSON") {
        let mode = if smoke() { "smoke" } else { "full" };
        write_json(&path, mode, &rates).unwrap();
        eprintln!("wrote {path}");
    }
}
