//! Microbenches of `ezp-chan` against the `std::sync::mpsc` baseline:
//! SPSC ring throughput (same-thread op cost and cross-thread
//! streaming) and MPMC fan-in at 1/2/4/8 producer threads — the
//! numbers behind `ci/BENCH_chan.json`.
//!
//! Run with `cargo bench -p ezp-bench --bench chan`.
//!
//! * `EZP_BENCH_CSV=path` appends every result as CSV.
//! * `EZP_BENCH_JSON=path` writes the summary (msgs/sec per shape and
//!   thread count, ring vs mpsc) as JSON — the file `ci/verify.sh`
//!   diffs against the committed baseline.
//! * `EZP_BENCH_SMOKE=1` shrinks message counts so the whole lane
//!   finishes in seconds; rates stay comparable, only noisier.

use ezp_chan::{mpmc, spsc};
use ezp_core::WaitPolicy;
use ezp_testkit::{Bench, BenchSet};
use std::sync::mpsc as std_mpsc;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Yield everywhere: the CI host is a single hardware thread, where a
/// pure spin waiter burns its whole timeslice blocking the peer it
/// waits on. `std::sync::mpsc` blocks natively, which on this host
/// behaves like yield-then-park — the closest fair comparison.
const POLICY: WaitPolicy = WaitPolicy::Yield;

fn smoke() -> bool {
    std::env::var("EZP_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

struct Rates {
    spsc_inline: f64,
    spsc_threaded: f64,
    mpmc: Vec<f64>,
}

/// Same-thread push/pop cycles: isolates the per-operation cost of the
/// channel structure itself (no scheduler involvement on either side).
/// Batches of `cap` so the ring exercises its full wraparound path.
fn spsc_inline(set: &mut BenchSet) -> (f64, f64) {
    let cap = 1024usize;
    let batches: usize = if smoke() { 8 } else { 64 };
    let n = (cap * batches) as f64;

    let (mut tx, mut rx) = spsc::<usize>(cap, POLICY);
    let r = set.bench("spsc_inline", "ring", || {
        for _ in 0..batches {
            for i in 0..cap {
                assert!(tx.try_send(i).is_ok());
            }
            for i in 0..cap {
                assert_eq!(rx.try_recv().ok(), Some(i));
            }
        }
    });
    let ring = n * 1e9 / r.min_ns.max(1) as f64;

    let (mtx, mrx) = std_mpsc::sync_channel::<usize>(cap);
    let r = set.bench("spsc_inline", "mpsc", || {
        for _ in 0..batches {
            for i in 0..cap {
                assert!(mtx.try_send(i).is_ok());
            }
            for i in 0..cap {
                assert_eq!(mrx.try_recv().ok(), Some(i));
            }
        }
    });
    let mpsc = n * 1e9 / r.min_ns.max(1) as f64;
    (ring, mpsc)
}

/// One producer thread streaming into one consumer thread through a
/// bounded channel — the streaming engine's emission shape.
fn spsc_threaded(set: &mut BenchSet) -> (f64, f64) {
    let cap = 1024usize;
    let n: usize = if smoke() { 5_000 } else { 50_000 };

    let r = set.bench("spsc_threaded", "ring", || {
        let (mut tx, mut rx) = spsc::<usize>(cap, POLICY);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..n {
                assert_eq!(rx.recv().ok(), Some(i));
            }
        });
    });
    let ring = n as f64 * 1e9 / r.min_ns.max(1) as f64;

    let r = set.bench("spsc_threaded", "mpsc", || {
        let (tx, rx) = std_mpsc::sync_channel::<usize>(cap);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..n {
                assert_eq!(rx.recv().ok(), Some(i));
            }
        });
    });
    let mpsc = n as f64 * 1e9 / r.min_ns.max(1) as f64;
    (ring, mpsc)
}

/// `t` producer threads fanning into one consumer. The ring side is the
/// per-producer-lane MPMC channel; the baseline is `sync_channel` with
/// one cloned sender per producer (its native multi-producer mode).
fn mpmc_fan_in(set: &mut BenchSet) -> (Vec<f64>, Vec<f64>) {
    let cap = 256usize;
    let per_producer: usize = if smoke() { 2_000 } else { 10_000 };
    let mut ring_rates = Vec::new();
    let mut mpsc_rates = Vec::new();

    for &t in &THREAD_SWEEP {
        let total = t * per_producer;

        let r = set.bench("mpmc_fan_in_ring", &t.to_string(), || {
            let (txs, rx) = mpmc::<usize>(t, cap, POLICY);
            std::thread::scope(|s| {
                for tx in txs {
                    s.spawn(move || {
                        for i in 0..per_producer {
                            tx.send(i).unwrap();
                        }
                    });
                }
                for _ in 0..total {
                    rx.recv().unwrap();
                }
            });
        });
        ring_rates.push(total as f64 * 1e9 / r.min_ns.max(1) as f64);

        let r = set.bench("mpmc_fan_in_mpsc", &t.to_string(), || {
            let (tx, rx) = std_mpsc::sync_channel::<usize>(t * cap);
            std::thread::scope(|s| {
                for _ in 0..t {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..per_producer {
                            tx.send(i).unwrap();
                        }
                    });
                }
                drop(tx);
                for _ in 0..total {
                    rx.recv().unwrap();
                }
            });
        });
        mpsc_rates.push(total as f64 * 1e9 / r.min_ns.max(1) as f64);
    }
    (ring_rates, mpsc_rates)
}

fn json_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", items.join(", "))
}

fn write_json(path: &str, mode: &str, ring: &Rates, mpsc: &Rates) -> std::io::Result<()> {
    let threads: Vec<String> = THREAD_SWEEP.iter().map(|t| t.to_string()).collect();
    let body = format!(
        "{{\n  \"bench\": \"chan\",\n  \"mode\": \"{mode}\",\n  \"threads\": [{}],\n  \
         \"ring\": {{\n    \"spsc_inline_msgs_per_sec\": {:.1},\n    \
         \"spsc_threaded_msgs_per_sec\": {:.1},\n    \
         \"mpmc_msgs_per_sec\": {}\n  }},\n  \"mpsc_baseline\": {{\n    \
         \"spsc_inline_msgs_per_sec\": {:.1},\n    \
         \"spsc_threaded_msgs_per_sec\": {:.1},\n    \
         \"mpmc_msgs_per_sec\": {}\n  }}\n}}\n",
        threads.join(", "),
        ring.spsc_inline,
        ring.spsc_threaded,
        json_array(&ring.mpmc),
        mpsc.spsc_inline,
        mpsc.spsc_threaded,
        json_array(&mpsc.mpmc),
    );
    std::fs::write(path, body)
}

fn main() {
    let (warmup, samples) = if smoke() { (1, 9) } else { (3, 20) };
    let mut set = BenchSet::with_config(Bench::new().warmup(warmup).samples(samples));

    let (inline_ring, inline_mpsc) = spsc_inline(&mut set);
    let (thr_ring, thr_mpsc) = spsc_threaded(&mut set);
    let (mpmc_ring, mpmc_mpsc) = mpmc_fan_in(&mut set);

    let ring = Rates {
        spsc_inline: inline_ring,
        spsc_threaded: thr_ring,
        mpmc: mpmc_ring,
    };
    let mpsc = Rates {
        spsc_inline: inline_mpsc,
        spsc_threaded: thr_mpsc,
        mpmc: mpmc_mpsc,
    };

    print!("{}", set.table());
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
    if let Ok(path) = std::env::var("EZP_BENCH_JSON") {
        let mode = if smoke() { "smoke" } else { "full" };
        write_json(&path, mode, &ring, &mpsc).unwrap();
        eprintln!("wrote {path}");
    }
}
