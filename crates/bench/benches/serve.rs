//! Synthetic replay load for `ezp-serve`: N closed-loop tenants submit
//! jobs over real loopback TCP against one daemon, and we report
//! jobs/sec at 1/2/4/8 concurrent tenants — the numbers behind
//! `ci/BENCH_serve.json`.
//!
//! Each replayed job carries a `stall_us` ingest latency (the time a
//! real deployment would spend fetching the request's input). Stalls
//! overlap across the daemon's runner slots while compute serializes
//! on the CPU, so multi-tenant throughput must beat the serialized
//! (single-tenant, one-in-flight) baseline even on a single hardware
//! thread; `ci/verify.sh` gates on >= 1.3x at 4 tenants.
//!
//! Run with `cargo bench -p ezp-bench --bench serve`.
//!
//! * `EZP_BENCH_CSV=path` appends every result as CSV.
//! * `EZP_BENCH_JSON=path` writes the summary JSON.
//! * `EZP_BENCH_SMOKE=1` shrinks job counts so the lane finishes in
//!   seconds.

use ezp_serve::{Client, JobSpec, Response, ServeConfig, Server};
use ezp_testkit::{Bench, BenchSet};

const TENANT_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Synthetic ingest latency per job; overlaps across runner slots.
const STALL_US: u64 = 2_500;

fn smoke() -> bool {
    std::env::var("EZP_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn job(tenant: &str) -> JobSpec {
    JobSpec {
        kernel: "mandel".into(),
        variant: "seq".into(),
        size: 64,
        tile: 16,
        iterations: 1,
        threads: 1,
        tenant: Some(tenant.into()),
        stall_us: STALL_US,
    }
}

/// One replay round: `tenants` closed-loop clients, each submitting
/// `jobs_each` jobs back to back over its own connection. Returns once
/// every job has its terminal response.
fn replay(addr: &str, tenants: usize, jobs_each: usize) {
    std::thread::scope(|scope| {
        for t in 0..tenants {
            let tenant = format!("tenant-{t}");
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let spec = job(&tenant);
                for _ in 0..jobs_each {
                    match client.submit_retrying(&spec).expect("submit") {
                        Response::Done { .. } => {}
                        other => panic!("job did not complete: {other:?}"),
                    }
                }
            });
        }
    });
}

fn main() {
    let jobs_each: usize = if smoke() { 4 } else { 16 };
    let (warmup, samples) = if smoke() { (1, 3) } else { (2, 7) };
    let mut set = BenchSet::with_config(Bench::new().warmup(warmup).samples(samples));

    // one daemon for the whole sweep: four single-worker slots so up
    // to four jobs overlap their stalls, like a deployed instance
    let server = Server::start(ServeConfig {
        port: 0,
        workers: 1,
        slots: 4,
        max_tenants: TENANT_SWEEP[3] + 1,
        queue_cap: 64,
        ..ServeConfig::default()
    })
    .expect("start daemon");
    let addr = server.addr().to_string();

    let mut rates = Vec::new();
    for &tenants in &TENANT_SWEEP {
        let total = (tenants * jobs_each) as f64;
        let r = set.bench("serve_replay", &format!("{tenants}t"), || {
            replay(&addr, tenants, jobs_each)
        });
        rates.push(total * 1e9 / r.min_ns.max(1) as f64);
    }
    let serialized = rates[0];
    let at4 = rates[TENANT_SWEEP.iter().position(|&t| t == 4).unwrap()];
    let summary = server.shutdown();
    let (admitted, rejected, completed, cancelled, failed) = summary.totals;
    assert_eq!(admitted, completed + cancelled + failed, "job accounting must balance");

    print!("{}", set.table());
    println!(
        "serialized {serialized:.1} jobs/s; 4 tenants {at4:.1} jobs/s ({:.2}x); \
         {admitted} admitted, {rejected} rejected, {} pool leases",
        at4 / serialized.max(1e-9),
        summary.mux.leases
    );
    if let Ok(path) = std::env::var("EZP_BENCH_CSV") {
        set.write_csv(std::path::Path::new(&path)).unwrap();
    }
    if let Ok(path) = std::env::var("EZP_BENCH_JSON") {
        let mode = if smoke() { "smoke" } else { "full" };
        let rate_list: Vec<String> = rates.iter().map(|r| format!("{r:.1}")).collect();
        let body = format!(
            "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{mode}\",\n  \
             \"tenants\": [1, 2, 4, 8],\n  \"jobs_per_tenant\": {jobs_each},\n  \
             \"stall_us\": {STALL_US},\n  \
             \"serialized_jobs_per_sec\": {serialized:.1},\n  \
             \"concurrent_jobs_per_sec\": [{}],\n  \
             \"speedup_at_4_tenants\": {:.2}\n}}\n",
            rate_list.join(", "),
            at4 / serialized.max(1e-9),
        );
        std::fs::write(&path, body).unwrap();
        eprintln!("wrote {path}");
    }
}
