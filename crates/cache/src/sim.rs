//! The set-associative LRU cache model.

/// Geometry of a simulated cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A typical L1D: 32 KiB, 64-byte lines, 8-way.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A typical per-core L2: 512 KiB, 64-byte lines, 8-way.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0, "need at least one way");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.ways) && self.sets() > 0,
            "capacity must be a whole number of sets"
        );
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Resident lines displaced by misses on full sets. Distinguishes
    /// cold misses (`misses - evictions` on a never-flushed cache) from
    /// capacity/conflict misses, which is the difference tile-size
    /// experiments are about.
    pub evictions: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]` (0 when nothing was accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: resident line tags, most recently used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Builds an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        CacheSim {
            config,
            sets: vec![Vec::with_capacity(config.ways); config.sets()],
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one byte access at `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.config.sets() as u64) as usize;
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // hit: move to MRU position
            let tag = set.remove(pos);
            set.push(tag);
            self.stats.hits += 1;
            true
        } else {
            // miss: evict LRU if full
            if set.len() == self.config.ways {
                set.remove(0);
                self.stats.evictions += 1;
            }
            set.push(line);
            false
        }
    }

    /// Accesses a contiguous `len`-byte range starting at `addr`.
    pub fn access_range(&mut self, addr: u64, len: usize) {
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + len.max(1) as u64 - 1) / line;
        for l in first..=last {
            self.access(l * line);
        }
    }

    /// Counters since construction or the last [`CacheSim::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the counters, keeping cache contents warm — the per-task
    /// replay uses this to attribute misses to individual tasks.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache entirely (cold restart).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        // 4 sets x 2 ways x 16B lines = 128 B
        CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        }
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().sets(), 4);
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 1024);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = CacheSim::new(tiny());
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(15)); // same line
        assert!(!c.access(16)); // next line
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = CacheSim::new(tiny());
        // lines 0, 4, 8 all map to set 0 (line % 4 == 0); 2 ways
        assert!(!c.access(0)); // line 0 in
        assert!(!c.access(4 * 16)); // line 4 in
        assert!(c.access(0)); // hit, 0 becomes MRU
        assert!(!c.access(8 * 16)); // line 8 evicts LRU = line 4
        assert!(c.access(0)); // 0 still resident
        assert!(!c.access(4 * 16)); // 4 was evicted
        // two misses displaced resident lines; the first two were cold
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().misses(), 4);
    }

    #[test]
    fn cold_misses_do_not_count_as_evictions() {
        let mut c = CacheSim::new(tiny());
        for addr in (0..128u64).step_by(16) {
            c.access(addr); // fills the cache exactly, nothing displaced
        }
        assert_eq!(c.stats().misses(), 8);
        assert_eq!(c.stats().evictions, 0);
        c.access(128); // one more distinct line -> first eviction
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn working_set_within_capacity_fully_hits_on_second_pass() {
        let cfg = tiny(); // 128 B capacity
        let mut c = CacheSim::new(cfg);
        for addr in (0..128u64).step_by(16) {
            c.access(addr);
        }
        c.reset_stats();
        for addr in (0..128u64).step_by(16) {
            assert!(c.access(addr), "warm line {addr} missed");
        }
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn streaming_larger_than_capacity_thrashes() {
        let mut c = CacheSim::new(tiny());
        // touch 1 KiB twice: second pass still misses (capacity 128 B)
        for _ in 0..2 {
            for addr in (0..1024u64).step_by(16) {
                c.access(addr);
            }
        }
        assert!(c.stats().miss_ratio() > 0.99);
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheSim::new(tiny());
        c.access_range(8, 32); // bytes 8..40 -> lines 0, 1, 2
        assert_eq!(c.stats().accesses, 3);
        c.access_range(0, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn flush_makes_cache_cold() {
        let mut c = CacheSim::new(tiny());
        c.access(0);
        c.flush();
        c.reset_stats();
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = CacheSim::new(CacheConfig {
            size_bytes: 120,
            line_bytes: 15,
            ways: 2,
        });
    }
}
