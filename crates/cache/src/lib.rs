//! # ezp-cache — per-task cache statistics (paper §V, future work)
//!
//! The paper closes with: "we also intend to further extend the EASYVIEW
//! trace explorer to integrate per-task cache usage information using
//! the PAPI library." PAPI reads hardware counters; this environment has
//! none to read, so the substitution (see DESIGN.md) is a deterministic
//! cache model: a set-associative LRU [`CacheSim`] and a [`replay`]
//! module that runs every task of a trace through the model using the
//! task's tile memory footprint, yielding the per-task hit/miss numbers
//! EASYVIEW would display.
//!
//! The model is intentionally simple (single level, true-LRU) — the
//! point is the *teaching* signal: tiled traversals reuse lines, row
//! sweeps of a big image do not, and tile size moves the miss rate.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod replay;
pub mod sim;

pub use replay::{replay_trace, AccessPattern, TaskCacheStats};
pub use sim::{CacheConfig, CacheSim, CacheStats};
