//! Replaying a trace through the cache model: per-task miss accounting.
//!
//! Tasks are replayed in start-time order on a per-worker cache (each
//! simulated core has its own L1, like real hardware), touching the
//! memory footprint implied by the task's tile rectangle and the chosen
//! access pattern. The result is the "per-task cache usage information"
//! the paper planned to obtain from PAPI.

use crate::sim::{CacheConfig, CacheSim, CacheStats};
use ezp_trace::Trace;

/// How a task touches its tile's memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// One 4-byte read+write per pixel, row-major inside the tile
    /// (`mandel`-style in-place kernels).
    PixelRowMajor,
    /// A 3×3 stencil: nine reads around each pixel of the source image
    /// plus one write to the destination image (`blur`-style kernels,
    /// destination offset by one image size).
    Stencil3x3,
    /// Transpose: for each pixel `(x, y)` of the tile, one read of the
    /// source at the *transposed* coordinate `(y, x)` (a column-major
    /// walk — the cache-hostile access) plus one row-major write to the
    /// destination. Square tiles keep the column reads inside a small
    /// working set; full-row tiles thrash — the locality lesson the
    /// `transpose` kernel teaches.
    Transpose,
}

/// Per-task cache statistics produced by [`replay_trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskCacheStats {
    /// Index of the task in `trace.tasks`.
    pub task_index: usize,
    /// Worker (core / private cache) that executed the task.
    pub worker: usize,
    /// Counters for this task alone.
    pub stats: CacheStats,
}

const BYTES_PER_PIXEL: u64 = 4;

/// Replays every task of `trace` through per-worker caches of geometry
/// `config`, returning one entry per task (same order as `trace.tasks`).
pub fn replay_trace(trace: &Trace, config: CacheConfig, pattern: AccessPattern) -> Vec<TaskCacheStats> {
    let dim = trace.meta.dim as u64;
    let mut caches: Vec<CacheSim> = (0..trace.meta.threads.max(1))
        .map(|_| CacheSim::new(config))
        .collect();
    // replay in chronological order, but report in trace order
    let mut order: Vec<usize> = (0..trace.tasks.len()).collect();
    order.sort_by_key(|&i| (trace.tasks[i].start_ns, i));
    let mut out = vec![
        TaskCacheStats {
            task_index: 0,
            worker: 0,
            stats: CacheStats::default(),
        };
        trace.tasks.len()
    ];
    for &i in &order {
        let t = &trace.tasks[i];
        let slot = t.worker.min(caches.len() - 1);
        let cache = &mut caches[slot];
        cache.reset_stats();
        match pattern {
            AccessPattern::PixelRowMajor => {
                for y in t.y as u64..(t.y + t.h) as u64 {
                    let row = (y * dim + t.x as u64) * BYTES_PER_PIXEL;
                    // read + write the whole tile row
                    cache.access_range(row, t.w * BYTES_PER_PIXEL as usize);
                    cache.access_range(row, t.w * BYTES_PER_PIXEL as usize);
                }
            }
            AccessPattern::Transpose => {
                let src_base = 0u64;
                let dst_base = dim * dim * BYTES_PER_PIXEL;
                for y in t.y as u64..(t.y + t.h) as u64 {
                    for x in t.x as u64..(t.x + t.w) as u64 {
                        // read src(y, x) -> address of (row x, column y)
                        cache.access(src_base + (x * dim + y) * BYTES_PER_PIXEL);
                        cache.access(dst_base + (y * dim + x) * BYTES_PER_PIXEL);
                    }
                }
            }
            AccessPattern::Stencil3x3 => {
                let src_base = 0u64;
                let dst_base = dim * dim * BYTES_PER_PIXEL; // second image
                for y in t.y..t.y + t.h {
                    for x in t.x..t.x + t.w {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let ny = y as i64 + dy;
                                let nx = x as i64 + dx;
                                if ny < 0 || nx < 0 || ny >= dim as i64 || nx >= dim as i64 {
                                    continue;
                                }
                                cache.access(src_base + (ny as u64 * dim + nx as u64) * BYTES_PER_PIXEL);
                            }
                        }
                        cache.access(dst_base + (y as u64 * dim + x as u64) * BYTES_PER_PIXEL);
                    }
                }
            }
        }
        out[i] = TaskCacheStats {
            task_index: i,
            worker: t.worker,
            stats: cache.stats(),
        };
    }
    out
}

/// Aggregates per-task stats into a single counter.
pub fn total(stats: &[TaskCacheStats]) -> CacheStats {
    let mut acc = CacheStats::default();
    for s in stats {
        acc.accesses += s.stats.accesses;
        acc.hits += s.stats.hits;
        acc.evictions += s.stats.evictions;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_monitor::TileRecord;
    use ezp_trace::TraceMeta;

    fn trace(dim: usize, tile: usize, threads: usize, tiles: Vec<(u32, usize, usize, usize)>) -> Trace {
        // tiles: (iteration, x, y, worker)
        let tasks = tiles
            .iter()
            .enumerate()
            .map(|(i, &(it, x, y, w))| TileRecord {
                iteration: it,
                x,
                y,
                w: tile,
                h: tile,
                start_ns: i as u64 * 10,
                end_ns: i as u64 * 10 + 5,
                worker: w,
            })
            .collect();
        Trace {
            meta: TraceMeta {
                kernel: "k".into(),
                variant: "v".into(),
                dim,
                tile_size: tile,
                threads,
                schedule: "static".into(),
                label: "t".into(),
            },
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 1000,
            }],
            tasks,
            edges: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn one_entry_per_task_in_trace_order() {
        let t = trace(64, 16, 2, vec![(1, 0, 0, 0), (1, 16, 0, 1), (1, 32, 0, 0)]);
        let stats = replay_trace(&t, CacheConfig::l1d(), AccessPattern::PixelRowMajor);
        assert_eq!(stats.len(), 3);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.task_index, i);
            assert_eq!(s.worker, t.tasks[i].worker);
            assert!(s.stats.accesses > 0);
        }
    }

    #[test]
    fn repeated_tile_on_same_worker_gets_warmer() {
        // same tile twice on worker 0: second replay hits (tile fits L1)
        let t = trace(64, 16, 1, vec![(1, 0, 0, 0), (2, 0, 0, 0)]);
        let stats = replay_trace(&t, CacheConfig::l1d(), AccessPattern::PixelRowMajor);
        assert!(stats[1].stats.miss_ratio() < stats[0].stats.miss_ratio());
        assert_eq!(stats[1].stats.misses(), 0, "16x16x4B tile fits in 32KiB L1");
    }

    #[test]
    fn caches_are_private_per_worker() {
        // same tile, two different workers: both replay cold
        let t = trace(64, 16, 2, vec![(1, 0, 0, 0), (1, 0, 0, 1)]);
        let stats = replay_trace(&t, CacheConfig::l1d(), AccessPattern::PixelRowMajor);
        assert_eq!(stats[0].stats, stats[1].stats);
        assert!(stats[0].stats.misses() > 0);
    }

    #[test]
    fn stencil_reuses_neighbour_rows() {
        let t = trace(64, 16, 1, vec![(1, 16, 16, 0)]);
        let s = replay_trace(&t, CacheConfig::l1d(), AccessPattern::Stencil3x3);
        // 9 reads per pixel but only ~1 new line per 16 pixels: high hit rate
        assert!(s[0].stats.accesses >= 16 * 16 * 10 - 1000);
        assert!(s[0].stats.miss_ratio() < 0.05, "stencil reuse should hit a lot");
    }

    #[test]
    fn smaller_cache_misses_more() {
        let t = trace(256, 64, 1, vec![(1, 0, 0, 0), (2, 0, 0, 0)]);
        let tiny = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let small = replay_trace(&t, tiny, AccessPattern::PixelRowMajor);
        let big = replay_trace(&t, CacheConfig::l2(), AccessPattern::PixelRowMajor);
        // second pass over the 64x64 tile: L2 keeps it, 1KiB cannot
        assert!(small[1].stats.misses() > big[1].stats.misses());
    }

    #[test]
    fn totals_aggregate() {
        let t = trace(64, 16, 1, vec![(1, 0, 0, 0), (1, 16, 0, 0)]);
        let stats = replay_trace(&t, CacheConfig::l1d(), AccessPattern::PixelRowMajor);
        let agg = total(&stats);
        assert_eq!(
            agg.accesses,
            stats.iter().map(|s| s.stats.accesses).sum::<u64>()
        );
        assert_eq!(agg.hits, stats.iter().map(|s| s.stats.hits).sum::<u64>());
        assert_eq!(
            agg.evictions,
            stats.iter().map(|s| s.stats.evictions).sum::<u64>()
        );
    }

    #[test]
    fn transpose_tiled_beats_row_tiles() {
        // the teaching signal: square tiles keep the transposed reads in
        // cache, full-row tiles stream the whole source per row
        let dim = 256;
        let square = trace(
            dim,
            16,
            1,
            (0..16).flat_map(|ty| (0..16).map(move |tx| (1u32, tx * 16, ty * 16, 0usize))).collect(),
        );
        // row tiles: emulate with 32 one-row-high tiles of full width
        let mut row_tasks = Vec::new();
        for y in 0..dim {
            row_tasks.push(ezp_monitor::TileRecord {
                iteration: 1,
                x: 0,
                y,
                w: dim,
                h: 1,
                start_ns: y as u64 * 10,
                end_ns: y as u64 * 10 + 5,
                worker: 0,
            });
        }
        let mut rows = trace(dim, 16, 1, vec![]);
        rows.tasks = row_tasks;
        let cfg = CacheConfig::l1d();
        let sq = total(&replay_trace(&square, cfg, AccessPattern::Transpose));
        let rw = total(&replay_trace(&rows, cfg, AccessPattern::Transpose));
        assert_eq!(sq.accesses, rw.accesses, "same total work");
        assert!(
            sq.misses() * 2 < rw.misses(),
            "tiled transpose should at least halve the misses ({} vs {})",
            sq.misses(),
            rw.misses()
        );
    }

    #[test]
    fn empty_trace_replays_to_nothing() {
        let t = trace(64, 16, 1, vec![]);
        assert!(replay_trace(&t, CacheConfig::l1d(), AccessPattern::PixelRowMajor).is_empty());
    }
}
