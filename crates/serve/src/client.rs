//! Blocking client for the serve protocol.
//!
//! Used by `easypap submit`, the CI serve lane, and the bench load
//! generator. One [`Client`] owns one TCP connection; `submit` is a
//! synchronous request/response exchange (wait for `accepted`, then
//! for the terminal `done` / `failed` frame), which keeps the client
//! trivially correct — concurrency comes from running several
//! clients, exactly like independent tenants would.

use std::io::BufReader;
use std::net::TcpStream;

use ezp_core::json::{FromJson, ToJson};
use ezp_core::{Error, Result};

use crate::proto::{read_frame, write_frame, FrameIn, JobSpec, Request, Response};

/// A blocking connection to an `ezp-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon, e.g. `Client::connect("127.0.0.1:7878")`.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(Error::Io)?;
        // request/response frames are small; Nagle + delayed ACK would
        // add tens of ms to every exchange
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(Error::Io)?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        write_frame(&mut self.writer, &req.to_json()).map_err(Error::Io)
    }

    fn recv(&mut self) -> Result<Response> {
        match read_frame(&mut self.reader)? {
            FrameIn::Msg(json) => Response::from_json(&json),
            FrameIn::Eof => Err(Error::Config("server closed the connection".into())),
            FrameIn::Malformed(why) => {
                Err(Error::Config(format!("malformed server frame: {why}")))
            }
        }
    }

    /// Submits a job and blocks until its terminal response.
    ///
    /// Returns the terminal frame: [`Response::Done`] on success,
    /// [`Response::Failed`] when the kernel errored, or
    /// [`Response::Rejected`] when admission pushed back (the caller
    /// decides whether to honour `retry_after_ms`). The intermediate
    /// `accepted` frame is consumed internally.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Response> {
        self.send(&Request::Submit(spec.clone()))?;
        match self.recv()? {
            Response::Accepted { .. } => {}
            terminal @ (Response::Rejected { .. } | Response::Error(_)) => return Ok(terminal),
            other => return Ok(other),
        }
        self.recv()
    }

    /// Submits a job, retrying rejected submissions until the daemon
    /// admits it. Sleeps for the server-suggested `retry_after_ms`
    /// between attempts. Returns the terminal `done`/`failed` frame —
    /// or the rejection itself when `retry_after_ms` is 0, the server's
    /// way of saying the rejection is permanent (invalid spec,
    /// shutdown) and resubmitting can never succeed.
    pub fn submit_retrying(&mut self, spec: &JobSpec) -> Result<Response> {
        loop {
            match self.submit(spec)? {
                Response::Rejected { retry_after_ms: 0, reason } => {
                    return Ok(Response::Rejected { retry_after_ms: 0, reason })
                }
                Response::Rejected { retry_after_ms, .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms));
                }
                terminal => return Ok(terminal),
            }
        }
    }

    /// Fetches the daemon's per-tenant stats document.
    pub fn stats(&mut self) -> Result<ezp_core::json::Json> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(json) => Ok(json),
            Response::Error(e) => Err(Error::Config(format!("server error: {e}"))),
            other => Err(Error::Config(format!(
                "unexpected response to stats: {}",
                other.to_json().dump()
            ))),
        }
    }

    /// Asks the daemon to shut down. Returns once the daemon has
    /// acknowledged with `shutting_down`.
    pub fn shutdown(&mut self) -> Result<()> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            Response::Error(e) => Err(Error::Config(format!("server error: {e}"))),
            other => Err(Error::Config(format!(
                "unexpected response to shutdown: {}",
                other.to_json().dump()
            ))),
        }
    }
}
