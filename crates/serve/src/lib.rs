//! `ezp-serve` — a persistent multi-tenant compute service.
//!
//! Interactive `easypap` runs pay the full startup bill — process
//! spawn, registry construction, worker-pool thread creation — for
//! every single invocation. `ezp-serve` keeps all of that warm in a
//! long-running daemon: clients connect over loopback TCP, submit
//! compute jobs (`kernel`, `variant`, `size`, `iterations`, and an
//! optional tenant id), and stream back a frame digest plus a full
//! per-job [`ezp_monitor::UnifiedReport`].
//!
//! The moving parts, one module each:
//!
//! * [`proto`] — the wire format: 4-byte little-endian length prefix
//!   followed by an `ezp_core::json` document. Malformed frames
//!   (bad prefix, truncated body, oversized payload, non-JSON bytes)
//!   are diagnosed without panicking and poison only the connection
//!   that sent them.
//! * [`admission`] — bounded per-tenant admission lanes built on
//!   `ezp-chan`. A full lane answers *reject with retry-after*
//!   (backpressure) rather than buffering without bound, and the
//!   drain side round-robins across tenants so one noisy tenant
//!   cannot starve the others.
//! * [`server`] — the daemon: an acceptor thread, one reader thread
//!   per connection, and a set of runner threads that lease
//!   [`ezp_sched::WorkerPool`]s from a shared [`ezp_sched::PoolMux`]
//!   so independent jobs execute concurrently on disjoint worker
//!   sets. Kernel panics are caught per job; a client disconnect
//!   cancels its queued jobs.
//! * [`metrics`] — per-tenant service counters (`jobs_admitted`,
//!   `jobs_rejected`, `tenant_queue_depth`, `tenant_idle_ns`, ...) on
//!   the lock-free `ezp_perf::CounterSet` spine, with the tenant slot
//!   riding in the per-worker dimension.
//! * [`client`] — a small blocking client used by `easypap submit`
//!   and the bench harness.
//!
//! See `docs/serving.md` for the protocol walk-through and failure
//! semantics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use admission::{Admission, Job, JobTicket, NullSink, Reject, ReplySink, DEFAULT_TENANT};
pub use client::Client;
pub use metrics::ServeMetrics;
pub use proto::{
    JobSpec, Request, Response, MAX_FRAME, MAX_JOB_ITERATIONS, MAX_JOB_SIZE, MAX_JOB_STALL_US,
};
pub use server::{ServeConfig, Server, ServerSummary};
