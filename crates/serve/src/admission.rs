//! Admission control: bounded per-tenant queues with round-robin
//! drain.
//!
//! Each tenant slot owns one bounded `ezp-chan` lane (the same MPMC
//! endpoints the streaming engine uses), created eagerly at daemon
//! start so admission never allocates channel state under load. Submit
//! is `try_send`: a full lane is an immediate [`Reject`] with a
//! retry-after hint — backpressure lives at the edge, not in unbounded
//! buffering. Runner threads drain the lanes with a shared round-robin
//! cursor, so a tenant flooding its own queue cannot starve the others:
//! each scan visits every tenant once before revisiting any.

use crate::metrics::ServeMetrics;
use crate::proto::{JobSpec, Response};
use ezp_chan::backend::{bounded, ChanReceiver, ChanSender};
use ezp_chan::TrySendError;
use ezp_core::park::ParkLot;
use ezp_core::time::now_ns;
use ezp_core::ChanTuning;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The tenant name used when a job arrives without one.
pub const DEFAULT_TENANT: &str = "default";

/// An admitted job as it travels through a lane to a runner.
pub struct Job {
    /// Daemon-wide job id (assigned at admission).
    pub id: u64,
    /// Tenant counter slot.
    pub tenant_slot: usize,
    /// Resolved tenant name.
    pub tenant: String,
    /// What to run.
    pub spec: JobSpec,
    /// Admission timestamp, for queue-wait (`tenant_idle_ns`)
    /// attribution.
    pub enqueued_ns: u64,
    /// Job-completion callback state owned by the connection; runners
    /// check [`JobTicket::is_live`] before spending pool time.
    pub ticket: Arc<JobTicket>,
    /// Where the terminal `Done`/`Failed` response goes.
    pub reply: Arc<dyn ReplySink>,
}

/// Where a job's responses are delivered — the submitting connection in
/// the daemon, a capture buffer in tests.
pub trait ReplySink: Send + Sync {
    /// Deliver one response frame toward the client. Best effort: a
    /// dead peer is signalled through the job's [`JobTicket`], not an
    /// error here.
    fn send(&self, resp: &Response);
}

/// Discards every response (fire-and-forget jobs, tests).
pub struct NullSink;

impl ReplySink for NullSink {
    fn send(&self, _resp: &Response) {}
}

/// Shared cancellation state between a connection and the runner
/// executing its job: when the client disconnects, the reader flips
/// `live` and the runner drops the job instead of computing for nobody.
/// Deliberately not RAII: both sides hold an `Arc`, and "release" is
/// the runner *observing* `live == false`, not a scope ending — so no
/// `Drop` impl, and call sites may clone it freely.
#[derive(Default)]
// ezp-lint: allow(guard-leak)
pub struct JobTicket {
    live: AtomicBool,
}

impl JobTicket {
    /// A live ticket.
    pub fn new() -> Arc<JobTicket> {
        Arc::new(JobTicket { live: AtomicBool::new(true) })
    }

    /// Still worth running?
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Acquire)
    }

    /// The client went away; any queued or running job may stop.
    pub fn cancel(&self) {
        self.live.store(false, Ordering::Release);
    }
}

/// Why a submit was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// Human-readable reason.
    pub reason: String,
    /// Suggested resubmit delay.
    pub retry_after_ms: u64,
}

struct Lane {
    tx: Box<dyn ChanSender<Job>>,
    rx: Box<dyn ChanReceiver<Job>>,
    /// Current queue depth. counter-only telemetry: admission is
    /// bounded by the channel itself, so a stale depth misleads no one.
    depth: AtomicU64,
}

/// Bounded per-tenant admission queues plus the wake-up plumbing for
/// runner threads.
pub struct Admission {
    lanes: Vec<Lane>,
    metrics: Arc<ServeMetrics>,
    /// Bumped on every admit; runners park on this when every lane is
    /// empty.
    admit_seq: AtomicU64,
    /// Set once at shutdown; parked runners re-check it on wake.
    closed: AtomicBool,
    /// Serializes `submit`'s closed-check + enqueue against `close`'s
    /// closed-store: once `close` holds this lock, no job can slip into
    /// a lane after runners' final post-close drain, so every admitted
    /// job reaches a terminal state.
    gate: Mutex<()>,
    park: ParkLot,
    /// counter-only: the monotone id is the entire payload; uniqueness
    /// comes from the fetch_add's atomicity alone.
    next_job_id: AtomicU64,
    queue_cap: usize,
}

impl Admission {
    /// Builds one bounded lane per tenant slot (capacity `queue_cap`
    /// each).
    pub fn new(tuning: ChanTuning, metrics: Arc<ServeMetrics>, queue_cap: usize) -> Self {
        let queue_cap = queue_cap.max(1);
        let lanes = (0..metrics.max_tenants())
            .map(|_| {
                let (mut txs, rx) = bounded::<Job>(tuning, 1, queue_cap);
                Lane {
                    tx: txs.pop().expect("one producer endpoint"),
                    rx,
                    depth: AtomicU64::new(0),
                }
            })
            .collect();
        Admission {
            lanes,
            metrics,
            admit_seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            gate: Mutex::new(()),
            park: ParkLot::new(),
            next_job_id: AtomicU64::new(1),
            queue_cap,
        }
    }

    /// Per-tenant queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Admits `spec` for `ticket`'s connection, or rejects it with a
    /// retry hint. On success the assigned `(job_id, tenant, slot)` is
    /// returned and one runner is woken.
    pub fn submit(
        &self,
        spec: JobSpec,
        ticket: Arc<JobTicket>,
        reply: Arc<dyn ReplySink>,
    ) -> Result<(u64, String, usize), Reject> {
        let tenant = spec
            .tenant
            .clone()
            .filter(|t| !t.is_empty())
            .unwrap_or_else(|| DEFAULT_TENANT.to_string());
        let Some(slot) = self.metrics.tenant_slot(&tenant) else {
            return Err(Reject {
                reason: format!(
                    "tenant table full ({} tenants max)",
                    self.metrics.max_tenants()
                ),
                retry_after_ms: 1000,
            });
        };
        if let Err(why) = spec.validate() {
            self.metrics.rejected(slot);
            // retry_after_ms 0 = permanent: resubmitting the same spec
            // can never succeed
            return Err(Reject { reason: why, retry_after_ms: 0 });
        }
        let id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            id,
            tenant_slot: slot,
            tenant: tenant.clone(),
            spec,
            enqueued_ns: now_ns(),
            ticket,
            reply,
        };
        // the gate orders this check + enqueue against `close`: a close
        // cannot land between them, so an Ok send always happens-before
        // `closed` turns true (and is therefore seen by the runners'
        // final drain)
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        if self.closed.load(Ordering::SeqCst) {
            return Err(Reject {
                reason: "server is shutting down".to_string(),
                retry_after_ms: 0,
            });
        }
        match self.lanes[slot].tx.try_send(job) {
            Ok(()) => {
                let depth = self.lanes[slot].depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.admit_seq.fetch_add(1, Ordering::SeqCst);
                drop(gate);
                self.metrics.admitted(slot, depth);
                self.park.notify();
                Ok((id, tenant, slot))
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.rejected(slot);
                Err(Reject {
                    reason: format!(
                        "tenant `{tenant}` queue full ({} jobs)",
                        self.queue_cap
                    ),
                    retry_after_ms: 25,
                })
            }
            Err(TrySendError::Closed(_)) => {
                self.metrics.rejected(slot);
                Err(Reject {
                    reason: "server is shutting down".to_string(),
                    retry_after_ms: 0,
                })
            }
        }
    }

    /// One round-robin scan over every lane starting after `cursor`'s
    /// last position. Fairness: the shared cursor advances by one per
    /// *successful* take, so consecutive takes start their scans at
    /// consecutive tenants and a busy tenant cannot shadow later slots.
    fn scan(&self, cursor: &AtomicUsize) -> Option<Job> {
        let n = self.lanes.len();
        let start = cursor.load(Ordering::Relaxed);
        for i in 0..n {
            let slot = (start + i) % n;
            if let Ok(job) = self.lanes[slot].rx.try_recv() {
                self.lanes[slot].depth.fetch_sub(1, Ordering::Relaxed);
                cursor.store((slot + 1) % n, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Takes the next job in round-robin tenant order, parking until
    /// one is admitted. `None` means the admission is closed *and*
    /// drained — the runner should exit.
    pub fn next_job(&self, cursor: &AtomicUsize) -> Option<Job> {
        loop {
            // sample the wake sequence BEFORE scanning: an admit that
            // races the scan bumps admit_seq past `seen`, so wait_until
            // falls through instead of parking over the queued job
            let seen = self.admit_seq.load(Ordering::SeqCst);
            if let Some(job) = self.scan(cursor) {
                return Some(job);
            }
            if self.closed.load(Ordering::SeqCst) {
                // final drain AFTER observing `closed`: the gate orders
                // every admitted enqueue before the closed-store, so
                // this rescan sees any job that raced the close
                return self.scan(cursor);
            }
            self.park.wait_until(|| {
                self.admit_seq.load(Ordering::SeqCst) != seen
                    || self.closed.load(Ordering::SeqCst)
            });
        }
    }

    /// Closes admission: future submits are rejected, parked runners
    /// wake, and `next_job` returns `None` once the lanes are drained.
    pub fn close(&self) {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.closed.store(true, Ordering::SeqCst);
        drop(gate);
        self.park.notify();
    }

    /// Sum of current lane depths (telemetry).
    pub fn queued_now(&self) -> u64 {
        self.lanes.iter().map(|l| l.depth.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adm(max_tenants: usize, cap: usize) -> Admission {
        Admission::new(
            ChanTuning::default(),
            Arc::new(ServeMetrics::new(max_tenants)),
            cap,
        )
    }

    fn spec(tenant: &str) -> JobSpec {
        JobSpec {
            tenant: Some(tenant.to_string()),
            ..JobSpec::default()
        }
    }

    #[test]
    fn full_lane_rejects_with_retry_hint() {
        let a = adm(2, 2);
        let t = JobTicket::new();
        for _ in 0..2 {
            a.submit(spec("x"), Arc::clone(&t), Arc::new(NullSink)).unwrap();
        }
        let rej = a.submit(spec("x"), Arc::clone(&t), Arc::new(NullSink)).unwrap_err();
        assert!(rej.reason.contains("queue full"), "{}", rej.reason);
        assert!(rej.retry_after_ms > 0);
        // another tenant still gets in
        a.submit(spec("y"), t, Arc::new(NullSink)).unwrap();
        let (admitted, rejected, ..) = a.metrics.totals();
        assert_eq!((admitted, rejected), (3, 1));
    }

    #[test]
    fn over_quota_tenants_are_rejected() {
        let a = adm(1, 4);
        let t = JobTicket::new();
        a.submit(spec("only"), Arc::clone(&t), Arc::new(NullSink)).unwrap();
        let rej = a.submit(spec("other"), t, Arc::new(NullSink)).unwrap_err();
        assert!(rej.reason.contains("tenant table full"), "{}", rej.reason);
    }

    #[test]
    fn drain_is_round_robin_across_tenants() {
        let a = adm(4, 8);
        let t = JobTicket::new();
        // tenant a floods 4 jobs, b and c one each
        for _ in 0..4 {
            a.submit(spec("a"), Arc::clone(&t), Arc::new(NullSink)).unwrap();
        }
        a.submit(spec("b"), Arc::clone(&t), Arc::new(NullSink)).unwrap();
        a.submit(spec("c"), Arc::clone(&t), Arc::new(NullSink)).unwrap();
        let cursor = AtomicUsize::new(0);
        let order: Vec<String> = (0..6)
            .map(|_| a.next_job(&cursor).unwrap().tenant)
            .collect();
        // first three takes visit three distinct tenants — the flood
        // does not starve b or c
        assert_eq!(order[..3], ["a", "b", "c"], "got {order:?}");
        assert_eq!(order[3..], ["a", "a", "a"]);
    }

    #[test]
    fn close_wakes_parked_consumers_and_drains() {
        let a = Arc::new(adm(2, 4));
        let t = JobTicket::new();
        a.submit(spec("x"), t, Arc::new(NullSink)).unwrap();
        let a2 = Arc::clone(&a);
        let consumer = std::thread::spawn(move || {
            let cursor = AtomicUsize::new(0);
            let mut got = 0;
            while a2.next_job(&cursor).is_some() {
                got += 1;
            }
            got
        });
        // let the consumer drain and park
        std::thread::sleep(std::time::Duration::from_millis(30));
        a.close();
        assert_eq!(consumer.join().unwrap(), 1);
        // submits after close are rejected
        let rej = a.submit(spec("x"), JobTicket::new(), Arc::new(NullSink)).unwrap_err();
        assert!(rej.reason.contains("shutting down"));
    }

    #[test]
    fn ping_pong_submits_are_never_lost_to_a_parking_race() {
        // regression: `seen` sampled after the empty scan let an admit
        // land in the scan→load window, so the predicate was already
        // "satisfied" and the runner parked over a queued job. The
        // ping-pong maximizes park/submit interleavings; a lost wakeup
        // hangs the spin below (the consumer never drains job k).
        let a = Arc::new(adm(1, 4));
        let a2 = Arc::clone(&a);
        let consumer = std::thread::spawn(move || {
            let cursor = AtomicUsize::new(0);
            let mut got = 0;
            while a2.next_job(&cursor).is_some() {
                got += 1;
            }
            got
        });
        let t = JobTicket::new();
        for _ in 0..200 {
            a.submit(spec("x"), Arc::clone(&t), Arc::new(NullSink)).unwrap();
            while a.queued_now() > 0 {
                std::thread::yield_now();
            }
        }
        a.close();
        assert_eq!(consumer.join().unwrap(), 200);
    }

    #[test]
    fn a_submit_racing_close_cannot_strand_an_admitted_job() {
        // regression: `closed` was checked before try_send without any
        // ordering against close(), so a job could be enqueued after
        // the runners' final drain — admitted but never terminal. The
        // gate now orders every Ok enqueue before the closed-store, so
        // the post-close drain must account for every admitted job.
        for _ in 0..50 {
            let a = Arc::new(adm(1, 64));
            let a2 = Arc::clone(&a);
            let producer = std::thread::spawn(move || {
                let mut ok = 0u32;
                for _ in 0..64 {
                    match a2.submit(spec("x"), JobTicket::new(), Arc::new(NullSink)) {
                        Ok(_) => ok += 1,
                        Err(_) => break,
                    }
                }
                ok
            });
            a.close();
            let admitted = producer.join().unwrap();
            let cursor = AtomicUsize::new(0);
            let mut drained = 0;
            while a.next_job(&cursor).is_some() {
                drained += 1;
            }
            assert_eq!(drained, admitted, "admitted jobs lost at shutdown");
        }
    }

    #[test]
    fn oversized_specs_are_rejected_permanently() {
        let a = adm(2, 4);
        let mut big = spec("x");
        big.size = 100_000;
        let rej = a
            .submit(big, JobTicket::new(), Arc::new(NullSink))
            .unwrap_err();
        assert!(rej.reason.contains("size"), "{}", rej.reason);
        assert_eq!(rej.retry_after_ms, 0, "permanent rejection");
        let (admitted, rejected, ..) = a.metrics.totals();
        assert_eq!((admitted, rejected), (0, 1));
    }

    #[test]
    fn queue_wait_feeds_idle_attribution() {
        let a = adm(2, 4);
        let t = JobTicket::new();
        a.submit(spec("x"), t, Arc::new(NullSink)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let cursor = AtomicUsize::new(0);
        let job = a.next_job(&cursor).unwrap();
        let waited = now_ns().saturating_sub(job.enqueued_ns);
        assert!(waited >= 4_000_000, "only waited {waited} ns");
        a.metrics.completed(job.tenant_slot, waited);
        let snap = a.metrics.snapshot();
        assert!(snap.total(ezp_perf::names::TENANT_IDLE_NS) >= 4_000_000);
    }
}
