//! Per-tenant service counters.
//!
//! Reuses `ezp_perf::CounterSet` — the same cache-padded lock-free
//! counter spine the scheduler uses — with one twist: the per-worker
//! dimension becomes the per-*tenant* dimension. Slot `i` of every
//! counter belongs to tenant slot `i`, so `jobs_admitted{worker="2"}`
//! in the exported report reads "tenant slot 2". The tenant-name table
//! is the only locked structure, touched once per (tenant, connection)
//! resolution — never per counter bump.

use ezp_core::json::{Json, ToJson};
use ezp_perf::names;
use ezp_perf::{CounterId, CounterSet, CounterSnapshot};
use std::sync::Mutex;

/// The daemon-wide per-tenant counter set.
pub struct ServeMetrics {
    counters: CounterSet,
    jobs_admitted: CounterId,
    jobs_rejected: CounterId,
    jobs_completed: CounterId,
    jobs_cancelled: CounterId,
    jobs_failed: CounterId,
    tenant_queue_depth: CounterId,
    tenant_idle_ns: CounterId,
    /// Tenant slot table: index = counter slot. Bounded by
    /// `max_tenants`; a full table is an admission rejection, not a
    /// growth event, so counter storage never reallocates.
    tenants: Mutex<Vec<String>>,
    max_tenants: usize,
}

impl ServeMetrics {
    /// A metric set with room for `max_tenants` tenant slots.
    pub fn new(max_tenants: usize) -> Self {
        let max_tenants = max_tenants.max(1);
        let mut counters = CounterSet::new(max_tenants);
        let jobs_admitted = counters.register(names::JOBS_ADMITTED);
        let jobs_rejected = counters.register(names::JOBS_REJECTED);
        let jobs_completed = counters.register(names::JOBS_COMPLETED);
        let jobs_cancelled = counters.register(names::JOBS_CANCELLED);
        let jobs_failed = counters.register(names::JOBS_FAILED);
        let tenant_queue_depth = counters.register(names::TENANT_QUEUE_DEPTH);
        let tenant_idle_ns = counters.register(names::TENANT_IDLE_NS);
        ServeMetrics {
            counters,
            jobs_admitted,
            jobs_rejected,
            jobs_completed,
            jobs_cancelled,
            jobs_failed,
            tenant_queue_depth,
            tenant_idle_ns,
            tenants: Mutex::new(Vec::new()),
            max_tenants,
        }
    }

    /// Maximum number of distinct tenants.
    pub fn max_tenants(&self) -> usize {
        self.max_tenants
    }

    /// Resolves `tenant` to its counter slot, registering it on first
    /// sight. `None` when the tenant table is full.
    pub fn tenant_slot(&self, tenant: &str) -> Option<usize> {
        let mut table = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = table.iter().position(|t| t == tenant) {
            return Some(slot);
        }
        if table.len() >= self.max_tenants {
            return None;
        }
        table.push(tenant.to_string());
        Some(table.len() - 1)
    }

    /// The registered tenant names, slot order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// One job admitted for tenant `slot`; `depth` is the queue depth
    /// right after the enqueue (folded into the high-water gauge).
    pub fn admitted(&self, slot: usize, depth: u64) {
        self.counters.incr(self.jobs_admitted, slot);
        self.counters.max(self.tenant_queue_depth, slot, depth);
    }

    /// One job rejected with backpressure for tenant `slot`.
    pub fn rejected(&self, slot: usize) {
        self.counters.incr(self.jobs_rejected, slot);
    }

    /// One job finished for tenant `slot`, after waiting `queued_ns` in
    /// its admission lane.
    pub fn completed(&self, slot: usize, queued_ns: u64) {
        self.counters.incr(self.jobs_completed, slot);
        self.counters.add(self.tenant_idle_ns, slot, queued_ns);
    }

    /// One admitted job dropped because its client disconnected.
    pub fn cancelled(&self, slot: usize) {
        self.counters.incr(self.jobs_cancelled, slot);
    }

    /// One admitted job that errored during execution.
    pub fn failed(&self, slot: usize) {
        self.counters.incr(self.jobs_failed, slot);
    }

    /// Totals across tenants: (admitted, rejected, completed, cancelled,
    /// failed).
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.counters.total(self.jobs_admitted),
            self.counters.total(self.jobs_rejected),
            self.counters.total(self.jobs_completed),
            self.counters.total(self.jobs_cancelled),
            self.counters.total(self.jobs_failed),
        )
    }

    /// Snapshot of the raw counters (tenant slots in the worker
    /// dimension).
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// The stats document served to [`crate::proto::Request::Stats`]:
    /// tenant names aligned with the counter slots, plus the raw
    /// snapshot for machine consumers.
    pub fn to_json(&self) -> Json {
        let tenant_names = self.tenant_names();
        let snapshot = self.snapshot();
        let per_tenant: Vec<Json> = tenant_names
            .iter()
            .enumerate()
            .map(|(slot, name)| {
                let val = |counter: &str| {
                    snapshot
                        .get(counter)
                        .and_then(|c| c.per_worker.get(slot).copied())
                        .unwrap_or(0)
                };
                Json::obj([
                    ("tenant", name.to_json()),
                    ("slot", slot.to_json()),
                    ("jobs_admitted", val(names::JOBS_ADMITTED).to_json()),
                    ("jobs_rejected", val(names::JOBS_REJECTED).to_json()),
                    ("jobs_completed", val(names::JOBS_COMPLETED).to_json()),
                    ("jobs_cancelled", val(names::JOBS_CANCELLED).to_json()),
                    ("jobs_failed", val(names::JOBS_FAILED).to_json()),
                    ("tenant_queue_depth", val(names::TENANT_QUEUE_DEPTH).to_json()),
                    ("tenant_idle_ns", val(names::TENANT_IDLE_NS).to_json()),
                ])
            })
            .collect();
        Json::obj([
            ("max_tenants", self.max_tenants.to_json()),
            ("tenants", Json::Arr(per_tenant)),
            ("counters", snapshot.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_bounded() {
        let m = ServeMetrics::new(2);
        assert_eq!(m.tenant_slot("a"), Some(0));
        assert_eq!(m.tenant_slot("b"), Some(1));
        assert_eq!(m.tenant_slot("a"), Some(0), "idempotent");
        assert_eq!(m.tenant_slot("c"), None, "table full");
        assert_eq!(m.tenant_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn counters_land_on_the_tenant_slot() {
        let m = ServeMetrics::new(4);
        let a = m.tenant_slot("a").unwrap();
        let b = m.tenant_slot("b").unwrap();
        m.admitted(a, 1);
        m.admitted(a, 2);
        m.admitted(b, 1);
        m.rejected(b);
        m.completed(a, 500);
        m.cancelled(b);
        m.failed(a);
        let (adm, rej, comp, canc, fail) = m.totals();
        assert_eq!((adm, rej, comp, canc, fail), (3, 1, 1, 1, 1));
        let snap = m.snapshot();
        assert_eq!(snap.get(names::JOBS_ADMITTED).unwrap().per_worker[a], 2);
        assert_eq!(snap.get(names::JOBS_ADMITTED).unwrap().per_worker[b], 1);
        assert_eq!(snap.get(names::TENANT_QUEUE_DEPTH).unwrap().per_worker[a], 2);
        assert_eq!(snap.get(names::TENANT_IDLE_NS).unwrap().per_worker[a], 500);
    }

    #[test]
    fn stats_json_aligns_names_with_slots() {
        let m = ServeMetrics::new(4);
        let a = m.tenant_slot("acme").unwrap();
        m.admitted(a, 1);
        m.rejected(a);
        let j = m.to_json();
        assert_eq!(j.field::<usize>("max_tenants").unwrap(), 4);
        let tenants = j.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].field::<String>("tenant").unwrap(), "acme");
        assert_eq!(tenants[0].field::<u64>("jobs_admitted").unwrap(), 1);
        assert_eq!(tenants[0].field::<u64>("jobs_rejected").unwrap(), 1);
        // the raw snapshot rides along for machine consumers
        assert!(j.get("counters").is_some());
    }
}
