//! The wire protocol: length-prefixed `ezp_core::json` frames.
//!
//! Every message is a 4-byte little-endian length followed by exactly
//! that many bytes of UTF-8 JSON. The length covers the JSON only, is
//! capped at [`MAX_FRAME`] (a daemon must not let one client allocate
//! arbitrary memory), and zero-length frames are rejected — a clean
//! close is an EOF *between* frames, never an empty one.
//!
//! Requests and responses are tagged objects (`{"type": "submit", ...}`)
//! so the protocol can grow without renumbering; unknown types are a
//! per-connection error, not a daemon panic. Encoding round-trips are
//! property-tested in this module.

use ezp_core::error::{Error, Result};
use ezp_core::json::{FromJson, Json, ToJson};
use std::io::{ErrorKind, Read, Write};

/// Maximum frame payload, in bytes. Larger prefixes are rejected
/// without reading the body.
pub const MAX_FRAME: usize = 1 << 20;

/// Largest square image dimension a job may request. Bounds the
/// daemon-side allocation a client can drive (two `size²` RGBA images):
/// 4096² is ~134 MB across both buffers.
pub const MAX_JOB_SIZE: usize = 4096;

/// Largest per-job iteration budget a client may request.
pub const MAX_JOB_ITERATIONS: u32 = 100_000;

/// Largest synthetic stall a job may request (5 s) — a stall occupies a
/// runner slot for its full duration.
pub const MAX_JOB_STALL_US: u64 = 5_000_000;

/// How reading one frame from a connection went.
#[derive(Debug)]
pub enum FrameIn {
    /// A complete, parseable frame.
    Msg(Json),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The peer sent garbage: oversized/zero length prefix, a truncated
    /// body, or bytes that do not parse as JSON. The connection should
    /// be answered with an error and closed; the daemon keeps running.
    Malformed(String),
}

/// Reads one length-prefixed frame.
///
/// I/O errors other than a clean EOF surface as `Err`; protocol-level
/// garbage is [`FrameIn::Malformed`] so callers can distinguish "the
/// network broke" from "the client is speaking nonsense".
pub fn read_frame(r: &mut impl Read) -> Result<FrameIn> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf) {
        Ok(false) => return Ok(FrameIn::Eof),
        Ok(true) => {}
        Err(e) => return Err(Error::Io(e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Ok(FrameIn::Malformed("zero-length frame".to_string()));
    }
    if len > MAX_FRAME {
        return Ok(FrameIn::Malformed(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut body = vec![0u8; len];
    match read_exact_or_eof(r, &mut body) {
        Ok(true) => {}
        Ok(false) => {
            return Ok(FrameIn::Malformed(format!(
                "connection closed inside a {len}-byte frame"
            )))
        }
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
            return Ok(FrameIn::Malformed(format!(
                "connection closed inside a {len}-byte frame"
            )))
        }
        Err(e) => return Err(Error::Io(e)),
    }
    let text = match String::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Ok(FrameIn::Malformed("frame is not UTF-8".to_string())),
    };
    match Json::parse(&text) {
        Ok(v) => Ok(FrameIn::Msg(v)),
        Err(e) => Ok(FrameIn::Malformed(format!("frame is not JSON: {e}"))),
    }
}

/// `read_exact`, but a clean EOF *before the first byte* returns
/// `Ok(false)` instead of an error; EOF mid-buffer is `UnexpectedEof`.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "eof inside frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes one length-prefixed frame.
///
/// An oversized payload is an `InvalidData` error with nothing written,
/// not a panic: the caller loses one response, never the thread that
/// tried to send it.
pub fn write_frame(w: &mut impl Write, msg: &Json) -> std::io::Result<()> {
    let body = msg.dump();
    let len = body.len();
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("outgoing frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// One compute job as submitted by a client. Field-for-field this is
/// the serve-mode subset of `RunConfig` plus the tenant identity.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Kernel name (`mandel`, `blur`, ...).
    pub kernel: String,
    /// Kernel variant (`seq`, `omp_tiled`, ...).
    pub variant: String,
    /// Square image dimension.
    pub size: usize,
    /// Tile edge.
    pub tile: usize,
    /// Iteration budget.
    pub iterations: u32,
    /// Worker threads the job may use (clamped to the daemon's pool
    /// width at execution time).
    pub threads: usize,
    /// Tenant identity; empty/absent maps to the `"default"` tenant.
    pub tenant: Option<String>,
    /// Synthetic per-job stall in microseconds, modeling the upstream
    /// ingest/IO latency of a replayed production request. Stalls
    /// overlap across runner slots, which is exactly what the
    /// concurrent-tenant benchmark measures; 0 for pure compute.
    pub stall_us: u64,
}

impl JobSpec {
    /// Checks the spec against the daemon's per-job resource limits.
    /// Called at admission, before any allocation happens on the job's
    /// behalf — `MAX_FRAME` bounds the wire frame, this bounds what the
    /// decoded numbers inside it can make the daemon do.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.size == 0 || self.size > MAX_JOB_SIZE {
            return Err(format!(
                "size {} out of range (1..={MAX_JOB_SIZE})",
                self.size
            ));
        }
        if self.tile == 0 || self.tile > self.size {
            return Err(format!(
                "tile {} out of range (1..=size {})",
                self.tile, self.size
            ));
        }
        if self.iterations == 0 || self.iterations > MAX_JOB_ITERATIONS {
            return Err(format!(
                "iterations {} out of range (1..={MAX_JOB_ITERATIONS})",
                self.iterations
            ));
        }
        if self.stall_us > MAX_JOB_STALL_US {
            return Err(format!(
                "stall_us {} exceeds the {MAX_JOB_STALL_US} limit",
                self.stall_us
            ));
        }
        Ok(())
    }
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            kernel: "mandel".to_string(),
            variant: "seq".to_string(),
            size: 64,
            tile: 16,
            iterations: 1,
            threads: 1,
            tenant: None,
            stall_us: 0,
        }
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kernel", self.kernel.to_json()),
            ("variant", self.variant.to_json()),
            ("size", self.size.to_json()),
            ("tile", self.tile.to_json()),
            ("iterations", self.iterations.to_json()),
            ("threads", self.threads.to_json()),
            ("tenant", self.tenant.to_json()),
            ("stall_us", self.stall_us.to_json()),
        ])
    }
}

impl FromJson for JobSpec {
    fn from_json(v: &Json) -> Result<JobSpec> {
        Ok(JobSpec {
            kernel: v.field("kernel")?,
            variant: v.field("variant")?,
            size: v.field("size")?,
            tile: v.field("tile")?,
            iterations: v.field("iterations")?,
            threads: v.field("threads")?,
            tenant: match v.get("tenant") {
                None => None,
                Some(t) => Option::<String>::from_json(t)?,
            },
            stall_us: match v.get("stall_us") {
                None => 0,
                Some(s) => u64::from_json(s)?,
            },
        })
    }
}

/// A client → daemon message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit one compute job.
    Submit(JobSpec),
    /// Ask for the daemon-wide per-tenant counter report.
    Stats,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Submit(spec) => {
                let mut fields = vec![("type".to_string(), Json::Str("submit".to_string()))];
                if let Json::Obj(spec_fields) = spec.to_json() {
                    fields.extend(spec_fields);
                }
                Json::Obj(fields)
            }
            Request::Stats => Json::obj([("type", "stats".to_json())]),
            Request::Shutdown => Json::obj([("type", "shutdown".to_json())]),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Request> {
        let ty: String = v.field("type")?;
        match ty.as_str() {
            "submit" => Ok(Request::Submit(JobSpec::from_json(v)?)),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(Error::Json(format!(
                "unknown request type `{other}` (expected submit, stats or shutdown)"
            ))),
        }
    }
}

/// A daemon → client message. Job-bearing variants carry the `job_id`
/// assigned at admission so a client may keep several jobs in flight on
/// one connection.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job entered its tenant's admission queue.
    Accepted {
        /// Daemon-wide job id.
        job_id: u64,
        /// Resolved tenant name.
        tenant: String,
    },
    /// Backpressure: the tenant's queue (or the tenant table) is full.
    Rejected {
        /// Why the job was not admitted.
        reason: String,
        /// Suggested client-side delay before resubmitting.
        retry_after_ms: u64,
    },
    /// The job ran to completion.
    Done {
        /// Daemon-wide job id (matches the `Accepted`).
        job_id: u64,
        /// Resolved tenant name.
        tenant: String,
        /// Wall time of the kernel run, nanoseconds.
        elapsed_ns: u64,
        /// Iterations actually executed.
        iterations: u32,
        /// FNV-1a digest of the final frame's pixels, as hex.
        digest: String,
        /// Per-job `UnifiedReport` (counters + spans), tenant-tagged.
        report: Json,
    },
    /// The job was admitted but failed to run (unknown kernel/variant,
    /// bad geometry, kernel error).
    Failed {
        /// Daemon-wide job id.
        job_id: u64,
        /// The error text.
        error: String,
    },
    /// Answer to [`Request::Stats`]: the per-tenant counter report.
    Stats(Json),
    /// The peer sent a malformed or unintelligible frame; the daemon
    /// closes this connection after sending it.
    Error(String),
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Accepted { job_id, tenant } => Json::obj([
                ("type", "accepted".to_json()),
                ("job_id", job_id.to_json()),
                ("tenant", tenant.to_json()),
            ]),
            Response::Rejected { reason, retry_after_ms } => Json::obj([
                ("type", "rejected".to_json()),
                ("reason", reason.to_json()),
                ("retry_after_ms", retry_after_ms.to_json()),
            ]),
            Response::Done {
                job_id,
                tenant,
                elapsed_ns,
                iterations,
                digest,
                report,
            } => Json::obj([
                ("type", "done".to_json()),
                ("job_id", job_id.to_json()),
                ("tenant", tenant.to_json()),
                ("elapsed_ns", elapsed_ns.to_json()),
                ("iterations", iterations.to_json()),
                ("digest", digest.to_json()),
                ("report", report.clone()),
            ]),
            Response::Failed { job_id, error } => Json::obj([
                ("type", "failed".to_json()),
                ("job_id", job_id.to_json()),
                ("error", error.to_json()),
            ]),
            Response::Stats(j) => {
                Json::obj([("type", "stats".to_json()), ("stats", j.clone())])
            }
            Response::Error(msg) => {
                Json::obj([("type", "error".to_json()), ("error", msg.to_json())])
            }
            Response::ShuttingDown => Json::obj([("type", "shutting_down".to_json())]),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Response> {
        let ty: String = v.field("type")?;
        match ty.as_str() {
            "accepted" => Ok(Response::Accepted {
                job_id: v.field("job_id")?,
                tenant: v.field("tenant")?,
            }),
            "rejected" => Ok(Response::Rejected {
                reason: v.field("reason")?,
                retry_after_ms: v.field("retry_after_ms")?,
            }),
            "done" => Ok(Response::Done {
                job_id: v.field("job_id")?,
                tenant: v.field("tenant")?,
                elapsed_ns: v.field("elapsed_ns")?,
                iterations: v.field("iterations")?,
                digest: v.field("digest")?,
                report: v
                    .get("report")
                    .cloned()
                    .ok_or_else(|| Error::Json("missing field `report`".to_string()))?,
            }),
            "failed" => Ok(Response::Failed {
                job_id: v.field("job_id")?,
                error: v.field("error")?,
            }),
            "stats" => Ok(Response::Stats(
                v.get("stats")
                    .cloned()
                    .ok_or_else(|| Error::Json("missing field `stats`".to_string()))?,
            )),
            "error" => Ok(Response::Error(v.field("error")?)),
            "shutting_down" => Ok(Response::ShuttingDown),
            other => Err(Error::Json(format!("unknown response type `{other}`"))),
        }
    }
}

/// FNV-1a over a byte slice — the frame digest clients use to verify
/// that two runs of the same job produced identical pixels.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use std::io::Cursor;

    fn round_trip_req(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json()).unwrap();
        match read_frame(&mut Cursor::new(buf)).unwrap() {
            FrameIn::Msg(v) => Request::from_json(&v).unwrap(),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn simple_requests_round_trip() {
        for req in [Request::Stats, Request::Shutdown, Request::Submit(JobSpec::default())] {
            assert_eq!(round_trip_req(&req), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let samples = [
            Response::Accepted { job_id: 7, tenant: "acme".to_string() },
            Response::Rejected { reason: "queue full".to_string(), retry_after_ms: 50 },
            Response::Done {
                job_id: 7,
                tenant: "acme".to_string(),
                elapsed_ns: 1234,
                iterations: 3,
                digest: format!("{:016x}", fnv1a(b"pixels")),
                report: Json::obj([("counters", Json::Arr(vec![]))]),
            },
            Response::Failed { job_id: 9, error: "unknown kernel".to_string() },
            Response::Stats(Json::obj([("tenants", Json::Arr(vec![]))])),
            Response::Error("bad frame".to_string()),
            Response::ShuttingDown,
        ];
        for resp in samples {
            let mut buf = Vec::new();
            write_frame(&mut buf, &resp.to_json()).unwrap();
            let FrameIn::Msg(v) = read_frame(&mut Cursor::new(buf)).unwrap() else {
                panic!("no frame")
            };
            assert_eq!(Response::from_json(&v).unwrap(), resp);
        }
    }

    #[test]
    fn eof_between_frames_is_clean() {
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::<u8>::new())).unwrap(),
            FrameIn::Eof
        ));
    }

    #[test]
    fn bad_length_prefixes_are_malformed_not_errors() {
        // oversized
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap(),
            FrameIn::Malformed(m) if m.contains("exceeds")
        ));
        // zero-length
        let buf = 0u32.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap(),
            FrameIn::Malformed(m) if m.contains("zero-length")
        ));
    }

    #[test]
    fn truncated_bodies_are_malformed() {
        // promise 100 bytes, deliver 3
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"{\"t");
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap(),
            FrameIn::Malformed(m) if m.contains("closed inside")
        ));
        // truncated length prefix itself
        let buf = vec![0x10u8, 0x00];
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn non_json_bodies_are_malformed() {
        let body = b"not json at all";
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(body);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap(),
            FrameIn::Malformed(m) if m.contains("not JSON")
        ));
        // invalid UTF-8
        let mut buf = 2u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap(),
            FrameIn::Malformed(m) if m.contains("UTF-8")
        ));
    }

    #[test]
    fn oversized_outgoing_frames_error_instead_of_panicking() {
        let huge = Json::Str("x".repeat(MAX_FRAME + 1));
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &huge).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds"), "{err}");
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn job_spec_validation_bounds_resource_use() {
        assert!(JobSpec::default().validate().is_ok());
        let cases = [
            (JobSpec { size: 0, ..JobSpec::default() }, "size"),
            (JobSpec { size: MAX_JOB_SIZE + 1, ..JobSpec::default() }, "size"),
            (JobSpec { tile: 0, ..JobSpec::default() }, "tile"),
            (JobSpec { tile: 65, size: 64, ..JobSpec::default() }, "tile"),
            (JobSpec { iterations: 0, ..JobSpec::default() }, "iterations"),
            (
                JobSpec { iterations: MAX_JOB_ITERATIONS + 1, ..JobSpec::default() },
                "iterations",
            ),
            (
                JobSpec { stall_us: MAX_JOB_STALL_US + 1, ..JobSpec::default() },
                "stall_us",
            ),
        ];
        for (spec, needle) in cases {
            let why = spec.validate().unwrap_err();
            assert!(why.contains(needle), "expected `{needle}` in `{why}`");
        }
        // the largest conforming spec is accepted
        let max = JobSpec {
            size: MAX_JOB_SIZE,
            tile: MAX_JOB_SIZE,
            iterations: MAX_JOB_ITERATIONS,
            stall_us: MAX_JOB_STALL_US,
            ..JobSpec::default()
        };
        assert!(max.validate().is_ok());
    }

    #[test]
    fn unknown_request_type_is_a_json_error() {
        let v = Json::obj([("type", "dance".to_json())]);
        let err = Request::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("dance"), "{err}");
        assert!(err.contains("submit"), "{err}");
    }

    const KERNELS: [&str; 4] = ["mandel", "blur", "life", "spin"];
    const VARIANTS: [&str; 3] = ["seq", "omp", "omp_tiled"];
    const TENANTS: [Option<&str>; 4] = [None, Some("a"), Some("tenant-1"), Some("émoji✓")];

    ezp_proptest! {
        #![cases(64)]

        fn job_specs_round_trip_through_frames(
            kernel_idx in 0usize..4,
            variant_idx in 0usize..3,
            size in 1usize..4096,
            iterations in 1u32..1000,
            tenant_idx in 0usize..4,
            stall_us in 0u64..1_000_000,
        ) {
            let spec = JobSpec {
                kernel: KERNELS[kernel_idx].to_string(),
                variant: VARIANTS[variant_idx].to_string(),
                size,
                tile: 1 + size % 256,
                iterations,
                threads: 1 + kernel_idx + variant_idx,
                tenant: TENANTS[tenant_idx].map(str::to_string),
                stall_us,
            };
            let req = Request::Submit(spec);
            let mut buf = Vec::new();
            write_frame(&mut buf, &req.to_json()).unwrap();
            let FrameIn::Msg(v) = read_frame(&mut Cursor::new(buf)).unwrap() else {
                panic!("no frame")
            };
            assert_eq!(Request::from_json(&v).unwrap(), req);
        }

        fn arbitrary_byte_prefixes_never_panic_the_reader(
            len in 0usize..64,
            fill in 0u8..=255,
        ) {
            // whatever bytes arrive, read_frame returns Msg/Eof/Malformed
            // or Err — it must never panic or allocate MAX_FRAME+ from a
            // lying prefix
            let buf = vec![fill; len];
            let _ = read_frame(&mut Cursor::new(buf));
        }
    }
}
