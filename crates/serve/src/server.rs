//! The daemon: acceptor, per-connection readers, and runner threads
//! over a shared [`PoolMux`].
//!
//! ## Threading model
//!
//! * **acceptor** — blocks on `TcpListener::accept`, spawns one reader
//!   per connection. Woken for shutdown by a loopback connect.
//! * **readers** (one per live connection) — decode frames, answer
//!   `stats` inline, push `submit`s through [`Admission`]. A malformed
//!   frame gets an error response and closes *that* connection only; a
//!   disconnect cancels the connection's in-flight jobs via their
//!   [`JobTicket`]s. Readers never touch the worker pool.
//! * **runners** (`slots` of them) — take jobs in round-robin tenant
//!   order, lease a pool from the shared [`PoolMux`], install it, and
//!   run the kernel exactly like the one-shot CLI would. A lease is
//!   returned (and its epoch left closed) whatever the job did — panic
//!   unwind included — so a misbehaving job cannot leak a pool slot.
//!
//! Responses are written under a per-connection mutex so `Accepted`
//! and `Done` frames from different threads never interleave bytes.

use crate::admission::{Admission, Job, JobTicket, ReplySink};
use crate::metrics::ServeMetrics;
use crate::proto::{read_frame, write_frame, FrameIn, JobSpec, Request, Response};
use ezp_core::json::{FromJson, Json, ToJson};
use ezp_core::kernel::Probe;
use ezp_core::perf::run_kernel_boxed;
use ezp_core::{ChanTuning, RunConfig};
use ezp_monitor::UnifiedReport;
use ezp_perf::PerfProbe;
use ezp_sched::{MuxStats, PoolMux};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port (0 = ephemeral, query via [`Server::addr`]).
    pub port: u16,
    /// Worker threads per pool slot.
    pub workers: usize,
    /// Concurrent jobs (pool slots / runner threads).
    pub slots: usize,
    /// Distinct tenants admitted before the table rejects.
    pub max_tenants: usize,
    /// Bounded depth of each tenant's admission queue.
    pub queue_cap: usize,
    /// Channel substrate/wait policy of the admission lanes.
    pub tuning: ChanTuning,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 2,
            slots: 2,
            max_tenants: 8,
            queue_cap: 16,
            tuning: ChanTuning::default(),
        }
    }
}

/// Final tallies returned by [`Server::shutdown`].
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// (admitted, rejected, completed, cancelled, failed) job totals.
    pub totals: (u64, u64, u64, u64, u64),
    /// Pool-lease traffic of the shared mux.
    pub mux: MuxStats,
    /// The final per-tenant stats document.
    pub stats: Json,
}

struct Shared {
    admission: Admission,
    metrics: Arc<ServeMetrics>,
    mux: PoolMux,
    workers: usize,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Reader threads park here so shutdown can join them; finished
    /// readers leave their handle behind (joined at shutdown, cheap).
    /// The paired stream clone lets shutdown unblock a reader that is
    /// mid-`read_frame` on a connection the client kept open.
    readers: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
}

/// A running daemon. Dropping without [`Server::shutdown`] aborts the
/// accept loop and joins all threads.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the acceptor and runner
    /// threads.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new(cfg.max_tenants));
        let slots = cfg.slots.max(1);
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.tuning, Arc::clone(&metrics), cfg.queue_cap),
            metrics,
            mux: PoolMux::new(slots, cfg.workers.max(1)),
            workers: cfg.workers.max(1),
            stop: AtomicBool::new(false),
            addr,
            readers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let runners = (0..slots)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || runner_loop(shared))
            })
            .collect();
        Ok(Server { shared, acceptor: Some(acceptor), runners })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live per-tenant stats document.
    pub fn stats(&self) -> Json {
        self.shared.metrics.to_json()
    }

    /// Blocks until a remote [`Request::Shutdown`] stops the daemon,
    /// then joins everything. This is what `easypap serve` does.
    pub fn wait(self) -> ServerSummary {
        while !self.shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        self.shutdown()
    }

    /// Stops accepting, drains the admission queues, joins every
    /// thread, and reports the final tallies. Also triggered remotely
    /// by [`Request::Shutdown`].
    pub fn shutdown(mut self) -> ServerSummary {
        self.stop_and_join();
        ServerSummary {
            totals: self.shared.metrics.totals(),
            mux: self.shared.mux.stats(),
            stats: self.shared.metrics.to_json(),
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.admission.close();
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.runners.drain(..) {
            let _ = h.join();
        }
        let readers = std::mem::take(
            &mut *self.shared.readers.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for (h, stream) in readers {
            // a client may keep its connection open indefinitely; yank
            // the socket so the blocked read returns EOF before the join
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.stop.load(Ordering::SeqCst) {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let conn = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // small frames, latency-sensitive protocol: defeat Nagle
        let _ = conn.set_nodelay(true);
        let Ok(shutdown_handle) = conn.try_clone() else {
            continue;
        };
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || reader_loop(conn, shared2));
        shared
            .readers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((handle, shutdown_handle));
    }
}

/// Write-side of one connection, shared between its reader (errors,
/// stats, admission answers) and the runners (job results).
struct Conn {
    stream: Mutex<TcpStream>,
    /// Cancels this connection's jobs when the client goes away.
    ticket: Arc<JobTicket>,
}

impl Conn {
    /// Sends one response; on a dead peer, cancels the connection's
    /// jobs instead of erroring (the job already ran — nobody is left
    /// to care). An oversized response (`InvalidData`) is the daemon's
    /// fault, not the peer's: the frame is replaced by a small error
    /// note so the client is not left waiting on a silently dropped
    /// terminal frame, and the connection stays usable.
    fn send(&self, resp: &Response) {
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        match write_frame(&mut *stream, &resp.to_json()) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let note = Response::Error(format!("response dropped: {e}"));
                if write_frame(&mut *stream, &note.to_json()).is_err() {
                    self.ticket.cancel();
                }
            }
            Err(_) => self.ticket.cancel(),
        }
    }
}

impl ReplySink for Conn {
    fn send(&self, resp: &Response) {
        Conn::send(self, resp);
    }
}

fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        stream: Mutex::new(write_half),
        ticket: JobTicket::new(),
    });
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(FrameIn::Msg(msg)) => {
                let req = match Request::from_json(&msg) {
                    Ok(r) => r,
                    Err(e) => {
                        conn.send(&Response::Error(e.to_string()));
                        break;
                    }
                };
                match req {
                    Request::Submit(spec) => handle_submit(&shared, &conn, spec),
                    Request::Stats => conn.send(&Response::Stats(shared.metrics.to_json())),
                    Request::Shutdown => {
                        conn.send(&Response::ShuttingDown);
                        shared.stop.store(true, Ordering::SeqCst);
                        shared.admission.close();
                        // wake the acceptor so Server::shutdown joins fast
                        let _ = TcpStream::connect(shared.addr);
                        break;
                    }
                }
            }
            Ok(FrameIn::Eof) => break,
            Ok(FrameIn::Malformed(why)) => {
                conn.send(&Response::Error(format!("malformed frame: {why}")));
                break;
            }
            Err(_) => break,
        }
    }
    // reader gone = client gone (or told to go): any queued or running
    // job of this connection is now pointless
    conn.ticket.cancel();
    // actively close the socket — the shutdown handle stored in
    // `shared.readers` would otherwise hold it open (the client would
    // never see EOF) until daemon shutdown
    let _ = reader.get_ref().shutdown(std::net::Shutdown::Both);
}

fn handle_submit(shared: &Arc<Shared>, conn: &Arc<Conn>, spec: JobSpec) {
    let reply: Arc<dyn ReplySink> = Arc::clone(conn) as Arc<dyn ReplySink>;
    match shared.admission.submit(spec, Arc::clone(&conn.ticket), reply) {
        Ok((job_id, tenant, _slot)) => conn.send(&Response::Accepted { job_id, tenant }),
        Err(rej) => conn.send(&Response::Rejected {
            reason: rej.reason,
            retry_after_ms: rej.retry_after_ms,
        }),
    }
}

fn runner_loop(shared: Arc<Shared>) {
    let cursor = AtomicUsize::new(0);
    while let Some(job) = shared.admission.next_job(&cursor) {
        run_one(&shared, job);
    }
}

fn run_one(shared: &Arc<Shared>, job: Job) {
    let slot = job.tenant_slot;
    if !job.ticket.is_live() {
        shared.metrics.cancelled(slot);
        return;
    }
    let queued_ns = ezp_core::time::now_ns().saturating_sub(job.enqueued_ns);
    // synthetic upstream latency of a replayed request: stalls overlap
    // across runner slots, compute does not (on fewer cores than slots)
    if job.spec.stall_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(job.spec.stall_us));
    }
    let threads = job.spec.threads.clamp(1, shared.workers);
    let cfg = RunConfig::new(&job.spec.kernel)
        .variant(&job.spec.variant)
        .size(job.spec.size)
        .tile(job.spec.tile)
        .iterations(job.spec.iterations)
        .threads(threads);
    let probe = Arc::new(PerfProbe::new(threads));
    let probe_dyn: Arc<dyn Probe> = probe.clone();
    let reg = ezp_kernels::registry();
    let mut lease = shared.mux.lease();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        lease.install(threads, || run_kernel_boxed(&reg, cfg, probe_dyn))
    }));
    drop(lease); // slot back in the mux before any response I/O
    let outcome = match result {
        Ok(Ok(ok)) => ok,
        Ok(Err(e)) => {
            shared.metrics.failed(slot);
            job.reply.send(&Response::Failed { job_id: job.id, error: e.to_string() });
            return;
        }
        Err(_) => {
            shared.metrics.failed(slot);
            job.reply.send(&Response::Failed {
                job_id: job.id,
                error: "kernel panicked".to_string(),
            });
            return;
        }
    };
    let (run, ctx, kernel) = outcome;
    if !job.ticket.is_live() {
        // ran to completion for a client that left mid-job; count it as
        // cancelled — the epoch is closed either way
        shared.metrics.cancelled(slot);
        return;
    }
    shared.metrics.completed(slot, queued_ns);
    let mut snapshot = probe.snapshot();
    for (name, per_worker) in kernel.stats_counters() {
        snapshot.push(&name, per_worker);
    }
    let report = UnifiedReport::new(None, snapshot, probe.span_snapshot())
        .with_tenant(&job.tenant)
        .to_json();
    let digest = format!("{:016x}", digest_pixels(ctx.images.cur().as_slice()));
    job.reply.send(&Response::Done {
        job_id: job.id,
        tenant: job.tenant.clone(),
        elapsed_ns: run.elapsed_ns,
        iterations: run.completed_iterations,
        digest,
        report,
    });
}

/// FNV-1a over the frame's pixel words, little-endian byte order — the
/// digest clients compare across runs and machines.
fn digest_pixels(pixels: &[ezp_core::Rgba]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for px in pixels {
        for b in px.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}
