//! Daemon-level battery: the full TCP loop under well-formed jobs,
//! malformed frames, mid-job disconnects, backpressure, and remote
//! shutdown. The recurring assertion shape is "the abuse poisons one
//! connection at most, and afterwards the daemon still serves a good
//! job and `shutdown` joins every thread" — a leaked pool epoch or
//! runner would hang that join, so a passing test doubles as the
//! no-leak check.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

use ezp_core::json::{FromJson, ToJson};
use ezp_serve::proto::{read_frame, write_frame, FrameIn, MAX_FRAME};
use ezp_serve::{Client, JobSpec, Request, Response, ServeConfig, Server};

fn small_job(tenant: &str) -> JobSpec {
    JobSpec {
        kernel: "mandel".into(),
        variant: "seq".into(),
        size: 64,
        tile: 16,
        iterations: 1,
        threads: 1,
        tenant: Some(tenant.into()),
        stall_us: 0,
    }
}

fn assert_served_ok(addr: &str, tenant: &str) -> String {
    let mut client = Client::connect(addr).expect("connect");
    match client.submit(&small_job(tenant)).expect("submit") {
        Response::Done { digest, tenant: t, iterations, .. } => {
            assert_eq!(t, tenant);
            assert_eq!(iterations, 1);
            assert_eq!(digest.len(), 16, "16 hex chars: {digest}");
            digest
        }
        other => panic!("expected done, got {}", other.to_json().dump()),
    }
}

#[test]
fn submit_round_trip_is_deterministic_and_reports_tenant() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let d1 = assert_served_ok(&addr, "acme");
    let d2 = assert_served_ok(&addr, "acme");
    assert_eq!(d1, d2, "same spec, same digest");

    // the report rides along and is tagged with the tenant
    let mut client = Client::connect(&addr).unwrap();
    let Response::Done { report, .. } = client.submit(&small_job("acme")).unwrap() else {
        panic!("expected done");
    };
    assert_eq!(report.field::<String>("tenant").unwrap(), "acme");
    assert!(report.get("counters").is_some(), "unified report payload");

    let summary = server.shutdown();
    let (admitted, _rej, completed, cancelled, failed) = summary.totals;
    assert_eq!(admitted, 3);
    assert_eq!((completed, cancelled, failed), (3, 0, 0));
}

#[test]
fn malformed_frames_poison_only_their_connection() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    // (a) lying oversized length prefix
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&((MAX_FRAME as u32 + 1).to_le_bytes())).unwrap();
        s.flush().unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        match read_frame(&mut reader).unwrap() {
            FrameIn::Msg(v) => {
                let resp = Response::from_json(&v).unwrap();
                let Response::Error(msg) = resp else {
                    panic!("expected error response")
                };
                assert!(msg.contains("malformed"), "got: {msg}");
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        // server hangs up after the error
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    // (b) truncated JSON body: prefix promises 32 bytes, send 7, close
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&32u32.to_le_bytes()).unwrap();
        s.write_all(b"{\"type\"").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(s);
        let FrameIn::Msg(v) = read_frame(&mut reader).unwrap() else {
            panic!("expected error frame")
        };
        assert!(matches!(Response::from_json(&v).unwrap(), Response::Error(_)));
    }

    // (c) zero-length frame
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&0u32.to_le_bytes()).unwrap();
        s.flush().unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let FrameIn::Msg(v) = read_frame(&mut reader).unwrap() else {
            panic!("expected error frame")
        };
        assert!(matches!(Response::from_json(&v).unwrap(), Response::Error(_)));
    }

    // (d) valid frame, not a request object
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        write_frame(&mut s, &ezp_core::json::Json::Bool(true)).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let FrameIn::Msg(v) = read_frame(&mut reader).unwrap() else {
            panic!("expected error frame")
        };
        assert!(matches!(Response::from_json(&v).unwrap(), Response::Error(_)));
    }

    // the daemon is unimpressed: a fresh connection still computes
    assert_served_ok(&addr, "survivor");
    let summary = server.shutdown();
    assert_eq!(summary.totals.2, 1, "one completed job");
}

#[test]
fn mid_job_disconnect_cancels_without_wedging_the_daemon() {
    let cfg = ServeConfig { workers: 1, slots: 1, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();

    // submit a deliberately slow job, then vanish right after admission
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        let spec = JobSpec { stall_us: 200_000, ..small_job("ghost") };
        write_frame(&mut s, &Request::Submit(spec).to_json()).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let FrameIn::Msg(v) = read_frame(&mut reader).unwrap() else {
            panic!("expected accepted")
        };
        assert!(matches!(
            Response::from_json(&v).unwrap(),
            Response::Accepted { .. }
        ));
        // both halves dropped here: the reader sees EOF and cancels
    }

    // a well-behaved client still gets served (waits behind the stall
    // at worst) and shutdown joins everything — no leaked pool epoch
    assert_served_ok(&addr, "patient");
    let summary = server.shutdown();
    let (admitted, _rej, completed, cancelled, failed) = summary.totals;
    assert_eq!(admitted, 2);
    assert_eq!(completed, 1);
    assert_eq!(cancelled, 1, "ghost job cancelled, not completed");
    assert_eq!(failed, 0);
    assert_eq!(admitted, completed + cancelled + failed);
}

#[test]
fn backpressure_rejects_over_quota_submissions_with_retry_hint() {
    let cfg = ServeConfig { workers: 1, slots: 1, queue_cap: 1, ..ServeConfig::default() };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();

    // pipeline 6 slow submissions without reading, so the single lane
    // (cap 1) plus the single runner must push back on the excess
    let mut s = TcpStream::connect(&addr).unwrap();
    let spec = JobSpec { stall_us: 100_000, ..small_job("flood") };
    for _ in 0..6 {
        write_frame(&mut s, &Request::Submit(spec.clone()).to_json()).unwrap();
    }
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let (mut accepted, mut rejected) = (0u32, 0u32);
    for _ in 0..6 {
        let FrameIn::Msg(v) = read_frame(&mut reader).unwrap() else {
            panic!("expected admission response")
        };
        match Response::from_json(&v).unwrap() {
            Response::Accepted { .. } => accepted += 1,
            Response::Rejected { reason, retry_after_ms } => {
                assert!(retry_after_ms >= 1, "retry hint present");
                assert!(reason.contains("queue"), "got: {reason}");
                rejected += 1;
            }
            other => panic!("unexpected: {}", other.to_json().dump()),
        }
    }
    assert!(accepted >= 1, "at least the first job fits");
    assert!(rejected >= 1, "the flood hits the bounded lane");

    // terminal frames for every accepted job still arrive, in order
    for _ in 0..accepted {
        let FrameIn::Msg(v) = read_frame(&mut reader).unwrap() else {
            panic!("expected terminal frame")
        };
        assert!(matches!(Response::from_json(&v).unwrap(), Response::Done { .. }));
    }
    drop((s, reader));

    let summary = server.shutdown();
    let (adm, rej, comp, _canc, _fail) = summary.totals;
    assert_eq!(adm, u64::from(accepted));
    assert_eq!(rej, u64::from(rejected));
    assert_eq!(comp, u64::from(accepted));
}

#[test]
fn stats_and_remote_shutdown_round_trip() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    assert_served_ok(&addr, "tenant-a");
    assert_served_ok(&addr, "tenant-b");
    assert_served_ok(&addr, "tenant-a");

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    let tenants = stats.get("tenants").unwrap().as_arr().unwrap().to_vec();
    let row = |name: &str| {
        tenants
            .iter()
            .find(|t| t.field::<String>("tenant").ok().as_deref() == Some(name))
            .unwrap_or_else(|| panic!("tenant {name} missing from stats"))
            .clone()
    };
    assert_eq!(row("tenant-a").field::<u64>("jobs_admitted").unwrap(), 2);
    assert_eq!(row("tenant-b").field::<u64>("jobs_admitted").unwrap(), 1);
    assert_eq!(row("tenant-a").field::<u64>("jobs_completed").unwrap(), 2);

    // remote shutdown: acknowledged, then wait() returns the summary
    client.shutdown().unwrap();
    let summary = server.wait();
    assert_eq!(summary.totals.2, 3, "three completed jobs in the summary");
    assert!(summary.mux.leases >= 3, "each job leased a pool");
}

#[test]
fn oversized_job_specs_are_rejected_at_admission() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // a ~40 GB allocation request is refused before any allocation;
    // retry_after_ms 0 marks it permanent, so even the retrying client
    // returns it instead of spinning
    let spec = JobSpec { size: 100_000, ..small_job("greedy") };
    match client.submit_retrying(&spec).unwrap() {
        Response::Rejected { reason, retry_after_ms } => {
            assert!(reason.contains("size"), "got: {reason}");
            assert_eq!(retry_after_ms, 0, "validation rejections are permanent");
        }
        other => panic!("expected rejected, got {}", other.to_json().dump()),
    }

    // same connection still serves a conforming job
    match client.submit(&small_job("greedy")).unwrap() {
        Response::Done { .. } => {}
        other => panic!("expected done, got {}", other.to_json().dump()),
    }
    let summary = server.shutdown();
    let (admitted, rejected, completed, ..) = summary.totals;
    assert_eq!((admitted, rejected, completed), (1, 1, 1));
}

#[test]
fn unknown_kernel_fails_the_job_not_the_daemon() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let spec = JobSpec { kernel: "no-such-kernel".into(), ..small_job("acme") };
    match client.submit(&spec).unwrap() {
        Response::Failed { error, .. } => {
            assert!(error.contains("no-such-kernel"), "got: {error}")
        }
        other => panic!("expected failed, got {}", other.to_json().dump()),
    }
    assert_served_ok(&addr, "acme");
    let summary = server.shutdown();
    let (_adm, _rej, completed, _canc, failed) = summary.totals;
    assert_eq!((completed, failed), (1, 1));
}
