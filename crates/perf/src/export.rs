//! Snapshot exporters: Prometheus-style text, CSV, and span JSON.
//!
//! JSON export for counters is the `ToJson` impl on
//! [`CounterSnapshot`](crate::CounterSnapshot); Chrome traces live in
//! [`trace_event`](crate::trace_event). This module holds the remaining
//! text formats plus a Prometheus *parser* so snapshot round-trips can
//! be property-tested without a real Prometheus.

use crate::counters::CounterSnapshot;
use crate::span::SpanRecord;
use ezp_core::json::{Json, ToJson};
use ezp_core::{Error, Result};
use std::fmt::Write as _;

/// Metric-name prefix for every exported counter.
pub const PROM_PREFIX: &str = "ezp_";

/// Renders a snapshot in the Prometheus text exposition format: one
/// `# TYPE` line per counter, one `worker="N"`-labeled sample per
/// worker slot, and a per-worker-label-free total.
///
/// A counter name may carry its own label set (`idle_ns{cause="..."}`);
/// the worker label is then *merged* into it rather than appended as a
/// second brace group, so the output stays well-formed.
pub fn to_prometheus(snap: &CounterSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let (base, labels) = match c.name.split_once('{') {
            Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
            None => (c.name.as_str(), ""),
        };
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}{base} counter");
        for (w, v) in c.per_worker.iter().enumerate() {
            if labels.is_empty() {
                let _ = writeln!(out, "{PROM_PREFIX}{base}{{worker=\"{w}\"}} {v}");
            } else {
                let _ = writeln!(out, "{PROM_PREFIX}{base}{{{labels},worker=\"{w}\"}} {v}");
            }
        }
        let _ = writeln!(out, "{PROM_PREFIX}{} {}", c.name, c.total());
    }
    out
}

/// Parses text produced by [`to_prometheus`] back into a snapshot.
/// Exists so the export path is testable end-to-end; it handles exactly
/// the subset this crate emits (counters with a `worker` label).
pub fn from_prometheus(text: &str) -> Result<CounterSnapshot> {
    let mut snap = CounterSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| Error::Config(format!("prometheus line {}: {msg}", lineno + 1));
        let (metric, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `name value`"))?;
        let value: u64 = value.parse().map_err(|_| err("bad sample value"))?;
        let metric = metric
            .strip_prefix(PROM_PREFIX)
            .ok_or_else(|| err("metric without ezp_ prefix"))?;
        match metric.split_once('{') {
            Some((base, labels)) => {
                let body = labels
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                // split off the worker label (if any); the rest of the
                // labels belong to the counter *name* itself
                let mut parts: Vec<&str> = body.split(',').collect();
                let worker_at = parts.iter().position(|p| p.starts_with("worker=\""));
                let Some(at) = worker_at else {
                    // a label-bearing name's total line: cross-check
                    let name = format!("{base}{{{body}}}");
                    if let Some(c) = snap.get(&name) {
                        if c.total() != value {
                            return Err(err("total disagrees with worker samples"));
                        }
                    }
                    continue;
                };
                let worker: usize = parts
                    .remove(at)
                    .strip_prefix("worker=\"")
                    .and_then(|rest| rest.strip_suffix('"'))
                    .ok_or_else(|| err("expected worker=\"N\" label"))?
                    .parse()
                    .map_err(|_| err("bad worker index"))?;
                let name = if parts.is_empty() {
                    base.to_string()
                } else {
                    format!("{base}{{{}}}", parts.join(","))
                };
                if snap.get(&name).is_none() {
                    snap.push(&name, Vec::new());
                }
                let c = snap
                    .counters
                    .iter_mut()
                    .find(|c| c.name == name)
                    .expect("just pushed");
                if c.per_worker.len() <= worker {
                    c.per_worker.resize(worker + 1, 0);
                }
                c.per_worker[worker] = value;
                snap.workers = snap.workers.max(worker + 1);
            }
            None => {
                // unlabeled total: cross-check against the labeled samples
                if let Some(c) = snap.get(metric) {
                    if c.total() != value {
                        return Err(err("total disagrees with worker samples"));
                    }
                }
            }
        }
    }
    // uniform width, so parse(print(s)) == s for real snapshots
    for c in &mut snap.counters {
        c.per_worker.resize(snap.workers, 0);
    }
    Ok(snap)
}

/// Renders a snapshot as `counter,worker,value` CSV (plus a `total`
/// pseudo-worker row per counter) for spreadsheet-side analysis.
pub fn to_csv(snap: &CounterSnapshot) -> String {
    let mut out = String::from("counter,worker,value\n");
    for c in &snap.counters {
        for (w, v) in c.per_worker.iter().enumerate() {
            let _ = writeln!(out, "{},{w},{v}", c.name);
        }
        let _ = writeln!(out, "{},total,{}", c.name, c.total());
    }
    out
}

/// Spans as a JSON array (each `{name, worker, start_ns, end_ns}`).
pub fn spans_to_json(spans: &[SpanRecord]) -> Json {
    Json::Arr(spans.iter().map(ToJson::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterSet;
    use ezp_testkit::ezp_proptest;

    fn sample() -> CounterSnapshot {
        let mut set = CounterSet::new(2);
        let a = set.register("tasks_executed");
        let b = set.register("idle_ns");
        set.add(a, 0, 7);
        set.add(a, 1, 5);
        set.add(b, 1, 123_456);
        set.snapshot()
    }

    #[test]
    fn prometheus_text_shape() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE ezp_tasks_executed counter"));
        assert!(text.contains("ezp_tasks_executed{worker=\"0\"} 7"));
        assert!(text.contains("ezp_tasks_executed{worker=\"1\"} 5"));
        assert!(text.contains("\nezp_tasks_executed 12\n"));
        assert!(text.contains("ezp_idle_ns 123456"));
    }

    #[test]
    fn prometheus_round_trips() {
        let snap = sample();
        let back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_parser_rejects_garbage() {
        assert!(from_prometheus("ezp_x{worker=\"0\"} nope").is_err());
        assert!(from_prometheus("tasks{worker=\"0\"} 1").is_err(), "missing prefix");
        assert!(
            from_prometheus("ezp_x{worker=\"0\"} 1\nezp_x 5").is_err(),
            "total mismatch"
        );
    }

    #[test]
    fn labeled_counter_names_merge_the_worker_label() {
        let mut set = CounterSet::new(2);
        let id = set.register("idle_ns{cause=\"steal\"}");
        set.add(id, 0, 40);
        set.add(id, 1, 2);
        let snap = set.snapshot();
        let text = to_prometheus(&snap);
        // one brace group per sample, worker merged after the cause
        assert!(text.contains("ezp_idle_ns{cause=\"steal\",worker=\"0\"} 40"));
        assert!(text.contains("ezp_idle_ns{cause=\"steal\",worker=\"1\"} 2"));
        assert!(text.contains("ezp_idle_ns{cause=\"steal\"} 42"));
        assert!(!text.contains("}{"), "nested brace groups in:\n{text}");
        let back = from_prometheus(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn csv_has_header_and_totals() {
        let text = to_csv(&sample());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("counter,worker,value"));
        assert!(text.contains("tasks_executed,1,5"));
        assert!(text.contains("tasks_executed,total,12"));
    }

    #[test]
    fn spans_json_is_an_array() {
        let spans = vec![SpanRecord {
            name: "iteration",
            worker: 0,
            start_ns: 1,
            end_ns: 2,
        }];
        let j = spans_to_json(&spans);
        let items = j.as_arr().unwrap();
        assert_eq!(items[0].get("name"), Some(&Json::Str("iteration".into())));
    }

    ezp_proptest! {
        // Prometheus and JSON exports both reconstruct arbitrary
        // snapshots exactly (values include u64::MAX-scale extremes).
        fn snapshot_exports_round_trip(seed in 0u64..u64::MAX) {
            use ezp_core::json::FromJson;
            use ezp_testkit::Rng;
            let mut rng = Rng::seed(seed);
            let workers = rng.gen_range(1usize..=4);
            let n_counters = rng.gen_range(1usize..=4);
            let mut set = CounterSet::new(workers);
            for i in 0..n_counters {
                let id = set.register(&format!("c{i}"));
                for w in 0..workers {
                    // bias toward edge values: 0, tiny, huge
                    let v = match rng.gen_range(0u8..4) {
                        0 => 0,
                        1 => rng.gen_range(0u64..100),
                        2 => u64::MAX - rng.gen_range(0u64..3),
                        _ => rng.next_u64(),
                    };
                    set.add(id, w, v);
                }
            }
            let snap = set.snapshot();
            let prom = from_prometheus(&to_prometheus(&snap)).unwrap();
            assert_eq!(prom, snap, "prometheus round-trip");
            let json =
                CounterSnapshot::from_json(&Json::parse(&snap.to_json().dump()).unwrap())
                    .unwrap();
            assert_eq!(json, snap, "json round-trip");
        }
    }
}
