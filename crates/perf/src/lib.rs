//! # ezp-perf — runtime observability for easypap-rs
//!
//! The paper's pedagogy rests on students *seeing* runtime behaviour
//! (§II-B monitoring, §II-C traces). This crate is the quantitative half
//! of that story: named per-worker counters with cache-padded lock-free
//! slots ([`CounterSet`]), a low-overhead span profiler backed by
//! per-worker fixed-capacity ring buffers ([`SpanSet`] / [`Span`]), and
//! three export formats — a Prometheus-style text snapshot, JSON via
//! `ezp_core::json`, and Chrome Trace Event Format loadable by
//! `chrome://tracing` and Perfetto ([`trace_event`]).
//!
//! The scheduling layer reports through the [`ezp_core::kernel::Probe`]
//! trait's `runtime_event` hook; [`PerfProbe`] is the implementation
//! that accumulates those events (plus tile brackets and iteration
//! spans) into counters and spans. Because the hook's default is a
//! no-op and the helpers gate their clock reads on
//! `Probe::wants_runtime_events`, runs without `--stats` pay nothing.
//!
//! ```
//! use ezp_perf::{CounterSet, Span, SpanSet};
//!
//! let mut counters = CounterSet::new(2);
//! let tasks = counters.register("tasks_executed");
//! counters.incr(tasks, 0);
//! counters.add(tasks, 1, 3);
//! assert_eq!(counters.total(tasks), 4);
//!
//! let spans = SpanSet::new(2, 64);
//! {
//!     let _s = Span::enter(&spans, 0, "phase");
//! } // recorded on drop
//! assert_eq!(spans.snapshot().len(), 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod counters;
pub mod export;
pub mod hist;
pub mod probe;
pub mod span;
pub mod trace_event;

pub use counters::{CounterId, CounterSet, CounterSnapshot, CounterValues};
pub use hist::{HistSummary, LogHistogram, ShardedHistogram};
pub use probe::{names, PerfProbe};
pub use span::{Span, SpanRecord, SpanSet};
pub use trace_event::TraceEvent;
