//! Constant-memory log-bucketed latency histograms.
//!
//! A [`LogHistogram`] buckets nanosecond durations by magnitude: value
//! `v` lands in bucket `64 - v.leading_zeros()` (zero in bucket 0), so
//! bucket `b >= 1` covers `[2^(b-1), 2^b)`. Recording is a
//! `leading_zeros` and a handful of relaxed RMWs — but those RMWs hit
//! shared cache lines, so a histogram recorded by *every worker on
//! every tile* must not be shared: [`ShardedHistogram`] gives each
//! worker its own cache-line-aligned shard and merges at read time,
//! the same write-local/read-merge split `CounterSet` uses. That is
//! what keeps histogram recording inside the tile-bracket hot path the
//! `perf_overhead` bench gates at ≤5%.
//!
//! Quantiles come out of the bucket counts: the reported `pXX` is the
//! geometric midpoint of the bucket holding the rank, clamped to the
//! exact observed `[min, max]`. The relative error is bounded by the
//! bucket width (a factor of 2), which is plenty to tell "all tiles
//! alike" from "a heavy tail" — the distinction the advisor rules and
//! `docs/profiling.md` trade on.

use ezp_core::json::{Json, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one per power of two, plus bucket 0 for zero.
pub const BUCKETS: usize = 65;

/// Index of the bucket covering `v`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lock-free log-bucketed histogram of `u64` durations (nanoseconds).
///
/// The 128-byte alignment keeps adjacent histograms (the shards of a
/// [`ShardedHistogram`]) from straddling a cache line: without it,
/// shard `k`'s tail counters and shard `k+1`'s head buckets would
/// false-share, putting the cross-core traffic sharding exists to
/// remove right back on the record path.
#[repr(align(128))]
pub struct LogHistogram {
    name: &'static str,
    // Every cell below is counter-only: the tallies are the entire
    // payload, snapshots tolerate mid-record skew, and no other
    // memory is published through them — hence `Relaxed` throughout.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram named `name` (the name lands in summaries and
    /// `--stats` output: `"task_ns"`, `"frame_ns"`).
    pub fn new(name: &'static str) -> Self {
        LogHistogram {
            name,
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation.
    ///
    /// ORDERING: counter-only. Nothing synchronizes on histogram state;
    /// readers only need eventual totals, so every access is Relaxed.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating in practice: ns sums fit).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the geometric midpoint
    /// of the bucket holding that rank, clamped to the observed
    /// `[min, max]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank of the q-th observation, 1-based, at least 1
        let rank = ((q * count as f64).ceil() as u64).max(1);
        // the extreme ranks are tracked exactly, not at bucket
        // resolution
        if rank >= count {
            return self.max.load(Ordering::Relaxed);
        }
        if rank == 1 {
            return self.min.load(Ordering::Relaxed);
        }
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = if b == 0 {
                    0
                } else {
                    // geometric middle of [2^(b-1), 2^b)
                    let lo = 1u64 << (b - 1);
                    lo.saturating_add(lo / 2)
                };
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return mid.clamp(min, max);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time percentile summary.
    pub fn summary(&self) -> HistSummary {
        let count = self.count();
        HistSummary {
            name: self.name.to_string(),
            count,
            min_ns: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max_ns: self.max.load(Ordering::Relaxed),
            mean_ns: if count == 0 { 0 } else { self.sum() / count },
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
        }
    }
}

/// A [`LogHistogram`] per worker, so the record path only ever touches
/// the calling worker's own cache lines.
///
/// `record` is uncontended by construction (each worker writes its own
/// 128-aligned shard); reads fold the shards into a merged
/// [`LogHistogram`] on demand. Readers racing recorders can observe a
/// shard mid-update — fine for the eventual totals `--stats` wants,
/// the same contract `CounterSnapshot` has.
pub struct ShardedHistogram {
    shards: Vec<LogHistogram>,
}

impl ShardedHistogram {
    /// One shard per worker (at least one), all named `name`.
    pub fn new(name: &'static str, workers: usize) -> Self {
        ShardedHistogram {
            shards: (0..workers.max(1)).map(|_| LogHistogram::new(name)).collect(),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.shards[0].name
    }

    /// Records one observation into `worker`'s shard. Out-of-range
    /// workers clamp to the last shard rather than panic (same policy
    /// as the probe's tile-start slots).
    pub fn record(&self, worker: usize, v: u64) {
        self.shards[worker.min(self.shards.len() - 1)].record(v);
    }

    /// Observations recorded so far, across all shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(LogHistogram::count).sum()
    }

    /// Folds every shard into one point-in-time [`LogHistogram`].
    pub fn merged(&self) -> LogHistogram {
        let m = LogHistogram::new(self.name());
        for s in &self.shards {
            for (b, bucket) in s.buckets.iter().enumerate() {
                let v = bucket.load(Ordering::Relaxed);
                if v != 0 {
                    m.buckets[b].fetch_add(v, Ordering::Relaxed);
                }
            }
            m.count.fetch_add(s.count.load(Ordering::Relaxed), Ordering::Relaxed);
            m.sum.fetch_add(s.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            m.min.fetch_min(s.min.load(Ordering::Relaxed), Ordering::Relaxed);
            m.max.fetch_max(s.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        m
    }

    /// Point-in-time percentile summary over the merged shards.
    pub fn summary(&self) -> HistSummary {
        self.merged().summary()
    }
}

/// Percentile summary of one [`LogHistogram`] — what `--stats` and the
/// UnifiedReport serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSummary {
    /// Which histogram ("task_ns", "frame_ns").
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
    /// Arithmetic mean (integer ns).
    pub mean_ns: u64,
    /// Median (bucket-resolution, see module docs).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

impl ToJson for HistSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("count", self.count.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("p50_ns", self.p50_ns.to_json()),
            ("p95_ns", self.p95_ns.to_json()),
            ("p99_ns", self.p99_ns.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new("t");
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn quantiles_are_within_a_bucket_of_truth() {
        let h = LogHistogram::new("t");
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // true p50 = 500 lives in [256, 1024); true p99 = 990 likewise
        assert!((256..1024).contains(&p50), "p50 = {p50}");
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        // extremes clamp to observed values
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn uniform_values_collapse_every_percentile() {
        let h = LogHistogram::new("t");
        for _ in 0..100 {
            h.record(4096);
        }
        let s = h.summary();
        assert_eq!(s.p50_ns, 4096);
        assert_eq!(s.p95_ns, 4096);
        assert_eq!(s.p99_ns, 4096);
        assert_eq!(s.mean_ns, 4096);
    }

    #[test]
    fn summary_serializes_percentile_keys() {
        let h = LogHistogram::new("task_ns");
        h.record(10);
        h.record(1000);
        let json = h.summary().to_json().dump();
        for key in ["\"p50_ns\"", "\"p95_ns\"", "\"p99_ns\"", "\"count\""] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn sharded_merge_matches_a_single_histogram() {
        let sharded = ShardedHistogram::new("t", 4);
        let single = LogHistogram::new("t");
        for v in 1..=1000u64 {
            sharded.record((v % 4) as usize, v);
            single.record(v);
        }
        assert_eq!(sharded.count(), 1000);
        assert_eq!(sharded.summary(), single.summary());
        // out-of-range workers clamp to the last shard, never panic
        sharded.record(999, 42);
        assert_eq!(sharded.count(), 1001);
    }

    #[test]
    fn sharded_recording_is_thread_safe() {
        let h = ShardedHistogram::new("t", 4);
        std::thread::scope(|s| {
            for w in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.record(w, v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.merged().quantile(1.0), 999);
    }

    #[test]
    fn recording_is_thread_safe() {
        let h = LogHistogram::new("t");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.quantile(1.0), 999);
    }
}
