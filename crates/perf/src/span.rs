//! Span profiling: named time intervals in per-worker ring buffers.
//!
//! A [`Span`] brackets a phase (`Span::enter(&spans, worker, "compute")`)
//! and records `[start, end)` timestamps into the worker's *fixed
//! capacity* ring when dropped. The rings never allocate after
//! construction and each worker only touches its own (cache-padded)
//! ring, so the hot path is two clock reads plus one uncontended lock —
//! negligible next to any real phase. When a ring wraps, the oldest
//! spans are overwritten and counted as dropped rather than growing
//! without bound — profiling must not change the memory behaviour of
//! the profiled program.

use ezp_core::json::{Json, ToJson};
use ezp_core::time::now_ns;
use std::sync::Mutex;

/// Default ring capacity per worker.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded span. Names are `&'static str` so recording never
/// allocates; phase names are compile-time strings by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name as passed to [`Span::enter`].
    pub name: &'static str,
    /// Worker whose ring holds the span.
    pub worker: usize,
    /// Start timestamp (ns since process origin).
    pub start_ns: u64,
    /// End timestamp.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("worker", self.worker.to_json()),
            ("start_ns", self.start_ns.to_json()),
            ("end_ns", self.end_ns.to_json()),
        ])
    }
}

struct Ring {
    slots: Vec<SpanRecord>,
    /// Next write position (wraps at capacity).
    next: usize,
    /// Total spans ever recorded (recorded - retained = dropped).
    recorded: u64,
}

/// Padded so two workers' rings never share a cache line.
#[repr(align(128))]
struct WorkerRing(Mutex<Ring>);

/// Per-worker span rings plus the capacity they were built with.
pub struct SpanSet {
    rings: Vec<WorkerRing>,
    capacity: usize,
}

impl SpanSet {
    /// Creates one ring of `capacity` spans per worker.
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(workers > 0 && capacity > 0, "span set needs workers and capacity");
        SpanSet {
            rings: (0..workers)
                .map(|_| {
                    WorkerRing(Mutex::new(Ring {
                        slots: Vec::with_capacity(capacity),
                        next: 0,
                        recorded: 0,
                    }))
                })
                .collect(),
            capacity,
        }
    }

    /// [`SpanSet::new`] with [`DEFAULT_CAPACITY`].
    pub fn with_default_capacity(workers: usize) -> Self {
        SpanSet::new(workers, DEFAULT_CAPACITY)
    }

    /// Number of worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// Ring capacity per worker.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Opens a span on `worker`; recorded when the guard drops.
    pub fn enter(&self, worker: usize, name: &'static str) -> Span<'_> {
        Span {
            set: self,
            worker,
            name,
            start_ns: now_ns(),
        }
    }

    /// Records a finished span directly (timestamps taken by the caller).
    pub fn record(&self, worker: usize, name: &'static str, start_ns: u64, end_ns: u64) {
        let ring = &self.rings[worker.min(self.rings.len() - 1)];
        // uncontended in practice: each worker writes only its own ring
        let mut r = ring.0.lock().unwrap_or_else(|e| e.into_inner());
        let rec = SpanRecord {
            name,
            worker,
            start_ns,
            end_ns,
        };
        if r.slots.len() < self.capacity {
            r.slots.push(rec);
        } else {
            let i = r.next;
            r.slots[i] = rec;
        }
        r.next = (r.next + 1) % self.capacity;
        r.recorded += 1;
    }

    /// Every retained span, all workers merged, sorted by start time.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for ring in &self.rings {
            let r = ring.0.lock().unwrap_or_else(|e| e.into_inner());
            out.extend_from_slice(&r.slots);
        }
        out.sort_by_key(|s| (s.start_ns, s.worker));
        out
    }

    /// Total spans recorded (including ones later overwritten).
    pub fn recorded(&self) -> u64 {
        self.rings
            .iter()
            .map(|ring| ring.0.lock().unwrap_or_else(|e| e.into_inner()).recorded)
            .sum()
    }

    /// Spans lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        let retained: u64 = self
            .rings
            .iter()
            .map(|ring| ring.0.lock().unwrap_or_else(|e| e.into_inner()).slots.len() as u64)
            .sum();
        self.recorded() - retained
    }
}

/// RAII guard for an open span; records into the set on drop.
pub struct Span<'a> {
    set: &'a SpanSet,
    worker: usize,
    name: &'static str,
    start_ns: u64,
}

impl<'a> Span<'a> {
    /// Opens a span — the `Span::enter("phase")` spelling of the span
    /// API (equivalent to [`SpanSet::enter`]).
    pub fn enter(set: &'a SpanSet, worker: usize, name: &'static str) -> Span<'a> {
        set.enter(worker, name)
    }

    /// Closes the span now (otherwise the drop does).
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.set.record(self.worker, self.name, self.start_ns, now_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let set = SpanSet::new(2, 8);
        {
            let _s = Span::enter(&set, 1, "phase");
            std::hint::black_box(());
        }
        let spans = set.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "phase");
        assert_eq!(spans[0].worker, 1);
        assert!(spans[0].end_ns >= spans[0].start_ns);
        assert_eq!(set.recorded(), 1);
        assert_eq!(set.dropped(), 0);
    }

    #[test]
    fn explicit_end_closes_early() {
        let set = SpanSet::new(1, 8);
        let s = set.enter(0, "a");
        s.end();
        let t_after = now_ns();
        let spans = set.snapshot();
        assert!(spans[0].end_ns <= t_after);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let set = SpanSet::new(1, 4);
        for i in 0..10u64 {
            set.record(0, "s", i, i + 1);
        }
        let spans = set.snapshot();
        assert_eq!(spans.len(), 4, "capacity bounds retention");
        // the oldest records were overwritten: only 6..10 survive
        let starts: Vec<u64> = spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
        assert_eq!(set.recorded(), 10);
        assert_eq!(set.dropped(), 6);
    }

    #[test]
    fn snapshot_merges_workers_in_start_order() {
        let set = SpanSet::new(3, 8);
        set.record(2, "c", 30, 40);
        set.record(0, "a", 10, 20);
        set.record(1, "b", 20, 25);
        let names: Vec<&str> = set.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn concurrent_workers_do_not_interfere() {
        let set = SpanSet::new(4, 1024);
        std::thread::scope(|s| {
            for w in 0..4 {
                let set = &set;
                s.spawn(move || {
                    for i in 0..100u64 {
                        set.record(w, "t", i, i + 1);
                    }
                });
            }
        });
        assert_eq!(set.snapshot().len(), 400);
        assert_eq!(set.dropped(), 0);
    }

    #[test]
    fn out_of_range_worker_folds_into_last_ring() {
        let set = SpanSet::new(2, 4);
        set.record(9, "x", 0, 1);
        assert_eq!(set.snapshot().len(), 1);
    }

    #[test]
    fn duration_saturates_on_clock_skew() {
        let r = SpanRecord {
            name: "x",
            worker: 0,
            start_ns: 10,
            end_ns: 5,
        };
        assert_eq!(r.duration_ns(), 0);
    }
}
