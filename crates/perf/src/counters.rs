//! Named runtime counters with cache-padded per-worker slots.
//!
//! A [`CounterSet`] is registered once (mutable phase), then shared
//! read-only among worker threads: every `(counter, worker)` pair owns
//! one [`AtomicU64`] padded to its own cache line, so concurrent
//! increments from different workers never contend and a relaxed
//! `fetch_add` is the whole hot path — the per-worker-slot idiom the
//! live monitor already uses for tile records.

use ezp_core::json::{FromJson, Json, ToJson};
use ezp_core::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Handle to a registered counter (index into the set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// One per-worker slot, padded to a cache line (128 B covers the
/// adjacent-line prefetcher pairs on x86, like the monitor's slots).
#[repr(align(128))]
#[derive(Default)]
struct Slot(AtomicU64);

/// A registry of named counters, one padded slot per worker each.
pub struct CounterSet {
    workers: usize,
    names: Vec<String>,
    /// `slots[counter][worker]`.
    slots: Vec<Box<[Slot]>>,
}

impl CounterSet {
    /// Creates an empty set for `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "counter set needs at least one worker slot");
        CounterSet {
            workers,
            names: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Number of worker slots per counter.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no counter is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Registers `name` (idempotent: an existing name returns its id).
    /// Registration takes `&mut self` — do it before sharing the set
    /// with workers; increments are then lock-free.
    pub fn register(&mut self, name: &str) -> CounterId {
        if let Some(id) = self.id(name) {
            return id;
        }
        self.names.push(name.to_string());
        self.slots
            .push((0..self.workers).map(|_| Slot::default()).collect());
        CounterId(self.names.len() - 1)
    }

    /// Looks up a registered counter by name.
    pub fn id(&self, name: &str) -> Option<CounterId> {
        self.names.iter().position(|n| n == name).map(CounterId)
    }

    /// The name of `id`.
    pub fn name(&self, id: CounterId) -> &str {
        &self.names[id.0]
    }

    /// Adds `delta` to the counter on `worker`'s slot. Out-of-range
    /// workers (e.g. a sequential caller on a single-slot set) fold
    /// into the last slot rather than panicking mid-computation.
    #[inline]
    pub fn add(&self, id: CounterId, worker: usize, delta: u64) {
        let w = worker.min(self.workers - 1);
        self.slots[id.0][w].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1 to the counter on `worker`'s slot.
    #[inline]
    pub fn incr(&self, id: CounterId, worker: usize) {
        self.add(id, worker, 1);
    }

    /// Raises the counter on `worker`'s slot to at least `value` —
    /// the high-water-mark fold for gauge-shaped events (occupancy,
    /// in-flight depth), where `add` would count observations instead
    /// of tracking the peak.
    #[inline]
    pub fn max(&self, id: CounterId, worker: usize, value: u64) {
        let w = worker.min(self.workers - 1);
        self.slots[id.0][w].0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of `id` on `worker`'s slot.
    pub fn worker_value(&self, id: CounterId, worker: usize) -> u64 {
        self.slots[id.0][worker].0.load(Ordering::Relaxed)
    }

    /// Current value of `id` summed over all workers (saturating, so
    /// near-`u64::MAX` slots never panic the reporting path).
    pub fn total(&self, id: CounterId) -> u64 {
        self.slots[id.0]
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.0.load(Ordering::Relaxed)))
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            workers: self.workers,
            counters: self
                .names
                .iter()
                .enumerate()
                .map(|(i, name)| CounterValues {
                    name: name.clone(),
                    per_worker: (0..self.workers)
                        .map(|w| self.worker_value(CounterId(i), w))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The values of one counter at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterValues {
    /// Counter name as registered.
    pub name: String,
    /// One value per worker slot.
    pub per_worker: Vec<u64>,
}

impl CounterValues {
    /// Sum over all workers (saturating).
    pub fn total(&self) -> u64 {
        self.per_worker.iter().fold(0u64, |acc, v| acc.saturating_add(*v))
    }
}

/// A point-in-time copy of a [`CounterSet`] — what the exporters
/// consume and what `--stats` serializes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Number of worker slots per counter.
    pub workers: usize,
    /// Counters in registration order.
    pub counters: Vec<CounterValues>,
}

impl CounterSnapshot {
    /// The values of counter `name`, if present.
    pub fn get(&self, name: &str) -> Option<&CounterValues> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Total of counter `name` (0 when absent).
    pub fn total(&self, name: &str) -> u64 {
        self.get(name).map(CounterValues::total).unwrap_or(0)
    }

    /// Appends a counter computed elsewhere (MPI rank stats, cache
    /// totals) so one snapshot can carry the whole run's numbers.
    pub fn push(&mut self, name: &str, per_worker: Vec<u64>) {
        self.counters.push(CounterValues {
            name: name.to_string(),
            per_worker,
        });
    }
}

impl ToJson for CounterValues {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("total", self.total().to_json()),
            ("per_worker", self.per_worker.to_json()),
        ])
    }
}

impl FromJson for CounterValues {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(CounterValues {
            name: v.field("name")?,
            per_worker: v.field("per_worker")?,
        })
    }
}

impl ToJson for CounterSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workers", self.workers.to_json()),
            ("counters", self.counters.to_json()),
        ])
    }
}

impl FromJson for CounterSnapshot {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(CounterSnapshot {
            workers: v.field("workers")?,
            counters: v.field("counters")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_lookup_works() {
        let mut set = CounterSet::new(4);
        let a = set.register("tasks");
        let b = set.register("steals");
        assert_ne!(a, b);
        assert_eq!(set.register("tasks"), a);
        assert_eq!(set.id("steals"), Some(b));
        assert_eq!(set.id("nope"), None);
        assert_eq!(set.name(a), "tasks");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn per_worker_accumulation_and_totals() {
        let mut set = CounterSet::new(3);
        let c = set.register("c");
        set.incr(c, 0);
        set.add(c, 1, 10);
        set.add(c, 2, 100);
        assert_eq!(set.worker_value(c, 0), 1);
        assert_eq!(set.worker_value(c, 1), 10);
        assert_eq!(set.worker_value(c, 2), 100);
        assert_eq!(set.total(c), 111);
    }

    #[test]
    fn out_of_range_worker_folds_into_last_slot() {
        let mut set = CounterSet::new(2);
        let c = set.register("c");
        set.incr(c, 7);
        assert_eq!(set.worker_value(c, 1), 1);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        // the counter layer's core invariant: relaxed per-worker slots
        // lose nothing under concurrency
        let mut set = CounterSet::new(4);
        let c = set.register("tasks");
        let set = &set;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        set.incr(c, w);
                    }
                });
            }
        });
        assert_eq!(set.total(c), 4 * PER_THREAD);
        for w in 0..4 {
            assert_eq!(set.worker_value(c, w), PER_THREAD);
        }
    }

    #[test]
    fn snapshot_copies_values() {
        let mut set = CounterSet::new(2);
        let c = set.register("x");
        set.add(c, 0, 5);
        let snap = set.snapshot();
        set.add(c, 0, 5); // later increments must not alter the snapshot
        assert_eq!(snap.total("x"), 5);
        assert_eq!(snap.get("x").unwrap().per_worker, vec![5, 0]);
        assert_eq!(snap.total("missing"), 0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut set = CounterSet::new(2);
        let a = set.register("tasks");
        let b = set.register("idle_ns");
        set.add(a, 0, 3);
        set.add(b, 1, u64::MAX); // exact u64 must survive
        let snap = set.snapshot();
        let back = CounterSnapshot::from_json(&Json::parse(&snap.to_json().dump()).unwrap())
            .unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn slots_are_cache_line_padded() {
        assert!(std::mem::align_of::<Slot>() >= 128);
        assert!(std::mem::size_of::<Slot>() >= 128);
    }
}
