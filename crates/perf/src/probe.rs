//! [`PerfProbe`] — the [`Probe`] implementation that turns scheduler
//! activity into counters and spans.
//!
//! The scheduling layer already reports to a [`Probe`] (tile brackets
//! for the monitor/tracer, [`RuntimeEvent`]s for whoever listens).
//! `PerfProbe` is the listener: every tile bracket counts as one task
//! executed on that worker, every runtime event lands in the matching
//! named counter, and iteration brackets become `"iteration"` spans.
//! It is instance-based (not a process-global) so concurrent runs in
//! one process — the CLI test suite does this — never share numbers.

use crate::counters::{CounterId, CounterSet, CounterSnapshot};
use crate::hist::{HistSummary, LogHistogram, ShardedHistogram};
use crate::span::{SpanRecord, SpanSet, DEFAULT_CAPACITY};
use ezp_core::kernel::{IdleCause, Probe, RuntimeEvent};
use ezp_core::time::now_ns;
use ezp_core::WorkerId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Canonical counter names, shared between the probe and everything
/// that reads snapshots (exporters, `ci/verify.sh`, docs).
pub mod names {
    /// Tiles computed (every `start_tile`/`end_tile` bracket is a task).
    pub const TASKS_EXECUTED: &str = "tasks_executed";
    /// Chunks handed out by dispensers.
    pub const CHUNKS_DISPENSED: &str = "chunks_dispensed";
    /// Steal attempts on the `stealing` dispenser.
    pub const STEALS_ATTEMPTED: &str = "steals_attempted";
    /// Steal attempts that obtained work.
    pub const STEALS_SUCCEEDED: &str = "steals_succeeded";
    /// Nanoseconds spent waiting for work (dispenser + task-graph waits).
    pub const IDLE_NS: &str = "idle_ns";
    /// Per-cause idle slices, indexed like
    /// [`IdleCause::ALL`](ezp_core::kernel::IdleCause::ALL). Every
    /// cause-tagged idle event adds to both its slice and [`IDLE_NS`],
    /// so the five slices always sum *exactly* to the total — the
    /// invariant `easyview explain`'s idle breakdown relies on.
    pub const IDLE_NS_BY_CAUSE: [&str; 5] = [
        "idle_ns{cause=\"dep_stall\"}",
        "idle_ns{cause=\"steal\"}",
        "idle_ns{cause=\"barrier\"}",
        "idle_ns{cause=\"pool_park\"}",
        "idle_ns{cause=\"backpressure\"}",
    ];

    /// The `idle_ns{cause=...}` counter name for `cause`.
    pub fn idle_cause_counter(cause: super::IdleCause) -> &'static str {
        IDLE_NS_BY_CAUSE[cause.index()]
    }
    /// End-of-loop barrier entries.
    pub const BARRIER_WAITS: &str = "barrier_waits";
    /// Task-graph waits on an empty ready queue.
    pub const TASK_WAITS: &str = "task_waits";
    /// Successful steals from another worker's task-graph ready deque.
    pub const DEQUE_STEALS: &str = "deque_steals";
    /// Condvar parks taken by the pool's epoch protocol (region
    /// launch/close blocking fallback).
    pub const POOL_PARKS: &str = "pool_parks";
    /// Spin iterations burned by the pool's epoch protocol before a
    /// region opened or closed.
    pub const POOL_SPINS: &str = "pool_spins";
    /// Races flagged by the `ezp-check` shadow-write detector (always
    /// zero outside checked runs).
    pub const SHADOW_RACES: &str = "shadow_races";
    /// Backpressure stalls in a streaming pipeline: frames that were
    /// data-ready but waited on a full inter-stage buffer or a stage's
    /// width limit.
    pub const BACKPRESSURE_STALLS: &str = "backpressure_stalls";
    /// Frames handed to the output sink of a streaming run.
    pub const FRAMES_EMITTED: &str = "frames_emitted";
    /// High-water mark of frames simultaneously in flight inside a
    /// streaming pipeline (gauge: folded with `max`, reported on worker
    /// slot 0, so the total *is* the peak).
    pub const FRAMES_IN_FLIGHT: &str = "frames_in_flight";
    /// High-water mark of the ordered-emission reorder buffer (gauge,
    /// worker slot 0).
    pub const REORDER_BUFFER_DEPTH: &str = "reorder_buffer_depth";
    /// High-water mark of any single stage's occupancy (gauge, worker
    /// slot 0).
    pub const STAGE_OCCUPANCY: &str = "stage_occupancy";
    /// Items sent over `ezp-chan` channels (or their `mpsc` baseline).
    pub const CHAN_SENDS: &str = "chan_sends";
    /// Items received over `ezp-chan` channels.
    pub const CHAN_RECVS: &str = "chan_recvs";
    /// Sender stall episodes on a full channel.
    pub const CHAN_FULL_STALLS: &str = "chan_full_stalls";
    /// Receiver stall episodes on an empty channel.
    pub const CHAN_EMPTY_STALLS: &str = "chan_empty_stalls";
    /// Jobs accepted into a tenant's admission queue by `ezp-serve`.
    /// Serve counters use the worker dimension as the *tenant slot*:
    /// `worker="2"` is tenant slot 2, not a pool thread.
    pub const JOBS_ADMITTED: &str = "jobs_admitted";
    /// Jobs refused with retry-after because the tenant's admission
    /// queue (or the tenant table) was full.
    pub const JOBS_REJECTED: &str = "jobs_rejected";
    /// Jobs that ran to completion and streamed their report back.
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Admitted jobs dropped before or during execution because the
    /// submitting client disconnected.
    pub const JOBS_CANCELLED: &str = "jobs_cancelled";
    /// Admitted jobs whose kernel run returned an error.
    pub const JOBS_FAILED: &str = "jobs_failed";
    /// High-water mark of a tenant's admission-queue depth (gauge,
    /// folded with `max` per tenant slot).
    pub const TENANT_QUEUE_DEPTH: &str = "tenant_queue_depth";
    /// Nanoseconds a tenant's jobs spent queued before a runner picked
    /// them up — the serve-side idle attribution ("who waits and why").
    pub const TENANT_IDLE_NS: &str = "tenant_idle_ns";

    /// Every serve-lane counter, in registration order (used by
    /// `ezp-serve` and the docs/tests that assert the report shape).
    pub const SERVE_COUNTERS: [&str; 7] = [
        JOBS_ADMITTED,
        JOBS_REJECTED,
        JOBS_COMPLETED,
        JOBS_CANCELLED,
        JOBS_FAILED,
        TENANT_QUEUE_DEPTH,
        TENANT_IDLE_NS,
    ];
}

/// Span names for the per-cause idle intervals, indexed like
/// [`IdleCause::ALL`]. The `idle:` prefix is what the Chrome exporter
/// keys its `"idle"` category on.
const IDLE_SPAN_NAMES: [&str; 5] = [
    "idle:dep_stall",
    "idle:steal",
    "idle:barrier",
    "idle:pool_park",
    "idle:backpressure",
];

/// One worker's in-flight tile start timestamp on its own cache line
/// (see the `tile_start` field).
#[repr(align(128))]
struct TileStart(AtomicU64);

/// Probe that accumulates runtime counters and iteration spans.
pub struct PerfProbe {
    counters: CounterSet,
    spans: SpanSet,
    tasks: CounterId,
    chunks: CounterId,
    steals_att: CounterId,
    steals_ok: CounterId,
    idle: CounterId,
    idle_by_cause: [CounterId; 5],
    barriers: CounterId,
    task_waits: CounterId,
    deque_steals: CounterId,
    pool_parks: CounterId,
    pool_spins: CounterId,
    shadow_races: CounterId,
    backpressure: CounterId,
    frames_emitted: CounterId,
    frames_in_flight: CounterId,
    reorder_depth: CounterId,
    stage_occupancy: CounterId,
    chan_sends: CounterId,
    chan_recvs: CounterId,
    chan_full_stalls: CounterId,
    chan_empty_stalls: CounterId,
    /// Start timestamp of the iteration currently in flight.
    /// counter-only: the timestamp is the entire payload and only the
    /// iteration-bracketing thread writes it.
    iter_start: AtomicU64,
    /// Per-worker start timestamp of the tile currently in flight.
    /// Each slot is padded to its own cache line: every tile bracket
    /// stores and swaps here, and adjacent workers sharing a line
    /// would put false-sharing traffic on the hot path the
    /// `perf_overhead` bench gates at <=5%.
    tile_start: Vec<TileStart>,
    /// Task (tile) duration distribution, sharded per worker so the
    /// record in `end_tile` never touches another worker's lines.
    task_hist: ShardedHistogram,
    /// Frame (iteration) duration distribution.
    frame_hist: LogHistogram,
}

impl PerfProbe {
    /// A probe for `workers` worker threads with the default span
    /// ring capacity.
    pub fn new(workers: usize) -> Self {
        Self::with_span_capacity(workers, DEFAULT_CAPACITY)
    }

    /// A probe whose span rings hold `capacity` records per worker.
    pub fn with_span_capacity(workers: usize, capacity: usize) -> Self {
        let mut counters = CounterSet::new(workers);
        let tasks = counters.register(names::TASKS_EXECUTED);
        let chunks = counters.register(names::CHUNKS_DISPENSED);
        let steals_att = counters.register(names::STEALS_ATTEMPTED);
        let steals_ok = counters.register(names::STEALS_SUCCEEDED);
        let idle = counters.register(names::IDLE_NS);
        let idle_by_cause =
            names::IDLE_NS_BY_CAUSE.map(|name| counters.register(name));
        let barriers = counters.register(names::BARRIER_WAITS);
        let task_waits = counters.register(names::TASK_WAITS);
        let deque_steals = counters.register(names::DEQUE_STEALS);
        let pool_parks = counters.register(names::POOL_PARKS);
        let pool_spins = counters.register(names::POOL_SPINS);
        let shadow_races = counters.register(names::SHADOW_RACES);
        let backpressure = counters.register(names::BACKPRESSURE_STALLS);
        let frames_emitted = counters.register(names::FRAMES_EMITTED);
        let frames_in_flight = counters.register(names::FRAMES_IN_FLIGHT);
        let reorder_depth = counters.register(names::REORDER_BUFFER_DEPTH);
        let stage_occupancy = counters.register(names::STAGE_OCCUPANCY);
        let chan_sends = counters.register(names::CHAN_SENDS);
        let chan_recvs = counters.register(names::CHAN_RECVS);
        let chan_full_stalls = counters.register(names::CHAN_FULL_STALLS);
        let chan_empty_stalls = counters.register(names::CHAN_EMPTY_STALLS);
        PerfProbe {
            counters,
            spans: SpanSet::new(workers, capacity),
            tasks,
            chunks,
            steals_att,
            steals_ok,
            idle,
            idle_by_cause,
            barriers,
            task_waits,
            deque_steals,
            pool_parks,
            pool_spins,
            shadow_races,
            backpressure,
            frames_emitted,
            frames_in_flight,
            reorder_depth,
            stage_occupancy,
            chan_sends,
            chan_recvs,
            chan_full_stalls,
            chan_empty_stalls,
            iter_start: AtomicU64::new(0),
            tile_start: (0..workers.max(1)).map(|_| TileStart(AtomicU64::new(0))).collect(),
            task_hist: ShardedHistogram::new("task_ns", workers),
            frame_hist: LogHistogram::new("frame_ns"),
        }
    }

    /// The live counter set (for direct reads in tests).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// The span rings.
    pub fn spans(&self) -> &SpanSet {
        &self.spans
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Retained spans, merged and sorted by start time.
    pub fn span_snapshot(&self) -> Vec<SpanRecord> {
        self.spans.snapshot()
    }

    /// The task (tile) duration histogram (per-worker shards).
    pub fn task_hist(&self) -> &ShardedHistogram {
        &self.task_hist
    }

    /// The frame (iteration) duration histogram.
    pub fn frame_hist(&self) -> &LogHistogram {
        &self.frame_hist
    }

    /// Percentile summaries of every histogram with observations.
    pub fn hist_summaries(&self) -> Vec<HistSummary> {
        [self.task_hist.summary(), self.frame_hist.summary()]
            .into_iter()
            .filter(|s| s.count > 0)
            .collect()
    }
}

impl Probe for PerfProbe {
    fn iteration_start(&self, _iteration: u32) {
        self.iter_start.store(now_ns(), Ordering::Relaxed);
    }

    fn iteration_end(&self, _iteration: u32) {
        let start = self.iter_start.load(Ordering::Relaxed);
        let end = now_ns();
        self.spans.record(0, "iteration", start, end);
        self.frame_hist.record(end.saturating_sub(start));
    }

    fn start_tile(&self, worker: WorkerId) {
        let slot = worker.min(self.tile_start.len() - 1);
        self.tile_start[slot].0.store(now_ns(), Ordering::Relaxed);
    }

    fn end_tile(&self, _x: usize, _y: usize, _w: usize, _h: usize, worker: WorkerId) {
        self.counters.incr(self.tasks, worker);
        let slot = worker.min(self.tile_start.len() - 1);
        let start = self.tile_start[slot].0.swap(0, Ordering::Relaxed);
        if start != 0 {
            self.task_hist.record(slot, now_ns().saturating_sub(start));
        }
    }

    fn runtime_event(&self, worker: WorkerId, event: RuntimeEvent) {
        match event {
            RuntimeEvent::ChunkDispensed { .. } => self.counters.incr(self.chunks, worker),
            RuntimeEvent::Steals {
                attempted,
                succeeded,
            } => {
                self.counters.add(self.steals_att, worker, attempted);
                self.counters.add(self.steals_ok, worker, succeeded);
            }
            RuntimeEvent::IdleNs { ns, cause } => {
                // both the total and the cause slice, so the per-cause
                // breakdown always sums exactly to `idle_ns`
                self.counters.add(self.idle, worker, ns);
                self.counters.add(self.idle_by_cause[cause.index()], worker, ns);
                if ns > 0 {
                    let end = now_ns();
                    self.spans.record(
                        worker,
                        IDLE_SPAN_NAMES[cause.index()],
                        end.saturating_sub(ns),
                        end,
                    );
                }
            }
            RuntimeEvent::BarrierWait => self.counters.incr(self.barriers, worker),
            RuntimeEvent::TaskWait => self.counters.incr(self.task_waits, worker),
            RuntimeEvent::DequeSteal => self.counters.incr(self.deque_steals, worker),
            RuntimeEvent::PoolSync { parks, spins } => {
                self.counters.add(self.pool_parks, worker, parks);
                self.counters.add(self.pool_spins, worker, spins);
            }
            RuntimeEvent::ShadowRace { .. } => self.counters.incr(self.shadow_races, worker),
            RuntimeEvent::StreamStall => self.counters.incr(self.backpressure, worker),
            RuntimeEvent::StreamFrameEmitted => self.counters.incr(self.frames_emitted, worker),
            // gauges: fold with max so the counter reports the peak, and
            // pin to worker slot 0 so the total equals the high-water
            // mark instead of summing per-worker peaks
            RuntimeEvent::StreamInFlight { frames } => {
                self.counters.max(self.frames_in_flight, 0, frames as u64)
            }
            RuntimeEvent::StreamReorderDepth { depth } => {
                self.counters.max(self.reorder_depth, 0, depth as u64)
            }
            RuntimeEvent::StreamStageOccupancy { depth } => {
                self.counters.max(self.stage_occupancy, 0, depth as u64)
            }
            RuntimeEvent::ChanOps {
                sends,
                recvs,
                full_stalls,
                empty_stalls,
            } => {
                self.counters.add(self.chan_sends, worker, sends);
                self.counters.add(self.chan_recvs, worker, recvs);
                self.counters.add(self.chan_full_stalls, worker, full_stalls);
                self.counters
                    .add(self.chan_empty_stalls, worker, empty_stalls);
            }
        }
    }

    fn wants_runtime_events(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_count_as_tasks_per_worker() {
        let probe = PerfProbe::new(3);
        probe.start_tile(1);
        probe.end_tile(0, 0, 8, 8, 1);
        probe.end_tile(8, 0, 8, 8, 2);
        let snap = probe.snapshot();
        assert_eq!(snap.total(names::TASKS_EXECUTED), 2);
        assert_eq!(
            snap.get(names::TASKS_EXECUTED).unwrap().per_worker,
            vec![0, 1, 1]
        );
    }

    #[test]
    fn runtime_events_land_in_named_counters() {
        let probe = PerfProbe::new(2);
        probe.runtime_event(0, RuntimeEvent::ChunkDispensed { len: 16 });
        probe.runtime_event(0, RuntimeEvent::ChunkDispensed { len: 8 });
        probe.runtime_event(
            1,
            RuntimeEvent::Steals {
                attempted: 3,
                succeeded: 1,
            },
        );
        probe.runtime_event(
            1,
            RuntimeEvent::IdleNs {
                ns: 500,
                cause: IdleCause::Steal,
            },
        );
        probe.runtime_event(0, RuntimeEvent::BarrierWait);
        probe.runtime_event(1, RuntimeEvent::TaskWait);
        probe.runtime_event(0, RuntimeEvent::DequeSteal);
        probe.runtime_event(
            1,
            RuntimeEvent::PoolSync {
                parks: 2,
                spins: 40,
            },
        );
        probe.runtime_event(0, RuntimeEvent::StreamStall);
        probe.runtime_event(1, RuntimeEvent::StreamFrameEmitted);
        probe.runtime_event(1, RuntimeEvent::StreamFrameEmitted);
        // gauges fold with max: only the peak survives
        probe.runtime_event(0, RuntimeEvent::StreamInFlight { frames: 3 });
        probe.runtime_event(1, RuntimeEvent::StreamInFlight { frames: 7 });
        probe.runtime_event(0, RuntimeEvent::StreamInFlight { frames: 2 });
        probe.runtime_event(0, RuntimeEvent::StreamReorderDepth { depth: 4 });
        probe.runtime_event(0, RuntimeEvent::StreamReorderDepth { depth: 1 });
        probe.runtime_event(1, RuntimeEvent::StreamStageOccupancy { depth: 2 });
        probe.runtime_event(
            0,
            RuntimeEvent::ChanOps {
                sends: 16,
                recvs: 15,
                full_stalls: 4,
                empty_stalls: 2,
            },
        );
        let snap = probe.snapshot();
        assert_eq!(snap.total(names::CHAN_SENDS), 16);
        assert_eq!(snap.total(names::CHAN_RECVS), 15);
        assert_eq!(snap.total(names::CHAN_FULL_STALLS), 4);
        assert_eq!(snap.total(names::CHAN_EMPTY_STALLS), 2);
        assert_eq!(snap.total(names::BACKPRESSURE_STALLS), 1);
        assert_eq!(snap.total(names::FRAMES_EMITTED), 2);
        assert_eq!(snap.total(names::FRAMES_IN_FLIGHT), 7);
        assert_eq!(snap.total(names::REORDER_BUFFER_DEPTH), 4);
        assert_eq!(snap.total(names::STAGE_OCCUPANCY), 2);
        assert_eq!(snap.total(names::CHUNKS_DISPENSED), 2);
        assert_eq!(snap.total(names::STEALS_ATTEMPTED), 3);
        assert_eq!(snap.total(names::STEALS_SUCCEEDED), 1);
        assert_eq!(snap.total(names::IDLE_NS), 500);
        assert_eq!(snap.total(names::idle_cause_counter(IdleCause::Steal)), 500);
        assert_eq!(snap.total(names::BARRIER_WAITS), 1);
        assert_eq!(snap.total(names::TASK_WAITS), 1);
        assert_eq!(snap.total(names::DEQUE_STEALS), 1);
        assert_eq!(snap.total(names::POOL_PARKS), 2);
        assert_eq!(snap.total(names::POOL_SPINS), 40);
    }

    #[test]
    fn iterations_become_spans() {
        let probe = PerfProbe::new(1);
        probe.iteration_start(0);
        probe.iteration_end(0);
        probe.iteration_start(1);
        probe.iteration_end(1);
        let spans = probe.span_snapshot();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.name == "iteration"));
        assert!(spans[0].start_ns <= spans[1].start_ns);
    }

    #[test]
    fn probe_wants_runtime_events() {
        let probe = PerfProbe::new(1);
        assert!(probe.wants_runtime_events());
    }

    #[test]
    fn idle_causes_sum_exactly_to_the_total() {
        let probe = PerfProbe::new(2);
        for (i, cause) in IdleCause::ALL.into_iter().enumerate() {
            probe.runtime_event(
                i % 2,
                RuntimeEvent::IdleNs {
                    ns: 100 * (i as u64 + 1),
                    cause,
                },
            );
        }
        let snap = probe.snapshot();
        let by_cause: u64 = names::IDLE_NS_BY_CAUSE
            .iter()
            .map(|n| snap.total(n))
            .sum();
        assert_eq!(by_cause, snap.total(names::IDLE_NS));
        assert_eq!(snap.total(names::IDLE_NS), 100 + 200 + 300 + 400 + 500);
        // and each cause produced a span carrying its label
        let spans = probe.span_snapshot();
        for cause in IdleCause::ALL {
            assert!(
                spans.iter().any(|s| s.name == format!("idle:{}", cause.label())),
                "no span for {:?}",
                cause
            );
        }
    }

    #[test]
    fn tile_brackets_feed_the_task_histogram() {
        let probe = PerfProbe::new(2);
        for _ in 0..10 {
            probe.start_tile(1);
            probe.end_tile(0, 0, 8, 8, 1);
        }
        assert_eq!(probe.task_hist().count(), 10);
        let summaries = probe.hist_summaries();
        assert!(summaries.iter().any(|s| s.name == "task_ns"));
        // no iterations ran: frame_ns has no observations, so it is
        // filtered out of the summaries
        assert!(!summaries.iter().any(|s| s.name == "frame_ns"));
    }

    #[test]
    fn iterations_feed_the_frame_histogram() {
        let probe = PerfProbe::new(1);
        probe.iteration_start(0);
        probe.iteration_end(0);
        assert_eq!(probe.frame_hist().count(), 1);
    }

    #[test]
    fn end_tile_without_start_records_no_duration() {
        let probe = PerfProbe::new(1);
        probe.end_tile(0, 0, 8, 8, 0);
        assert_eq!(probe.task_hist().count(), 0);
        assert_eq!(probe.snapshot().total(names::TASKS_EXECUTED), 1);
    }
}
