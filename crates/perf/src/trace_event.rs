//! Chrome Trace Event Format emission.
//!
//! The [Trace Event Format] is the JSON schema consumed by
//! `chrome://tracing` and [Perfetto]. We only need "complete" events
//! (`ph: "X"`, a name + start + duration per slice) plus thread-name
//! metadata, which is enough to render one lane per worker with the
//! tiles/spans laid out on a common timeline.
//!
//! Timestamps in the format are **microseconds**; ours are nanoseconds,
//! so conversion happens here and only here.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::span::SpanRecord;
use ezp_core::json::{Json, ToJson};

/// One slice in a Chrome trace (a "complete" event, `ph: "X"`).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Slice label shown in the viewer.
    pub name: String,
    /// Category string (comma-separated tags; filterable in the UI).
    pub cat: String,
    /// Start, ns since process origin.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Process lane (we use 0 for local runs, the rank for MPI).
    pub pid: usize,
    /// Thread lane — the worker id.
    pub tid: usize,
    /// Extra `args` fields displayed when the slice is selected.
    pub args: Vec<(String, Json)>,
}

impl TraceEvent {
    /// A complete event with no extra args.
    pub fn complete(name: &str, cat: &str, start_ns: u64, dur_ns: u64, tid: usize) -> Self {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            start_ns,
            dur_ns,
            pid: 0,
            tid,
            args: Vec::new(),
        }
    }

    /// Adds an `args` entry (builder style).
    pub fn arg(mut self, key: &str, value: Json) -> Self {
        self.args.push((key.to_string(), value));
        self
    }
}

impl From<&SpanRecord> for TraceEvent {
    fn from(s: &SpanRecord) -> Self {
        // Idle-cause intervals ("idle:steal", "idle:backpressure", ...)
        // get their own category so Perfetto can filter the *why a lane
        // is dark* slices separately from compute spans.
        let cat = if s.name.starts_with("idle:") { "idle" } else { "span" };
        TraceEvent::complete(s.name, cat, s.start_ns, s.duration_ns(), s.worker)
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        // The format wants µs; emit fractional µs so sub-microsecond
        // tiles keep a non-zero width in the viewer.
        let mut fields = vec![
            ("name".to_string(), self.name.to_json()),
            ("cat".to_string(), self.cat.to_json()),
            ("ph".to_string(), Json::Str("X".into())),
            ("ts".to_string(), Json::Float(self.start_ns as f64 / 1000.0)),
            ("dur".to_string(), Json::Float(self.dur_ns as f64 / 1000.0)),
            ("pid".to_string(), self.pid.to_json()),
            ("tid".to_string(), self.tid.to_json()),
        ];
        if !self.args.is_empty() {
            fields.push((
                "args".to_string(),
                Json::Obj(self.args.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
            ));
        }
        Json::Obj(fields)
    }
}

/// A `ph: "M"` metadata event naming thread `tid` in the viewer.
pub fn thread_name(pid: usize, tid: usize, name: &str) -> Json {
    Json::obj([
        ("name", Json::Str("thread_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", pid.to_json()),
        ("tid", tid.to_json()),
        ("args", Json::obj([("name", name.to_json())])),
    ])
}

/// Wraps events (and optional metadata) in the top-level trace object
/// Chrome expects: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn chrome_trace(events: &[TraceEvent], metadata: Vec<Json>) -> Json {
    let mut items = metadata;
    items.extend(events.iter().map(ToJson::to_json));
    Json::obj([
        ("traceEvents", Json::Arr(items)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_emits_tef_fields() {
        let ev = TraceEvent::complete("tile", "compute", 2_500, 1_000, 3)
            .arg("w", Json::UInt(16));
        let j = ev.to_json();
        assert_eq!(j.get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(j.get("ts"), Some(&Json::Float(2.5)), "ns -> µs");
        assert_eq!(j.get("dur"), Some(&Json::Float(1.0)));
        assert_eq!(j.get("tid"), Some(&Json::UInt(3)));
        assert_eq!(j.get("args").unwrap().get("w"), Some(&Json::UInt(16)));
    }

    #[test]
    fn args_omitted_when_empty() {
        let j = TraceEvent::complete("t", "c", 0, 0, 0).to_json();
        assert_eq!(j.get("args"), None);
    }

    #[test]
    fn span_record_converts() {
        let s = SpanRecord {
            name: "iteration",
            worker: 2,
            start_ns: 10_000,
            end_ns: 30_000,
        };
        let ev = TraceEvent::from(&s);
        assert_eq!(ev.name, "iteration");
        assert_eq!(ev.cat, "span");
        assert_eq!(ev.tid, 2);
        assert_eq!(ev.dur_ns, 20_000);
    }

    #[test]
    fn idle_spans_get_the_idle_category() {
        let s = SpanRecord {
            name: "idle:backpressure",
            worker: 1,
            start_ns: 100,
            end_ns: 400,
        };
        let ev = TraceEvent::from(&s);
        assert_eq!(ev.cat, "idle");
        assert_eq!(ev.dur_ns, 300);
    }

    #[test]
    fn chrome_trace_wraps_and_round_trips() {
        let events = vec![
            TraceEvent::complete("a", "c", 0, 100, 0),
            TraceEvent::complete("b", "c", 50, 100, 1),
        ];
        let doc = chrome_trace(&events, vec![thread_name(0, 0, "worker 0")]);
        let text = doc.dump();
        let back = Json::parse(&text).unwrap();
        let items = back.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 3, "1 metadata + 2 events");
        assert_eq!(items[0].get("ph"), Some(&Json::Str("M".into())));
        assert_eq!(
            back.get("displayTimeUnit"),
            Some(&Json::Str("ms".into()))
        );
    }
}
