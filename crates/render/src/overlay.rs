//! Tile highlighting over a thumbnail — the Fig. 7 interaction.
//!
//! "Whenever the x-axis of the mouse intersects tasks in the Gantt
//! chart, the corresponding tiles are highlighted over this reduced
//! image, helping to localize computations." [`highlight_tiles`] takes
//! the reduced image, the original image dimension and the tile
//! rectangles to highlight, and paints translucent fills plus a solid
//! outline in the highlight color.

use ezp_core::{Img2D, Rgba, Tile};

/// Alpha-blends `top` (with weight `alpha` in 0..=255) over `bottom`.
fn blend(bottom: Rgba, top: Rgba, alpha: u8) -> Rgba {
    let a = alpha as u32;
    let inv = 255 - a;
    Rgba::new(
        ((top.r() as u32 * a + bottom.r() as u32 * inv) / 255) as u8,
        ((top.g() as u32 * a + bottom.g() as u32 * inv) / 255) as u8,
        ((top.b() as u32 * a + bottom.b() as u32 * inv) / 255) as u8,
        255,
    )
}

/// Paints `tiles` (given in original `dim`-pixel coordinates) over
/// `thumb`, scaled to the thumbnail size: 40 % translucent fill plus a
/// 1-pixel solid border, both in `color`.
pub fn highlight_tiles(thumb: &mut Img2D<Rgba>, dim: usize, tiles: &[Tile], color: Rgba) {
    assert!(dim > 0, "original dimension must be positive");
    let sx = thumb.width() as f64 / dim as f64;
    let sy = thumb.height() as f64 / dim as f64;
    for t in tiles {
        let x0 = (t.x as f64 * sx).floor() as usize;
        let y0 = (t.y as f64 * sy).floor() as usize;
        let x1 = (((t.x + t.w) as f64 * sx).ceil() as usize).min(thumb.width());
        let y1 = (((t.y + t.h) as f64 * sy).ceil() as usize).min(thumb.height());
        if x0 >= x1 || y0 >= y1 {
            continue;
        }
        for y in y0..y1 {
            for x in x0..x1 {
                let border = x == x0 || x + 1 == x1 || y == y0 || y + 1 == y1;
                let alpha = if border { 255 } else { 102 };
                let p = thumb.get(x, y);
                thumb.set(x, y, blend(p, color, alpha));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;

    fn tile(x: usize, y: usize, w: usize, h: usize) -> Tile {
        Tile {
            x,
            y,
            w,
            h,
            tx: 0,
            ty: 0,
        }
    }

    #[test]
    fn blend_extremes() {
        assert_eq!(blend(Rgba::BLACK, Rgba::WHITE, 255), Rgba::WHITE);
        assert_eq!(blend(Rgba::new(1, 2, 3, 255), Rgba::WHITE, 0), Rgba::new(1, 2, 3, 255));
        let half = blend(Rgba::BLACK, Rgba::WHITE, 128);
        assert!(half.r() > 120 && half.r() < 135);
    }

    #[test]
    fn highlight_draws_border_and_fill() {
        let mut thumb: Img2D<Rgba> = Img2D::filled(16, 16, Rgba::BLACK);
        // thumbnail is 16, original 64: tile (16,16,16,16) -> (4,4)..(8,8)
        highlight_tiles(&mut thumb, 64, &[tile(16, 16, 16, 16)], Rgba::RED);
        assert_eq!(thumb.get(4, 4), Rgba::RED); // border solid
        assert_eq!(thumb.get(7, 7), Rgba::RED);
        let fill = thumb.get(5, 5); // interior translucent
        assert!(fill.r() > 0 && fill.r() < 255);
        assert_eq!(thumb.get(0, 0), Rgba::BLACK); // outside untouched
        assert_eq!(thumb.get(8, 8), Rgba::BLACK);
    }

    #[test]
    fn tiny_tiles_still_visible_on_small_thumbnails() {
        // a 8x8 tile of a 512 image on a 32-pixel thumbnail covers <1px;
        // ceil() guarantees at least one painted pixel
        let mut thumb: Img2D<Rgba> = Img2D::filled(32, 32, Rgba::BLACK);
        highlight_tiles(&mut thumb, 512, &[tile(256, 256, 8, 8)], Rgba::GREEN);
        let painted = thumb.as_slice().iter().filter(|&&p| p != Rgba::BLACK).count();
        assert!(painted >= 1);
    }

    #[test]
    fn full_grid_highlight_covers_everything() {
        let grid = TileGrid::square(64, 16).unwrap();
        let tiles: Vec<Tile> = grid.iter().collect();
        let mut thumb: Img2D<Rgba> = Img2D::filled(32, 32, Rgba::BLACK);
        highlight_tiles(&mut thumb, 64, &tiles, Rgba::BLUE);
        assert!(thumb.as_slice().iter().all(|&p| p != Rgba::BLACK));
    }

    #[test]
    fn clipping_at_thumbnail_edges() {
        let mut thumb: Img2D<Rgba> = Img2D::filled(10, 10, Rgba::BLACK);
        // tile extends beyond the original image edge mapping
        highlight_tiles(&mut thumb, 32, &[tile(24, 24, 16, 16)], Rgba::RED);
        // must not panic and must paint the bottom-right corner
        assert_ne!(thumb.get(9, 9), Rgba::BLACK);
    }
}
