//! True-color terminal rendering with half-block glyphs.
//!
//! Each character cell shows two vertically stacked pixels: the upper
//! one as the foreground color of `▀` (U+2580), the lower one as the
//! background. A 64×64 image therefore needs 64×32 cells — small
//! enough for a terminal, sharp enough to recognize the Mandelbrot set.

use ezp_core::{Img2D, Rgba};

/// The glyph whose foreground paints the upper pixel.
const UPPER_HALF: char = '\u{2580}';

/// Renders `img` as ANSI true-color text (rows of half-blocks, reset at
/// each line end). Odd heights get a black bottom pixel on the last row.
pub fn to_ansi(img: &Img2D<Rgba>) -> String {
    let w = img.width();
    let h = img.height();
    let mut out = String::with_capacity(w * h * 20);
    let mut y = 0;
    while y < h {
        for x in 0..w {
            let top = img.get(x, y);
            let bottom = if y + 1 < h { img.get(x, y + 1) } else { Rgba::BLACK };
            out.push_str(&format!(
                "\x1b[38;2;{};{};{}m\x1b[48;2;{};{};{}m{}",
                top.r(),
                top.g(),
                top.b(),
                bottom.r(),
                bottom.g(),
                bottom.b(),
                UPPER_HALF
            ));
        }
        out.push_str("\x1b[0m\n");
        y += 2;
    }
    out
}

/// Renders `img` as plain-ASCII luminance art (for logs and tests where
/// escape codes are unwelcome): 10-level ramp, one char per pixel.
pub fn to_ascii_luma(img: &Img2D<Rgba>) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((img.width() + 1) * img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let p = img.get(x, y);
            // integer Rec.601 luma
            let luma = (299 * p.r() as u32 + 587 * p.g() as u32 + 114 * p.b() as u32) / 1000;
            let idx = (luma as usize * (RAMP.len() - 1)) / 255;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ansi_has_one_row_per_two_pixel_rows() {
        let img: Img2D<Rgba> = Img2D::filled(4, 6, Rgba::RED);
        let s = to_ansi(&img);
        assert_eq!(s.lines().count(), 3);
        assert_eq!(s.matches(UPPER_HALF).count(), 12);
        assert!(s.contains("\x1b[38;2;255;0;0m"));
        assert!(s.ends_with("\x1b[0m\n"));
    }

    #[test]
    fn odd_height_padded_with_black() {
        let img: Img2D<Rgba> = Img2D::filled(2, 3, Rgba::WHITE);
        let s = to_ansi(&img);
        assert_eq!(s.lines().count(), 2);
        // last row's background is black padding
        assert!(s.contains("\x1b[48;2;0;0;0m"));
    }

    #[test]
    fn luma_ramp_extremes() {
        let mut img: Img2D<Rgba> = Img2D::filled(2, 1, Rgba::BLACK);
        img.set(1, 0, Rgba::WHITE);
        let s = to_ascii_luma(&img);
        assert_eq!(s, " @\n");
    }

    #[test]
    fn luma_is_monotonic_in_gray_level() {
        let grays: Vec<Rgba> = (0..=255u32)
            .step_by(17)
            .map(|v| Rgba::new(v as u8, v as u8, v as u8, 255))
            .collect();
        let mut img: Img2D<Rgba> = Img2D::new(grays.len(), 1);
        for (i, &g) in grays.iter().enumerate() {
            img.set(i, 0, g);
        }
        let s = to_ascii_luma(&img);
        const RAMP: &[u8] = b" .:-=+*#%@";
        let levels: Vec<usize> = s
            .trim_end()
            .bytes()
            .map(|b| RAMP.iter().position(|&r| r == b).unwrap())
            .collect();
        for w in levels.windows(2) {
            assert!(w[0] <= w[1], "luma ramp not monotone: {levels:?}");
        }
    }
}
