//! A dependency-free 24-bit BMP encoder.
//!
//! BMP (`BITMAPINFOHEADER`, bottom-up, BGR, rows padded to 4 bytes) is
//! the simplest format every image viewer opens, making it the default
//! export of the CLI alongside PPM.

use ezp_core::{Img2D, Rgba};

/// Encodes `img` as a BMP byte stream (alpha dropped).
pub fn to_bmp(img: &Img2D<Rgba>) -> Vec<u8> {
    let w = img.width();
    let h = img.height();
    let row_bytes = w * 3;
    let padding = (4 - row_bytes % 4) % 4;
    let pixel_bytes = (row_bytes + padding) * h;
    let file_size = 14 + 40 + pixel_bytes;

    let mut out = Vec::with_capacity(file_size);
    // BITMAPFILEHEADER
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(file_size as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&54u32.to_le_bytes()); // pixel data offset
    // BITMAPINFOHEADER
    out.extend_from_slice(&40u32.to_le_bytes());
    out.extend_from_slice(&(w as i32).to_le_bytes());
    out.extend_from_slice(&(h as i32).to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bpp
    out.extend_from_slice(&0u32.to_le_bytes()); // BI_RGB
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 dpi
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // palette
    out.extend_from_slice(&0u32.to_le_bytes());
    // pixel data, bottom-up, BGR
    for y in (0..h).rev() {
        for x in 0..w {
            let p = img.get(x, y);
            out.extend_from_slice(&[p.b(), p.g(), p.r()]);
        }
        out.extend(std::iter::repeat_n(0u8, padding));
    }
    debug_assert_eq!(out.len(), file_size);
    out
}

/// Writes `img` to `path` as BMP.
pub fn save_bmp(img: &Img2D<Rgba>, path: impl AsRef<std::path::Path>) -> ezp_core::Result<()> {
    std::fs::write(path, to_bmp(img))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u32_at(b: &[u8], i: usize) -> u32 {
        u32::from_le_bytes(b[i..i + 4].try_into().unwrap())
    }

    #[test]
    fn header_fields() {
        let img: Img2D<Rgba> = Img2D::filled(5, 3, Rgba::GREEN); // 5*3=15 bytes/row + 1 pad
        let bmp = to_bmp(&img);
        assert_eq!(&bmp[..2], b"BM");
        assert_eq!(u32_at(&bmp, 2) as usize, bmp.len());
        assert_eq!(u32_at(&bmp, 10), 54);
        assert_eq!(u32_at(&bmp, 14), 40);
        assert_eq!(u32_at(&bmp, 18), 5); // width
        assert_eq!(u32_at(&bmp, 22), 3); // height
        assert_eq!(bmp.len(), 54 + (15 + 1) * 3);
    }

    #[test]
    fn pixels_are_bottom_up_bgr() {
        let mut img: Img2D<Rgba> = Img2D::new(2, 2);
        img.set(0, 0, Rgba::RED); // top-left
        img.set(1, 1, Rgba::BLUE); // bottom-right
        let bmp = to_bmp(&img);
        let data = &bmp[54..];
        // first stored row = image bottom row: [black, blue]
        assert_eq!(&data[0..3], &[0, 0, 0]);
        assert_eq!(&data[3..6], &[255, 0, 0]); // blue in BGR
        // second stored row = image top row: [red, black]
        assert_eq!(&data[8..11], &[0, 0, 255]); // red in BGR
    }

    #[test]
    fn row_padding_multiple_of_four() {
        for w in 1..=8 {
            let img: Img2D<Rgba> = Img2D::filled(w, 2, Rgba::WHITE);
            let bmp = to_bmp(&img);
            let row = (w * 3).div_ceil(4) * 4;
            assert_eq!(bmp.len(), 54 + row * 2, "width {w}");
        }
    }

    #[test]
    fn save_writes_file() {
        let img: Img2D<Rgba> = Img2D::filled(4, 4, Rgba::YELLOW);
        let path = std::env::temp_dir().join(format!("ezp_bmp_{}.bmp", std::process::id()));
        save_bmp(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..2], b"BM");
        std::fs::remove_file(path).unwrap();
    }
}
