//! The animation sink: numbered frames in a directory.
//!
//! The EASYPAP window "displays an animation consisting of the series
//! of images computed at each iteration. The animation can be paused,
//! or can be slightly accelerated by skipping frames." Off-screen, the
//! same contract becomes a [`FrameSink`]: hand it the current image
//! after each iteration and it writes `frame-0001.ppm`,
//! `frame-0002.ppm`, ... with an optional frame-skip stride.

use ezp_core::{Img2D, Result, Rgba};
use std::path::{Path, PathBuf};

/// The on-disk format of dumped frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFormat {
    /// Binary PPM (P6).
    Ppm,
    /// 24-bit BMP.
    Bmp,
}

/// Writes numbered frames into a directory.
pub struct FrameSink {
    dir: PathBuf,
    format: FrameFormat,
    /// Keep one frame out of `stride` (1 = every frame) — the
    /// "accelerated by skipping frames" control.
    stride: usize,
    presented: usize,
    written: Vec<PathBuf>,
}

impl FrameSink {
    /// Creates the sink, creating `dir` if needed.
    pub fn new(dir: impl AsRef<Path>, format: FrameFormat, stride: usize) -> Result<Self> {
        assert!(stride > 0, "stride must be at least 1");
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(FrameSink {
            dir: dir.as_ref().to_path_buf(),
            format,
            stride,
            presented: 0,
            written: Vec::new(),
        })
    }

    /// Presents one frame; writes it when the stride says so. Returns
    /// the path when the frame was written.
    pub fn present(&mut self, img: &Img2D<Rgba>) -> Result<Option<PathBuf>> {
        let keep = self.presented.is_multiple_of(self.stride);
        self.presented += 1;
        if !keep {
            return Ok(None);
        }
        let (ext, bytes) = match self.format {
            FrameFormat::Ppm => ("ppm", img.to_ppm()),
            FrameFormat::Bmp => ("bmp", crate::bmp::to_bmp(img)),
        };
        let path = self.dir.join(format!("frame-{:04}.{ext}", self.written.len() + 1));
        std::fs::write(&path, bytes)?;
        self.written.push(path.clone());
        Ok(Some(path))
    }

    /// Paths of every written frame, in order.
    pub fn frames(&self) -> &[PathBuf] {
        &self.written
    }

    /// Number of frames presented (written or skipped).
    pub fn presented(&self) -> usize {
        self.presented
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ezp_anim_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_numbered_frames() {
        let dir = tmp_dir("frames");
        let mut sink = FrameSink::new(&dir, FrameFormat::Ppm, 1).unwrap();
        let img: Img2D<Rgba> = Img2D::filled(4, 4, Rgba::RED);
        for _ in 0..3 {
            sink.present(&img).unwrap();
        }
        assert_eq!(sink.frames().len(), 3);
        assert!(sink.frames()[0].ends_with("frame-0001.ppm"));
        assert!(sink.frames()[2].ends_with("frame-0003.ppm"));
        for f in sink.frames() {
            assert!(std::fs::read(f).unwrap().starts_with(b"P6"));
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn stride_skips_frames() {
        let dir = tmp_dir("stride");
        let mut sink = FrameSink::new(&dir, FrameFormat::Bmp, 3).unwrap();
        let img: Img2D<Rgba> = Img2D::filled(2, 2, Rgba::BLUE);
        let mut written = 0;
        for _ in 0..7 {
            if sink.present(&img).unwrap().is_some() {
                written += 1;
            }
        }
        assert_eq!(written, 3); // frames 0, 3, 6
        assert_eq!(sink.presented(), 7);
        assert_eq!(sink.frames().len(), 3);
        assert!(std::fs::read(&sink.frames()[0]).unwrap().starts_with(b"BM"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = FrameSink::new(std::env::temp_dir(), FrameFormat::Ppm, 0);
    }
}
