//! Image scaling: box-filter thumbnails and nearest-neighbour zoom.

use ezp_core::{Img2D, Rgba};

/// Downscales `img` to `out_w`×`out_h` with an area-weighted box filter
/// — EASYVIEW's "reduced view of the surface computed" thumbnail.
pub fn downscale(img: &Img2D<Rgba>, out_w: usize, out_h: usize) -> Img2D<Rgba> {
    assert!(out_w > 0 && out_h > 0, "empty output size");
    assert!(
        out_w <= img.width() && out_h <= img.height(),
        "downscale cannot enlarge"
    );
    let mut out = Img2D::new(out_w, out_h);
    let sx = img.width() as f64 / out_w as f64;
    let sy = img.height() as f64 / out_h as f64;
    for oy in 0..out_h {
        let y0 = (oy as f64 * sy) as usize;
        let y1 = (((oy + 1) as f64 * sy).ceil() as usize).min(img.height()).max(y0 + 1);
        for ox in 0..out_w {
            let x0 = (ox as f64 * sx) as usize;
            let x1 = (((ox + 1) as f64 * sx).ceil() as usize).min(img.width()).max(x0 + 1);
            let (mut r, mut g, mut b, mut a) = (0u64, 0u64, 0u64, 0u64);
            for y in y0..y1 {
                for x in x0..x1 {
                    let p = img.get(x, y);
                    r += p.r() as u64;
                    g += p.g() as u64;
                    b += p.b() as u64;
                    a += p.a() as u64;
                }
            }
            let n = ((x1 - x0) * (y1 - y0)) as u64;
            out.set(
                ox,
                oy,
                Rgba::new((r / n) as u8, (g / n) as u8, (b / n) as u8, (a / n) as u8),
            );
        }
    }
    out
}

/// Upscales `img` by an integer `factor` with nearest-neighbour
/// sampling — used to blow tiny tiling maps up to viewable sizes.
pub fn upscale_nearest(img: &Img2D<Rgba>, factor: usize) -> Img2D<Rgba> {
    assert!(factor > 0, "zero scale factor");
    let mut out = Img2D::new(img.width() * factor, img.height() * factor);
    for y in 0..out.height() {
        for x in 0..out.width() {
            out.set(x, y, img.get(x / factor, y / factor));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::any_u64;

    #[test]
    fn downscale_uniform_image_is_uniform() {
        let img: Img2D<Rgba> = Img2D::filled(16, 16, Rgba::new(10, 20, 30, 255));
        let thumb = downscale(&img, 4, 4);
        assert_eq!(thumb.width(), 4);
        assert!(thumb.as_slice().iter().all(|&p| p == Rgba::new(10, 20, 30, 255)));
    }

    #[test]
    fn downscale_averages_blocks() {
        // 2x2 -> 1x1: checkerboard of black and white averages to gray
        let mut img: Img2D<Rgba> = Img2D::new(2, 2);
        img.set(0, 0, Rgba::WHITE);
        img.set(1, 1, Rgba::WHITE);
        img.set(1, 0, Rgba::new(0, 0, 0, 255));
        img.set(0, 1, Rgba::new(0, 0, 0, 255));
        let t = downscale(&img, 1, 1);
        let p = t.get(0, 0);
        assert_eq!(p.r(), 127);
        assert_eq!(p.a(), 255);
    }

    #[test]
    fn downscale_non_divisible_sizes() {
        let img: Img2D<Rgba> = Img2D::filled(10, 7, Rgba::RED);
        let t = downscale(&img, 3, 2);
        assert_eq!((t.width(), t.height()), (3, 2));
        assert!(t.as_slice().iter().all(|&p| p == Rgba::RED));
    }

    #[test]
    fn upscale_replicates_pixels() {
        let mut img: Img2D<Rgba> = Img2D::new(2, 1);
        img.set(0, 0, Rgba::RED);
        img.set(1, 0, Rgba::BLUE);
        let big = upscale_nearest(&img, 3);
        assert_eq!((big.width(), big.height()), (6, 3));
        assert_eq!(big.get(0, 0), Rgba::RED);
        assert_eq!(big.get(2, 2), Rgba::RED);
        assert_eq!(big.get(3, 0), Rgba::BLUE);
        assert_eq!(big.get(5, 2), Rgba::BLUE);
    }

    #[test]
    #[should_panic(expected = "cannot enlarge")]
    fn downscale_rejects_enlarging() {
        let img: Img2D<Rgba> = Img2D::filled(4, 4, Rgba::RED);
        let _ = downscale(&img, 8, 2);
    }

    ezp_proptest! {
        #![cases(24)]

        fn prop_downscale_preserves_mean_within_rounding(
            w in 2usize..32,
            h in 2usize..32,
            ow in 1usize..8,
            oh in 1usize..8,
            seed in any_u64(),
        ) {
            let ow = ow.min(w);
            let oh = oh.min(h);
            let mut state = seed;
            let mut img: Img2D<Rgba> = Img2D::new(w, h);
            img.for_each_mut(|_, _, p| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *p = Rgba::new((state >> 33) as u8, (state >> 41) as u8, (state >> 49) as u8, 255);
            });
            let t = downscale(&img, ow, oh);
            let mean = |i: &Img2D<Rgba>| {
                i.as_slice().iter().map(|p| p.r() as f64).sum::<f64>() / (i.width() * i.height()) as f64
            };
            // box filtering keeps the global mean within rounding error +
            // a small imbalance term from non-uniform block sizes
            assert!((mean(&img) - mean(&t)).abs() < 24.0);
        }
    }
}
