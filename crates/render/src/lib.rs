//! # ezp-render — off-screen rendering (the SDL substitution)
//!
//! EASYPAP "relies on the SDL library to interactively render the
//! results of 2D computations" (§II). This environment has no display,
//! so the window is replaced by file and terminal sinks that preserve
//! every *pedagogical* capability of the original UI (DESIGN.md,
//! substitution table):
//!
//! * [`ansi`] — true-color terminal preview using half-block glyphs
//!   (two pixels per character cell), so `--monitoring` sessions show
//!   the actual image in the terminal;
//! * [`bmp`] — dependency-free 24-bit BMP encoder (every image viewer
//!   opens it), complementing the PPM writer in `ezp-core`;
//! * [`scale`] — box-filter downscaling for EASYVIEW's "reduced view of
//!   the surface computed" thumbnails, plus nearest-neighbour upscaling
//!   for tiny tiling maps;
//! * [`overlay`] — tile highlighting over a thumbnail, the Fig. 7
//!   interaction where "the corresponding tiles are highlighted over
//!   this reduced image";
//! * [`anim`] — numbered frame sink: the "animation consisting of the
//!   series of images computed at each iteration" becomes a directory
//!   of frames.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod anim;
pub mod ansi;
pub mod bmp;
pub mod overlay;
pub mod scale;

pub use anim::FrameSink;
pub use ansi::to_ansi;
pub use bmp::to_bmp;
pub use overlay::highlight_tiles;
pub use scale::{downscale, upscale_nearest};
