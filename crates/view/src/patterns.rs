//! Tiling-pattern analyzers for the Fig. 8 observations.
//!
//! With `dynamic` scheduling of small tiles on the Mandelbrot kernel,
//! the paper spots two patterns in the Tiling window:
//!
//! * **Pattern 1 — stripes**: "horizontal stripes of the same color
//!   together with a few stripes featuring an alternation of two
//!   colors" where tiles are cheap (one or two threads race through
//!   whole rows while the others are stuck in the expensive area);
//! * **Pattern 2 — cyclic**: "a quasi-perfect cyclic distribution of
//!   colors" where all tiles cost the same (dynamic degenerates into
//!   round-robin).
//!
//! These functions turn those visual observations into numbers, so the
//! Fig. 8 reproduction can *assert* them.

use ezp_core::WorkerId;
use ezp_monitor::TilingSnapshot;

/// Run-length encodes the owner sequence (linear `collapse(2)` order):
/// `(worker, run length)` for every maximal run of computed tiles.
pub fn run_lengths(owners: &[Option<WorkerId>]) -> Vec<(WorkerId, usize)> {
    let mut out: Vec<(WorkerId, usize)> = Vec::new();
    let mut run_open = false;
    for o in owners {
        match o {
            Some(w) => {
                match out.last_mut() {
                    Some((lw, len)) if run_open && lw == w => *len += 1,
                    _ => out.push((*w, 1)),
                }
                run_open = true;
            }
            None => run_open = false, // a hole breaks the current run
        }
    }
    out
}

/// Longest same-worker run.
pub fn max_run_length(owners: &[Option<WorkerId>]) -> usize {
    run_lengths(owners).iter().map(|&(_, l)| l).max().unwrap_or(0)
}

/// Mean same-worker run length.
pub fn mean_run_length(owners: &[Option<WorkerId>]) -> f64 {
    let runs = run_lengths(owners);
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(|&(_, l)| l).sum::<usize>() as f64 / runs.len() as f64
}

/// Fraction of positions `i` with `owners[i + period] == owners[i]`
/// (both computed). 1.0 = perfectly cyclic with that period — the
/// Pattern 2 signature when `period == nb_threads`.
pub fn cyclic_score(owners: &[Option<WorkerId>], period: usize) -> f64 {
    assert!(period > 0, "period must be positive");
    if owners.len() <= period {
        return 0.0;
    }
    let mut matches = 0usize;
    let mut total = 0usize;
    for i in 0..owners.len() - period {
        if let (Some(a), Some(b)) = (owners[i], owners[i + period]) {
            total += 1;
            if a == b {
                matches += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        matches as f64 / total as f64
    }
}

/// Number of grid rows whose computed tiles involve at most
/// `max_workers` distinct workers — the "stripes" count of Pattern 1
/// (`max_workers = 2` matches the paper's "one or two threads").
pub fn striped_rows(snapshot: &TilingSnapshot, max_workers: usize) -> usize {
    let grid = snapshot.grid();
    (0..grid.tiles_y())
        .filter(|&ty| {
            let mut workers: Vec<WorkerId> = (0..grid.tiles_x())
                .filter_map(|tx| snapshot.owner(tx, ty))
                .collect();
            workers.sort_unstable();
            workers.dedup();
            !workers.is_empty() && workers.len() <= max_workers
        })
        .count()
}

/// Number of distinct workers appearing in the snapshot.
pub fn distinct_workers(snapshot: &TilingSnapshot) -> usize {
    let mut workers: Vec<WorkerId> = snapshot.owners().iter().flatten().copied().collect();
    workers.sort_unstable();
    workers.dedup();
    workers.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;
    use ezp_monitor::TileRecord;

    fn snapshot_from_owners(grid: &TileGrid, owners: &[Option<WorkerId>]) -> TilingSnapshot {
        let records: Vec<TileRecord> = owners
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                let t = grid.tile_at(i);
                o.map(|w| TileRecord {
                    iteration: 1,
                    x: t.x,
                    y: t.y,
                    w: t.w,
                    h: t.h,
                    start_ns: i as u64,
                    end_ns: i as u64 + 1,
                    worker: w,
                })
            })
            .collect();
        TilingSnapshot::from_records(grid, records.iter())
    }

    #[test]
    fn run_length_encoding() {
        let owners = [Some(0), Some(0), Some(1), None, Some(1), Some(2)];
        assert_eq!(run_lengths(&owners), vec![(0, 2), (1, 1), (1, 1), (2, 1)]);
        assert_eq!(max_run_length(&owners), 2);
        assert!((mean_run_length(&owners) - 1.25).abs() < 1e-9);
    }

    #[test]
    fn empty_and_hole_only_sequences() {
        assert!(run_lengths(&[]).is_empty());
        assert_eq!(max_run_length(&[None, None]), 0);
        assert_eq!(mean_run_length(&[]), 0.0);
    }

    #[test]
    fn perfect_cycle_scores_one() {
        // 0,1,2,0,1,2,... period 3
        let owners: Vec<Option<WorkerId>> = (0..30).map(|i| Some(i % 3)).collect();
        assert!((cyclic_score(&owners, 3) - 1.0).abs() < 1e-9);
        assert!(cyclic_score(&owners, 2) < 0.5);
    }

    #[test]
    fn stripe_sequence_scores_low_cyclic() {
        // long runs: 0 x10, 1 x10, 2 x10
        let owners: Vec<Option<WorkerId>> = (0..30).map(|i| Some(i / 10)).collect();
        assert_eq!(max_run_length(&owners), 10);
        assert!(cyclic_score(&owners, 3) > 0.5); // within runs, shifts match
        // but the run-length signature separates the two patterns
        let cyclic: Vec<Option<WorkerId>> = (0..30).map(|i| Some(i % 3)).collect();
        assert_eq!(max_run_length(&cyclic), 1);
    }

    #[test]
    fn cyclic_score_degenerate_inputs() {
        let owners = [Some(0usize), Some(1)];
        assert_eq!(cyclic_score(&owners, 5), 0.0);
        assert_eq!(cyclic_score(&[None, None, None], 1), 0.0);
    }

    #[test]
    fn striped_rows_detects_pattern1() {
        let grid = TileGrid::square(40, 10).unwrap(); // 4x4 tiles
        // rows 0-1: single worker each (stripes); rows 2-3: all four
        let owners: Vec<Option<WorkerId>> = vec![
            Some(0), Some(0), Some(0), Some(0), // row 0: stripe
            Some(1), Some(2), Some(1), Some(2), // row 1: two-color stripe
            Some(0), Some(1), Some(2), Some(3), // row 2: mixed
            Some(3), Some(2), Some(1), Some(0), // row 3: mixed
        ];
        let snap = snapshot_from_owners(&grid, &owners);
        assert_eq!(striped_rows(&snap, 1), 1);
        assert_eq!(striped_rows(&snap, 2), 2);
        assert_eq!(distinct_workers(&snap), 4);
    }

    #[test]
    fn striped_rows_ignores_empty_rows() {
        let grid = TileGrid::square(20, 10).unwrap(); // 2x2
        let owners = vec![None, None, Some(1), Some(1)];
        let snap = snapshot_from_owners(&grid, &owners);
        assert_eq!(striped_rows(&snap, 2), 1); // only the computed row counts
    }
}
