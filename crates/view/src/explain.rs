//! `easyview explain`: causal profiling over a recorded trace.
//!
//! Where the Gantt view shows *what happened*, `explain` answers *why
//! the run took as long as it did*: it computes the work/span bound
//! (T₁, T∞) over the recorded dependency DAG, extracts the critical
//! path and per-task slack, breaks recorded idle time down by cause,
//! replays the DAG across virtual worker counts with `ezp-simsched`,
//! and turns all of it into ranked, rule-based recommendations.

use ezp_core::error::Result;
use ezp_core::{Schedule, TileGrid};
use ezp_simsched::{simulate_taskgraph, speedup_curve, CostMap};
use ezp_trace::Trace;
use std::fmt::Write as _;

/// Thread counts the virtual replay sweeps.
const REPLAY_THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The idle-cause labels, in `ezp_core::kernel::IdleCause` order.
const CAUSE_LABELS: [&str; 5] = ["dep_stall", "steal", "barrier", "pool_park", "backpressure"];

/// How many bottleneck tasks the report keeps.
const BOTTLENECK_LIMIT: usize = 5;

/// One task on the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CriticalStep {
    /// Linear tile index in the grid.
    pub tile_index: usize,
    /// Tile origin x (pixels).
    pub x: usize,
    /// Tile origin y (pixels).
    pub y: usize,
    /// Task duration (ns).
    pub duration_ns: u64,
}

/// A ranked bottleneck: a task whose duration bounds the makespan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bottleneck {
    /// Linear tile index in the grid.
    pub tile_index: usize,
    /// Tile origin x (pixels).
    pub x: usize,
    /// Tile origin y (pixels).
    pub y: usize,
    /// Task duration (ns).
    pub duration_ns: u64,
    /// Slack: how much this task could grow without lengthening the
    /// iteration span. Zero = on the critical path.
    pub slack_ns: u64,
}

/// Recorded idle time split by cause.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdleBreakdown {
    /// Total `idle_ns` over all causes and workers.
    pub total_ns: u64,
    /// Per-cause totals, in [`CAUSE_LABELS`] order.
    pub by_cause: [u64; 5],
}

impl IdleBreakdown {
    /// The dominant `(label, ns)` cause, when any idle time exists.
    pub fn dominant(&self) -> Option<(&'static str, u64)> {
        let (i, &ns) = self
            .by_cause
            .iter()
            .enumerate()
            .max_by_key(|&(_, &ns)| ns)?;
        if ns == 0 {
            return None;
        }
        Some((CAUSE_LABELS[i], ns))
    }
}

/// Task-duration percentiles (exact, nearest-rank over all tasks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of tasks.
    pub count: usize,
    /// Median duration (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Longest task (ns).
    pub max_ns: u64,
}

/// One point of the virtual-scaling sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Virtual worker count.
    pub threads: usize,
    /// Virtual makespan at that count (ns).
    pub makespan_ns: u64,
    /// Speedup against the 1-worker replay.
    pub speedup: f64,
}

/// One advisor recommendation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Advice {
    /// Short rule identifier (stable, greppable).
    pub rule: &'static str,
    /// Human-readable recommendation.
    pub text: String,
}

/// The full causal-profiling report.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// Run label from the trace metadata.
    pub label: String,
    /// Recorded worker count.
    pub threads: usize,
    /// Number of recorded iterations.
    pub iterations: usize,
    /// Wall-clock span of the recording (ns).
    pub wall_ns: u64,
    /// Total work T₁: the sum of all task durations (ns).
    pub work_ns: u64,
    /// Span T∞: the sum over iterations of the longest cost-weighted
    /// dependency chain (ns). Without edges an iteration's span is its
    /// longest single task.
    pub span_ns: u64,
    /// Achieved speedup: T₁ / wall.
    pub achieved_speedup: f64,
    /// Average parallelism T₁ / T∞ — the most workers the DAG can use.
    pub avg_parallelism: f64,
    /// Iteration holding the longest critical path.
    pub critical_iteration: u32,
    /// The critical path of that iteration, in execution order.
    pub critical_path: Vec<CriticalStep>,
    /// Lowest-slack, longest tasks of the critical iteration.
    pub bottlenecks: Vec<Bottleneck>,
    /// Idle-cause breakdown (when the trace embeds counters).
    pub idle: Option<IdleBreakdown>,
    /// Task-duration percentiles.
    pub percentiles: Percentiles,
    /// Virtual replay at [`REPLAY_THREADS`] worker counts.
    pub scaling: Vec<ScalingPoint>,
    /// Advisor output, most important first. Never empty.
    pub advice: Vec<Advice>,
}

/// Per-iteration DAG data: node durations and the critical-path DP.
struct IterDag {
    /// Duration per tile node (0 = not executed this iteration).
    dur: Vec<u64>,
    /// Longest path *ending at* each node, including the node itself.
    head: Vec<u64>,
    /// Longest path *starting at* each node, including the node itself.
    tail: Vec<u64>,
    /// The iteration's span: `max(head)` (= `max(tail)`).
    span: u64,
}

impl IterDag {
    /// Slack of node `i`: span minus the longest chain through it.
    fn slack(&self, i: usize) -> u64 {
        // head + tail both include dur(i), so subtract one copy
        let through = self.head[i] + self.tail[i] - self.dur[i];
        self.span.saturating_sub(through)
    }
}

/// Builds the longest-path DP for one iteration. `preds`/`succs` carry
/// the edge lists in topological-friendly adjacency form; tile ids are
/// assumed acyclic (validated by construction in the executors; a cycle
/// would only inflate spans, never panic, because the relaxation runs
/// over a fixed id order twice).
fn iter_dag(n: usize, dur: Vec<u64>, preds: &[Vec<usize>], succs: &[Vec<usize>]) -> IterDag {
    // Kahn-style order over the DAG so each relaxation sees final
    // predecessor values; edges always point to distinct tiles
    let order = topo_order(n, preds, succs);
    let mut head = dur.clone();
    for &i in &order {
        let best = preds[i].iter().map(|&p| head[p]).max().unwrap_or(0);
        head[i] = dur[i] + best;
    }
    let mut tail = dur.clone();
    for &i in order.iter().rev() {
        let best = succs[i].iter().map(|&s| tail[s]).max().unwrap_or(0);
        tail[i] = dur[i] + best;
    }
    let span = head.iter().copied().max().unwrap_or(0);
    IterDag {
        dur,
        head,
        tail,
        span,
    }
}

/// Topological order via Kahn's algorithm; falls back to id order for
/// nodes stuck in a cycle (defensive — recorded graphs are acyclic).
fn topo_order(n: usize, preds: &[Vec<usize>], succs: &[Vec<usize>]) -> Vec<usize> {
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    while let Some(i) = queue.pop_front() {
        seen[i] = true;
        order.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    order.extend((0..n).filter(|&i| !seen[i]));
    order
}

/// Kahn's algorithm as a cycle check: true iff every node drains.
fn is_acyclic(n: usize, preds: &[Vec<usize>], succs: &[Vec<usize>]) -> bool {
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut drained = 0;
    while let Some(i) = queue.pop_front() {
        drained += 1;
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    drained == n
}

/// Analyses `trace` into a full causal-profiling report.
pub fn explain(trace: &Trace) -> Result<ExplainReport> {
    let grid = trace.meta.grid()?;
    let n = grid.len();

    // adjacency over grid tile ids (edges out of range are dropped —
    // they cannot correspond to a tile of this run's geometry)
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &trace.edges {
        if e.from < n && e.to < n && e.from != e.to {
            succs[e.from].push(e.to);
            preds[e.to].push(e.from);
        }
    }
    // A cyclic edge set cannot be one execution DAG. It is legitimate
    // data: a kernel that runs several graphs per iteration (e.g. a
    // down-right and an up-left wavefront) unions both graphs'
    // structural edges in the monitor, and opposite wavefronts close
    // cycles. No single-DAG span/slack/replay is meaningful over the
    // union, so fall back to the edgeless analysis instead of
    // reporting a bogus critical path or deadlocking the replay.
    if !is_acyclic(n, &preds, &succs) {
        preds.iter_mut().for_each(Vec::clear);
        succs.iter_mut().for_each(Vec::clear);
    }
    let has_dag = succs.iter().any(|v| !v.is_empty());

    let work_ns: u64 = trace.tasks.iter().map(|t| t.duration_ns()).sum();
    let wall_ns = trace.time_bounds().map(|(a, b)| b - a).unwrap_or(0);

    // per-iteration spans; remember the iteration with the longest one
    let mut span_ns = 0u64;
    let mut best: Option<(u32, IterDag)> = None;
    for s in &trace.iterations {
        let mut dur = vec![0u64; n];
        for t in trace.tasks_of_iteration(s.iteration) {
            let idx = grid.linear_index(t.x / grid.tile_w().max(1), t.y / grid.tile_h().max(1));
            dur[idx] += t.duration_ns();
        }
        let dag = iter_dag(n, dur, &preds, &succs);
        span_ns += dag.span;
        if best.as_ref().is_none_or(|(_, b)| dag.span > b.span) {
            best = Some((s.iteration, dag));
        }
    }

    let (critical_iteration, critical_path, bottlenecks) = match &best {
        None => (0, Vec::new(), Vec::new()),
        Some((it, dag)) => {
            // walk the path backwards from the node with the longest head
            let mut path = Vec::new();
            let mut cur = (0..n).max_by_key(|&i| dag.head[i]).unwrap_or(0);
            if dag.head[cur] > 0 {
                loop {
                    path.push(cur);
                    let Some(&p) = preds[cur]
                        .iter()
                        .filter(|&&p| dag.head[p] + dag.dur[cur] == dag.head[cur])
                        .max_by_key(|&&p| dag.head[p])
                    else {
                        break;
                    };
                    cur = p;
                }
            }
            path.reverse();
            let steps = path
                .iter()
                .map(|&i| {
                    let tile = grid.tile_at(i);
                    CriticalStep {
                        tile_index: i,
                        x: tile.x,
                        y: tile.y,
                        duration_ns: dag.dur[i],
                    }
                })
                .collect();
            let mut ranked: Vec<Bottleneck> = (0..n)
                .filter(|&i| dag.dur[i] > 0)
                .map(|i| {
                    let tile = grid.tile_at(i);
                    Bottleneck {
                        tile_index: i,
                        x: tile.x,
                        y: tile.y,
                        duration_ns: dag.dur[i],
                        slack_ns: dag.slack(i),
                    }
                })
                .collect();
            ranked.sort_by_key(|b| (b.slack_ns, std::cmp::Reverse(b.duration_ns)));
            ranked.truncate(BOTTLENECK_LIMIT);
            (*it, steps, ranked)
        }
    };

    let idle = trace.counters.as_ref().map(|c| {
        let mut by_cause = [0u64; 5];
        for (i, label) in CAUSE_LABELS.iter().enumerate() {
            by_cause[i] = c.total(&format!("idle_ns{{cause=\"{label}\"}}"));
        }
        IdleBreakdown {
            total_ns: c.total("idle_ns"),
            by_cause,
        }
    });

    let percentiles = task_percentiles(trace);
    let scaling = virtual_scaling(trace, &grid, &preds, &succs);

    let achieved_speedup = if wall_ns == 0 {
        1.0
    } else {
        work_ns as f64 / wall_ns as f64
    };
    let avg_parallelism = if span_ns == 0 {
        1.0
    } else {
        work_ns as f64 / span_ns as f64
    };

    let mut report = ExplainReport {
        label: trace.meta.label.clone(),
        threads: trace.meta.threads,
        iterations: trace.iteration_count(),
        wall_ns,
        work_ns,
        span_ns,
        achieved_speedup,
        avg_parallelism,
        critical_iteration,
        critical_path,
        bottlenecks,
        idle,
        percentiles,
        scaling,
        advice: Vec::new(),
    };
    report.advice = advise(&report, has_dag);
    Ok(report)
}

/// Exact nearest-rank percentiles over all task durations.
fn task_percentiles(trace: &Trace) -> Percentiles {
    let mut durs: Vec<u64> = trace.tasks.iter().map(|t| t.duration_ns()).collect();
    if durs.is_empty() {
        return Percentiles::default();
    }
    durs.sort_unstable();
    let n = durs.len();
    let at = |q: f64| {
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        durs[rank - 1]
    };
    Percentiles {
        count: n,
        p50_ns: at(0.50),
        p95_ns: at(0.95),
        p99_ns: at(0.99),
        max_ns: durs[n - 1],
    }
}

/// Replays the recorded costs across virtual worker counts. With edges
/// the replay honours the DAG (list scheduling); without, it re-runs
/// the recorded loop schedule through the discrete-event simulator.
fn virtual_scaling(
    trace: &Trace,
    grid: &TileGrid,
    preds: &[Vec<usize>],
    succs: &[Vec<usize>],
) -> Vec<ScalingPoint> {
    if trace.tasks.is_empty() {
        return Vec::new();
    }
    let Ok(cost_map) = CostMap::from_trace(trace, trace.iterations.first().map_or(1, |s| s.iteration))
    else {
        return Vec::new();
    };
    if succs.iter().all(Vec::is_empty) {
        // loop-scheduled run (or a cyclic edge union dropped above):
        // replay with the recorded policy
        let schedule = Schedule::parse(&trace.meta.schedule).unwrap_or(Schedule::Dynamic(1));
        return speedup_curve(&cost_map, schedule, &REPLAY_THREADS, 1, 0)
            .into_iter()
            .map(|p| ScalingPoint {
                threads: p.threads,
                makespan_ns: p.makespan_ns,
                speedup: p.speedup,
            })
            .collect();
    }
    // DAG run: rebuild the task graph and list-schedule it
    let mut graph = ezp_sched::TaskGraph::new(grid.len());
    for (from, outs) in succs.iter().enumerate() {
        for &to in outs {
            graph.add_dep(from, to);
        }
    }
    let _ = preds; // adjacency already folded into the graph
    let costs: Vec<u64> = (0..grid.len()).map(|i| cost_map.cost(i)).collect();
    let mut points = Vec::with_capacity(REPLAY_THREADS.len());
    let mut base = None;
    for &threads in &REPLAY_THREADS {
        let sim = simulate_taskgraph(&graph, &costs, threads);
        let base = *base.get_or_insert(sim.makespan_ns.max(1));
        points.push(ScalingPoint {
            threads,
            makespan_ns: sim.makespan_ns,
            speedup: base as f64 / sim.makespan_ns.max(1) as f64,
        });
    }
    points
}

/// The rule-based advisor. Always returns at least one recommendation.
fn advise(r: &ExplainReport, has_edges: bool) -> Vec<Advice> {
    let mut out = Vec::new();

    if has_edges && r.avg_parallelism < r.threads as f64 * 0.8 {
        out.push(Advice {
            rule: "dependency-limited",
            text: format!(
                "average parallelism T1/Tinf = {:.1} is below the {} recorded workers: \
                 the dependency structure, not core count, bounds this run. Restructure \
                 the graph (smaller tiles widen the wavefront) before adding threads.",
                r.avg_parallelism, r.threads
            ),
        });
    }

    if let Some(idle) = &r.idle {
        if let Some((label, ns)) = idle.dominant() {
            if idle.total_ns > 0 && ns * 100 >= idle.total_ns * 40 {
                let pct = ns * 100 / idle.total_ns;
                let hint = match label {
                    "dep_stall" => {
                        "workers block on unfinished predecessors; break large tiles up \
                         or reorder submission so the graph stays wide"
                    }
                    "steal" => {
                        "workers spend their idle time hunting other queues; work is \
                         unevenly sized — try guided or a larger chunk so queues drain evenly"
                    }
                    "barrier" => {
                        "time is lost at end-of-loop barriers; the last chunks straggle — \
                         try dynamic scheduling or smaller tiles to even the finish line"
                    }
                    "pool_park" => {
                        "workers sleep because too little work is released at once; fuse \
                         iterations or enlarge the parallel region"
                    }
                    _ => {
                        "the stream back-pressures on a full capacity edge; raise the \
                         in-flight window or speed up the slowest stage"
                    }
                };
                out.push(Advice {
                    rule: "idle-dominant-cause",
                    text: format!("{pct}% of idle time is `{label}`: {hint}."),
                });
            }
        }
    }

    if r.percentiles.count > 0 && r.percentiles.p50_ns > 0 {
        let ratio = r.percentiles.p99_ns as f64 / r.percentiles.p50_ns as f64;
        if ratio >= 8.0 {
            out.push(Advice {
                rule: "heterogeneous-tasks",
                text: format!(
                    "task durations are heavy-tailed (p99/p50 = {ratio:.0}x): static \
                     partitioning will straggle — prefer dynamic or nonmonotonic:dynamic \
                     with a small chunk."
                ),
            });
        }
    }

    // saturation knee in the virtual sweep: the first count where
    // doubling workers gains less than 20%
    if let Some(w) = r.scaling.windows(2).find(|w| w[1].speedup < w[0].speedup * 1.2) {
        let knee = w[0].threads;
        if knee <= r.threads {
            out.push(Advice {
                rule: "scaling-saturates",
                text: format!(
                    "virtual replay saturates at ~{knee} workers (doubling past that \
                     gains under 20%); the recorded run used {} — reduce per-chunk \
                     overhead or expose more parallelism before scaling further.",
                    r.threads
                ),
            });
        }
    }

    if out.is_empty() {
        out.push(Advice {
            rule: "healthy",
            text: format!(
                "no dominant bottleneck: achieved speedup {:.1}x on {} workers with \
                 average parallelism {:.1}. Headroom, if any, is in per-task cost, \
                 not scheduling.",
                r.achieved_speedup, r.threads, r.avg_parallelism
            ),
        });
    }
    out
}

impl ExplainReport {
    /// Renders the report as the `easyview explain` text output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# explain: {} ({} workers, {} iterations)",
            self.label, self.threads, self.iterations
        );
        let _ = writeln!(
            out,
            "# wall {} | work T1 {} | span Tinf {}",
            fmt_ns(self.wall_ns),
            fmt_ns(self.work_ns),
            fmt_ns(self.span_ns)
        );
        let _ = writeln!(
            out,
            "# achieved speedup {:.2}x | average parallelism {:.1}",
            self.achieved_speedup, self.avg_parallelism
        );
        let p = &self.percentiles;
        let _ = writeln!(
            out,
            "# task latency: n={} p50={} p95={} p99={} max={}",
            p.count,
            fmt_ns(p.p50_ns),
            fmt_ns(p.p95_ns),
            fmt_ns(p.p99_ns),
            fmt_ns(p.max_ns)
        );
        if let Some(idle) = &self.idle {
            let _ = writeln!(out, "# idle breakdown: total {}", fmt_ns(idle.total_ns));
            for (i, label) in CAUSE_LABELS.iter().enumerate() {
                let ns = idle.by_cause[i];
                if ns == 0 {
                    continue;
                }
                let pct = if idle.total_ns > 0 {
                    ns * 100 / idle.total_ns
                } else {
                    0
                };
                let _ = writeln!(out, "#   {label:<13} {:>10} ({pct:>3}%)", fmt_ns(ns));
            }
        }
        if !self.critical_path.is_empty() {
            let total: u64 = self.critical_path.iter().map(|s| s.duration_ns).sum();
            let _ = writeln!(
                out,
                "# critical path (iteration {}, {} tasks, {}):",
                self.critical_iteration,
                self.critical_path.len(),
                fmt_ns(total)
            );
            for s in &self.critical_path {
                let _ = writeln!(
                    out,
                    "#   tile #{:<4} ({:>4},{:>4})  {}",
                    s.tile_index,
                    s.x,
                    s.y,
                    fmt_ns(s.duration_ns)
                );
            }
        }
        if !self.bottlenecks.is_empty() {
            let _ = writeln!(out, "# bottlenecks (lowest slack first):");
            for b in &self.bottlenecks {
                let _ = writeln!(
                    out,
                    "#   tile #{:<4} ({:>4},{:>4})  {:>10}  slack {}",
                    b.tile_index,
                    b.x,
                    b.y,
                    fmt_ns(b.duration_ns),
                    fmt_ns(b.slack_ns)
                );
            }
        }
        if !self.scaling.is_empty() {
            let _ = writeln!(out, "# virtual scaling (replay of recorded costs):");
            for s in &self.scaling {
                let _ = writeln!(
                    out,
                    "#   P={:<3} makespan {:>10}  speedup {:.2}x",
                    s.threads,
                    fmt_ns(s.makespan_ns),
                    s.speedup
                );
            }
        }
        let _ = writeln!(out, "# advice:");
        for a in &self.advice {
            let _ = writeln!(out, "#   [{}] {}", a.rule, a.text);
        }
        out
    }
}

/// Formats nanoseconds with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_monitor::{DepEdge, TileRecord};
    use ezp_trace::TraceMeta;

    /// A diamond DAG over a 4x4 grid: 0 -> {1, 2} -> 3 with durations
    /// 10, 30, 20, 5. T1 = 65, Tinf = 10 + 30 + 5 = 45, critical path
    /// 0 -> 1 -> 3.
    fn diamond_trace() -> Trace {
        let meta = TraceMeta {
            kernel: "ccomp".into(),
            variant: "task".into(),
            dim: 64,
            tile_size: 16,
            threads: 2,
            schedule: "dynamic".into(),
            label: "ccomp/task".into(),
        };
        let mk = |i: usize, s: u64, e: u64, w: usize| TileRecord {
            iteration: 1,
            x: (i % 4) * 16,
            y: (i / 4) * 16,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: e,
            worker: w,
        };
        let edge = |from, to| DepEdge { from, to, kind: 0 };
        Trace {
            meta,
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 50,
            }],
            // realistic timeline: 0 first, then 1 and 2 in parallel,
            // then 3 after both
            tasks: vec![
                mk(0, 0, 10, 0),
                mk(1, 10, 40, 0),
                mk(2, 10, 30, 1),
                mk(3, 40, 45, 1),
            ],
            edges: vec![edge(0, 1), edge(0, 2), edge(1, 3), edge(2, 3)],
            counters: None,
        }
    }

    #[test]
    fn cyclic_edge_union_falls_back_to_edgeless_analysis() {
        // two opposite wavefronts recorded in one run union to a
        // cyclic edge set (ccomp taskdep does exactly this); explain
        // must drop the edges, not loop or panic in the DAG replay
        let mut t = diamond_trace();
        t.edges = vec![
            DepEdge { from: 0, to: 1, kind: 0 },
            DepEdge { from: 1, to: 0, kind: 0 },
            DepEdge { from: 1, to: 3, kind: 0 },
        ];
        let r = explain(&t).unwrap();
        // edgeless span: the longest single task, not a chain
        assert_eq!(r.span_ns, 30);
        assert_eq!(r.critical_path.len(), 1);
        // the replay takes the loop-schedule path and still scales
        assert_eq!(r.scaling.len(), REPLAY_THREADS.len());
        assert!(!r.advice.is_empty());
        assert!(r.advice.iter().all(|a| a.rule != "dependency-limited"));
    }

    #[test]
    fn work_and_span_are_pinned_on_the_diamond() {
        let r = explain(&diamond_trace()).unwrap();
        assert_eq!(r.work_ns, 65);
        assert_eq!(r.span_ns, 45);
        assert_eq!(r.wall_ns, 50);
        assert!((r.avg_parallelism - 65.0 / 45.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_is_the_heavy_chain() {
        let r = explain(&diamond_trace()).unwrap();
        assert_eq!(r.critical_iteration, 1);
        let tiles: Vec<usize> = r.critical_path.iter().map(|s| s.tile_index).collect();
        assert_eq!(tiles, vec![0, 1, 3]);
        let durs: Vec<u64> = r.critical_path.iter().map(|s| s.duration_ns).collect();
        assert_eq!(durs, vec![10, 30, 5]);
    }

    #[test]
    fn slack_separates_on_and_off_path_tasks() {
        let r = explain(&diamond_trace()).unwrap();
        // critical tasks have zero slack; tile 2 (20 ns on a 45 ns span
        // through 10 + 20 + 5 = 35) has 10 ns of slack
        let by_tile = |i: usize| r.bottlenecks.iter().find(|b| b.tile_index == i).unwrap();
        assert_eq!(by_tile(0).slack_ns, 0);
        assert_eq!(by_tile(1).slack_ns, 0);
        assert_eq!(by_tile(3).slack_ns, 0);
        assert_eq!(by_tile(2).slack_ns, 10);
        // ranked by slack, then longest first: tile 1 leads
        assert_eq!(r.bottlenecks[0].tile_index, 1);
    }

    #[test]
    fn edgeless_traces_fall_back_to_longest_task_spans() {
        let mut t = diamond_trace();
        t.edges.clear();
        let r = explain(&t).unwrap();
        assert_eq!(r.work_ns, 65);
        assert_eq!(r.span_ns, 30); // longest single task
        assert!(r.critical_path.len() == 1);
        assert_eq!(r.critical_path[0].tile_index, 1);
    }

    #[test]
    fn idle_breakdown_reads_cause_counters() {
        let mut set = ezp_perf::CounterSet::new(2);
        let total = set.register("idle_ns");
        let steal = set.register("idle_ns{cause=\"steal\"}");
        let barrier = set.register("idle_ns{cause=\"barrier\"}");
        set.add(total, 0, 70);
        set.add(steal, 0, 50);
        set.add(barrier, 0, 20);
        let t = diamond_trace().with_counters(set.snapshot());
        let r = explain(&t).unwrap();
        let idle = r.idle.unwrap();
        assert_eq!(idle.total_ns, 70);
        assert_eq!(idle.by_cause[1], 50); // steal
        assert_eq!(idle.by_cause[2], 20); // barrier
        assert_eq!(idle.by_cause.iter().sum::<u64>(), idle.total_ns);
        assert_eq!(idle.dominant(), Some(("steal", 50)));
    }

    #[test]
    fn advisor_flags_a_dominant_idle_cause() {
        let mut set = ezp_perf::CounterSet::new(2);
        let total = set.register("idle_ns");
        let steal = set.register("idle_ns{cause=\"steal\"}");
        set.add(total, 0, 100);
        set.add(steal, 0, 90);
        let t = diamond_trace().with_counters(set.snapshot());
        let r = explain(&t).unwrap();
        assert!(
            r.advice.iter().any(|a| a.rule == "idle-dominant-cause"),
            "{:?}",
            r.advice
        );
    }

    #[test]
    fn advisor_never_returns_empty() {
        // a perfectly balanced, edge-free run with nothing to complain
        // about still gets the fallback recommendation
        let mut t = diamond_trace();
        t.edges.clear();
        t.tasks = vec![
            TileRecord {
                iteration: 1,
                x: 0,
                y: 0,
                w: 16,
                h: 16,
                start_ns: 0,
                end_ns: 25,
                worker: 0,
            },
            TileRecord {
                iteration: 1,
                x: 16,
                y: 0,
                w: 16,
                h: 16,
                start_ns: 0,
                end_ns: 25,
                worker: 1,
            },
        ];
        t.iterations[0].end_ns = 25;
        let r = explain(&t).unwrap();
        assert!(!r.advice.is_empty());
    }

    #[test]
    fn scaling_replays_the_dag_and_saturates_at_its_parallelism() {
        let r = explain(&diamond_trace()).unwrap();
        assert_eq!(r.scaling.len(), REPLAY_THREADS.len());
        assert_eq!(r.scaling[0].threads, 1);
        // sequential replay executes all 65 ns of work
        assert_eq!(r.scaling[0].makespan_ns, 65);
        // the diamond never runs faster than its 45 ns critical path
        for p in &r.scaling {
            assert!(p.makespan_ns >= 45, "P={} broke Tinf", p.threads);
        }
        // two workers already reach the bound; more cannot help
        assert_eq!(r.scaling[1].makespan_ns, 45);
        assert_eq!(r.scaling.last().unwrap().makespan_ns, 45);
    }

    #[test]
    fn percentiles_are_exact_over_task_durations() {
        let r = explain(&diamond_trace()).unwrap();
        // durations sorted: 5, 10, 20, 30
        assert_eq!(r.percentiles.count, 4);
        assert_eq!(r.percentiles.p50_ns, 10);
        assert_eq!(r.percentiles.max_ns, 30);
    }

    #[test]
    fn render_mentions_every_section() {
        let mut set = ezp_perf::CounterSet::new(2);
        let total = set.register("idle_ns");
        let steal = set.register("idle_ns{cause=\"steal\"}");
        set.add(total, 0, 100);
        set.add(steal, 0, 90);
        let t = diamond_trace().with_counters(set.snapshot());
        let text = explain(&t).unwrap().render();
        for needle in [
            "# explain: ccomp/task",
            "work T1",
            "span Tinf",
            "# idle breakdown",
            "steal",
            "# critical path",
            "# bottlenecks",
            "# virtual scaling",
            "# advice:",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn multi_iteration_spans_accumulate() {
        let mut t = diamond_trace();
        // clone iteration 1 as iteration 2, shifted in time
        t.iterations.push(IterationSpan {
            iteration: 2,
            start_ns: 50,
            end_ns: 100,
        });
        let shifted: Vec<TileRecord> = t
            .tasks
            .iter()
            .map(|r| {
                let mut r = *r;
                r.iteration = 2;
                r.start_ns += 50;
                r.end_ns += 50;
                r
            })
            .collect();
        t.tasks.extend(shifted);
        let r = explain(&t).unwrap();
        assert_eq!(r.work_ns, 130);
        assert_eq!(r.span_ns, 90); // 45 per iteration
    }
}
