//! Task-duration statistics over traces.
//!
//! EASYVIEW "cannot always capture some subtle properties such as the
//! heterogeneity of tasks duration" from the live view alone — the
//! post-mortem statistics here make that heterogeneity a number: count,
//! mean, extremes and percentiles per trace, per worker, per iteration.
//! `easyview` prints this block by default, and the blur analysis uses
//! the bimodality detector to spot the fast-inner/slow-border split of
//! Fig. 10 automatically.

use ezp_monitor::TileRecord;
use ezp_trace::Trace;

/// Summary statistics over a set of task durations (ns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurationStats {
    /// Number of tasks.
    pub count: usize,
    /// Sum of durations.
    pub total_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Shortest task.
    pub min_ns: u64,
    /// Longest task.
    pub max_ns: u64,
    /// Median (p50).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
}

impl DurationStats {
    /// Computes the summary of `durations` (empty input allowed).
    pub fn of(mut durations: Vec<u64>) -> DurationStats {
        if durations.is_empty() {
            return DurationStats {
                count: 0,
                total_ns: 0,
                mean_ns: 0.0,
                min_ns: 0,
                max_ns: 0,
                p50_ns: 0,
                p95_ns: 0,
            };
        }
        durations.sort_unstable();
        let count = durations.len();
        let total: u64 = durations.iter().sum();
        let pct = |p: f64| -> u64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            durations[idx]
        };
        DurationStats {
            count,
            total_ns: total,
            mean_ns: total as f64 / count as f64,
            min_ns: durations[0],
            max_ns: durations[count - 1],
            p50_ns: pct(0.5),
            p95_ns: pct(0.95),
        }
    }

    /// Heterogeneity indicator: `max / p50` (1.0 = perfectly uniform).
    /// The paper's blur trace shows strongly bimodal durations — this
    /// ratio jumps when a fast class of tasks appears.
    pub fn heterogeneity(&self) -> f64 {
        if self.p50_ns == 0 {
            1.0
        } else {
            self.max_ns as f64 / self.p50_ns as f64
        }
    }
}

/// Statistics over all tasks of a trace.
pub fn trace_stats(trace: &Trace) -> DurationStats {
    DurationStats::of(trace.tasks.iter().map(TileRecord::duration_ns).collect())
}

/// Per-worker statistics, indexed by worker id.
pub fn per_worker_stats(trace: &Trace) -> Vec<DurationStats> {
    (0..trace.meta.threads)
        .map(|w| {
            DurationStats::of(
                trace
                    .tasks
                    .iter()
                    .filter(|t| t.worker == w)
                    .map(TileRecord::duration_ns)
                    .collect(),
            )
        })
        .collect()
}

/// Statistics of one iteration.
pub fn iteration_stats(trace: &Trace, iteration: u32) -> DurationStats {
    DurationStats::of(
        trace
            .tasks_of_iteration(iteration)
            .map(TileRecord::duration_ns)
            .collect(),
    )
}

/// Renders the statistics block `easyview` prints.
pub fn render(trace: &Trace) -> String {
    use ezp_core::time::format_duration_ns as fmt;
    let all = trace_stats(trace);
    let mut out = format!(
        "tasks: {}  total {}  mean {}  min {}  p50 {}  p95 {}  max {}  (max/p50 x{:.1})\n",
        all.count,
        fmt(all.total_ns),
        fmt(all.mean_ns as u64),
        fmt(all.min_ns),
        fmt(all.p50_ns),
        fmt(all.p95_ns),
        fmt(all.max_ns),
        all.heterogeneity()
    );
    for (w, s) in per_worker_stats(trace).iter().enumerate() {
        out.push_str(&format!(
            "  CPU {w:>2}: {:>5} tasks, busy {:>10}, mean {:>10}\n",
            s.count,
            fmt(s.total_ns),
            fmt(s.mean_ns as u64)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_trace::TraceMeta;

    fn trace_with_durations(durations: &[(u64, usize)]) -> Trace {
        // (duration, worker)
        let mut t = 0u64;
        let tasks = durations
            .iter()
            .enumerate()
            .map(|(i, &(d, w))| {
                let rec = TileRecord {
                    iteration: 1,
                    x: (i * 16) % 64,
                    y: 16 * ((i * 16) / 64),
                    w: 16,
                    h: 16,
                    start_ns: t,
                    end_ns: t + d,
                    worker: w,
                };
                t += d;
                rec
            })
            .collect();
        Trace {
            meta: TraceMeta {
                kernel: "k".into(),
                variant: "v".into(),
                dim: 64,
                tile_size: 16,
                threads: 2,
                schedule: "static".into(),
                label: "stats".into(),
            },
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: t,
            }],
            tasks,
            edges: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn summary_of_known_values() {
        let s = DurationStats::of(vec![10, 20, 30, 40, 100]);
        assert_eq!(s.count, 5);
        assert_eq!(s.total_ns, 200);
        assert_eq!(s.mean_ns, 40.0);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.p50_ns, 30);
        assert_eq!(s.p95_ns, 100);
        assert!((s.heterogeneity() - 100.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_zeroed() {
        let s = DurationStats::of(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.heterogeneity(), 1.0);
    }

    #[test]
    fn per_worker_split() {
        let t = trace_with_durations(&[(10, 0), (20, 0), (100, 1)]);
        let per = per_worker_stats(&t);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].count, 2);
        assert_eq!(per[0].total_ns, 30);
        assert_eq!(per[1].count, 1);
        assert_eq!(per[1].max_ns, 100);
    }

    #[test]
    fn bimodal_durations_have_high_heterogeneity() {
        // the Fig. 10 signature: a fast class and a slow class
        let uniform = trace_with_durations(&[(100, 0); 8]);
        let mut bimodal_input = vec![(10u64, 0usize); 6];
        bimodal_input.extend([(100, 0), (100, 0)]);
        let bimodal = trace_with_durations(&bimodal_input);
        assert!((trace_stats(&uniform).heterogeneity() - 1.0).abs() < 1e-9);
        assert!(trace_stats(&bimodal).heterogeneity() >= 10.0);
    }

    #[test]
    fn iteration_scoping() {
        let mut t = trace_with_durations(&[(10, 0), (20, 1)]);
        t.tasks[1].iteration = 2;
        t.iterations.push(IterationSpan {
            iteration: 2,
            start_ns: 10,
            end_ns: 30,
        });
        assert_eq!(iteration_stats(&t, 1).count, 1);
        assert_eq!(iteration_stats(&t, 2).total_ns, 20);
        assert_eq!(iteration_stats(&t, 3).count, 0);
    }

    #[test]
    fn render_contains_all_lines() {
        let t = trace_with_durations(&[(10, 0), (20, 1), (30, 1)]);
        let text = render(&t);
        assert!(text.starts_with("tasks: 3"));
        assert!(text.contains("CPU  0"));
        assert!(text.contains("CPU  1"));
    }
}
