//! The Gantt chart model and its two mouse modes.

use ezp_core::color::{worker_color, Rgba};
use ezp_core::svg::SvgCanvas;
use ezp_core::time::format_duration_ns;
use ezp_monitor::TileRecord;
use ezp_trace::Trace;

/// A Gantt view of a trace restricted to an iteration range — "a Gantt
/// chart displays per-CPU sequences of tasks for a selectable range of
/// iterations" (§II-D).
#[derive(Clone, Debug)]
pub struct GanttModel {
    /// Number of CPUs (rows).
    pub workers: usize,
    /// First iteration shown (inclusive).
    pub iter_lo: u32,
    /// Last iteration shown (inclusive).
    pub iter_hi: u32,
    /// Time of the left edge.
    pub t0: u64,
    /// Time of the right edge.
    pub t1: u64,
    /// Tasks in range, sorted by start time.
    tasks: Vec<TileRecord>,
}

impl GanttModel {
    /// Builds the model for iterations `[iter_lo, iter_hi]` of `trace`.
    pub fn new(trace: &Trace, iter_lo: u32, iter_hi: u32) -> Self {
        let mut tasks: Vec<TileRecord> = trace
            .tasks
            .iter()
            .filter(|t| (iter_lo..=iter_hi).contains(&t.iteration))
            .copied()
            .collect();
        tasks.sort_by_key(|t| t.start_ns);
        let t0 = trace
            .iterations
            .iter()
            .filter(|s| (iter_lo..=iter_hi).contains(&s.iteration))
            .map(|s| s.start_ns)
            .chain(tasks.iter().map(|t| t.start_ns))
            .min()
            .unwrap_or(0);
        let t1 = trace
            .iterations
            .iter()
            .filter(|s| (iter_lo..=iter_hi).contains(&s.iteration) && s.end_ns != u64::MAX)
            .map(|s| s.end_ns)
            .chain(tasks.iter().map(|t| t.end_ns))
            .max()
            .unwrap_or(t0);
        GanttModel {
            workers: trace.meta.threads,
            iter_lo,
            iter_hi,
            t0,
            t1,
            tasks,
        }
    }

    /// All tasks in the range.
    pub fn tasks(&self) -> &[TileRecord] {
        &self.tasks
    }

    /// Tasks of one CPU row, in time order.
    pub fn row(&self, worker: usize) -> Vec<&TileRecord> {
        self.tasks.iter().filter(|t| t.worker == worker).collect()
    }

    /// **Vertical mouse mode**: the tasks whose execution interval
    /// crosses wall-clock time `t` — their tiles are what EASYVIEW
    /// highlights over the image thumbnail.
    pub fn tasks_at_time(&self, t: u64) -> Vec<&TileRecord> {
        self.tasks.iter().filter(|r| r.intersects_time(t, t + 1)).collect()
    }

    /// The specific task under the mouse at `(cpu, t)`, if any — the
    /// hover query behind the duration bubble of Fig. 7.
    pub fn task_at(&self, worker: usize, t: u64) -> Option<&TileRecord> {
        self.tasks
            .iter()
            .find(|r| r.worker == worker && r.intersects_time(t, t + 1))
    }

    /// **Horizontal mouse mode**: all tasks of `worker` in the displayed
    /// range (feed this to [`crate::CoverageMap`] for the coverage view).
    pub fn tasks_of_worker(&self, worker: usize) -> Vec<&TileRecord> {
        self.row(worker)
    }

    /// The hover bubble text for a task.
    pub fn bubble(task: &TileRecord) -> String {
        format!(
            "tile ({},{}) {}x{} on CPU {}: {}",
            task.x,
            task.y,
            task.w,
            task.h,
            task.worker,
            format_duration_ns(task.duration_ns())
        )
    }

    /// Renders the chart as ASCII, `width` columns wide: one row per
    /// CPU, task cells drawn with the worker's digit, idle time as `.`.
    pub fn to_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "need at least 10 columns");
        let span = (self.t1 - self.t0).max(1);
        let mut out = String::new();
        for w in 0..self.workers {
            let mut row = vec!['.'; width];
            for t in self.row(w) {
                let c0 = ((t.start_ns - self.t0) as u128 * width as u128 / span as u128) as usize;
                let c1 = ((t.end_ns - self.t0) as u128 * width as u128 / span as u128) as usize;
                let c1 = c1.min(width - 1);
                for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                    *cell = ezp_monitor::tiling::worker_char(w);
                }
            }
            out.push_str(&format!("CPU {w:>2} |"));
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "        span: {} (iterations {}..{})\n",
            format_duration_ns(span),
            self.iter_lo,
            self.iter_hi
        ));
        out
    }

    /// Renders the chart as SVG (one colored bar per task).
    pub fn to_svg(&self, width: f64, row_height: f64) -> String {
        let span = (self.t1 - self.t0).max(1) as f64;
        let label_w = 60.0;
        let height = row_height * self.workers as f64 + 20.0;
        let mut c = SvgCanvas::new(width + label_w, height);
        for w in 0..self.workers {
            let y = w as f64 * row_height + 2.0;
            c.text(2.0, y + row_height * 0.7, row_height * 0.5, Rgba::BLACK, &format!("CPU {w}"));
            for t in self.row(w) {
                let x0 = label_w + (t.start_ns - self.t0) as f64 / span * width;
                let x1 = label_w + (t.end_ns - self.t0) as f64 / span * width;
                c.rect(x0, y, (x1 - x0).max(0.5), row_height - 4.0, worker_color(w));
            }
        }
        c.text(
            label_w,
            height - 5.0,
            10.0,
            Rgba::BLACK,
            &format!(
                "iterations {}..{}  span {}",
                self.iter_lo,
                self.iter_hi,
                format_duration_ns(self.t1 - self.t0)
            ),
        );
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_trace::TraceMeta;

    fn trace() -> Trace {
        let mk = |it, x, s, e, w| TileRecord {
            iteration: it,
            x,
            y: 0,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: e,
            worker: w,
        };
        Trace {
            meta: TraceMeta {
                kernel: "mandel".into(),
                variant: "omp".into(),
                dim: 64,
                tile_size: 16,
                threads: 2,
                schedule: "dynamic".into(),
                label: "t".into(),
            },
            iterations: vec![
                IterationSpan {
                    iteration: 1,
                    start_ns: 0,
                    end_ns: 100,
                },
                IterationSpan {
                    iteration: 2,
                    start_ns: 100,
                    end_ns: 200,
                },
            ],
            tasks: vec![
                mk(1, 0, 10, 50, 0),
                mk(1, 16, 20, 90, 1),
                mk(2, 32, 110, 160, 0),
                mk(2, 48, 120, 130, 1),
            ],
            edges: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn full_range_includes_all_tasks() {
        let g = GanttModel::new(&trace(), 1, 2);
        assert_eq!(g.tasks().len(), 4);
        assert_eq!(g.t0, 0);
        assert_eq!(g.t1, 200);
        assert_eq!(g.row(0).len(), 2);
        assert_eq!(g.row(1).len(), 2);
    }

    #[test]
    fn iteration_range_filters() {
        let g = GanttModel::new(&trace(), 2, 2);
        assert_eq!(g.tasks().len(), 2);
        assert_eq!(g.t0, 100);
        assert_eq!(g.t1, 200);
    }

    #[test]
    fn vertical_mouse_mode_finds_crossing_tasks() {
        let g = GanttModel::new(&trace(), 1, 2);
        let at_30 = g.tasks_at_time(30);
        assert_eq!(at_30.len(), 2); // both workers busy at t=30
        let at_95 = g.tasks_at_time(95);
        assert!(at_95.is_empty()); // gap between iterations
        let at_125 = g.tasks_at_time(125);
        assert_eq!(at_125.len(), 2);
    }

    #[test]
    fn hover_finds_the_task_and_formats_bubble() {
        let g = GanttModel::new(&trace(), 1, 1);
        let t = g.task_at(1, 25).unwrap();
        assert_eq!(t.x, 16);
        let bubble = GanttModel::bubble(t);
        assert!(bubble.contains("CPU 1"));
        assert!(bubble.contains("70 ns"));
        assert!(g.task_at(0, 60).is_none());
    }

    #[test]
    fn ascii_has_one_row_per_cpu() {
        let g = GanttModel::new(&trace(), 1, 2);
        let art = g.to_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // 2 CPUs + footer
        assert!(lines[0].starts_with("CPU  0"));
        assert!(lines[0].contains('0'));
        assert!(lines[1].contains('1'));
        assert!(lines[2].contains("iterations 1..2"));
    }

    #[test]
    fn svg_contains_task_bars() {
        let g = GanttModel::new(&trace(), 1, 2);
        let svg = g.to_svg(400.0, 20.0);
        assert!(svg.contains("<svg"));
        // 1 background + 4 task rects
        assert_eq!(svg.matches("<rect").count(), 5);
    }

    #[test]
    fn empty_range_is_harmless() {
        let g = GanttModel::new(&trace(), 7, 9);
        assert!(g.tasks().is_empty());
        assert!(g.tasks_at_time(0).is_empty());
        let art = g.to_ascii(20);
        assert!(art.contains("CPU  0"));
    }
}
