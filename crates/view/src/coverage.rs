//! Per-CPU coverage maps (horizontal mouse mode).
//!
//! "The y-axis of the mouse allows to select a particular CPU and
//! highlights the tiles computed during the displayed period. Basically,
//! this allows to observe the 'coverage map' of a given CPU during one
//! or multiple iterations, and to check the locality of computations
//! across iterations" (§II-D). Fig. 10 uses this view to show that
//! `nonmonotonic:dynamic` keeps a CPU's tiles "mostly regrouped in a
//! single area".

use ezp_core::color::{worker_color, Rgba};
use ezp_core::{Img2D, TileGrid};
use ezp_monitor::TileRecord;
use ezp_trace::Trace;

/// Which tiles a given CPU computed over an iteration range, with
/// multiplicity (a tile computed in several iterations counts more).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverageMap {
    grid: TileGrid,
    /// The CPU this map describes.
    pub worker: usize,
    /// Hit count per tile (linear order).
    hits: Vec<u32>,
}

impl CoverageMap {
    /// Coverage of `worker` over iterations `[lo, hi]` of `trace`.
    pub fn new(trace: &Trace, worker: usize, lo: u32, hi: u32) -> ezp_core::Result<Self> {
        let grid = trace.meta.grid()?;
        let mut hits = vec![0u32; grid.len()];
        for t in trace.tasks_of_worker(worker, lo, hi) {
            if t.x < grid.width() && t.y < grid.height() {
                let tile = grid.tile_of_pixel(t.x, t.y);
                hits[grid.linear_index(tile.tx, tile.ty)] += 1;
            }
        }
        Ok(CoverageMap { grid, worker, hits })
    }

    /// Builds directly from records (used with a [`crate::GanttModel`]'s
    /// filtered task list).
    pub fn from_records<'a>(
        grid: TileGrid,
        worker: usize,
        records: impl Iterator<Item = &'a TileRecord>,
    ) -> Self {
        let mut hits = vec![0u32; grid.len()];
        for t in records.filter(|t| t.worker == worker) {
            if t.x < grid.width() && t.y < grid.height() {
                let tile = grid.tile_of_pixel(t.x, t.y);
                hits[grid.linear_index(tile.tx, tile.ty)] += 1;
            }
        }
        CoverageMap { grid, worker, hits }
    }

    /// Hit count of tile `(tx, ty)`.
    pub fn hits(&self, tx: usize, ty: usize) -> u32 {
        self.hits[self.grid.linear_index(tx, ty)]
    }

    /// Number of distinct tiles touched.
    pub fn covered_tiles(&self) -> usize {
        self.hits.iter().filter(|&&h| h > 0).count()
    }

    /// Locality score in `(0, 1]`: mean pairwise closeness of covered
    /// tiles (1 = single compact blob, → 0 = scattered across the grid).
    /// This is the number behind the paper's qualitative "mostly
    /// regrouped in a single area" observation.
    pub fn locality(&self) -> f64 {
        let covered: Vec<(f64, f64)> = self
            .grid
            .iter()
            .filter(|t| self.hits(t.tx, t.ty) > 0)
            .map(|t| (t.tx as f64, t.ty as f64))
            .collect();
        if covered.len() < 2 {
            return 1.0;
        }
        let diag = ((self.grid.tiles_x() as f64 - 1.0).powi(2)
            + (self.grid.tiles_y() as f64 - 1.0).powi(2))
        .sqrt()
        .max(1.0);
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..covered.len() {
            for j in (i + 1)..covered.len() {
                let d = ((covered[i].0 - covered[j].0).powi(2)
                    + (covered[i].1 - covered[j].1).powi(2))
                .sqrt();
                sum += d / diag;
                pairs += 1;
            }
        }
        1.0 - sum / pairs as f64
    }

    /// Renders the map over a dark thumbnail: covered tiles painted with
    /// the worker's color (the "purple squares" of Fig. 10), brightness
    /// by multiplicity.
    pub fn to_image(&self, cell: usize) -> Img2D<Rgba> {
        assert!(cell > 0);
        let max = self.hits.iter().copied().max().unwrap_or(0).max(1);
        let base = worker_color(self.worker);
        let mut img = Img2D::filled(
            self.grid.tiles_x() * cell,
            self.grid.tiles_y() * cell,
            Rgba::new(20, 20, 20, 255),
        );
        for t in self.grid.iter() {
            let h = self.hits(t.tx, t.ty);
            if h == 0 {
                continue;
            }
            let color = base.scaled(0.4 + 0.6 * h as f32 / max as f32);
            for py in 0..cell {
                for px in 0..cell {
                    img.set(t.tx * cell + px, t.ty * cell + py, color);
                }
            }
        }
        img
    }

    /// ASCII rendering: hit count per tile (`.` = untouched, capped at 9).
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        for ty in 0..self.grid.tiles_y() {
            for tx in 0..self.grid.tiles_x() {
                let h = self.hits(tx, ty);
                out.push(if h == 0 {
                    '.'
                } else {
                    char::from_digit(h.min(9), 10).unwrap()
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_trace::TraceMeta;

    fn trace_with(tasks: Vec<TileRecord>) -> Trace {
        Trace {
            meta: TraceMeta {
                kernel: "k".into(),
                variant: "v".into(),
                dim: 64,
                tile_size: 16,
                threads: 2,
                schedule: "static".into(),
                label: "t".into(),
            },
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            }],
            tasks,
            edges: Vec::new(),
            counters: None,
        }
    }

    fn task(it: u32, x: usize, y: usize, worker: usize, s: u64) -> TileRecord {
        TileRecord {
            iteration: it,
            x,
            y,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: s + 10,
            worker,
        }
    }

    #[test]
    fn counts_hits_per_tile() {
        let t = trace_with(vec![
            task(1, 0, 0, 0, 0),
            task(1, 16, 0, 0, 10),
            task(1, 0, 0, 1, 20), // other worker, ignored
        ]);
        let cov = CoverageMap::new(&t, 0, 1, 1).unwrap();
        assert_eq!(cov.hits(0, 0), 1);
        assert_eq!(cov.hits(1, 0), 1);
        assert_eq!(cov.hits(2, 2), 0);
        assert_eq!(cov.covered_tiles(), 2);
    }

    #[test]
    fn multiplicity_across_iterations() {
        let mut tasks = Vec::new();
        for it in 1..=3 {
            tasks.push(task(it, 0, 0, 0, it as u64 * 100));
        }
        let mut t = trace_with(tasks);
        t.iterations = (1..=3)
            .map(|i| IterationSpan {
                iteration: i,
                start_ns: i as u64 * 100,
                end_ns: i as u64 * 100 + 50,
            })
            .collect();
        let cov = CoverageMap::new(&t, 0, 1, 3).unwrap();
        assert_eq!(cov.hits(0, 0), 3);
        let cov12 = CoverageMap::new(&t, 0, 1, 2).unwrap();
        assert_eq!(cov12.hits(0, 0), 2);
    }

    #[test]
    fn compact_coverage_has_higher_locality_than_scattered() {
        // compact: a 2x2 block of tiles
        let compact = trace_with(vec![
            task(1, 0, 0, 0, 0),
            task(1, 16, 0, 0, 1),
            task(1, 0, 16, 0, 2),
            task(1, 16, 16, 0, 3),
        ]);
        // scattered: the four corners
        let scattered = trace_with(vec![
            task(1, 0, 0, 0, 0),
            task(1, 48, 0, 0, 1),
            task(1, 0, 48, 0, 2),
            task(1, 48, 48, 0, 3),
        ]);
        let lc = CoverageMap::new(&compact, 0, 1, 1).unwrap().locality();
        let ls = CoverageMap::new(&scattered, 0, 1, 1).unwrap().locality();
        assert!(lc > ls, "compact {lc:.3} must beat scattered {ls:.3}");
    }

    #[test]
    fn locality_degenerate_cases() {
        let empty = trace_with(vec![]);
        assert_eq!(CoverageMap::new(&empty, 0, 1, 1).unwrap().locality(), 1.0);
        let single = trace_with(vec![task(1, 16, 16, 0, 0)]);
        assert_eq!(CoverageMap::new(&single, 0, 1, 1).unwrap().locality(), 1.0);
    }

    #[test]
    fn ascii_rendering() {
        let t = trace_with(vec![task(1, 0, 0, 0, 0), task(1, 48, 48, 0, 5)]);
        let cov = CoverageMap::new(&t, 0, 1, 1).unwrap();
        let art = cov.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "1...");
        assert_eq!(lines[3], "...1");
    }

    #[test]
    fn image_rendering_uses_worker_color() {
        let t = trace_with(vec![task(1, 0, 0, 1, 0)]);
        let cov = CoverageMap::new(&t, 1, 1, 1).unwrap();
        let img = cov.to_image(2);
        assert_eq!(img.width(), 8);
        assert_eq!(img.get(0, 0), worker_color(1)); // max multiplicity -> full brightness
        assert_eq!(img.get(7, 7), Rgba::new(20, 20, 20, 255));
    }
}
