//! # ezp-view — EASYVIEW: interactive trace exploration (paper §II-D)
//!
//! EASYVIEW's window has two halves: a per-CPU Gantt chart of tasks on
//! the left, and a reduced view of the computed image on the right where
//! tiles light up as the mouse moves over tasks. This crate reproduces
//! the underlying queries and renders them to ASCII/SVG:
//!
//! * [`gantt`] — the Gantt model over a selectable iteration range, with
//!   the two mouse modes: *vertical* (a time → the tasks crossing it →
//!   their tiles highlighted) and *horizontal* (a CPU → its tasks);
//! * [`coverage`] — the per-CPU "coverage map" (§II-D, §III-B): which
//!   image areas a given CPU touched over an iteration range, the view
//!   that exposes the locality of `nonmonotonic:dynamic`;
//! * [`compare`] — two-trace comparison (Fig. 10): aligned Gantt charts,
//!   per-iteration speedups, task-duration ratios (the ×10 inner-tile
//!   observation);
//! * [`patterns`] — the Fig. 8 analyzers: same-worker stripes and cyclic
//!   distribution detection in tiling snapshots;
//! * [`explain`] — causal profiling: work/span bounds, critical path,
//!   per-task slack, idle-cause breakdown, virtual scaling replay and a
//!   rule-based bottleneck advisor.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod compare;
pub mod coverage;
pub mod explain;
pub mod gantt;
pub mod patterns;
pub mod stats;

pub use compare::TraceComparison;
pub use coverage::CoverageMap;
pub use explain::{explain, ExplainReport};
pub use gantt::GanttModel;
pub use stats::DurationStats;
